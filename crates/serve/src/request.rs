use crate::overload::ShedReason;
use ie_tensor::Tensor;

/// One inference request in the open-loop stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Caller-assigned identifier echoed back in the [`Response`].
    pub id: u64,
    /// Arrival time in seconds on the stream's virtual clock (replay mode)
    /// — must be non-decreasing across the stream. Live mode stamps arrivals
    /// itself and ignores this field.
    pub arrival_s: f64,
    /// The request's latency budget in seconds; admission control picks the
    /// deepest exit whose predicted cost fits, or sheds the request.
    pub budget_s: f64,
    /// The input image, shaped like the network's input.
    pub input: Tensor,
}

/// What the server decided and computed for one request.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// The request was admitted and ran to `exit`.
    Served {
        /// The early exit the admission policy selected.
        exit: usize,
        /// Predicted class at that exit.
        prediction: usize,
        /// Softmax confidence of the prediction at that exit.
        confidence: f32,
    },
    /// Admission control rejected the request (budget below the cheapest
    /// exit, or the policy skipped it).
    Rejected,
    /// The overload layer shed the request after admission — the bounded
    /// queue was full, the deadline became unmeetable under load, or the
    /// request's batch exhausted its retry budget after repeated worker
    /// losses.
    Shed {
        /// Why the overload layer gave up on the request.
        reason: ShedReason,
    },
}

/// The server's answer for one request. Responses carry only content that is
/// deterministic for a fixed request stream — timing lives in the
/// [`crate::ServeReport`], so responses stay byte-identical across worker
/// counts, batch compositions and repeated runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The id of the request this answers.
    pub id: u64,
    /// Decision and (when served) the inference result.
    pub verdict: Verdict,
}
