//! `ie-bench` — the experiment harness that regenerates every table and
//! figure of the paper's evaluation (Section V).
//!
//! The heavy lifting lives in this library so that the `figures` binary, the
//! Criterion benches and the integration tests all share one code path:
//!
//! * [`experiments::compression_study`] — Fig. 1(b), Fig. 4 and Fig. 6,
//! * [`experiments::system_comparison`] — Fig. 5, Fig. 7 and the Section
//!   V-C/V-D accuracy and latency tables,
//! * [`experiments::ablations`] — the design-choice ablations listed in
//!   `DESIGN.md`.
//!
//! Run `cargo run --release -p ie-bench --bin figures -- all` to print every
//! experiment, or pass an experiment id (e.g. `fig5`) to print just one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod reference;
pub mod report;
