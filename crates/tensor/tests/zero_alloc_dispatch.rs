//! Counting-allocator regression test: runtime ISA dispatch adds **zero**
//! per-call heap allocations to the kernels it routes.
//!
//! The dispatch decision is a cached `OnceLock` read; the only allocation it
//! ever performs is reading the `IE_ISA` environment variable once per
//! process, which the warm-up below triggers. After that, every dispatched
//! kernel call must allocate nothing — same contract as the planned
//! inference paths built on top of them.

use ie_tensor::QuantParams;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAllocator;

// SAFETY: delegates every operation to the system allocator unchanged; the
// only addition is a thread-local counter bump, which cannot allocate or
// unwind.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations_on_this_thread() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

#[test]
fn dispatched_kernels_perform_zero_allocations_per_call() {
    let (m, k, n) = (12, 64, 48);
    let a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.37).sin()).collect();
    let b: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.11).cos()).collect();
    let mut out = vec![0.0f32; m * n];
    let mut pooled = vec![0.0f32; m * n / 4];
    let mut probs = vec![0.0f32; n];
    let mut codes = vec![0i8; m * n];
    let mut accs = vec![0i32; m * n];
    let a16: Vec<i16> = a.iter().map(|&v| (v * 100.0) as i16).collect();
    let bt16: Vec<i16> = b.iter().map(|&v| (v * 100.0) as i16).collect();
    let p = QuantParams::from_range(0.0, 4.0, 8);

    let run_all = |out: &mut [f32],
                   pooled: &mut [f32],
                   probs: &mut [f32],
                   codes: &mut [i8],
                   accs: &mut [i32]| {
        ie_tensor::gemm_into(&a, &b, out, m, k, n);
        ie_tensor::gemm_sparse_into(&a, &b, out, m, k, n);
        ie_tensor::matvec_into(&a, &b[..k], &mut out[..m], m, k);
        ie_tensor::max_pool_planes_into(&b[..m * n], 1, m, n, 2, pooled);
        ie_tensor::relu_slice(out);
        ie_tensor::add_bias_rows(out, n, &a[..m], true);
        ie_tensor::softmax_slice_into(&b[..n], probs);
        p.quantize_slice_into(&b[..m * n], codes);
        for (acc, &c) in accs.iter_mut().zip(codes.iter()) {
            *acc = i32::from(c) * 1000;
        }
        ie_tensor::dequant_slice_into(&accs[..n], 3, 1e-3, 0.1, true, &mut out[..n]);
        ie_tensor::requant_slice_into(&accs[..n], 3, 1e-3, 0.1, &p, p.lo(), &mut codes[..n]);
        ie_tensor::gemm_i16t_into(&a16[..m * k], &bt16[..n * k], &mut accs[..m * n], m, k, n);
        let mut pooled_codes = [0i8; 4];
        ie_tensor::max_pool_planes_i8_into(&codes[..16], 1, 4, 4, 2, &mut pooled_codes);
        ie_tensor::relu_codes_floor(codes, p.zero_point() as i8);
        pooled_codes[0]
    };

    // Warm-up: triggers the one-time `IE_ISA` read inside the dispatch
    // OnceLock (the only allocation dispatch ever performs).
    let mut checksum = run_all(&mut out, &mut pooled, &mut probs, &mut codes, &mut accs);

    let before = allocations_on_this_thread();
    for _ in 0..10 {
        checksum = checksum.wrapping_add(run_all(
            &mut out,
            &mut pooled,
            &mut probs,
            &mut codes,
            &mut accs,
        ));
    }
    let after = allocations_on_this_thread();
    assert_eq!(
        after - before,
        0,
        "dispatched kernels must not allocate per call (checksum {checksum})"
    );
}
