//! Applies a [`CompressionPolicy`] to the weights of a real
//! [`ie_nn::MultiExitNetwork`].
//!
//! Pruned input channels are zeroed (equivalent to removal for the produced
//! activations) and weights are passed through the quantize→dequantize round
//! trip, so the compressed network computes exactly what the deployed integer
//! model would.

use crate::pruning::prune_weight;
use crate::quantize::quantize_weights;
use crate::{CompressError, CompressionPolicy, Result};
use ie_nn::dataset::Sample;
use ie_nn::quant::{LayerQuantConfig, QuantConfig, QuantKernel};
use ie_nn::{Layer, MultiExitNetwork};
use ie_tensor::quant::MAX_ACT_BITS;
use ie_tensor::QuantParams;

/// Applies `policy` to `network` in place.
///
/// The policy's entries must be in the canonical compressible-layer order of
/// the network's architecture (trunk segment 0, branch 0, trunk segment 1, …),
/// which is the order `MultiExitArchitecture::compressible_layers` reports.
///
/// # Errors
///
/// Returns [`crate::CompressError::PolicyLengthMismatch`] when the policy does
/// not cover every parameterised layer.
pub fn apply_policy(network: &mut MultiExitNetwork, policy: &CompressionPolicy) -> Result<()> {
    let expected = network.architecture().compressible_layers().len();
    policy.check_length(expected)?;
    let mut index = 0usize;
    let num_exits = network.num_exits();
    for exit in 0..num_exits {
        // Trunk segment `exit` first, then branch `exit`, matching the spec order.
        for part in [true, false] {
            let layers = if part {
                &mut network.segments_mut()[exit]
            } else {
                &mut network.branches_mut()[exit]
            };
            for layer in layers.iter_mut() {
                let Some(policy_entry) = policy.layer(index).copied() else {
                    continue;
                };
                match layer {
                    Layer::Conv2d(conv) => {
                        prune_weight(conv.weight_mut(), policy_entry.preserve_ratio);
                        let q = quantize_weights(conv.weight(), policy_entry.weight_bits);
                        *conv.weight_mut() = q.values;
                        // Pruned filters have zeroed channel blocks: route this
                        // layer's forward passes through the sparsity-aware
                        // GEMM, which skips them. The dense (unpruned) path
                        // keeps the branch-free blocked kernel.
                        conv.set_sparse_hint(policy_entry.preserve_ratio < 1.0);
                        index += 1;
                    }
                    Layer::Dense(dense) => {
                        prune_weight(dense.weight_mut(), policy_entry.preserve_ratio);
                        let q = quantize_weights(dense.weight(), policy_entry.weight_bits);
                        *dense.weight_mut() = q.values;
                        index += 1;
                    }
                    _ => {}
                }
            }
        }
    }
    Ok(())
}

/// Observed `[min, max]` ranges of every compressible layer's input
/// activation (canonical order), measured by running the calibration samples
/// through the network's allocating forward path.
pub(crate) fn calibrate_ranges(
    network: &MultiExitNetwork,
    samples: &[Sample],
    layers: usize,
) -> Result<Vec<(f32, f32)>> {
    let mut ranges = vec![(f32::INFINITY, f32::NEG_INFINITY); layers];
    let mut record = |index: usize, act: &ie_tensor::Tensor| {
        let (min, max) = ranges[index];
        let (mut lo, mut hi) = (min, max);
        for &v in act.as_slice() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        ranges[index] = (lo, hi);
    };
    for sample in samples {
        let mut trunk = sample.image.clone();
        let mut index = 0usize;
        for exit in 0..network.num_exits() {
            for layer in &network.segments()[exit] {
                if layer.is_parameterised() {
                    record(index, &trunk);
                    index += 1;
                }
                trunk = layer.forward(&trunk)?;
            }
            let mut act = trunk.clone();
            for layer in &network.branches()[exit] {
                if layer.is_parameterised() {
                    record(index, &act);
                    index += 1;
                }
                act = layer.forward(&act)?;
            }
        }
    }
    Ok(ranges)
}

/// Applies `policy` to `network` for **quantized (integer) execution**:
/// prunes in place, then returns the [`QuantConfig`] that hands the
/// execution plans real integer parameters — per-layer weight scales plus
/// calibrated activation scale/zero-point — instead of dequantized `f32`
/// weights.
///
/// Layers whose policy assigns ≤16-bit weights **and** ≤8-bit activations
/// run the i8/i16 kernels; their `f32` weights stay pruned-but-unquantized
/// (the plan packs integer codes from them via the shared
/// [`ie_tensor::weight_code`] map, using the same MSE-searched scale as the
/// fake-quant path). Wider layers fall back to the `f32` kernels and get the
/// usual fake-quant round trip, so an arbitrary policy mix stays faithful.
/// Activation ranges are observed by running `calibration` through the
/// pruned network.
///
/// # Errors
///
/// Returns [`CompressError::PolicyLengthMismatch`] when the policy does not
/// cover every parameterised layer and
/// [`CompressError::EmptyCalibrationSet`] when no calibration samples are
/// given.
pub fn apply_policy_quantized(
    network: &mut MultiExitNetwork,
    policy: &CompressionPolicy,
    calibration: &[Sample],
) -> Result<QuantConfig> {
    let expected = network.architecture().compressible_layers().len();
    policy.check_length(expected)?;
    if calibration.is_empty() {
        return Err(CompressError::EmptyCalibrationSet);
    }
    // Pass 1: prune in place; integer-kernel layers keep pruned f32 weights
    // and record their MSE-searched scale, f32-kernel layers get the usual
    // fake-quant round trip.
    let mut index = 0usize;
    let mut weight_quant: Vec<Option<(u8, f32, u8)>> = Vec::with_capacity(expected);
    let num_exits = network.num_exits();
    for exit in 0..num_exits {
        for part in [true, false] {
            let layers = if part {
                &mut network.segments_mut()[exit]
            } else {
                &mut network.branches_mut()[exit]
            };
            for layer in layers.iter_mut() {
                let Some(policy_entry) = policy.layer(index).copied() else {
                    continue;
                };
                let integer = QuantKernel::for_weight_bits(policy_entry.weight_bits).is_some()
                    && policy_entry.activation_bits <= MAX_ACT_BITS;
                match layer {
                    Layer::Conv2d(conv) => {
                        prune_weight(conv.weight_mut(), policy_entry.preserve_ratio);
                        let q = quantize_weights(conv.weight(), policy_entry.weight_bits);
                        if integer {
                            weight_quant.push(Some((
                                policy_entry.weight_bits,
                                q.scale,
                                policy_entry.activation_bits,
                            )));
                        } else {
                            *conv.weight_mut() = q.values;
                            weight_quant.push(None);
                        }
                        conv.set_sparse_hint(policy_entry.preserve_ratio < 1.0);
                        index += 1;
                    }
                    Layer::Dense(dense) => {
                        prune_weight(dense.weight_mut(), policy_entry.preserve_ratio);
                        let q = quantize_weights(dense.weight(), policy_entry.weight_bits);
                        if integer {
                            weight_quant.push(Some((
                                policy_entry.weight_bits,
                                q.scale,
                                policy_entry.activation_bits,
                            )));
                        } else {
                            *dense.weight_mut() = q.values;
                            weight_quant.push(None);
                        }
                        index += 1;
                    }
                    _ => {}
                }
            }
        }
    }
    // Pass 2: observe every quantized layer's input range on the pruned
    // network, then assemble the per-layer integer parameters.
    let ranges = calibrate_ranges(network, calibration, expected)?;
    let layers = weight_quant
        .into_iter()
        .zip(ranges)
        .map(|(entry, (min, max))| {
            entry.map(|(weight_bits, weight_scale, act_bits)| LayerQuantConfig {
                weight_bits,
                weight_scale,
                // Zero must stay representable (the quantized im2col pads
                // with the zero point), so the range always includes it.
                input: QuantParams::from_range(min.min(0.0), max.max(0.0), act_bits),
            })
        })
        .collect();
    Ok(QuantConfig::from_layers(layers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompressionPolicy, LayerPolicy};
    use ie_nn::spec::tiny_multi_exit;
    use ie_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn network(seed: u64) -> MultiExitNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        MultiExitNetwork::from_architecture(&tiny_multi_exit(3), &mut rng).unwrap()
    }

    #[test]
    fn identity_policy_leaves_outputs_unchanged() {
        let net = network(3);
        let mut compressed = net.clone();
        let n = net.architecture().compressible_layers().len();
        apply_policy(&mut compressed, &CompressionPolicy::full_precision(n)).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::randn(&mut rng, &[1, 8, 8], 0.0, 1.0);
        let a = net.forward_all(&x).unwrap();
        let b = compressed.forward_all(&x).unwrap();
        for (oa, ob) in a.iter().zip(&b) {
            for (va, vb) in oa.logits.as_slice().iter().zip(ob.logits.as_slice()) {
                assert!((va - vb).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn aggressive_policy_changes_weights_and_zeroes_channels() {
        let mut net = network(4);
        let n = net.architecture().compressible_layers().len();
        let policy = CompressionPolicy::uniform(n, 0.5, 2, 8).unwrap();
        apply_policy(&mut net, &policy).unwrap();
        // The second conv layer (trunk segment 1) must have some zeroed input channels.
        let conv2 = net.segments()[1]
            .iter()
            .find_map(|l| match l {
                Layer::Conv2d(c) => Some(c),
                _ => None,
            })
            .expect("segment 1 contains a conv layer");
        let dims = conv2.weight().dims().to_vec();
        let per_channel: Vec<f32> = (0..dims[1])
            .map(|ic| {
                let mut s = 0.0;
                for oc in 0..dims[0] {
                    for ky in 0..dims[2] {
                        for kx in 0..dims[3] {
                            s += conv2.weight().get(&[oc, ic, ky, kx]).unwrap().abs();
                        }
                    }
                }
                s
            })
            .collect();
        let zeroed = per_channel.iter().filter(|&&s| s == 0.0).count();
        assert!(
            zeroed >= dims[1] / 2 - 1,
            "expected roughly half the channels zeroed, got {zeroed}"
        );
    }

    #[test]
    fn quantized_mode_hands_plans_integer_parameters() {
        use ie_nn::dataset::SyntheticDataset;

        let net = network(7);
        let n = net.architecture().compressible_layers().len();
        let data = SyntheticDataset::generate(3, 8, 20, 0.05, 7);
        // Mixed policy: 8-bit (i8), 12-bit (i16) and 32-bit (f32) layers;
        // Conv2 (canonical index 2, 4 input channels) is also pruned.
        let mut policy = CompressionPolicy::full_precision(n);
        policy.layers_mut()[0] = LayerPolicy::new(1.0, 8, 8).unwrap();
        policy.layers_mut()[1] = LayerPolicy::new(1.0, 12, 8).unwrap();
        policy.layers_mut()[2] = LayerPolicy::new(0.5, 8, 8).unwrap();
        let mut quantized_net = net.clone();
        let cfg = apply_policy_quantized(&mut quantized_net, &policy, data.train()).unwrap();
        assert_eq!(cfg.len(), n);
        let entry0 = cfg.layers()[0].expect("8-bit layer is quantized");
        assert_eq!(entry0.weight_bits, 8);
        assert!(entry0.weight_scale > 0.0);
        assert!(entry0.input.scale() > 0.0);
        assert!(cfg.layers()[1].is_some(), "12-bit layer runs the i16 kernel");
        assert!(cfg.layers()[3].is_none(), "32-bit layer stays f32");
        // Integer layers keep pruned f32 weights (codes are packed by the
        // plan); the pruned channels are still zeroed.
        let conv2 = quantized_net.segments()[1]
            .iter()
            .find_map(|l| match l {
                Layer::Conv2d(c) => Some(c),
                _ => None,
            })
            .unwrap();
        assert!(conv2.sparse_hint());
        let zeros = conv2.weight().as_slice().iter().filter(|&&w| w == 0.0).count();
        assert!(zeros > 0, "pruning still zeroes channels in quantized mode");
        // The config drives a working quantized plan.
        let mut plan = quantized_net.execution_plan_quantized(&cfg).unwrap();
        let out = quantized_net.forward_to_exit_with(&mut plan, &data.train()[0].image, 0).unwrap();
        assert!(out.confidence.is_finite());
        // No calibration samples is an explicit error.
        let mut other = net.clone();
        assert!(matches!(
            apply_policy_quantized(&mut other, &policy, &[]),
            Err(CompressError::EmptyCalibrationSet)
        ));
    }

    #[test]
    fn policy_length_mismatch_is_rejected() {
        let mut net = network(5);
        let err = apply_policy(&mut net, &CompressionPolicy::full_precision(1)).unwrap_err();
        assert!(matches!(err, crate::CompressError::PolicyLengthMismatch { .. }));
    }

    #[test]
    fn per_layer_policies_apply_in_canonical_order() {
        // Give the very first compressible layer (Conv1) 1-bit weights and leave
        // the rest untouched: only Conv1's weights should collapse to two levels.
        let mut net = network(6);
        let n = net.architecture().compressible_layers().len();
        let mut policy = CompressionPolicy::full_precision(n);
        policy.layers_mut()[0] = LayerPolicy::new(1.0, 1, 32).unwrap();
        apply_policy(&mut net, &policy).unwrap();
        let conv1 = net.segments()[0]
            .iter()
            .find_map(|l| match l {
                Layer::Conv2d(c) => Some(c),
                _ => None,
            })
            .unwrap();
        let distinct: std::collections::BTreeSet<i64> =
            conv1.weight().as_slice().iter().map(|v| (v * 1e5).round() as i64).collect();
        assert!(distinct.len() <= 3, "1-bit weights collapse to ≤2 magnitudes (plus zero)");
        // A dense layer elsewhere keeps many distinct values.
        let fc = net.branches()[0]
            .iter()
            .find_map(|l| match l {
                Layer::Dense(d) => Some(d),
                _ => None,
            })
            .unwrap();
        let distinct_fc: std::collections::BTreeSet<i64> =
            fc.weight().as_slice().iter().map(|v| (v * 1e5).round() as i64).collect();
        assert!(distinct_fc.len() > 10);
    }
}
