//! Fleet-scale intermittent simulation: thousands-to-millions of
//! heterogeneous virtual devices advanced in parallel on one box.
//!
//! The paper evaluates one MSP432 against one solar trace; a production
//! deployment is a *population* of devices with mixed energy environments
//! (solar windows, kinetic bursts, stochastic RF-like arrivals), capacitor
//! sizes, harvest rates, exit policies and fault exposure, whose aggregate
//! completion/exit-depth behaviour is the metric that matters. This module
//! provides that population:
//!
//! * [`DeviceSpec::derive`] — every device's heterogeneity is *derived*, not
//!   stored: a hierarchical RNG fork ([`ie_energy::fork_seed`]) under one
//!   master seed, at path `[device_id, purpose]`, yields the device's spec,
//!   trace, event arrivals, correctness draws and fault schedule as
//!   independent streams. A device's behaviour therefore depends only on
//!   `(master seed, device id)` — never on the worker that ran it or on how
//!   many other devices exist — which is what makes single-device extraction
//!   replay bit-identical ([`FleetSimulator::replay_device`]).
//! * [`FleetSimulator::run`] — shards the device-id range contiguously
//!   across `std::thread::scope` workers (the same discipline as
//!   `evaluate_batched`'s sharded reduction) and streams every device into a
//!   fixed-size [`FleetAccumulator`], so memory stays flat no matter how
//!   many devices run.
//! * [`FleetAccumulator`] — a mergeable, order-invariant aggregate: all
//!   counters are integers (energies in nanojoules, latencies in
//!   microseconds) and the merge is commutative and associative, so the
//!   aggregate — and its serialized JSON — is byte-identical for any worker
//!   count and any device ordering. Percentiles come from fixed log-binned
//!   histograms; per-device digests fold into order-insensitive XOR/sum
//!   combiners.
//!
//! See DESIGN.md, "Fleet simulation", for the determinism contract.

use crate::metrics::RecoveryStats;
use crate::policies::{FixedExitPolicy, GreedyAffordablePolicy, ReserveMarginPolicy};
use crate::{
    ContinueContext, CoreError, DeployedModel, EventContext, ExitChoice, ExitPolicy, Result,
};
use ie_energy::{
    fork_rng, fork_seed, EnergyStorage, EventDistribution, EventGenerator, HarvestSimulator,
    KineticBurstTrace, PowerTrace, SolarTrace, StochasticArrivalTrace,
};
use ie_mcu::{FaultInjector, FaultPlan, TaskCut};
use rand::rngs::StdRng;
use rand::Rng;

/// Purpose component of a device's fork path: the spec (heterogeneity) draws.
const PURPOSE_SPEC: u64 = 0;
/// Purpose component: the power-trace synthesis stream.
const PURPOSE_TRACE: u64 = 1;
/// Purpose component: the event-arrival stream.
const PURPOSE_EVENTS: u64 = 2;
/// Purpose component: the correctness/confidence draws.
const PURPOSE_SIM: u64 = 3;
/// Purpose component: the fault-injection schedule.
const PURPOSE_FAULT: u64 = 4;

/// Fixed number of exit slots in the accumulator (covers any model the repo
/// builds; unused slots stay zero).
pub const EXIT_SLOTS: usize = 8;

/// Number of log-spaced bins in the energy/latency histograms.
pub const HIST_BINS: usize = 48;

/// Analytic checkpoint record length (bytes) consulted for torn-write
/// injection after each processed event.
const CHECKPOINT_RECORD_LEN: usize = 64;

/// log10 range of the per-event energy histogram, in millijoules.
const ENERGY_LOG10_RANGE: (f64, f64) = (-3.0, 2.0);
/// log10 range of the per-event latency histogram, in seconds.
const LATENCY_LOG10_RANGE: (f64, f64) = (-4.0, 3.0);

/// Worker-thread count for the fleet simulator: `IE_FLEET_THREADS` via the
/// shared [`ie_nn::train::threads_from_env`] helper. Like the other thread
/// knobs this never changes results — the fleet aggregate is byte-identical
/// for every worker count — it only changes throughput.
pub fn fleet_threads() -> usize {
    ie_nn::train::threads_from_env("IE_FLEET_THREADS")
}

/// Configuration of a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Number of virtual devices (ids `0..num_devices`).
    pub num_devices: u64,
    /// Master seed every per-device stream is forked from.
    pub master_seed: u64,
    /// Events each device must classify over its window.
    pub events_per_device: usize,
    /// Simulated duration of each device's window, seconds.
    pub device_duration_s: f64,
    /// Fraction of devices that carry a random fault plan, in `[0, 1]`.
    pub fault_fraction: f64,
    /// Worker threads (see [`fleet_threads`] for the env-driven default).
    pub threads: usize,
    /// Optional device id whose in-fleet outcome is captured in the report,
    /// so an isolated [`FleetSimulator::replay_device`] can be checked
    /// against it digest-for-digest.
    pub probe_device: Option<u64>,
}

impl FleetConfig {
    /// A fleet of `num_devices` devices under `master_seed` with the default
    /// window: 24 events over a 30-minute window, a quarter of the fleet
    /// fault-exposed, and the `IE_FLEET_THREADS`-driven worker count.
    pub fn new(num_devices: u64, master_seed: u64) -> Self {
        FleetConfig {
            num_devices,
            master_seed,
            events_per_device: 24,
            device_duration_s: 1800.0,
            fault_fraction: 0.25,
            threads: fleet_threads(),
            probe_device: None,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an empty fleet, a zero
    /// event count or worker count, a non-positive window, a fault fraction
    /// outside `[0, 1]`, or a probe id outside the fleet.
    pub fn validate(&self) -> Result<()> {
        if self.num_devices == 0 {
            return Err(CoreError::InvalidConfig("fleet needs at least one device".into()));
        }
        if self.events_per_device == 0 {
            return Err(CoreError::InvalidConfig("devices need at least one event".into()));
        }
        if self.device_duration_s <= 0.0 {
            return Err(CoreError::InvalidConfig("device window must be positive".into()));
        }
        if !(0.0..=1.0).contains(&self.fault_fraction) {
            return Err(CoreError::InvalidConfig("fault fraction must be in [0, 1]".into()));
        }
        if self.threads == 0 {
            return Err(CoreError::InvalidConfig("fleet needs at least one worker".into()));
        }
        if let Some(probe) = self.probe_device {
            if probe >= self.num_devices {
                return Err(CoreError::InvalidConfig(format!(
                    "probe device {probe} outside fleet of {}",
                    self.num_devices
                )));
            }
        }
        Ok(())
    }
}

/// The energy environment a device harvests from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A daylight window of the diurnal solar trace.
    Solar,
    /// Kinetic bursts (e.g. footsteps on a wearable).
    Kinetic,
    /// Stochastic packet arrivals (ambient RF / wireless power transfer).
    Stochastic,
}

/// The exit policy a device runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyKind {
    /// Deepest affordable exit.
    Greedy,
    /// Always the same exit (clamped to the deployed model's exit count).
    Fixed(usize),
    /// Greedy over the energy above a reserve margin.
    Reserve(f64),
}

/// One device's derived heterogeneity. Everything here is a pure function of
/// `(master seed, device id, fault fraction)` — see [`DeviceSpec::derive`].
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// The device's id (also its fork-path component).
    pub device_id: u64,
    /// Energy environment.
    pub trace_kind: TraceKind,
    /// Capacitor capacity, millijoules.
    pub capacity_mj: f64,
    /// Initial charge as a fraction of capacity.
    pub initial_fraction: f64,
    /// Multiplier on the environment's harvested power.
    pub harvest_scale: f64,
    /// Charging efficiency, in `(0, 1]`.
    pub charge_efficiency: f64,
    /// Where in the day a solar device's window falls, as a fraction of 24 h
    /// (ignored by the other trace kinds).
    pub solar_offset_fraction: f64,
    /// Exit policy.
    pub policy: PolicyKind,
    /// How the device's events arrive.
    pub event_distribution: EventDistribution,
    /// Random fault plan: `(cut probability, max cuts)` under the device's
    /// fault stream, or `None` for the fault-free majority.
    pub fault: Option<(f64, u64)>,
}

impl DeviceSpec {
    /// Derives device `device_id`'s spec from the fleet configuration by
    /// drawing every field, in a fixed order, from the device's spec stream
    /// (fork path `[device_id, PURPOSE_SPEC]`).
    pub fn derive(config: &FleetConfig, device_id: u64) -> DeviceSpec {
        let mut rng = fork_rng(config.master_seed, &[device_id, PURPOSE_SPEC]);
        // Every field is drawn unconditionally so the draw schedule is
        // identical for all devices — no field's value shifts another's.
        let trace_roll = rng.gen_range(0..3u32);
        let capacity_mj = 2.0 + 28.0 * rng.gen::<f64>();
        let initial_fraction = 0.5 * rng.gen::<f64>();
        let harvest_scale = 0.25 + 1.75 * rng.gen::<f64>();
        let charge_efficiency = 0.6 + 0.35 * rng.gen::<f64>();
        let solar_offset_fraction = 0.25 + 0.4 * rng.gen::<f64>();
        let policy_roll = rng.gen_range(0..3u32);
        let fixed_exit = rng.gen_range(0..EXIT_SLOTS);
        let reserve_fraction = 0.1 + 0.5 * rng.gen::<f64>();
        let distribution_roll = rng.gen_range(0..3u32);
        let cluster_center = 0.2 + 0.6 * rng.gen::<f64>();
        let cluster_spread = 0.05 + 0.15 * rng.gen::<f64>();
        let fault_roll = rng.gen::<f64>();
        let cut_probability = 0.05 + 0.2 * rng.gen::<f64>();

        DeviceSpec {
            device_id,
            trace_kind: match trace_roll {
                0 => TraceKind::Solar,
                1 => TraceKind::Kinetic,
                _ => TraceKind::Stochastic,
            },
            capacity_mj,
            initial_fraction,
            harvest_scale,
            charge_efficiency,
            solar_offset_fraction,
            policy: match policy_roll {
                0 => PolicyKind::Greedy,
                1 => PolicyKind::Fixed(fixed_exit),
                _ => PolicyKind::Reserve(reserve_fraction),
            },
            event_distribution: match distribution_roll {
                0 => EventDistribution::Uniform,
                1 => EventDistribution::Poisson,
                _ => EventDistribution::Clustered {
                    center_fraction: cluster_center,
                    spread_fraction: cluster_spread,
                },
            },
            fault: (fault_roll < config.fault_fraction).then_some((cut_probability, 16)),
        }
    }
}

/// A daylight slice of a full-day trace: the device's short window maps onto
/// `[offset, offset + window)` of the inner trace, so a 30-minute fleet
/// window can sample midday sun instead of the midnight start of the raw
/// diurnal profile.
#[derive(Debug)]
struct WindowedTrace {
    inner: SolarTrace,
    offset_s: f64,
    window_s: f64,
}

impl PowerTrace for WindowedTrace {
    fn power_mw(&self, t_s: f64) -> f64 {
        self.inner.power_mw(self.offset_s + t_s.rem_euclid(self.window_s))
    }

    fn duration_s(&self) -> f64 {
        self.window_s
    }
}

/// Summary of one simulated device, used for extraction replay: the digest
/// folds every per-event outcome (exit, correctness, energy and latency
/// bits), so two runs agree on the digest only if the device behaved
/// bit-identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceOutcome {
    /// The device's id.
    pub device_id: u64,
    /// Order-sensitive fold of every per-event outcome.
    pub digest: u64,
    /// Events the device saw.
    pub events: u64,
    /// Events that produced a result.
    pub processed: u64,
    /// Events classified correctly.
    pub correct: u64,
    /// Energy drawn for inference, nanojoules.
    pub consumed_nj: u64,
}

/// Fixed-size, mergeable aggregate of a fleet run.
///
/// Every field is an integer (energies rounded to nanojoules, latencies to
/// microseconds) and [`FleetAccumulator::merge`] uses only commutative,
/// associative operations, so the aggregate is exactly invariant under
/// worker count and device ordering — the property the CI
/// `fleet-determinism` job diffs for and `fleet_proptests` quantify.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetAccumulator {
    /// Devices absorbed.
    pub devices: u64,
    /// Events across all devices.
    pub total_events: u64,
    /// Events that produced a result.
    pub processed_events: u64,
    /// Events missed for lack of energy.
    pub missed_events: u64,
    /// Events classified correctly.
    pub correct_events: u64,
    /// Events that used an incremental continuation.
    pub incremental_events: u64,
    /// Final-exit counts (fixed [`EXIT_SLOTS`] slots).
    pub exit_counts: [u64; EXIT_SLOTS],
    /// Reboots recovered after an injected cut.
    pub recovered_boots: u64,
    /// Checkpoint writes torn by an injected cut.
    pub torn_writes: u64,
    /// Energy destroyed by cuts and re-executed, nanojoules.
    pub wasted_nj: u64,
    /// Energy drawn for inference, nanojoules.
    pub consumed_nj: u64,
    /// Log-binned per-event energy histogram (millijoule decades, see
    /// [`FleetAccumulator::energy_percentile_mj`]).
    pub energy_hist: [u64; HIST_BINS],
    /// Log-binned per-event latency histogram (second decades).
    pub latency_hist: [u64; HIST_BINS],
    /// XOR of per-device digests (order-insensitive).
    pub digest_xor: u64,
    /// Wrapping sum of per-device digests (order-insensitive, catches the
    /// pairs XOR cancels).
    pub digest_sum: u64,
}

impl Default for FleetAccumulator {
    fn default() -> Self {
        FleetAccumulator {
            devices: 0,
            total_events: 0,
            processed_events: 0,
            missed_events: 0,
            correct_events: 0,
            incremental_events: 0,
            exit_counts: [0; EXIT_SLOTS],
            recovered_boots: 0,
            torn_writes: 0,
            wasted_nj: 0,
            consumed_nj: 0,
            energy_hist: [0; HIST_BINS],
            latency_hist: [0; HIST_BINS],
            digest_xor: 0,
            digest_sum: 0,
        }
    }
}

/// Rounds millijoules to integer nanojoules (the accumulator's exact unit).
fn mj_to_nj(mj: f64) -> u64 {
    (mj.max(0.0) * 1e6).round() as u64
}

/// Log-bin index of `value` over the given log10 range.
fn log_bin(value: f64, (lo, hi): (f64, f64)) -> usize {
    if value <= 0.0 {
        return 0;
    }
    let x = (value.log10() - lo) / (hi - lo) * HIST_BINS as f64;
    (x.floor().max(0.0) as usize).min(HIST_BINS - 1)
}

/// Geometric midpoint of bin `idx` over the given log10 range.
fn bin_value(idx: usize, (lo, hi): (f64, f64)) -> f64 {
    10f64.powf(lo + (idx as f64 + 0.5) * (hi - lo) / HIST_BINS as f64)
}

/// Value at quantile `q` of a log-binned histogram.
fn hist_percentile(hist: &[u64; HIST_BINS], q: f64, range: (f64, f64)) -> f64 {
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
    let mut cumulative = 0u64;
    for (idx, &count) in hist.iter().enumerate() {
        cumulative += count;
        if cumulative >= target {
            return bin_value(idx, range);
        }
    }
    bin_value(HIST_BINS - 1, range)
}

impl FleetAccumulator {
    /// Merges another accumulator into this one. Commutative and
    /// associative: merging worker shards in any order yields bit-identical
    /// aggregates.
    pub fn merge(&mut self, other: &FleetAccumulator) {
        self.devices += other.devices;
        self.total_events += other.total_events;
        self.processed_events += other.processed_events;
        self.missed_events += other.missed_events;
        self.correct_events += other.correct_events;
        self.incremental_events += other.incremental_events;
        for (mine, theirs) in self.exit_counts.iter_mut().zip(&other.exit_counts) {
            *mine += theirs;
        }
        self.recovered_boots += other.recovered_boots;
        self.torn_writes += other.torn_writes;
        self.wasted_nj += other.wasted_nj;
        self.consumed_nj += other.consumed_nj;
        for (mine, theirs) in self.energy_hist.iter_mut().zip(&other.energy_hist) {
            *mine += theirs;
        }
        for (mine, theirs) in self.latency_hist.iter_mut().zip(&other.latency_hist) {
            *mine += theirs;
        }
        self.digest_xor ^= other.digest_xor;
        self.digest_sum = self.digest_sum.wrapping_add(other.digest_sum);
    }

    /// Folds one device's digest into the order-insensitive combiners.
    fn absorb_digest(&mut self, digest: u64) {
        self.digest_xor ^= digest;
        self.digest_sum = self.digest_sum.wrapping_add(digest);
    }

    /// Fraction of all events that produced a result.
    pub fn completion_rate(&self) -> f64 {
        if self.total_events == 0 {
            0.0
        } else {
            self.processed_events as f64 / self.total_events as f64
        }
    }

    /// Accuracy over all events (missed events count as wrong) — the fleet
    /// analogue of the paper's IEpmJ-equivalent metric.
    pub fn accuracy_all_events(&self) -> f64 {
        if self.total_events == 0 {
            0.0
        } else {
            self.correct_events as f64 / self.total_events as f64
        }
    }

    /// Per-processed-event energy at quantile `q`, millijoules (log-binned
    /// histogram resolution).
    pub fn energy_percentile_mj(&self, q: f64) -> f64 {
        hist_percentile(&self.energy_hist, q, ENERGY_LOG10_RANGE)
    }

    /// Per-processed-event latency at quantile `q`, seconds (log-binned
    /// histogram resolution).
    pub fn latency_percentile_s(&self, q: f64) -> f64 {
        hist_percentile(&self.latency_hist, q, LATENCY_LOG10_RANGE)
    }

    /// Mean energy per processed event, millijoules.
    pub fn mean_energy_per_inference_mj(&self) -> f64 {
        if self.processed_events == 0 {
            0.0
        } else {
            self.consumed_nj as f64 / 1e6 / self.processed_events as f64
        }
    }

    /// The recovery totals as the shared [`RecoveryStats`] shape.
    pub fn recovery(&self) -> RecoveryStats {
        RecoveryStats {
            recovered_boots: self.recovered_boots,
            torn_writes: self.torn_writes,
            wasted_reexecution_mj: self.wasted_nj as f64 / 1e6,
        }
    }

    /// Serializes the aggregate metrics as deterministic JSON: fixed field
    /// order, integer counters, and derived ratios computed from the merged
    /// integers — byte-identical for any worker count and device ordering.
    /// Deliberately excludes the worker count and any wall-clock time so the
    /// CI determinism job can diff outputs across thread counts.
    pub fn to_json(&self) -> String {
        let exits: Vec<String> = self.exit_counts.iter().map(|c| c.to_string()).collect();
        format!(
            concat!(
                "{{\n",
                "  \"devices\": {},\n",
                "  \"total_events\": {},\n",
                "  \"processed_events\": {},\n",
                "  \"missed_events\": {},\n",
                "  \"correct_events\": {},\n",
                "  \"incremental_events\": {},\n",
                "  \"completion_rate\": {:.9},\n",
                "  \"accuracy_all_events\": {:.9},\n",
                "  \"exit_counts\": [{}],\n",
                "  \"recovered_boots\": {},\n",
                "  \"torn_writes\": {},\n",
                "  \"wasted_reexecution_mj\": {:.6},\n",
                "  \"consumed_mj\": {:.6},\n",
                "  \"mean_energy_per_inference_mj\": {:.9},\n",
                "  \"energy_p50_mj\": {:.9},\n",
                "  \"energy_p90_mj\": {:.9},\n",
                "  \"energy_p99_mj\": {:.9},\n",
                "  \"latency_p50_s\": {:.9},\n",
                "  \"latency_p90_s\": {:.9},\n",
                "  \"latency_p99_s\": {:.9},\n",
                "  \"digest_xor\": \"{:016x}\",\n",
                "  \"digest_sum\": \"{:016x}\"\n",
                "}}\n"
            ),
            self.devices,
            self.total_events,
            self.processed_events,
            self.missed_events,
            self.correct_events,
            self.incremental_events,
            self.completion_rate(),
            self.accuracy_all_events(),
            exits.join(", "),
            self.recovered_boots,
            self.torn_writes,
            self.wasted_nj as f64 / 1e6,
            self.consumed_nj as f64 / 1e6,
            self.mean_energy_per_inference_mj(),
            self.energy_percentile_mj(0.50),
            self.energy_percentile_mj(0.90),
            self.energy_percentile_mj(0.99),
            self.latency_percentile_s(0.50),
            self.latency_percentile_s(0.90),
            self.latency_percentile_s(0.99),
            self.digest_xor,
            self.digest_sum,
        )
    }
}

/// Everything a fleet run produced: the merged aggregate plus, when a probe
/// device was configured, that device's in-fleet outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// The merged, order-invariant aggregate.
    pub metrics: FleetAccumulator,
    /// The probe device's in-fleet outcome (see [`FleetConfig::probe_device`]).
    pub probe: Option<DeviceOutcome>,
}

/// Advances a fleet of heterogeneous virtual devices against one deployed
/// model, in parallel, with byte-identical aggregates at any worker count.
///
/// # Example
///
/// ```
/// use ie_core::fleet::{FleetConfig, FleetSimulator};
/// use ie_core::{DeployedModel, ExperimentConfig};
///
/// let model = DeployedModel::uncompressed_reference(&ExperimentConfig::paper_default())?;
/// let mut config = FleetConfig::new(64, 2026);
/// config.threads = 2;
/// let report = FleetSimulator::new(&config).run(&model)?;
/// assert_eq!(report.metrics.devices, 64);
/// # Ok::<(), ie_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FleetSimulator {
    config: FleetConfig,
}

impl FleetSimulator {
    /// Creates a simulator for the given fleet configuration.
    pub fn new(config: &FleetConfig) -> Self {
        FleetSimulator { config: config.clone() }
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Runs the whole fleet, sharding contiguous device-id ranges across
    /// `config.threads` scoped workers. Each worker streams its devices into
    /// a private [`FleetAccumulator`]; shards are merged after the scope
    /// joins. Because per-device streams are forked from the master seed and
    /// the merge is order-invariant, the report is bit-identical for every
    /// worker count.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an invalid configuration and
    /// propagates any per-device simulation error.
    pub fn run(&self, model: &DeployedModel) -> Result<FleetReport> {
        self.config.validate()?;
        let devices = self.config.num_devices;
        let workers = (self.config.threads as u64).clamp(1, devices);
        let shard = devices.div_ceil(workers);

        let results: Vec<Result<(FleetAccumulator, Option<DeviceOutcome>)>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        let start = w * shard;
                        let end = ((w + 1) * shard).min(devices);
                        scope.spawn(move || {
                            let mut acc = FleetAccumulator::default();
                            let mut probe = None;
                            for device_id in start..end {
                                let outcome =
                                    self.simulate_device_into(model, device_id, &mut acc)?;
                                if self.config.probe_device == Some(device_id) {
                                    probe = Some(outcome);
                                }
                            }
                            Ok((acc, probe))
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("fleet worker panicked")).collect()
            });

        let mut metrics = FleetAccumulator::default();
        let mut probe = None;
        for result in results {
            let (shard_acc, shard_probe) = result?;
            metrics.merge(&shard_acc);
            probe = probe.or(shard_probe);
        }
        Ok(FleetReport { metrics, probe })
    }

    /// Replays one device in complete isolation — same code path as the
    /// in-fleet run, against a throwaway accumulator — and returns its
    /// outcome. The extraction contract: this digest equals the in-fleet
    /// digest of the same device, bit for bit.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an id outside the fleet and
    /// propagates simulation errors.
    pub fn replay_device(&self, model: &DeployedModel, device_id: u64) -> Result<DeviceOutcome> {
        if device_id >= self.config.num_devices {
            return Err(CoreError::InvalidConfig(format!(
                "device {device_id} outside fleet of {}",
                self.config.num_devices
            )));
        }
        let mut scratch = FleetAccumulator::default();
        self.simulate_device_into(model, device_id, &mut scratch)
    }

    /// Builds the device's power trace from its spec (trace stream fork).
    fn build_trace(&self, spec: &DeviceSpec) -> Box<dyn PowerTrace> {
        let seed = fork_seed(self.config.master_seed, &[spec.device_id, PURPOSE_TRACE]);
        let duration = self.config.device_duration_s;
        match spec.trace_kind {
            TraceKind::Solar => {
                // A full-day diurnal profile, windowed onto the daytime slice
                // the spec chose — a short fleet window would otherwise always
                // start at midnight and harvest nothing.
                let day = SolarTrace::builder()
                    .seed(seed)
                    .peak_power_mw(0.02 * spec.harvest_scale)
                    .build();
                Box::new(WindowedTrace {
                    inner: day,
                    offset_s: spec.solar_offset_fraction * 24.0 * 3600.0,
                    window_s: duration,
                })
            }
            TraceKind::Kinetic => {
                Box::new(KineticBurstTrace::new(duration, 0.02, 0.4 * spec.harvest_scale, seed))
            }
            TraceKind::Stochastic => Box::new(StochasticArrivalTrace::new(
                duration,
                120.0,
                0.5 * spec.harvest_scale,
                3.0,
                seed,
            )),
        }
    }

    /// Simulates one device and streams its events into `acc`. This single
    /// function is used both by the fleet workers and by
    /// [`Self::replay_device`], so in-fleet and isolated behaviour cannot
    /// diverge structurally.
    ///
    /// # Errors
    ///
    /// Propagates energy-accounting errors (which indicate a bug — every
    /// draw is affordability-checked first).
    pub fn simulate_device_into(
        &self,
        model: &DeployedModel,
        device_id: u64,
        acc: &mut FleetAccumulator,
    ) -> Result<DeviceOutcome> {
        let master = self.config.master_seed;
        let spec = DeviceSpec::derive(&self.config, device_id);
        let trace = self.build_trace(&spec);
        let storage = EnergyStorage::new(spec.capacity_mj, spec.charge_efficiency)
            .with_initial_level(spec.initial_fraction * spec.capacity_mj);
        let mut sim = HarvestSimulator::new(trace, storage);
        let events = EventGenerator::new(
            spec.event_distribution,
            fork_seed(master, &[device_id, PURPOSE_EVENTS]),
        )
        .generate(self.config.events_per_device, self.config.device_duration_s);
        let mut rng = fork_rng(master, &[device_id, PURPOSE_SIM]);
        let mut injector = spec
            .fault
            .map(|(p, max_cuts)| {
                FaultPlan::random(fork_seed(master, &[device_id, PURPOSE_FAULT]), p, max_cuts)
                    .injector()
            })
            .unwrap_or_else(FaultInjector::none);
        let num_exits = model.num_exits();
        let mut policy: Box<dyn ExitPolicy> = match spec.policy {
            PolicyKind::Greedy => Box::new(GreedyAffordablePolicy::new()),
            PolicyKind::Fixed(exit) => Box::new(FixedExitPolicy::new(exit.min(num_exits - 1))),
            PolicyKind::Reserve(fraction) => Box::new(ReserveMarginPolicy::new(fraction)),
        };

        let mut ctx = EventContext {
            event_id: 0,
            time_s: 0.0,
            available_energy_mj: 0.0,
            capacity_mj: sim.storage().capacity_mj(),
            charging_efficiency: 0.0,
            exit_energy_mj: model.exit_energies_mj(),
            exit_accuracy: model.exit_accuracies(),
        };

        let mut outcome = DeviceOutcome {
            device_id,
            digest: fork_seed(master, &[device_id]),
            events: 0,
            processed: 0,
            correct: 0,
            consumed_nj: 0,
        };

        for event in &events {
            sim.advance_to(event.time_s);
            ctx.event_id = event.id;
            ctx.time_s = event.time_s;
            ctx.available_energy_mj = sim.storage().level_mj();
            ctx.charging_efficiency = sim.charging_efficiency();

            let attempted = match policy.choose_exit(&ctx) {
                ExitChoice::Skip => None,
                // Built-in policies only choose exits they saw costs for, but
                // clamp anyway so a future policy kind cannot panic the fleet.
                ExitChoice::Exit(exit) => Some(exit.min(num_exits - 1)),
            };

            let event_result = match attempted {
                Some(exit) if sim.storage().can_supply(model.exit_energy_mj(exit)) => self
                    .process_event(
                        model,
                        policy.as_mut(),
                        &mut sim,
                        &mut rng,
                        &mut injector,
                        event.id,
                        exit,
                        acc,
                    )?,
                _ => EventResult { processed: false, correct: false, energy_mj: 0.0 },
            };

            // Per-event bookkeeping shared by both branches.
            acc.total_events += 1;
            outcome.events += 1;
            if event_result.processed {
                outcome.processed += 1;
            } else {
                acc.missed_events += 1;
            }
            if event_result.correct {
                outcome.correct += 1;
            }
            outcome.consumed_nj += mj_to_nj(event_result.energy_mj);
            outcome.digest = fork_seed(
                outcome.digest,
                &[
                    u64::from(event_result.processed) | (u64::from(event_result.correct) << 1),
                    event_result.energy_mj.to_bits(),
                ],
            );
        }

        acc.devices += 1;
        acc.processed_events += outcome.processed;
        acc.correct_events += outcome.correct;
        acc.consumed_nj += outcome.consumed_nj;
        acc.absorb_digest(outcome.digest);
        Ok(outcome)
    }

    /// Runs one affordably chosen inference: fault cut (analytic retry),
    /// the inference itself, optional incremental continuation, and the
    /// post-inference checkpoint commit's torn-write opportunity. Updates
    /// the histogram/exit/fault fields of `acc`; the caller handles the
    /// event-level counters.
    #[allow(clippy::too_many_arguments)]
    fn process_event(
        &self,
        model: &DeployedModel,
        policy: &mut dyn ExitPolicy,
        sim: &mut HarvestSimulator,
        rng: &mut StdRng,
        injector: &mut FaultInjector,
        event_id: usize,
        exit: usize,
        acc: &mut FleetAccumulator,
    ) -> Result<EventResult> {
        let cost = model.exit_energy_mj(exit);
        let inference_latency = model.exit_latency_s(exit);
        let mut energy = 0.0;
        let mut latency = 0.0;

        // Injected power cut at task start: the analytic model of the
        // `ie_mcu` executor's recovery — partial work is destroyed, the
        // device reboots and retries the whole inference if the remaining
        // charge affords it.
        match injector.on_task_start() {
            Some(TaskCut::Before) => {
                // Cut before any work: recovery costs a boot but no energy.
                acc.recovered_boots += 1;
            }
            Some(TaskCut::Mid { fraction }) => {
                let partial = fraction.clamp(0.0, 1.0) * cost;
                sim.consume(partial)?;
                sim.advance_by(fraction.clamp(0.0, 1.0) * inference_latency);
                acc.recovered_boots += 1;
                acc.wasted_nj += mj_to_nj(partial);
                energy += partial;
                latency += fraction.clamp(0.0, 1.0) * inference_latency;
                if !sim.storage().can_supply(cost) {
                    // The retry is unaffordable: the event is missed with the
                    // destroyed partial work on its ledger.
                    return Ok(EventResult { processed: false, correct: false, energy_mj: energy });
                }
            }
            None => {}
        }

        sim.consume(cost)?;
        sim.advance_by(inference_latency);
        energy += cost;
        latency += inference_latency;
        let mut final_exit = exit;
        let mut correct = rng.gen::<f64>() < model.exit_accuracy(exit);
        let confidence =
            if correct { 0.55 + 0.45 * rng.gen::<f64>() } else { 0.75 * rng.gen::<f64>() };

        // Incremental continuation, same analytic refinement as the
        // single-device simulator.
        if confidence < 0.55 && exit + 1 < model.num_exits() {
            let next_exit = exit + 1;
            let inc_energy = model.incremental_energy_mj(exit, next_exit)?;
            let cc = ContinueContext {
                event_id,
                current_exit: exit,
                next_exit,
                confidence,
                available_energy_mj: sim.storage().level_mj(),
                capacity_mj: sim.storage().capacity_mj(),
                incremental_energy_mj: inc_energy,
            };
            if policy.choose_continue(&cc) && sim.storage().can_supply(inc_energy) {
                sim.consume(inc_energy)?;
                let inc_latency = model.incremental_latency_s(exit, next_exit)?;
                sim.advance_by(inc_latency);
                energy += inc_energy;
                latency += inc_latency;
                final_exit = next_exit;
                acc.incremental_events += 1;
                if !correct {
                    let a_shallow = model.exit_accuracy(exit);
                    let a_deep = model.exit_accuracy(next_exit);
                    let fix_probability =
                        ((a_deep - a_shallow) / (1.0 - a_shallow).max(1e-9)).clamp(0.0, 1.0);
                    correct = rng.gen::<f64>() < fix_probability;
                }
            }
        }

        // Post-inference checkpoint commit: a cut here tears the NV write;
        // the previous checkpoint stays valid, so recovery costs a boot.
        if let Some(torn_at) = injector.on_commit(CHECKPOINT_RECORD_LEN) {
            if torn_at < CHECKPOINT_RECORD_LEN {
                acc.torn_writes += 1;
                acc.recovered_boots += 1;
            }
        }

        acc.exit_counts[final_exit.min(EXIT_SLOTS - 1)] += 1;
        acc.energy_hist[log_bin(energy, ENERGY_LOG10_RANGE)] += 1;
        acc.latency_hist[log_bin(latency, LATENCY_LOG10_RANGE)] += 1;
        Ok(EventResult { processed: true, correct, energy_mj: energy })
    }
}

/// What one event came to, from the per-event processing helper.
struct EventResult {
    processed: bool,
    correct: bool,
    energy_mj: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExperimentConfig;

    fn model() -> DeployedModel {
        DeployedModel::uncompressed_reference(&ExperimentConfig::paper_default()).unwrap()
    }

    fn small_config() -> FleetConfig {
        let mut c = FleetConfig::new(96, 2026);
        c.threads = 3;
        c
    }

    #[test]
    fn fleet_accounts_for_every_event_on_every_device() {
        let c = small_config();
        let report = FleetSimulator::new(&c).run(&model()).unwrap();
        let m = &report.metrics;
        assert_eq!(m.devices, c.num_devices);
        assert_eq!(m.total_events, c.num_devices * c.events_per_device as u64);
        assert_eq!(m.processed_events + m.missed_events, m.total_events);
        assert_eq!(m.exit_counts.iter().sum::<u64>(), m.processed_events);
        assert_eq!(m.energy_hist.iter().sum::<u64>(), m.processed_events);
        assert_eq!(m.latency_hist.iter().sum::<u64>(), m.processed_events);
        assert!(m.correct_events <= m.processed_events);
        assert!(m.processed_events > 0, "some devices must afford some events");
        assert!(m.missed_events > 0, "energy must be scarce for someone");
    }

    #[test]
    fn aggregates_are_identical_across_worker_counts() {
        let mut c = small_config();
        c.threads = 1;
        let single = FleetSimulator::new(&c).run(&model()).unwrap();
        for threads in [2usize, 5, 8] {
            c.threads = threads;
            let multi = FleetSimulator::new(&c).run(&model()).unwrap();
            assert_eq!(single.metrics, multi.metrics, "threads={threads}");
            assert_eq!(single.metrics.to_json(), multi.metrics.to_json());
        }
    }

    #[test]
    fn probe_outcome_matches_isolated_replay_bit_for_bit() {
        let mut c = small_config();
        c.probe_device = Some(41);
        let fleet = FleetSimulator::new(&c);
        let report = fleet.run(&model()).unwrap();
        let in_fleet = report.probe.expect("probe device must be captured");
        let replayed = fleet.replay_device(&model(), 41).unwrap();
        assert_eq!(in_fleet, replayed);
        assert_eq!(in_fleet.digest, replayed.digest);
    }

    #[test]
    fn replay_is_independent_of_fleet_size() {
        // Device 7's behaviour depends only on (master seed, id): replaying
        // it from fleets of different sizes gives the same outcome.
        let small = FleetSimulator::new(&FleetConfig::new(8, 99));
        let large = FleetSimulator::new(&FleetConfig::new(4096, 99));
        let a = small.replay_device(&model(), 7).unwrap();
        let b = large.replay_device(&model(), 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn specs_are_heterogeneous_and_deterministic() {
        let c = small_config();
        let specs: Vec<DeviceSpec> =
            (0..c.num_devices).map(|id| DeviceSpec::derive(&c, id)).collect();
        for (id, spec) in specs.iter().enumerate() {
            assert_eq!(spec, &DeviceSpec::derive(&c, id as u64));
            assert!(spec.capacity_mj >= 2.0 && spec.capacity_mj <= 30.0);
            assert!(spec.charge_efficiency > 0.0 && spec.charge_efficiency <= 1.0);
        }
        let kinds: std::collections::HashSet<_> =
            specs.iter().map(|s| format!("{:?}", s.trace_kind)).collect();
        assert_eq!(kinds.len(), 3, "96 devices must cover all trace kinds");
        assert!(specs.iter().any(|s| s.fault.is_some()), "some devices carry fault plans");
        assert!(specs.iter().any(|s| s.fault.is_none()), "most devices are fault-free");
    }

    #[test]
    fn fault_exposed_fleets_record_recovery_activity() {
        let mut c = FleetConfig::new(128, 7);
        c.threads = 2;
        c.fault_fraction = 1.0;
        let faulted = FleetSimulator::new(&c).run(&model()).unwrap();
        assert!(faulted.metrics.recovered_boots > 0, "p≥0.05 cuts over 3072 events must strike");
        c.fault_fraction = 0.0;
        let clean = FleetSimulator::new(&c).run(&model()).unwrap();
        assert_eq!(clean.metrics.recovered_boots, 0);
        assert_eq!(clean.metrics.torn_writes, 0);
        assert_eq!(clean.metrics.wasted_nj, 0);
        assert_eq!(clean.metrics.recovery(), RecoveryStats::default());
    }

    #[test]
    fn fault_streams_never_perturb_fault_free_devices() {
        // Toggling the fleet-wide fault fraction must not change the
        // behaviour of a device that is fault-free either way: its streams
        // are forked per purpose, so the fault schedule is independent.
        let mut with_faults = FleetConfig::new(64, 11);
        with_faults.fault_fraction = 0.5;
        let mut without = with_faults.clone();
        without.fault_fraction = 0.0;
        let sim_with = FleetSimulator::new(&with_faults);
        let sim_without = FleetSimulator::new(&without);
        for id in 0..64 {
            if DeviceSpec::derive(&with_faults, id).fault.is_none() {
                let a = sim_with.replay_device(&model(), id).unwrap();
                let b = sim_without.replay_device(&model(), id).unwrap();
                assert_eq!(a, b, "fault-free device {id} must be unaffected");
            }
        }
    }

    #[test]
    fn different_master_seeds_give_different_fleets() {
        let a = FleetSimulator::new(&FleetConfig::new(32, 1)).run(&model()).unwrap();
        let b = FleetSimulator::new(&FleetConfig::new(32, 2)).run(&model()).unwrap();
        assert_ne!(a.metrics.digest_xor, b.metrics.digest_xor);
    }

    #[test]
    fn merge_is_commutative_and_empty_is_identity() {
        let fleet = FleetSimulator::new(&small_config());
        let m = model();
        let (mut a, mut b) = (FleetAccumulator::default(), FleetAccumulator::default());
        for id in 0..8 {
            fleet.simulate_device_into(&m, id, &mut a).unwrap();
        }
        for id in 8..16 {
            fleet.simulate_device_into(&m, id, &mut b).unwrap();
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        let mut with_empty = ab.clone();
        with_empty.merge(&FleetAccumulator::default());
        assert_eq!(with_empty, ab);
    }

    #[test]
    fn percentiles_are_monotone_and_in_range() {
        let report = FleetSimulator::new(&small_config()).run(&model()).unwrap();
        let m = &report.metrics;
        let (p50, p90, p99) = (
            m.energy_percentile_mj(0.50),
            m.energy_percentile_mj(0.90),
            m.energy_percentile_mj(0.99),
        );
        assert!(p50 > 0.0 && p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        assert!(
            m.latency_percentile_s(0.50) <= m.latency_percentile_s(0.99),
            "latency percentiles must be monotone"
        );
        assert_eq!(FleetAccumulator::default().energy_percentile_mj(0.5), 0.0);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let m = model();
        let mut c = FleetConfig::new(0, 1);
        assert!(FleetSimulator::new(&c).run(&m).is_err());
        c = FleetConfig::new(4, 1);
        c.threads = 0;
        assert!(FleetSimulator::new(&c).run(&m).is_err());
        c = FleetConfig::new(4, 1);
        c.events_per_device = 0;
        assert!(FleetSimulator::new(&c).run(&m).is_err());
        c = FleetConfig::new(4, 1);
        c.fault_fraction = 1.5;
        assert!(FleetSimulator::new(&c).run(&m).is_err());
        c = FleetConfig::new(4, 1);
        c.probe_device = Some(4);
        assert!(FleetSimulator::new(&c).run(&m).is_err());
        assert!(FleetSimulator::new(&FleetConfig::new(4, 1)).replay_device(&m, 99).is_err());
    }

    #[test]
    fn json_is_stable_and_self_consistent() {
        let report = FleetSimulator::new(&small_config()).run(&model()).unwrap();
        let json = report.metrics.to_json();
        assert_eq!(json, report.metrics.to_json());
        assert!(json.contains("\"devices\": 96"));
        assert!(json.contains("\"digest_xor\""));
        assert!(!json.contains("threads"), "worker count must not leak into the aggregate");
    }
}
