//! Criterion benches that time the regeneration of each paper experiment.
//!
//! One benchmark per table/figure, so `cargo bench` both exercises every
//! experiment pipeline and reports how long regenerating it takes. Reduced
//! event counts and search budgets are used to keep the wall-clock reasonable;
//! the `figures` binary runs the full-scale versions.

use criterion::{criterion_group, criterion_main, Criterion};
use ie_baselines::{BaselineNetwork, BaselineRunner};
use ie_bench::experiments::{compression_study, reference_nonuniform_policy};
use ie_core::policies::GreedyAffordablePolicy;
use ie_core::{DeployedModel, EventLoopSimulator, ExperimentConfig};
use ie_runtime::{AdaptationConfig, RuntimeAdaptation};
use ie_search::{best_uniform_policy, CompressionEnv, RewardMode};
use std::hint::black_box;

fn bench_config() -> ExperimentConfig {
    ExperimentConfig { num_events: 120, ..ExperimentConfig::paper_default() }
}

/// Fig. 1(b): evaluating full-precision / uniform / nonuniform accuracy.
fn bench_fig1b_compression(c: &mut Criterion) {
    let config = bench_config();
    c.bench_function("fig1b_compression_accuracy", |b| {
        b.iter(|| {
            let env = CompressionEnv::new(&config, RewardMode::ExitGuided).unwrap();
            let uniform = best_uniform_policy(&env, 4).unwrap();
            let nonuniform = env.evaluate(&reference_nonuniform_policy(env.layers())).unwrap();
            black_box((uniform.1.accuracy_reward, nonuniform.accuracy_reward))
        })
    });
}

/// Fig. 4: one evaluation of a candidate layer-wise policy under the trace.
fn bench_fig4_policy_evaluation(c: &mut Criterion) {
    let config = bench_config();
    let env = CompressionEnv::new(&config, RewardMode::ExitGuided).unwrap();
    let policy = reference_nonuniform_policy(env.layers());
    c.bench_function("fig4_policy_evaluation", |b| {
        b.iter(|| black_box(env.evaluate(&policy).unwrap().accuracy_reward))
    });
}

/// Fig. 5 / Section V-C: the four-system IEpmJ comparison.
fn bench_fig5_ieepmj(c: &mut Criterion) {
    let config = bench_config();
    let study = compression_study(&config, 0).unwrap();
    let deployed = DeployedModel::new(study.nonuniform.1.profile.clone(), config.cost_model());
    c.bench_function("fig5_ours_runtime", |b| {
        b.iter(|| {
            let adaptation =
                RuntimeAdaptation::new(AdaptationConfig { episodes: 2, ..Default::default() })
                    .run(&config, &deployed)
                    .unwrap();
            black_box(adaptation.final_report.ie_pmj())
        })
    });
    c.bench_function("fig5_sonicnet_baseline", |b| {
        b.iter(|| {
            let report = BaselineRunner::new(&config).run(&BaselineNetwork::sonic_net()).unwrap();
            black_box(report.ie_pmj())
        })
    });
}

/// Fig. 6 / Section V-D: FLOPs and latency accounting of a deployed model.
fn bench_fig6_event_loop(c: &mut Criterion) {
    let config = bench_config();
    let study = compression_study(&config, 0).unwrap();
    let deployed = DeployedModel::new(study.nonuniform.1.profile.clone(), config.cost_model());
    c.bench_function("fig6_event_loop_simulation", |b| {
        b.iter(|| {
            let report = EventLoopSimulator::new(&config)
                .run(&deployed, &mut GreedyAffordablePolicy::new())
                .unwrap();
            black_box((report.mean_flops_per_inference(), report.mean_latency_s()))
        })
    });
}

/// Fig. 7: one Q-learning adaptation episode vs the static LUT.
fn bench_fig7_runtime_adaptation(c: &mut Criterion) {
    let config = bench_config();
    let study = compression_study(&config, 0).unwrap();
    let deployed = DeployedModel::new(study.nonuniform.1.profile.clone(), config.cost_model());
    c.bench_function("fig7_runtime_adaptation", |b| {
        b.iter(|| {
            let outcome =
                RuntimeAdaptation::new(AdaptationConfig { episodes: 3, ..Default::default() })
                    .run(&config, &deployed)
                    .unwrap();
            black_box(outcome.improvement_over_static())
        })
    });
}

criterion_group!(
    name = paper_figures;
    config = Criterion::default().sample_size(10);
    targets = bench_fig1b_compression,
        bench_fig4_policy_evaluation,
        bench_fig5_ieepmj,
        bench_fig6_event_loop,
        bench_fig7_runtime_adaptation
);
criterion_main!(paper_figures);
