//! Generation of "interesting event" arrivals.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One event that must be classified by the sensor node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Sequential event identifier.
    pub id: usize,
    /// Arrival time in seconds from the start of the power trace.
    pub time_s: f64,
}

/// How event arrival times are distributed over the trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventDistribution {
    /// Arrival times drawn independently and uniformly over the duration
    /// (the paper's "randomly distributed" events).
    Uniform,
    /// Poisson process: exponential inter-arrival times with the rate implied
    /// by the requested event count, truncated to the duration.
    Poisson,
    /// Events clustered around the given fractions of the trace duration,
    /// with the given relative spread — models bursty activity (e.g. wildlife
    /// most active at dawn and dusk).
    Clustered {
        /// Cluster centre as a fraction of the duration, in `[0, 1]`.
        center_fraction: f64,
        /// Standard deviation as a fraction of the duration.
        spread_fraction: f64,
    },
}

/// Generates reproducible event arrival sequences.
#[derive(Debug, Clone)]
pub struct EventGenerator {
    distribution: EventDistribution,
    seed: u64,
}

impl EventGenerator {
    /// Creates a generator with the given distribution and seed.
    pub fn new(distribution: EventDistribution, seed: u64) -> Self {
        EventGenerator { distribution, seed }
    }

    /// The configured distribution.
    pub fn distribution(&self) -> EventDistribution {
        self.distribution
    }

    /// Generates `count` events over `[0, duration_s)`, sorted by time.
    pub fn generate(&self, count: usize, duration_s: f64) -> Vec<Event> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut times: Vec<f64> = match self.distribution {
            EventDistribution::Uniform => {
                (0..count).map(|_| rng.gen::<f64>() * duration_s).collect()
            }
            EventDistribution::Poisson => {
                let rate = count as f64 / duration_s.max(f64::EPSILON);
                let mut t = 0.0;
                let mut v = Vec::with_capacity(count);
                while v.len() < count {
                    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                    t += -u.ln() / rate;
                    if t >= duration_s {
                        // Wrap around so exactly `count` events are produced.
                        t = rng.gen::<f64>() * duration_s;
                    }
                    v.push(t);
                }
                v
            }
            EventDistribution::Clustered { center_fraction, spread_fraction } => {
                let center = center_fraction.clamp(0.0, 1.0) * duration_s;
                let spread = spread_fraction.max(1e-6) * duration_s;
                (0..count)
                    .map(|_| {
                        // Box–Muller normal sample.
                        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                        let u2: f64 = rng.gen();
                        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                        (center + z * spread).clamp(0.0, duration_s - f64::EPSILON)
                    })
                    .collect()
            }
        };
        times.sort_by(|a, b| a.partial_cmp(b).expect("event times are finite"));
        times.into_iter().enumerate().map(|(id, time_s)| Event { id, time_s }).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_events_are_sorted_in_range_and_reproducible() {
        let g = EventGenerator::new(EventDistribution::Uniform, 42);
        let events = g.generate(500, 86_400.0);
        assert_eq!(events.len(), 500);
        assert!(events.windows(2).all(|w| w[0].time_s <= w[1].time_s));
        assert!(events.iter().all(|e| (0.0..86_400.0).contains(&e.time_s)));
        assert_eq!(events, g.generate(500, 86_400.0));
        let other = EventGenerator::new(EventDistribution::Uniform, 43).generate(500, 86_400.0);
        assert_ne!(events, other);
    }

    #[test]
    fn ids_are_sequential_after_sorting() {
        let g = EventGenerator::new(EventDistribution::Uniform, 1);
        let events = g.generate(10, 100.0);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.id, i);
        }
    }

    #[test]
    fn poisson_generates_requested_count() {
        let g = EventGenerator::new(EventDistribution::Poisson, 7);
        let events = g.generate(200, 10_000.0);
        assert_eq!(events.len(), 200);
        assert!(events.iter().all(|e| e.time_s < 10_000.0));
    }

    #[test]
    fn clustered_events_concentrate_around_the_center() {
        let g = EventGenerator::new(
            EventDistribution::Clustered { center_fraction: 0.5, spread_fraction: 0.05 },
            3,
        );
        let events = g.generate(400, 1_000.0);
        let near_center = events.iter().filter(|e| (e.time_s - 500.0).abs() < 150.0).count() as f64;
        assert!(near_center / 400.0 > 0.9, "only {near_center} events near the cluster centre");
    }

    #[test]
    fn zero_events_is_fine() {
        let g = EventGenerator::new(EventDistribution::Uniform, 0);
        assert!(g.generate(0, 100.0).is_empty());
    }
}
