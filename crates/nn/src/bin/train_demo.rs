//! Batched-training determinism demo: train a multi-exit network from a
//! fixed seed through [`ie_nn::train::train_batched`] and print the loss
//! trajectory as JSON.
//!
//! The trajectory is byte-identical for every worker count — the batched
//! trainer's per-sample gradient reduction is deterministic — so the CI
//! `train-determinism` job runs this demo with `IE_TRAIN_THREADS=1` and
//! `IE_TRAIN_THREADS=4` under `IE_ISA=portable` and diffs the outputs.
//!
//! Knobs (all environment variables):
//!
//! * `IE_TRAIN_THREADS` — worker threads for the batched trainer
//!   (default: available parallelism),
//! * `IE_TRAIN_SEED`    — seed for the synthetic dataset and the weight
//!   init (default 2026),
//! * `IE_TRAIN_EPOCHS`  — epochs to run (default 4).
//!
//! Flags:
//!
//! * `--out <path>` — also write the trajectory JSON to `path` (this is
//!   what CI diffs across worker counts).

use ie_nn::dataset::SyntheticDataset;
use ie_nn::spec::tiny_multi_exit;
use ie_nn::train::{train_batched, train_threads, BatchBackwardPlan, TrainConfig};
use ie_nn::MultiExitNetwork;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn env_usize(var: &str, default: usize) -> usize {
    match std::env::var(var) {
        Ok(raw) => raw.trim().parse().unwrap_or_else(|_| {
            eprintln!("warning: ignoring {var}={raw:?} (not a non-negative integer)");
            default
        }),
        Err(_) => default,
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut out_path: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("error: --out needs a path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("error: unknown argument {other:?} (expected --out)");
                std::process::exit(2);
            }
        }
    }

    let seed = env_usize("IE_TRAIN_SEED", 2026) as u64;
    let threads = train_threads();
    let arch = tiny_multi_exit(3);
    let data = SyntheticDataset::generate(3, 8, 200, 0.05, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7ea1);
    let mut net =
        MultiExitNetwork::from_architecture(&arch, &mut rng).expect("architecture builds");

    let mut config = TrainConfig::for_exits(arch.num_exits());
    config.epochs = env_usize("IE_TRAIN_EPOCHS", 4);
    config.batch_size = 16;
    let mut plan = BatchBackwardPlan::new();

    println!("train: seed {seed}, {} worker thread(s), {} epochs", threads, config.epochs);
    let history =
        match train_batched(&mut net, data.train(), data.test(), &config, threads, &mut plan) {
            Ok(history) => history,
            Err(err) => {
                eprintln!("error: training failed: {err}");
                std::process::exit(1);
            }
        };

    // Losses are serialized both as decimal and as raw bits: the trajectory
    // must match byte for byte across worker counts, not just approximately.
    let epochs: Vec<String> = history
        .iter()
        .map(|e| {
            let accs: Vec<String> = e.exit_accuracy.iter().map(|a| format!("{:.4}", a)).collect();
            format!(
                "    {{\"epoch\": {}, \"mean_loss\": {}, \"loss_bits\": \"{:#010x}\", \
                 \"exit_accuracy\": [{}]}}",
                e.epoch,
                e.mean_loss,
                e.mean_loss.to_bits(),
                accs.join(", ")
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"seed\": {seed},\n  \"epochs\": {},\n  \"trajectory\": [\n{}\n  ]\n}}\n",
        config.epochs,
        epochs.join(",\n")
    );
    print!("{json}");
    if let Some(path) = out_path {
        if let Err(err) = std::fs::write(&path, &json) {
            eprintln!("error: cannot write {path}: {err}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }
}
