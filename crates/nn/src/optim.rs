use crate::MultiExitNetwork;

/// A minimal stochastic-gradient-descent optimiser for [`MultiExitNetwork`]s.
///
/// Layers accumulate their own gradients during `backward`; the optimiser
/// simply owns the learning-rate schedule (constant rate with optional decay
/// per epoch) and applies/clears the accumulated gradients.
///
/// # Example
///
/// ```
/// use ie_nn::Sgd;
///
/// let mut sgd = Sgd::new(0.1).with_decay(0.5);
/// assert_eq!(sgd.learning_rate(), 0.1);
/// sgd.end_epoch();
/// assert_eq!(sgd.learning_rate(), 0.05);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Sgd {
    learning_rate: f32,
    decay: f32,
}

impl Sgd {
    /// Creates an optimiser with a constant learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `learning_rate` is not strictly positive.
    pub fn new(learning_rate: f32) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        Sgd { learning_rate, decay: 1.0 }
    }

    /// Sets a multiplicative per-epoch decay factor (1.0 = no decay).
    pub fn with_decay(mut self, decay: f32) -> Self {
        self.decay = decay;
        self
    }

    /// The current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.learning_rate
    }

    /// Applies accumulated gradients of the network and clears them.
    pub fn step(&self, network: &mut MultiExitNetwork) {
        network.apply_gradients(self.learning_rate);
    }

    /// Applies the per-epoch learning-rate decay.
    pub fn end_epoch(&mut self) {
        self.learning_rate *= self.decay;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::tiny_multi_exit;
    use ie_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn rejects_non_positive_learning_rate() {
        let _ = Sgd::new(0.0);
    }

    #[test]
    fn step_applies_and_clears_gradients() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = MultiExitNetwork::from_architecture(&tiny_multi_exit(2), &mut rng).unwrap();
        let x = Tensor::ones(&[1, 8, 8]);
        let before = net.forward_to_exit(&x, 0).unwrap().0.logits;
        net.backward(&x, 0, &[1.0, 1.0]).unwrap();
        Sgd::new(0.5).step(&mut net);
        let after = net.forward_to_exit(&x, 0).unwrap().0.logits;
        assert_ne!(before.as_slice(), after.as_slice());
    }

    #[test]
    fn decay_shrinks_learning_rate_each_epoch() {
        let mut sgd = Sgd::new(1.0).with_decay(0.1);
        sgd.end_epoch();
        sgd.end_epoch();
        assert!((sgd.learning_rate() - 0.01).abs() < 1e-7);
    }
}
