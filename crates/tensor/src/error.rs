use std::fmt;

/// Errors produced by tensor construction and tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The provided data length does not match the number of elements implied
    /// by the shape.
    DataShapeMismatch {
        /// Number of elements in the provided buffer.
        data_len: usize,
        /// Number of elements implied by the shape.
        shape_len: usize,
    },
    /// Two tensors that must share a shape do not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Vec<usize>,
        /// Shape of the right-hand operand.
        right: Vec<usize>,
    },
    /// The inner dimensions of a matrix product do not agree.
    MatmulDimMismatch {
        /// Columns of the left operand.
        left_cols: usize,
        /// Rows of the right operand.
        right_rows: usize,
    },
    /// The operation requires a tensor of a specific rank.
    RankMismatch {
        /// Rank the operation expected.
        expected: usize,
        /// Rank the tensor actually has.
        actual: usize,
    },
    /// An index was out of bounds for the tensor shape.
    IndexOutOfBounds {
        /// The offending flat index.
        index: usize,
        /// Number of elements in the tensor.
        len: usize,
    },
    /// A reshape would change the total number of elements.
    ReshapeSizeMismatch {
        /// Element count of the source shape.
        from: usize,
        /// Element count of the requested shape.
        to: usize,
    },
    /// The convolution geometry is invalid (e.g. kernel larger than padded input).
    InvalidConvGeometry(String),
    /// A tensor with zero elements was supplied where a non-empty one is required.
    EmptyTensor,
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::DataShapeMismatch { data_len, shape_len } => write!(
                f,
                "data length {data_len} does not match shape element count {shape_len}"
            ),
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch between {left:?} and {right:?}")
            }
            TensorError::MatmulDimMismatch { left_cols, right_rows } => write!(
                f,
                "matmul inner dimensions disagree: left has {left_cols} columns, right has {right_rows} rows"
            ),
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "expected tensor of rank {expected}, found rank {actual}")
            }
            TensorError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for tensor of {len} elements")
            }
            TensorError::ReshapeSizeMismatch { from, to } => {
                write!(f, "cannot reshape tensor of {from} elements into {to} elements")
            }
            TensorError::InvalidConvGeometry(msg) => {
                write!(f, "invalid convolution geometry: {msg}")
            }
            TensorError::EmptyTensor => write!(f, "operation requires a non-empty tensor"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let variants = [
            TensorError::DataShapeMismatch { data_len: 1, shape_len: 2 },
            TensorError::ShapeMismatch { left: vec![1], right: vec![2] },
            TensorError::MatmulDimMismatch { left_cols: 3, right_rows: 4 },
            TensorError::RankMismatch { expected: 4, actual: 2 },
            TensorError::IndexOutOfBounds { index: 9, len: 3 },
            TensorError::ReshapeSizeMismatch { from: 6, to: 8 },
            TensorError::InvalidConvGeometry("kernel too large".to_string()),
            TensorError::EmptyTensor,
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
