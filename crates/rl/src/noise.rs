use rand::Rng;

/// Ornstein–Uhlenbeck exploration noise, as used by DDPG.
///
/// The process `dx = θ(μ − x)dt + σ dW` produces temporally correlated noise
/// that explores smoothly in continuous action spaces.
///
/// # Example
///
/// ```
/// use ie_rl::OrnsteinUhlenbeck;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut noise = OrnsteinUhlenbeck::new(2, 0.15, 0.2);
/// let sample = noise.sample(&mut rng);
/// assert_eq!(sample.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OrnsteinUhlenbeck {
    state: Vec<f32>,
    mu: f32,
    theta: f32,
    sigma: f32,
}

impl OrnsteinUhlenbeck {
    /// Creates a zero-mean process of the given dimension.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero or `sigma` is negative.
    pub fn new(dim: usize, theta: f32, sigma: f32) -> Self {
        assert!(dim > 0, "noise dimension must be non-zero");
        assert!(sigma >= 0.0, "sigma must be non-negative");
        OrnsteinUhlenbeck { state: vec![0.0; dim], mu: 0.0, theta, sigma }
    }

    /// Scales the noise magnitude (used to anneal exploration over episodes).
    pub fn with_sigma(mut self, sigma: f32) -> Self {
        self.sigma = sigma.max(0.0);
        self
    }

    /// The current noise magnitude.
    pub fn sigma(&self) -> f32 {
        self.sigma
    }

    /// Sets the noise magnitude in place.
    pub fn set_sigma(&mut self, sigma: f32) {
        self.sigma = sigma.max(0.0);
    }

    /// Draws the next correlated noise sample.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Vec<f32> {
        for x in &mut self.state {
            let gauss = {
                // Box–Muller transform.
                let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                let u2: f32 = rng.gen();
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
            };
            *x += self.theta * (self.mu - *x) + self.sigma * gauss;
        }
        self.state.clone()
    }

    /// Resets the process to its mean.
    pub fn reset(&mut self) {
        for x in &mut self.state {
            *x = self.mu;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_are_correlated_and_mean_reverting() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut noise = OrnsteinUhlenbeck::new(1, 0.15, 0.1);
        let samples: Vec<f32> = (0..5000).map(|_| noise.sample(&mut rng)[0]).collect();
        let mean: f32 = samples.iter().sum::<f32>() / samples.len() as f32;
        assert!(mean.abs() < 0.2, "long-run mean should hover near zero: {mean}");
        // Lag-1 autocorrelation should be clearly positive (correlated noise).
        let var: f32 =
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / samples.len() as f32;
        let cov: f32 = samples.windows(2).map(|w| (w[0] - mean) * (w[1] - mean)).sum::<f32>()
            / (samples.len() - 1) as f32;
        assert!(cov / var > 0.5, "lag-1 autocorrelation {}", cov / var);
    }

    #[test]
    fn zero_sigma_decays_to_the_mean() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut noise = OrnsteinUhlenbeck::new(1, 0.5, 0.5);
        noise.sample(&mut rng);
        noise.set_sigma(0.0);
        for _ in 0..200 {
            noise.sample(&mut rng);
        }
        assert!(noise.sample(&mut rng)[0].abs() < 1e-3);
    }

    #[test]
    fn reset_returns_to_mean_and_sigma_accessors_work() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut noise = OrnsteinUhlenbeck::new(3, 0.15, 0.3).with_sigma(0.4);
        assert_eq!(noise.sigma(), 0.4);
        noise.sample(&mut rng);
        noise.reset();
        assert!(noise.state.iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "dimension must be non-zero")]
    fn zero_dimension_panics() {
        let _ = OrnsteinUhlenbeck::new(0, 0.1, 0.1);
    }
}
