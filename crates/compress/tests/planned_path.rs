//! The planned (allocation-free) forward path and the allocating path must
//! agree bit for bit on *compressed* networks too — after `apply_policy` has
//! pruned channels and flipped the affected conv layers onto the
//! sparsity-aware GEMM.

use ie_compress::{apply::apply_policy, CompressionPolicy};
use ie_nn::spec::tiny_multi_exit;
use ie_nn::{Layer, MultiExitNetwork};
use ie_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn network(seed: u64) -> MultiExitNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    MultiExitNetwork::from_architecture(&tiny_multi_exit(3), &mut rng).unwrap()
}

#[test]
fn pruning_flips_conv_layers_onto_the_sparse_kernel() {
    let mut net = network(1);
    let n = net.architecture().compressible_layers().len();
    apply_policy(&mut net, &CompressionPolicy::uniform(n, 0.5, 8, 8).unwrap()).unwrap();
    for layer in net.segments().iter().flatten() {
        if let Layer::Conv2d(conv) = layer {
            assert!(conv.sparse_hint(), "pruned conv layers must use the sparse-aware GEMM");
        }
    }
    let mut untouched = network(1);
    apply_policy(&mut untouched, &CompressionPolicy::full_precision(n)).unwrap();
    for layer in untouched.segments().iter().flatten() {
        if let Layer::Conv2d(conv) = layer {
            assert!(!conv.sparse_hint(), "unpruned conv layers keep the dense kernel");
        }
    }
}

#[test]
fn planned_and_allocating_paths_agree_on_compressed_networks() {
    for seed in 0..3u64 {
        let mut net = network(seed);
        let n = net.architecture().compressible_layers().len();
        apply_policy(&mut net, &CompressionPolicy::uniform(n, 0.4, 4, 8).unwrap()).unwrap();
        let mut plan = net.execution_plan();
        let mut rng = StdRng::seed_from_u64(100 + seed);
        for _ in 0..3 {
            let x = Tensor::randn(&mut rng, &[1, 8, 8], 0.0, 1.0);
            for exit in 0..net.num_exits() {
                let (reference, _) = net.forward_to_exit(&x, exit).unwrap();
                let planned = net.forward_to_exit_with(&mut plan, &x, exit).unwrap();
                assert_eq!(planned.prediction, reference.prediction);
                assert_eq!(plan.logits(exit), reference.logits.as_slice());
                assert_eq!(plan.probs(exit), reference.probs.as_slice());
            }
        }
    }
}
