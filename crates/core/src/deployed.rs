use crate::{CoreError, ExperimentConfig, Result};
use ie_compress::{CalibratedAccuracyModel, CompressedProfile, CompressionPolicy, PolicyEvaluator};
use ie_mcu::{CostModel, McuDevice};

/// A multi-exit network as it exists on the MCU after compression: its
/// per-exit FLOPs, accuracy, energy and latency, and the cost of incremental
/// continuation between exits.
///
/// # Example
///
/// ```
/// use ie_core::{DeployedModel, ExperimentConfig};
///
/// let config = ExperimentConfig::paper_default();
/// let model = DeployedModel::uncompressed_reference(&config)?;
/// assert_eq!(model.num_exits(), 3);
/// assert!(model.exit_energy_mj(0) < model.exit_energy_mj(2));
/// # Ok::<(), ie_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeployedModel {
    profile: CompressedProfile,
    cost: CostModel,
}

impl DeployedModel {
    /// Wraps an already-evaluated compression profile with a device cost model.
    pub fn new(profile: CompressedProfile, cost: CostModel) -> Self {
        DeployedModel { profile, cost }
    }

    /// The uncompressed (full-precision) backbone on the configured device,
    /// using the calibrated accuracy model. This is the starting point of the
    /// compression search and the reference for Fig. 6's "before compression"
    /// bars.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn uncompressed_reference(config: &ExperimentConfig) -> Result<Self> {
        let evaluator = PolicyEvaluator::new(
            &config.architecture,
            CalibratedAccuracyModel::for_paper_backbone(),
        );
        let policy = CompressionPolicy::full_precision(evaluator.layers().len());
        let profile = evaluator.evaluate(&policy)?;
        Ok(DeployedModel { profile, cost: config.cost_model() })
    }

    /// Deploys a compression policy onto the configured device using the
    /// calibrated accuracy model.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors (e.g. policy length mismatch).
    pub fn from_policy(config: &ExperimentConfig, policy: &CompressionPolicy) -> Result<Self> {
        let evaluator = PolicyEvaluator::new(
            &config.architecture,
            CalibratedAccuracyModel::for_paper_backbone(),
        );
        let profile = evaluator.evaluate(policy)?;
        Ok(DeployedModel { profile, cost: config.cost_model() })
    }

    /// The underlying compression profile.
    pub fn profile(&self) -> &CompressedProfile {
        &self.profile
    }

    /// The device cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Number of exits.
    pub fn num_exits(&self) -> usize {
        self.profile.exit_flops.len()
    }

    fn check_exit(&self, exit: usize) -> Result<()> {
        if exit >= self.num_exits() {
            return Err(CoreError::UnknownExit { requested: exit, available: self.num_exits() });
        }
        Ok(())
    }

    /// FLOPs to reach `exit` from scratch.
    ///
    /// # Panics
    ///
    /// Panics if `exit` is out of range (use [`Self::num_exits`] to stay in
    /// range; the simulator validates policies before calling this).
    pub fn exit_flops(&self, exit: usize) -> u64 {
        self.profile.exit_flops[exit]
    }

    /// Energy (mJ) of an inference that exits at `exit`.
    pub fn exit_energy_mj(&self, exit: usize) -> f64 {
        self.cost.inference_energy_mj(self.profile.exit_flops[exit])
    }

    /// Compute latency (s) of an inference that exits at `exit`.
    pub fn exit_latency_s(&self, exit: usize) -> f64 {
        self.cost.inference_latency_s(self.profile.exit_flops[exit])
    }

    /// Predicted accuracy of `exit`, in `[0, 1]`.
    pub fn exit_accuracy(&self, exit: usize) -> f64 {
        self.profile.exit_accuracy[exit]
    }

    /// Energy costs of every exit (index = exit).
    pub fn exit_energies_mj(&self) -> Vec<f64> {
        (0..self.num_exits()).map(|e| self.exit_energy_mj(e)).collect()
    }

    /// Accuracies of every exit (index = exit).
    pub fn exit_accuracies(&self) -> Vec<f64> {
        self.profile.exit_accuracy.clone()
    }

    /// The cheapest exit's energy cost (mJ) — the minimum energy needed to
    /// produce *any* result for an event.
    pub fn min_exit_energy_mj(&self) -> f64 {
        self.exit_energies_mj().into_iter().fold(f64::INFINITY, f64::min)
    }

    /// Additional FLOPs to continue from `from_exit` to the deeper `to_exit`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownExit`] when the pair is invalid.
    pub fn incremental_flops(&self, from_exit: usize, to_exit: usize) -> Result<u64> {
        self.check_exit(from_exit)?;
        self.check_exit(to_exit)?;
        self.profile
            .incremental_flops(from_exit, to_exit)
            .ok_or(CoreError::UnknownExit { requested: to_exit, available: self.num_exits() })
    }

    /// Additional energy (mJ) to continue from `from_exit` to `to_exit`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownExit`] when the pair is invalid.
    pub fn incremental_energy_mj(&self, from_exit: usize, to_exit: usize) -> Result<f64> {
        Ok(self.cost.inference_energy_mj(self.incremental_flops(from_exit, to_exit)?))
    }

    /// Additional latency (s) to continue from `from_exit` to `to_exit`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownExit`] when the pair is invalid.
    pub fn incremental_latency_s(&self, from_exit: usize, to_exit: usize) -> Result<f64> {
        Ok(self.cost.inference_latency_s(self.incremental_flops(from_exit, to_exit)?))
    }

    /// Model weight size in bytes.
    pub fn model_size_bytes(&self) -> u64 {
        self.profile.model_size_bytes
    }

    /// Total network FLOPs (every unique layer once).
    pub fn total_flops(&self) -> u64 {
        self.profile.total_flops
    }

    /// Checks that the model fits the device's weight storage.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Mcu`] wrapping a `ModelTooLarge` error otherwise.
    pub fn check_fits(&self, device: &McuDevice) -> Result<()> {
        device.check_model_fits(self.profile.model_size_bytes)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ie_compress::LayerPolicy;

    fn config() -> ExperimentConfig {
        ExperimentConfig::paper_default()
    }

    #[test]
    fn uncompressed_reference_matches_architecture_accounting() {
        let c = config();
        let m = DeployedModel::uncompressed_reference(&c).unwrap();
        assert_eq!(m.num_exits(), 3);
        assert_eq!(m.exit_flops(2), c.architecture.exit_flops()[2]);
        // Energy at 1.5 mJ/MFLOP.
        let expected = c.architecture.exit_flops()[2] as f64 / 1e6 * 1.5;
        assert!((m.exit_energy_mj(2) - expected).abs() < 1e-9);
        // The fp32 model must NOT fit the MCU (that is the paper's premise).
        assert!(m.check_fits(&c.device).is_err());
    }

    #[test]
    fn compressed_model_fits_and_costs_less() {
        let c = config();
        let layers = c.architecture.compressible_layers();
        let policy: CompressionPolicy = layers
            .iter()
            .map(|l| {
                if l.is_conv {
                    if l.first_exit == 0 {
                        LayerPolicy::new(0.5, 8, 8).unwrap()
                    } else {
                        LayerPolicy::new(0.25, 4, 8).unwrap()
                    }
                } else if l.weight_params > 20_000 {
                    LayerPolicy::new(0.35, 1, 8).unwrap()
                } else {
                    LayerPolicy::new(0.5, 2, 8).unwrap()
                }
            })
            .collect();
        let compressed = DeployedModel::from_policy(&c, &policy).unwrap();
        let reference = DeployedModel::uncompressed_reference(&c).unwrap();
        assert!(compressed.check_fits(&c.device).is_ok(), "size {}", compressed.model_size_bytes());
        for e in 0..3 {
            assert!(compressed.exit_energy_mj(e) < reference.exit_energy_mj(e));
            assert!(compressed.exit_accuracy(e) <= reference.exit_accuracy(e));
            assert!(compressed.exit_latency_s(e) < reference.exit_latency_s(e));
        }
        assert!(compressed.min_exit_energy_mj() <= compressed.exit_energy_mj(0));
    }

    #[test]
    fn incremental_costs_are_cheaper_than_restart() {
        let m = DeployedModel::uncompressed_reference(&config()).unwrap();
        let inc = m.incremental_energy_mj(0, 2).unwrap();
        assert!(inc < m.exit_energy_mj(2));
        assert!(inc > 0.0);
        assert!(m.incremental_energy_mj(2, 0).is_err());
        assert!(m.incremental_flops(0, 9).is_err());
        assert!(m.incremental_latency_s(0, 1).unwrap() > 0.0);
    }

    #[test]
    fn unknown_exit_errors_are_reported() {
        let m = DeployedModel::uncompressed_reference(&config()).unwrap();
        assert!(m.incremental_flops(5, 6).is_err());
    }
}
