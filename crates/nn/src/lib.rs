//! `ie-nn` — a small, from-scratch convolutional neural-network library.
//!
//! This crate provides everything the reproduction needs from a deep-learning
//! framework:
//!
//! * concrete layers ([`Conv2d`], [`Dense`], [`Relu`], [`MaxPool2d`],
//!   [`Flatten`]) with forward *and* backward passes,
//! * a [`MultiExitNetwork`] that mirrors the paper's early-exit LeNet backbone
//!   and supports **incremental inference** (run to exit *i*, later continue to
//!   exit *i + 1* without recomputing the shared trunk),
//! * an [`ExecutionPlan`] for statically planned, **allocation-free**
//!   inference: pre-sized buffers, fused bias+ReLU GEMM epilogues, and planned
//!   `*_with` variants of every forward entry point that are bit-identical to
//!   the allocating ones,
//! * a [`BatchPlan`] that runs N inputs per pass through one widened GEMM per
//!   layer, bit-identical per sample to the single-input plan, plus a sharded
//!   multi-threaded dataset evaluator ([`train::evaluate_batched`]),
//! * a [`BackwardPlan`] for statically planned, **allocation-free** training
//!   steps — bit-identical loss and gradients to the allocating
//!   [`MultiExitNetwork::backward`], with an optional fake-quant-in-the-loop
//!   forward half — and a sharded batched trainer
//!   ([`train::BatchBackwardPlan`]) whose results are byte-identical across
//!   worker counts,
//! * softmax / cross-entropy losses and the **entropy-based confidence**
//!   measure used to decide whether an exit's prediction is trustworthy,
//! * an SGD optimiser and a tiny training loop,
//! * an architecture description ([`spec`]) with exact FLOPs and parameter
//!   accounting, including the paper's 11-layer multi-exit LeNet,
//! * a procedurally generated synthetic image dataset so the full
//!   train→compress→deploy pipeline can run end-to-end without external data.
//!
//! # Example
//!
//! ```
//! use ie_nn::spec::lenet_multi_exit;
//!
//! let arch = lenet_multi_exit();
//! assert_eq!(arch.num_exits(), 3);
//! // The cumulative FLOPs of the three exits are strictly increasing.
//! let flops = arch.exit_flops();
//! assert!(flops[0] < flops[1] && flops[1] < flops[2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activation;
mod backward;
mod batch;
mod conv;
pub mod dataset;
mod dense;
mod error;
mod layer;
pub mod loss;
mod mlp;
mod network;
mod optim;
mod plan;
mod pool;
pub mod quant;
pub mod spec;
pub mod train;

pub use activation::Relu;
pub use backward::{BackwardPlan, GradStore};
pub use batch::{BatchOutput, BatchPlan};
pub use conv::Conv2d;
pub use dense::Dense;
pub use error::NnError;
pub use layer::{Flatten, Layer};
pub use mlp::{Mlp, OutputActivation};
pub use network::{ExitOutput, ForwardState, MultiExitNetwork};
pub use optim::Sgd;
pub use plan::{ExecutionPlan, PlannedOutput};
pub use pool::MaxPool2d;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NnError>;
