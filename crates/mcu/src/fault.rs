//! Deterministic power-cut fault injection.
//!
//! A [`FaultPlan`] describes *where* power cuts strike an intermittent
//! execution: between tasks, partway through a task, or at a chosen byte
//! offset inside the checkpoint's NV write. Plans are either scripted (an
//! explicit list of cuts, for exhaustive crash-point sweeps) or seeded random
//! (for property tests over arbitrary fault schedules). A plan is turned into
//! a [`FaultInjector`], the stateful cursor the executor consults at each
//! crash opportunity; the same plan always reproduces the same cuts.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Where an injected cut strikes relative to a task execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TaskCut {
    /// Power is lost before the task draws any energy.
    Before,
    /// Power is lost after `fraction` (in `[0, 1]`) of the task's work; the
    /// partial energy and latency are spent but the task must re-run.
    Mid {
        /// Fraction of the task completed before the cut.
        fraction: f64,
    },
}

/// One scheduled power cut within a [`FaultPlan`].
///
/// Execution attempts are numbered from 0 **across reboots**: a task that
/// re-runs after a cut occupies a new attempt number, so a scripted plan can
/// target both the first and the retried execution of the same task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScheduledCut {
    /// Cut immediately before the `nth` task-execution attempt starts.
    BeforeTask {
        /// 0-based task-execution attempt number.
        nth_exec: u64,
    },
    /// Cut partway through the `nth` task-execution attempt.
    MidTask {
        /// 0-based task-execution attempt number.
        nth_exec: u64,
        /// Fraction of the task completed before the cut, clamped to `[0, 1]`.
        fraction: f64,
    },
    /// Cut during the `nth` checkpoint-commit attempt, after `byte_offset`
    /// bytes of the record have reached NV. An offset at or past the record
    /// length completes the write and cuts power just after the commit.
    DuringCommit {
        /// 0-based checkpoint-commit attempt number.
        nth_commit: u64,
        /// Bytes of the record durably written before the cut.
        byte_offset: usize,
    },
}

/// A deterministic schedule of power cuts.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum FaultPlan {
    /// No injected cuts (natural energy starvation still applies).
    #[default]
    None,
    /// An explicit list of cuts, matched against attempt counters.
    Scripted(Vec<ScheduledCut>),
    /// Seeded random cuts: each crash opportunity (task start or commit)
    /// independently suffers a cut with `cut_probability`, up to `max_cuts`
    /// total so every schedule terminates.
    Random {
        /// Seed of the cut stream; the same seed reproduces the same cuts.
        seed: u64,
        /// Per-opportunity cut probability in `[0, 1]`.
        cut_probability: f64,
        /// Hard bound on injected cuts across the injector's lifetime.
        max_cuts: u64,
    },
}

impl FaultPlan {
    /// A scripted plan with a single cut.
    pub fn single(cut: ScheduledCut) -> Self {
        FaultPlan::Scripted(vec![cut])
    }

    /// A seeded random plan.
    pub fn random(seed: u64, cut_probability: f64, max_cuts: u64) -> Self {
        FaultPlan::Random { seed, cut_probability: cut_probability.clamp(0.0, 1.0), max_cuts }
    }

    /// Builds the stateful injector for this plan.
    pub fn injector(&self) -> FaultInjector {
        FaultInjector::new(self.clone())
    }
}

/// Stateful cursor over a [`FaultPlan`], consulted by the executor at each
/// crash opportunity.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    scripted: Vec<ScheduledCut>,
    random: Option<RandomFaults>,
    exec_attempts: u64,
    commit_attempts: u64,
    cuts_injected: u64,
}

#[derive(Debug, Clone)]
struct RandomFaults {
    rng: StdRng,
    cut_probability: f64,
    max_cuts: u64,
}

impl FaultInjector {
    /// An injector that never cuts power.
    pub fn none() -> Self {
        FaultInjector::new(FaultPlan::None)
    }

    /// Builds an injector from a plan (see also [`FaultPlan::injector`]).
    pub fn new(plan: FaultPlan) -> Self {
        let (scripted, random) = match plan {
            FaultPlan::None => (Vec::new(), None),
            FaultPlan::Scripted(cuts) => (cuts, None),
            FaultPlan::Random { seed, cut_probability, max_cuts } => (
                Vec::new(),
                Some(RandomFaults { rng: StdRng::seed_from_u64(seed), cut_probability, max_cuts }),
            ),
        };
        FaultInjector { scripted, random, exec_attempts: 0, commit_attempts: 0, cuts_injected: 0 }
    }

    /// Total cuts injected so far.
    pub fn cuts_injected(&self) -> u64 {
        self.cuts_injected
    }

    fn random_fires(&mut self) -> bool {
        let Some(rf) = self.random.as_mut() else { return false };
        if self.cuts_injected >= rf.max_cuts {
            return false;
        }
        rf.rng.gen_bool(rf.cut_probability)
    }

    /// Consulted at the start of each task-execution attempt; returns the cut
    /// striking this attempt, if any. Advances the attempt counter.
    pub fn on_task_start(&mut self) -> Option<TaskCut> {
        let attempt = self.exec_attempts;
        self.exec_attempts += 1;

        if let Some(pos) = self.scripted.iter().position(|c| {
            matches!(c, ScheduledCut::BeforeTask { nth_exec } | ScheduledCut::MidTask { nth_exec, .. }
                if *nth_exec == attempt)
        }) {
            self.cuts_injected += 1;
            return Some(match self.scripted.remove(pos) {
                ScheduledCut::BeforeTask { .. } => TaskCut::Before,
                ScheduledCut::MidTask { fraction, .. } => {
                    TaskCut::Mid { fraction: fraction.clamp(0.0, 1.0) }
                }
                ScheduledCut::DuringCommit { .. } => unreachable!("filtered above"),
            });
        }

        if self.random_fires() {
            self.cuts_injected += 1;
            let rf = self.random.as_mut().expect("random_fires implies plan");
            // One third of task cuts strike before any work, the rest mid-task.
            let roll = rf.rng.gen::<f64>();
            return Some(if roll < 1.0 / 3.0 {
                TaskCut::Before
            } else {
                TaskCut::Mid { fraction: rf.rng.gen::<f64>() }
            });
        }
        None
    }

    /// Consulted at each checkpoint-commit attempt; returns the byte offset
    /// at which the NV write is torn (an offset `>= record_len` means the
    /// write completes and power is cut just after). Advances the commit
    /// counter.
    pub fn on_commit(&mut self, record_len: usize) -> Option<usize> {
        let attempt = self.commit_attempts;
        self.commit_attempts += 1;

        if let Some(pos) = self
            .scripted
            .iter()
            .position(|c| matches!(c, ScheduledCut::DuringCommit { nth_commit, .. } if *nth_commit == attempt))
        {
            self.cuts_injected += 1;
            match self.scripted.remove(pos) {
                ScheduledCut::DuringCommit { byte_offset, .. } => {
                    return Some(byte_offset.min(record_len));
                }
                _ => unreachable!("filtered above"),
            }
        }

        if self.random_fires() {
            self.cuts_injected += 1;
            let rf = self.random.as_mut().expect("random_fires implies plan");
            // Uniform over 0..=record_len: every byte offset plus the
            // post-commit cut are all reachable.
            return Some(rf.rng.gen_range(0..record_len + 2).min(record_len));
        }
        None
    }
}

/// Reads the `IE_FAULT_SEED` environment knob, if set to a valid `u64`.
///
/// Harnesses (CI fault-injection jobs, proptests) mix this into their plan
/// seeds so the same suite exercises different fault schedules across runs
/// without code changes.
pub fn fault_seed_from_env() -> Option<u64> {
    std::env::var("IE_FAULT_SEED").ok().and_then(|s| s.trim().parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_cuts_fire_exactly_once_at_their_attempt() {
        let plan = FaultPlan::Scripted(vec![
            ScheduledCut::BeforeTask { nth_exec: 1 },
            ScheduledCut::MidTask { nth_exec: 3, fraction: 0.5 },
            ScheduledCut::DuringCommit { nth_commit: 0, byte_offset: 7 },
        ]);
        let mut inj = plan.injector();
        assert_eq!(inj.on_task_start(), None); // attempt 0
        assert_eq!(inj.on_task_start(), Some(TaskCut::Before)); // attempt 1
        assert_eq!(inj.on_commit(32), Some(7)); // commit attempt 0
        assert_eq!(inj.on_task_start(), None); // attempt 2
        assert_eq!(inj.on_task_start(), Some(TaskCut::Mid { fraction: 0.5 })); // attempt 3
        assert_eq!(inj.on_task_start(), None);
        assert_eq!(inj.on_commit(32), None);
        assert_eq!(inj.cuts_injected(), 3);
    }

    #[test]
    fn commit_offsets_are_clamped_to_record_length() {
        let mut inj =
            FaultPlan::single(ScheduledCut::DuringCommit { nth_commit: 0, byte_offset: 999 })
                .injector();
        assert_eq!(inj.on_commit(32), Some(32));
    }

    #[test]
    fn random_plans_are_deterministic_and_bounded() {
        let plan = FaultPlan::random(42, 0.8, 5);
        let drive = |mut inj: FaultInjector| {
            let mut trace = Vec::new();
            for _ in 0..50 {
                trace.push(format!("{:?}", inj.on_task_start()));
                trace.push(format!("{:?}", inj.on_commit(32)));
            }
            (trace, inj.cuts_injected())
        };
        let (t1, c1) = drive(plan.injector());
        let (t2, c2) = drive(plan.injector());
        assert_eq!(t1, t2, "same seed must reproduce the same cut schedule");
        assert_eq!(c1, c2);
        assert_eq!(c1, 5, "p=0.8 over 100 opportunities must exhaust max_cuts");

        let (t3, _) = drive(FaultPlan::random(43, 0.8, 5).injector());
        assert_ne!(t1, t3, "different seeds should differ");
    }

    #[test]
    fn zero_probability_never_cuts() {
        let mut inj = FaultPlan::random(7, 0.0, 100).injector();
        for _ in 0..100 {
            assert_eq!(inj.on_task_start(), None);
            assert_eq!(inj.on_commit(32), None);
        }
        assert_eq!(inj.cuts_injected(), 0);
    }
}
