//! `ie-search` — phase 1 of the paper: power-trace-aware, exit-guided
//! nonuniform compression.
//!
//! The search walks the network layer by layer. At every layer a *pruning
//! agent* emits the channel preserve ratio `α_l` and a *quantization agent*
//! emits the weight/activation bitwidths `(b^w_l, b^a_l)`; both observe the
//! shared layer state of Eq. (9). When the last layer has been assigned, the
//! candidate policy is evaluated under the EH power trace and event
//! distribution: the exit-selection percentages `p_i` it induces and the
//! per-exit accuracies `Acc_i` form the exit-guided reward
//! `R_acc = Σ p_i · Acc_i` (Eq. 10), gated by the FLOPs target for the pruning
//! agent (Eq. 11) and the size target for the quantization agent (Eq. 12).
//!
//! Three searchers are provided:
//!
//! * [`DdpgCompressionSearch`] — the paper's dual-agent DDPG search,
//! * [`random_search`] — a random-sampling baseline over the same action space,
//! * [`best_uniform_policy`] — the "uniform compression" baseline of Fig. 1(b).
//!
//! # Example
//!
//! ```
//! use ie_core::ExperimentConfig;
//! use ie_search::{CompressionEnv, RewardMode, best_uniform_policy};
//!
//! let config = ExperimentConfig::small_test();
//! let env = CompressionEnv::new(&config, RewardMode::ExitGuided)?;
//! let (policy, outcome) = best_uniform_policy(&env, 8)?;
//! assert_eq!(policy.len(), env.num_layers());
//! assert!(outcome.feasible, "a feasible uniform point exists");
//! # Ok::<(), ie_search::SearchError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ddpg_search;
mod env;
mod error;
mod observation;
mod uniform;

pub use ddpg_search::{DdpgCompressionSearch, EpisodeStats, SearchConfig, SearchResult};
pub use env::{CompressionEnv, ExecutionBackend, PolicyOutcome, RewardMode};
pub use error::SearchError;
pub use observation::{observation_for_layer, OBSERVATION_DIM};
pub use uniform::{best_uniform_policy, random_search};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SearchError>;
