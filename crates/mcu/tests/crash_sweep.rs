//! Exhaustive crash-point sweep: every task boundary × every byte offset of
//! the checkpoint write.
//!
//! For each single injected cut the executor must (1) complete, (2) produce
//! an output digest bit-identical to the fault-free run, (3) end on a valid
//! durable checkpoint whose generation never regressed, and (4) report waste
//! that exactly closes the energy ledger against the fault-free run.

use ie_mcu::{
    task_digest, CostModel, ExecutionReport, FaultInjector, FaultPlan, IntermittentExecutor,
    McuDevice, NonvolatileMemory, ScheduledCut, TaskGraph, TwoBankCheckpoint, RECORD_BYTES,
};

const NUM_TASKS: usize = 6;

fn executor() -> IntermittentExecutor {
    IntermittentExecutor::new(CostModel::for_device(&McuDevice::msp432()))
}

fn graph() -> TaskGraph {
    TaskGraph::split_evenly("sweep", 2_000_003, NUM_TASKS)
}

fn run(plan: &FaultPlan) -> (ExecutionReport, NonvolatileMemory) {
    let mut sim = ie_energy::HarvestSimulator::new(
        Box::new(ie_energy::ConstantTrace::new(1.0, 10_000_000.0)),
        ie_energy::EnergyStorage::new(100.0, 1.0).with_initial_level(50.0),
    );
    let mut nv = NonvolatileMemory::new(1024);
    let mut inj = plan.injector();
    let report = executor().execute_with_faults(&graph(), &mut sim, &mut nv, &mut inj).unwrap();
    (report, nv)
}

fn assert_recovered(report: &ExecutionReport, nv: &NonvolatileMemory, context: &str) {
    let reference = task_digest(&graph(), NUM_TASKS);
    assert!(report.completed, "{context}: must complete");
    assert_eq!(report.output_digest, reference, "{context}: digest must be bit-identical");
    let rec = TwoBankCheckpoint::default().recover(nv).expect("durable record");
    assert!(rec.done, "{context}: final record flags completion");
    assert_eq!(rec.generation, report.checkpoint_generation, "{context}");
    assert_eq!(rec.digest, reference, "{context}: durable digest matches");
}

#[test]
fn every_task_boundary_cut_recovers_bit_identically() {
    let (fault_free, _) = run(&FaultPlan::None);
    for task in 0..NUM_TASKS as u64 {
        let plan = FaultPlan::single(ScheduledCut::BeforeTask { nth_exec: task });
        let (report, nv) = run(&plan);
        let context = format!("cut before task {task}");
        assert_recovered(&report, &nv, &context);
        assert_eq!(report.recovered_boots, 1, "{context}");
        assert_eq!(report.torn_writes, 0, "{context}");
        // Nothing past a checkpoint had run, so nothing was wasted.
        assert_eq!(report.wasted_reexecution_mj, 0.0, "{context}");
        assert_eq!(report.energy_consumed_mj, fault_free.energy_consumed_mj, "{context}");
        assert_eq!(report.checkpoint_generation, NUM_TASKS as u64, "{context}");
    }
}

#[test]
fn every_mid_task_cut_recovers_bit_identically() {
    let (fault_free, _) = run(&FaultPlan::None);
    for task in 0..NUM_TASKS as u64 {
        for fraction in [0.0, 0.25, 0.5, 0.99, 1.0] {
            let plan = FaultPlan::single(ScheduledCut::MidTask { nth_exec: task, fraction });
            let (report, nv) = run(&plan);
            let context = format!("cut {fraction} through task {task}");
            assert_recovered(&report, &nv, &context);
            assert_eq!(report.recovered_boots, 1, "{context}");
            let expected = fault_free.energy_consumed_mj + report.wasted_reexecution_mj;
            assert!(
                (report.energy_consumed_mj - expected).abs() < 1e-9,
                "{context}: ledger must close ({} vs {expected})",
                report.energy_consumed_mj,
            );
        }
    }
}

#[test]
fn every_checkpoint_byte_offset_recovers_bit_identically() {
    let (fault_free, _) = run(&FaultPlan::None);
    // Every commit attempt × every byte offset of the record write, plus the
    // post-commit cut (offset == RECORD_BYTES).
    for commit in 0..NUM_TASKS as u64 {
        for offset in 0..=RECORD_BYTES {
            let plan = FaultPlan::single(ScheduledCut::DuringCommit {
                nth_commit: commit,
                byte_offset: offset,
            });
            let (report, nv) = run(&plan);
            let context = format!("tear at byte {offset} of commit {commit}");
            assert_recovered(&report, &nv, &context);
            assert_eq!(report.recovered_boots, 1, "{context}");
            if offset < RECORD_BYTES {
                assert_eq!(report.torn_writes, 1, "{context}");
                assert_eq!(nv.torn_writes(), 1, "{context}");
                assert!(report.wasted_reexecution_mj > 0.0, "{context}: the task re-ran");
            } else {
                assert_eq!(report.torn_writes, 0, "{context}");
                assert_eq!(report.wasted_reexecution_mj, 0.0, "{context}");
            }
            let expected = fault_free.energy_consumed_mj + report.wasted_reexecution_mj;
            assert!(
                (report.energy_consumed_mj - expected).abs() < 1e-9,
                "{context}: ledger must close ({} vs {expected})",
                report.energy_consumed_mj,
            );
            // Torn attempts never mint a durable generation: the count ends
            // at exactly one generation per task.
            assert_eq!(report.checkpoint_generation, NUM_TASKS as u64, "{context}");
        }
    }
}

#[test]
fn double_tears_on_the_same_commit_still_recover() {
    let reference = task_digest(&graph(), NUM_TASKS);
    for offset_a in [0, 7, RECORD_BYTES - 1] {
        for offset_b in [0, 16, RECORD_BYTES - 1] {
            // Tearing commit attempts 2 and 3 hits the same logical
            // checkpoint twice in a row (the retry is attempt 3).
            let plan = FaultPlan::Scripted(vec![
                ScheduledCut::DuringCommit { nth_commit: 2, byte_offset: offset_a },
                ScheduledCut::DuringCommit { nth_commit: 3, byte_offset: offset_b },
            ]);
            let (report, nv) = run(&plan);
            let context = format!("tears at {offset_a}/{offset_b}");
            assert_recovered(&report, &nv, &context);
            assert_eq!(report.torn_writes, 2, "{context}");
            assert_eq!(report.recovered_boots, 2, "{context}");
        }
    }
    // Both banks can be invalid only transiently inside write_torn — after
    // any number of tears, recovery still lands on the reference digest.
    let _ = reference;
}

#[test]
fn executor_report_counts_match_nv_counters() {
    let plan = FaultPlan::Scripted(vec![
        ScheduledCut::MidTask { nth_exec: 0, fraction: 0.4 },
        ScheduledCut::DuringCommit { nth_commit: 1, byte_offset: 5 },
        ScheduledCut::DuringCommit { nth_commit: 4, byte_offset: 30 },
        ScheduledCut::BeforeTask { nth_exec: 6 },
    ]);
    let (report, nv) = run(&plan);
    assert!(report.completed);
    assert_eq!(report.torn_writes, nv.torn_writes());
    assert_eq!(report.recovered_boots, 4);
    assert_eq!(nv.power_failures(), report.power_cycles);
}

#[test]
fn none_plan_injector_is_equivalent_to_plain_execute() {
    let (scripted, _) = run(&FaultPlan::None);
    let mut sim = ie_energy::HarvestSimulator::new(
        Box::new(ie_energy::ConstantTrace::new(1.0, 10_000_000.0)),
        ie_energy::EnergyStorage::new(100.0, 1.0).with_initial_level(50.0),
    );
    let mut nv = NonvolatileMemory::new(1024);
    let plain = executor().execute(&graph(), &mut sim, &mut nv).unwrap();
    assert_eq!(plain, scripted);
    let mut inj = FaultInjector::none();
    assert_eq!(inj.cuts_injected(), 0);
    assert_eq!(inj.on_task_start(), None);
}
