//! `ie-rl` — the reinforcement-learning substrate.
//!
//! Two learners are needed by the paper:
//!
//! * **Tabular Q-learning** ([`QTable`]) — the lightweight runtime learner
//!   that picks an exit from the discretised (stored energy, charging
//!   efficiency) state and decides whether to run an incremental inference.
//!   Its entire cost is one table lookup and one table update per event,
//!   which is what makes it deployable on the MCU.
//! * **DDPG** ([`DdpgAgent`]) — the offline continuous-action actor–critic
//!   used by the compression search, with Ornstein–Uhlenbeck exploration
//!   noise ([`OrnsteinUhlenbeck`]), an experience [`ReplayBuffer`] and Polyak
//!   target networks, following Lillicrap et al. as cited by the paper.
//!
//! # Example
//!
//! ```
//! use ie_rl::QTable;
//!
//! let mut q = QTable::new(4, 2, 0.5, 0.9);
//! q.update(0, 1, 1.0, Some(2));
//! assert!(q.value(0, 1) > q.value(0, 0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ddpg;
mod noise;
mod qlearning;
mod replay;

pub use ddpg::{DdpgAgent, DdpgConfig, Transition};
pub use noise::OrnsteinUhlenbeck;
pub use qlearning::{EpsilonSchedule, QTable};
pub use replay::ReplayBuffer;
