use rand::Rng;

/// A tabular Q-learning agent over discrete states and actions.
///
/// The table is the only state; the update rule is Eq. (16) of the paper:
/// `Q(s,a) ← Q(s,a) + α (r + γ·max_a' Q(s',a') − Q(s,a))`.
///
/// # Example
///
/// ```
/// use ie_rl::QTable;
///
/// let mut q = QTable::new(2, 3, 0.1, 0.95);
/// for _ in 0..100 {
///     q.update(0, 2, 1.0, None); // action 2 in state 0 always pays off
/// }
/// assert_eq!(q.select_greedy(0), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QTable {
    num_states: usize,
    num_actions: usize,
    values: Vec<f64>,
    learning_rate: f64,
    discount: f64,
    updates: u64,
}

impl QTable {
    /// Creates a zero-initialised table.
    ///
    /// # Panics
    ///
    /// Panics if `num_states` or `num_actions` is zero, the learning rate is
    /// not in `(0, 1]`, or the discount is not in `[0, 1]`.
    pub fn new(num_states: usize, num_actions: usize, learning_rate: f64, discount: f64) -> Self {
        assert!(num_states > 0 && num_actions > 0, "state and action spaces must be non-empty");
        assert!(learning_rate > 0.0 && learning_rate <= 1.0, "learning rate must be in (0, 1]");
        assert!((0.0..=1.0).contains(&discount), "discount must be in [0, 1]");
        QTable {
            num_states,
            num_actions,
            values: vec![0.0; num_states * num_actions],
            learning_rate,
            discount,
            updates: 0,
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of actions.
    pub fn num_actions(&self) -> usize {
        self.num_actions
    }

    /// Number of updates applied so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// The Q-value of `(state, action)`.
    ///
    /// # Panics
    ///
    /// Panics if the state or action is out of range.
    pub fn value(&self, state: usize, action: usize) -> f64 {
        assert!(state < self.num_states && action < self.num_actions, "state/action out of range");
        self.values[state * self.num_actions + action]
    }

    /// Highest Q-value achievable from `state`.
    pub fn max_value(&self, state: usize) -> f64 {
        (0..self.num_actions).map(|a| self.value(state, a)).fold(f64::NEG_INFINITY, f64::max)
    }

    /// The greedy action for `state` (lowest index on ties).
    pub fn select_greedy(&self, state: usize) -> usize {
        let mut best = 0;
        for a in 1..self.num_actions {
            if self.value(state, a) > self.value(state, best) {
                best = a;
            }
        }
        best
    }

    /// ε-greedy action selection.
    pub fn select_epsilon_greedy<R: Rng + ?Sized>(
        &self,
        state: usize,
        epsilon: f64,
        rng: &mut R,
    ) -> usize {
        if rng.gen::<f64>() < epsilon.clamp(0.0, 1.0) {
            rng.gen_range(0..self.num_actions)
        } else {
            self.select_greedy(state)
        }
    }

    /// Applies the Q-learning update for a transition. `next_state == None`
    /// marks a terminal transition (no bootstrap term).
    ///
    /// # Panics
    ///
    /// Panics if the state or action is out of range.
    pub fn update(&mut self, state: usize, action: usize, reward: f64, next_state: Option<usize>) {
        let bootstrap = match next_state {
            Some(s) => self.discount * self.max_value(s),
            None => 0.0,
        };
        let idx = state * self.num_actions + action;
        assert!(state < self.num_states && action < self.num_actions, "state/action out of range");
        let current = self.values[idx];
        self.values[idx] = current + self.learning_rate * (reward + bootstrap - current);
        self.updates += 1;
    }

    /// Greedy policy over all states (one action per state).
    pub fn greedy_policy(&self) -> Vec<usize> {
        (0..self.num_states).map(|s| self.select_greedy(s)).collect()
    }
}

/// A linearly decaying exploration schedule for ε-greedy action selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpsilonSchedule {
    start: f64,
    end: f64,
    decay_steps: u64,
}

impl EpsilonSchedule {
    /// Creates a schedule decaying from `start` to `end` over `decay_steps`.
    pub fn new(start: f64, end: f64, decay_steps: u64) -> Self {
        EpsilonSchedule {
            start: start.clamp(0.0, 1.0),
            end: end.clamp(0.0, 1.0),
            decay_steps: decay_steps.max(1),
        }
    }

    /// The exploration rate at `step`.
    pub fn epsilon(&self, step: u64) -> f64 {
        let progress = (step as f64 / self.decay_steps as f64).min(1.0);
        self.start + (self.end - self.start) * progress
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn update_moves_value_towards_reward() {
        let mut q = QTable::new(3, 2, 0.5, 0.9);
        q.update(1, 0, 2.0, None);
        assert!((q.value(1, 0) - 1.0).abs() < 1e-12);
        q.update(1, 0, 2.0, None);
        assert!((q.value(1, 0) - 1.5).abs() < 1e-12);
        assert_eq!(q.updates(), 2);
    }

    #[test]
    fn bootstrap_uses_best_next_action() {
        let mut q = QTable::new(2, 2, 1.0, 0.5);
        // Make state 1 worth 4 via action 1.
        q.update(1, 1, 4.0, None);
        // Transition from state 0 with zero reward into state 1.
        q.update(0, 0, 0.0, Some(1));
        assert!((q.value(0, 0) - 2.0).abs() < 1e-12, "0 + 0.5 * max_a Q(1,a) = 2");
    }

    #[test]
    fn greedy_selection_finds_learned_optimum() {
        let mut q = QTable::new(4, 3, 0.2, 0.9);
        let mut rng = StdRng::seed_from_u64(0);
        // Reward structure: best action = state index modulo 3.
        for _ in 0..2000 {
            let s = rng.gen_range(0..4);
            let a = rng.gen_range(0..3);
            let r = if a == s % 3 { 1.0 } else { 0.0 };
            q.update(s, a, r, None);
        }
        for s in 0..4 {
            assert_eq!(q.select_greedy(s), s % 3, "state {s}");
        }
        assert_eq!(q.greedy_policy(), vec![0, 1, 2, 0]);
    }

    #[test]
    fn epsilon_greedy_explores_and_exploits() {
        let mut q = QTable::new(1, 4, 0.5, 0.9);
        q.update(0, 3, 1.0, None);
        let mut rng = StdRng::seed_from_u64(1);
        let greedy: Vec<usize> =
            (0..50).map(|_| q.select_epsilon_greedy(0, 0.0, &mut rng)).collect();
        assert!(greedy.iter().all(|&a| a == 3));
        let explored: Vec<usize> =
            (0..200).map(|_| q.select_epsilon_greedy(0, 1.0, &mut rng)).collect();
        assert!(explored.iter().any(|&a| a != 3), "pure exploration must try other actions");
    }

    #[test]
    fn epsilon_schedule_decays_linearly_and_saturates() {
        let s = EpsilonSchedule::new(1.0, 0.1, 100);
        assert!((s.epsilon(0) - 1.0).abs() < 1e-12);
        assert!((s.epsilon(50) - 0.55).abs() < 1e-12);
        assert!((s.epsilon(100) - 0.1).abs() < 1e-12);
        assert!((s.epsilon(1000) - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "state/action out of range")]
    fn out_of_range_access_panics() {
        let q = QTable::new(2, 2, 0.5, 0.9);
        let _ = q.value(2, 0);
    }
}
