//! The shared layer-wise observation of Eq. (9).

use ie_compress::CompressionPolicy;
use ie_nn::spec::CompressibleLayer;

/// Dimension of the observation vector both agents receive.
pub const OBSERVATION_DIM: usize = 12;

/// Builds the normalised observation `O_l` for layer `layer_index`:
/// `(l, α_{l−1}, b^w_{l−1}, b^a_{l−1}, flop_reduced, flop_remain, s_reduced,
/// s_remain, i_conv, c_in, c_out, s_weight)`, each scaled into `[0, 1]`.
///
/// `policy` holds the decisions already made for layers `0..layer_index`;
/// later entries are ignored.
///
/// # Panics
///
/// Panics if `layer_index` is out of range for `layers`.
pub fn observation_for_layer(
    layers: &[CompressibleLayer],
    policy: &CompressionPolicy,
    layer_index: usize,
) -> Vec<f32> {
    assert!(layer_index < layers.len(), "layer index out of range");
    let layer = &layers[layer_index];
    let total_macs: f64 = layers.iter().map(|l| l.macs as f64).sum();
    let total_params: f64 = layers.iter().map(|l| l.weight_params as f64).sum();
    let max_channels =
        layers.iter().map(|l| l.in_channels.max(l.out_channels)).max().unwrap_or(1) as f32;
    let max_params = layers.iter().map(|l| l.weight_params).max().unwrap_or(1) as f64;

    // Decisions already taken reduce FLOPs/size in the processed prefix.
    let mut flop_reduced = 0.0f64;
    let mut size_reduced = 0.0f64;
    for (l, p) in layers[..layer_index].iter().zip(policy.layers()) {
        let ratio = f64::from(p.preserve_ratio.clamp(0.0, 1.0));
        flop_reduced += l.macs as f64 * (1.0 - ratio);
        let kept_bits = f64::from(p.weight_bits.min(32)) / 32.0;
        size_reduced += l.weight_params as f64 * (1.0 - ratio * kept_bits);
    }
    let flop_remaining: f64 = layers[layer_index..].iter().map(|l| l.macs as f64).sum();
    let size_remaining: f64 = layers[layer_index..].iter().map(|l| l.weight_params as f64).sum();

    let prev = layer_index
        .checked_sub(1)
        .and_then(|i| policy.layer(i).copied())
        .unwrap_or_else(ie_compress::LayerPolicy::identity);

    vec![
        layer_index as f32 / layers.len() as f32,
        prev.preserve_ratio,
        f32::from(prev.weight_bits.min(32)) / 32.0,
        f32::from(prev.activation_bits.min(32)) / 32.0,
        (flop_reduced / total_macs.max(1.0)) as f32,
        (flop_remaining / total_macs.max(1.0)) as f32,
        (size_reduced / total_params.max(1.0)) as f32,
        (size_remaining / total_params.max(1.0)) as f32,
        if layer.is_conv { 1.0 } else { 0.0 },
        layer.in_channels as f32 / max_channels,
        layer.out_channels as f32 / max_channels,
        (layer.weight_params as f64 / max_params) as f32,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ie_compress::{CompressionPolicy, LayerPolicy};
    use ie_nn::spec::lenet_multi_exit;

    #[test]
    fn observation_has_the_documented_dimension_and_range() {
        let layers = lenet_multi_exit().compressible_layers();
        let policy = CompressionPolicy::full_precision(layers.len());
        for i in 0..layers.len() {
            let obs = observation_for_layer(&layers, &policy, i);
            assert_eq!(obs.len(), OBSERVATION_DIM);
            assert!(obs.iter().all(|v| (0.0..=1.0).contains(v)), "layer {i}: {obs:?}");
        }
    }

    #[test]
    fn reductions_accumulate_as_layers_are_decided() {
        let layers = lenet_multi_exit().compressible_layers();
        let mut policy = CompressionPolicy::full_precision(layers.len());
        // Decide the first three layers aggressively.
        for i in 0..3 {
            policy.layers_mut()[i] = LayerPolicy::new(0.25, 2, 2).unwrap();
        }
        let early = observation_for_layer(&layers, &policy, 1);
        let later = observation_for_layer(&layers, &policy, 5);
        assert!(later[4] > early[4], "flop_reduced grows with the prefix");
        assert!(later[6] > early[6], "size_reduced grows with the prefix");
        assert!(later[5] < early[5], "flop_remaining shrinks");
    }

    #[test]
    fn conv_flag_and_previous_action_are_reported() {
        let layers = lenet_multi_exit().compressible_layers();
        let mut policy = CompressionPolicy::full_precision(layers.len());
        policy.layers_mut()[0] = LayerPolicy::new(0.5, 4, 8).unwrap();
        let obs1 = observation_for_layer(&layers, &policy, 1);
        assert_eq!(obs1[8], 1.0, "ConvB1 is a conv layer");
        assert!((obs1[1] - 0.5).abs() < 1e-6, "previous preserve ratio is visible");
        assert!((obs1[2] - 4.0 / 32.0).abs() < 1e-6);
        // FC-B1 is layer index 2 in canonical order.
        let obs_fc = observation_for_layer(&layers, &policy, 2);
        assert_eq!(obs_fc[8], 0.0);
    }

    #[test]
    #[should_panic(expected = "layer index out of range")]
    fn out_of_range_layer_panics() {
        let layers = lenet_multi_exit().compressible_layers();
        let policy = CompressionPolicy::full_precision(layers.len());
        let _ = observation_for_layer(&layers, &policy, 99);
    }
}
