use std::fmt;

/// Errors produced by the runtime adaptation crate.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// Propagated core error (simulation / deployment).
    Core(ie_core::CoreError),
    /// The adaptation was configured with zero learning episodes.
    NoEpisodes,
    /// A discretisation was configured with zero bins.
    InvalidDiscretization(String),
    /// A latency-admission adapter was configured with an invalid cost or
    /// accuracy table.
    InvalidAdmission(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Core(e) => write!(f, "core error: {e}"),
            RuntimeError::NoEpisodes => write!(f, "runtime adaptation needs at least one episode"),
            RuntimeError::InvalidDiscretization(msg) => {
                write!(f, "invalid state discretisation: {msg}")
            }
            RuntimeError::InvalidAdmission(msg) => {
                write!(f, "invalid latency admission table: {msg}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ie_core::CoreError> for RuntimeError {
    fn from(e: ie_core::CoreError) -> Self {
        RuntimeError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty() {
        let errs: Vec<RuntimeError> = vec![
            ie_core::CoreError::InvalidConfig("x".into()).into(),
            RuntimeError::NoEpisodes,
            RuntimeError::InvalidDiscretization("zero bins".into()),
            RuntimeError::InvalidAdmission("empty cost table".into()),
        ];
        for e in &errs {
            assert!(!e.to_string().is_empty());
        }
        assert!(std::error::Error::source(&errs[0]).is_some());
    }
}
