use crate::StateDiscretizer;
use ie_core::{ContinueContext, EventContext, EventFeedback, ExitChoice, ExitPolicy};
use ie_rl::{EpsilonSchedule, QTable};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Hyper-parameters of the runtime Q-learning agent.
#[derive(Debug, Clone, PartialEq)]
pub struct QLearningConfig {
    /// Q-table learning rate α.
    pub learning_rate: f64,
    /// Discount factor γ.
    pub discount: f64,
    /// Exploration rate at the first event.
    pub epsilon_start: f64,
    /// Exploration rate after the decay horizon.
    pub epsilon_end: f64,
    /// Number of events over which ε decays linearly.
    pub epsilon_decay_events: u64,
    /// RNG seed for exploration.
    pub seed: u64,
}

impl Default for QLearningConfig {
    fn default() -> Self {
        QLearningConfig {
            learning_rate: 0.3,
            discount: 0.9,
            epsilon_start: 0.4,
            epsilon_end: 0.02,
            epsilon_decay_events: 2_000,
            seed: 1,
        }
    }
}

/// The paper's runtime exit-selection agent: one Q-table chooses the exit from
/// the discretised `(stored energy, charging efficiency)` state, a second
/// Q-table decides whether a low-confidence result should be refined by an
/// incremental inference. Both are updated online with Eq. (16); the reward is
/// the accuracy of the exit that produced the final result (zero for missed
/// events).
#[derive(Debug, Clone)]
pub struct QLearningExitPolicy {
    discretizer: StateDiscretizer,
    exit_table: QTable,
    continue_table: QTable,
    config: QLearningConfig,
    schedule: EpsilonSchedule,
    rng: StdRng,
    learning: bool,
    events_seen: u64,
    /// `(state, action)` of the event currently awaiting feedback.
    awaiting: Option<(usize, usize)>,
    /// `(state, action, reward)` of the previous event, waiting for the next
    /// event's state to complete the bootstrap update.
    pending: Option<(usize, usize, f64)>,
    /// `(state, action)` of a continuation decision awaiting feedback.
    pending_continue: Option<(usize, usize)>,
}

impl QLearningExitPolicy {
    /// Creates a fresh agent for a model with `num_exits` exits.
    pub fn new(num_exits: usize, discretizer: StateDiscretizer, config: QLearningConfig) -> Self {
        let exit_table = QTable::new(
            discretizer.exit_state_count(),
            num_exits,
            config.learning_rate,
            config.discount,
        );
        let continue_table = QTable::new(
            discretizer.continue_state_count(),
            2,
            config.learning_rate,
            config.discount,
        );
        let schedule = EpsilonSchedule::new(
            config.epsilon_start,
            config.epsilon_end,
            config.epsilon_decay_events,
        );
        let rng = StdRng::seed_from_u64(config.seed);
        QLearningExitPolicy {
            discretizer,
            exit_table,
            continue_table,
            config,
            schedule,
            rng,
            learning: true,
            events_seen: 0,
            awaiting: None,
            pending: None,
            pending_continue: None,
        }
    }

    /// Enables or disables learning (exploration and table updates). With
    /// learning disabled the agent acts greedily on its current tables.
    pub fn set_learning(&mut self, learning: bool) {
        self.learning = learning;
    }

    /// The Q-learning hyper-parameters the agent was created with.
    pub fn config(&self) -> &QLearningConfig {
        &self.config
    }

    /// The exit-selection Q-table.
    pub fn exit_table(&self) -> &QTable {
        &self.exit_table
    }

    /// The incremental-inference Q-table.
    pub fn continue_table(&self) -> &QTable {
        &self.continue_table
    }

    /// Number of events the agent has seen.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// The current exploration rate.
    pub fn epsilon(&self) -> f64 {
        if self.learning {
            self.schedule.epsilon(self.events_seen)
        } else {
            0.0
        }
    }

    /// Marks the end of a learning episode. Decision bookkeeping that only
    /// makes sense within one event (`awaiting`, `pending_continue`) is
    /// cleared; the last exit decision's pending transition is kept and will
    /// be completed by the first event of the next episode — on the real
    /// device the runtime never terminates, so episodes are an experimental
    /// artefact and must not inject artificial terminal updates.
    pub fn end_episode(&mut self) {
        self.awaiting = None;
        self.pending_continue = None;
    }
}

impl ExitPolicy for QLearningExitPolicy {
    fn choose_exit(&mut self, ctx: &EventContext) -> ExitChoice {
        let state = self.discretizer.exit_state(ctx.energy_fraction(), ctx.charging_efficiency);
        // Complete the previous event's update now that its successor state is
        // known (the SARSA-style bookkeeping of Eq. 16).
        if self.learning {
            if let Some((s, a, r)) = self.pending.take() {
                self.exit_table.update(s, a, r, Some(state));
            }
        }
        let epsilon = self.epsilon();
        let action = self.exit_table.select_epsilon_greedy(state, epsilon, &mut self.rng);
        self.awaiting = Some((state, action));
        self.events_seen += 1;
        ExitChoice::Exit(action)
    }

    fn choose_continue(&mut self, ctx: &ContinueContext) -> bool {
        let state = self.discretizer.continue_state(ctx.confidence, ctx.energy_fraction());
        let epsilon = self.epsilon();
        let action = self.continue_table.select_epsilon_greedy(state, epsilon, &mut self.rng);
        self.pending_continue = Some((state, action));
        // Action 1 = continue; the simulator still enforces affordability.
        action == 1 && ctx.affordable()
    }

    fn observe_outcome(&mut self, feedback: &EventFeedback) {
        // Reward of the exit decision: the accuracy of the exit that produced
        // the final result; zero when the event was missed.
        let reward = if feedback.missed { 0.0 } else { feedback.expected_accuracy };
        if self.learning {
            if let Some((state, action)) = self.awaiting.take() {
                self.pending = Some((state, action, reward));
            }
            if let Some((state, action)) = self.pending_continue.take() {
                // The continuation decision is terminal within the event.
                self.continue_table.update(state, action, reward, None);
            }
        } else {
            self.awaiting = None;
            self.pending_continue = None;
        }
    }

    fn name(&self) -> &str {
        "q-learning"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(energy: f64, efficiency: f64) -> EventContext {
        EventContext {
            event_id: 0,
            time_s: 0.0,
            available_energy_mj: energy,
            capacity_mj: 4.0,
            charging_efficiency: efficiency,
            exit_energy_mj: vec![0.2, 0.8, 1.6],
            exit_accuracy: vec![0.62, 0.69, 0.70],
        }
    }

    fn feedback(exit: Option<usize>, acc: f64, missed: bool) -> EventFeedback {
        EventFeedback {
            event_id: 0,
            chosen_exit: exit,
            final_exit: exit,
            expected_accuracy: acc,
            correct: !missed,
            energy_spent_mj: 0.0,
            missed,
        }
    }

    fn policy() -> QLearningExitPolicy {
        QLearningExitPolicy::new(3, StateDiscretizer::paper_default(), QLearningConfig::default())
    }

    #[test]
    fn always_returns_an_exit_and_counts_events() {
        let mut p = policy();
        for i in 0..10 {
            match p.choose_exit(&ctx(2.0, 0.5)) {
                ExitChoice::Exit(e) => assert!(e < 3),
                ExitChoice::Skip => panic!("the Q-learning action space has no skip action"),
            }
            p.observe_outcome(&feedback(Some(0), 0.62, false));
            assert_eq!(p.events_seen(), i + 1);
        }
        assert_eq!(p.name(), "q-learning");
    }

    #[test]
    fn rewards_propagate_into_the_exit_table() {
        let mut p = policy();
        // Repeatedly visit the same state; reward only exit 1.
        for _ in 0..300 {
            let choice = p.choose_exit(&ctx(2.0, 0.5));
            let exit = match choice {
                ExitChoice::Exit(e) => e,
                ExitChoice::Skip => unreachable!(),
            };
            let reward = if exit == 1 { 0.9 } else { 0.05 };
            p.observe_outcome(&feedback(Some(exit), reward, false));
        }
        p.end_episode();
        let state = StateDiscretizer::paper_default().exit_state(0.5, 0.5);
        assert_eq!(p.exit_table().select_greedy(state), 1);
        assert!(p.exit_table().updates() > 0);
    }

    #[test]
    fn missed_events_receive_zero_reward() {
        let mut p = policy();
        for _ in 0..200 {
            let _ = p.choose_exit(&ctx(0.1, 0.0));
            p.observe_outcome(&feedback(None, 0.0, true));
        }
        p.end_episode();
        let state = StateDiscretizer::paper_default().exit_state(0.1 / 4.0, 0.0);
        // Every action keeps roughly zero value in that starved state.
        for a in 0..3 {
            assert!(p.exit_table().value(state, a) <= 0.05);
        }
    }

    #[test]
    fn continuation_table_learns_from_feedback() {
        let mut p = policy();
        let cc = ContinueContext {
            event_id: 0,
            current_exit: 0,
            next_exit: 1,
            confidence: 0.2,
            available_energy_mj: 3.0,
            capacity_mj: 4.0,
            incremental_energy_mj: 0.5,
        };
        let mut continued = 0;
        for _ in 0..200 {
            let _ = p.choose_exit(&ctx(3.0, 0.5));
            if p.choose_continue(&cc) {
                continued += 1;
                p.observe_outcome(&feedback(Some(1), 0.9, false));
            } else {
                p.observe_outcome(&feedback(Some(0), 0.1, false));
            }
        }
        assert!(continued > 0, "exploration must try continuing at least once");
        let state = StateDiscretizer::paper_default().continue_state(0.2, 0.75);
        assert_eq!(
            p.continue_table().select_greedy(state),
            1,
            "continuing is clearly better in this synthetic setup"
        );
    }

    #[test]
    fn disabling_learning_freezes_the_tables_and_acts_greedily() {
        let mut p = policy();
        p.set_learning(false);
        assert_eq!(p.epsilon(), 0.0);
        let updates_before = p.exit_table().updates();
        let _ = p.choose_exit(&ctx(2.0, 0.5));
        p.observe_outcome(&feedback(Some(0), 0.62, false));
        let _ = p.choose_exit(&ctx(2.0, 0.5));
        assert_eq!(p.exit_table().updates(), updates_before);
    }
}
