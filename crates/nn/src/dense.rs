use crate::{NnError, Result};
use ie_tensor::Tensor;
use rand::Rng;

/// A fully-connected (dense) layer: `y = W·x + b`.
///
/// Weights are stored as a `[out_features, in_features]` matrix so that the
/// forward pass is a single matrix–vector product. The layer caches nothing;
/// the caller passes the saved input back in for the backward pass, which
/// keeps the layer usable from both the training loop and the incremental
/// inference engine.
///
/// # Example
///
/// ```
/// use ie_nn::Dense;
/// use ie_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let layer = Dense::new(&mut rng, 4, 2);
/// let x = Tensor::ones(&[4]);
/// let y = layer.forward(&x)?;
/// assert_eq!(y.len(), 2);
/// # Ok::<(), ie_nn::NnError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    in_features: usize,
    out_features: usize,
}

impl Dense {
    /// Creates a dense layer with Xavier-uniform initialised weights.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, in_features: usize, out_features: usize) -> Self {
        let limit = (6.0 / (in_features + out_features) as f32).sqrt();
        Dense {
            weight: Tensor::uniform(rng, &[out_features, in_features], limit),
            bias: Tensor::zeros(&[out_features]),
            grad_weight: Tensor::zeros(&[out_features, in_features]),
            grad_bias: Tensor::zeros(&[out_features]),
            in_features,
            out_features,
        }
    }

    /// Creates a dense layer from explicit weights and biases.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShapeMismatch`] if `weight` is not
    /// `[out_features, in_features]` or `bias` is not `[out_features]`.
    pub fn from_parameters(weight: Tensor, bias: Tensor) -> Result<Self> {
        if weight.shape().rank() != 2 {
            return Err(NnError::InputShapeMismatch {
                layer: "dense".into(),
                expected: vec![0, 0],
                actual: weight.dims().to_vec(),
            });
        }
        let (out_features, in_features) = (weight.dims()[0], weight.dims()[1]);
        if bias.len() != out_features {
            return Err(NnError::InputShapeMismatch {
                layer: "dense(bias)".into(),
                expected: vec![out_features],
                actual: bias.dims().to_vec(),
            });
        }
        Ok(Dense {
            grad_weight: Tensor::zeros(&[out_features, in_features]),
            grad_bias: Tensor::zeros(&[out_features]),
            weight,
            bias,
            in_features,
            out_features,
        })
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The weight matrix, shaped `[out_features, in_features]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Mutable access to the weight matrix (used by pruning / quantization).
    pub fn weight_mut(&mut self) -> &mut Tensor {
        &mut self.weight
    }

    /// The bias vector.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Mutable access to the bias vector.
    pub fn bias_mut(&mut self) -> &mut Tensor {
        &mut self.bias
    }

    /// Number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    /// Allocation-free forward pass: computes `W·x + b` (and, when
    /// `fuse_relu` is set, the ReLU of a following activation layer) into
    /// `out`. Bit-identical to [`Self::forward`] (+ separate ReLU when fused).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShapeMismatch`] when `input` does not have
    /// `in_features` elements or `out` does not have `out_features`.
    pub fn forward_into(&self, input: &[f32], out: &mut [f32], fuse_relu: bool) -> Result<()> {
        if input.len() != self.in_features {
            return Err(NnError::InputShapeMismatch {
                layer: "dense".into(),
                expected: vec![self.in_features],
                actual: vec![input.len()],
            });
        }
        if out.len() != self.out_features {
            return Err(NnError::InputShapeMismatch {
                layer: "dense(out)".into(),
                expected: vec![self.out_features],
                actual: vec![out.len()],
            });
        }
        ie_tensor::matvec_into(
            self.weight.as_slice(),
            input,
            out,
            self.out_features,
            self.in_features,
        );
        ie_tensor::add_bias_samples(out, self.bias.as_slice(), fuse_relu);
        Ok(())
    }

    /// Batched counterpart of [`Self::forward_into`]: `batch` input vectors
    /// sample-major in `input` (`[batch, in_features]`), results sample-major
    /// in `out` (`[batch, out_features]`). Each sample's result is
    /// bit-identical to a separate [`Self::forward_into`] call (the batched
    /// kernel runs the same lane-parallel dot product per row and sample, see
    /// [`ie_tensor::matvec_batch_into`]); the win is that each weight row is
    /// streamed from memory once per batch instead of once per sample.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShapeMismatch`] when a buffer length does not
    /// match `batch` copies of the layer shape.
    pub fn forward_batch_into(
        &self,
        input: &[f32],
        out: &mut [f32],
        batch: usize,
        fuse_relu: bool,
    ) -> Result<()> {
        if input.len() != self.in_features * batch {
            return Err(NnError::InputShapeMismatch {
                layer: "dense(batch)".into(),
                expected: vec![batch, self.in_features],
                actual: vec![input.len()],
            });
        }
        if out.len() != self.out_features * batch {
            return Err(NnError::InputShapeMismatch {
                layer: "dense(batch out)".into(),
                expected: vec![batch, self.out_features],
                actual: vec![out.len()],
            });
        }
        ie_tensor::matvec_batch_into(
            self.weight.as_slice(),
            input,
            out,
            self.out_features,
            self.in_features,
            batch,
        );
        ie_tensor::add_bias_samples(out, self.bias.as_slice(), fuse_relu);
        Ok(())
    }

    /// Forward pass for a flat input of `in_features` elements.
    ///
    /// Allocating wrapper over [`Self::forward_into`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShapeMismatch`] when the input length differs
    /// from `in_features`.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        if input.len() != self.in_features {
            return Err(NnError::InputShapeMismatch {
                layer: "dense".into(),
                expected: vec![self.in_features],
                actual: input.dims().to_vec(),
            });
        }
        let mut y = Tensor::zeros(&[self.out_features]);
        self.forward_into(input.as_slice(), y.as_mut_slice(), false)?;
        Ok(y)
    }

    /// Backward pass: accumulates weight/bias gradients and returns the
    /// gradient with respect to the input.
    ///
    /// # Errors
    ///
    /// Returns a shape error when `input` or `grad_output` have unexpected
    /// sizes.
    pub fn backward(&mut self, input: &Tensor, grad_output: &Tensor) -> Result<Tensor> {
        if grad_output.len() != self.out_features {
            return Err(NnError::InputShapeMismatch {
                layer: "dense(backward)".into(),
                expected: vec![self.out_features],
                actual: grad_output.dims().to_vec(),
            });
        }
        let flat_in = input.reshape(&[self.in_features])?;
        let flat_go = grad_output.reshape(&[self.out_features])?;
        // dW = grad_output ⊗ input
        let dw = flat_go.outer(&flat_in);
        self.grad_weight.add_scaled_inplace(&dw, 1.0)?;
        self.grad_bias.add_scaled_inplace(&flat_go, 1.0)?;
        // dx = Wᵀ · grad_output
        let wt = self.weight.transpose()?;
        let dx = wt.matvec(&flat_go)?;
        Ok(dx)
    }

    /// Allocation-free backward pass used by the training plans: accumulates
    /// `dW = grad_out ⊗ input` into `grad_w`, `db = grad_out` into `grad_b`,
    /// and — when `dx` is present — writes `dx = Wᵀ · grad_out` without
    /// materializing the transpose. `dx: None` skips the input-gradient
    /// product; the plan passes it for the network's first layer, whose
    /// input gradient nobody reads.
    ///
    /// `weight` is passed explicitly — normally [`Self::weight`], but the
    /// fake-quant training mode substitutes the quantize–dequantize round
    /// trip of the weights for the dx product while the full-precision
    /// master weights keep receiving the gradient (straight-through
    /// estimator). With `weight == self.weight`, every arithmetic operation
    /// matches [`Self::backward`] bit for bit: the accumulating outer
    /// product is one multiply + add per element like
    /// `outer` + `add_scaled_inplace(·, 1.0)`, and
    /// [`ie_tensor::matvec_t_into`] reproduces the lane-parallel dot product
    /// `Tensor::matvec` runs on the transposed rows, element for element.
    ///
    /// Buffer lengths are enforced by the underlying kernels (panics on
    /// mismatch — the plan pre-sizes everything).
    pub(crate) fn backward_slice_into(
        &self,
        weight: &[f32],
        input: &[f32],
        grad_out: &[f32],
        dx: Option<&mut [f32]>,
        grad_w: &mut [f32],
        grad_b: &mut [f32],
    ) {
        ie_tensor::outer_accumulate_into(grad_out, input, grad_w);
        ie_tensor::accumulate_slice_into(grad_b, grad_out);
        if let Some(dx) = dx {
            ie_tensor::matvec_t_into(weight, grad_out, dx, self.in_features, self.out_features);
        }
    }

    /// Forward pass with an explicit weight matrix (same shape as
    /// [`Self::weight`]) — the fake-quant training path substitutes the
    /// dequantised weight codes here while the bias stays full precision.
    /// With `weight == self.weight.as_slice()` this is bit-identical to
    /// [`Self::forward_into`] without ReLU fusion.
    pub(crate) fn forward_with_weight_into(&self, weight: &[f32], input: &[f32], out: &mut [f32]) {
        debug_assert_eq!(weight.len(), self.weight.len());
        debug_assert_eq!(input.len(), self.in_features);
        debug_assert_eq!(out.len(), self.out_features);
        ie_tensor::matvec_into(weight, input, out, self.out_features, self.in_features);
        ie_tensor::add_bias_samples(out, self.bias.as_slice(), false);
    }

    pub(crate) fn grad_weight_mut(&mut self) -> &mut Tensor {
        &mut self.grad_weight
    }

    pub(crate) fn grad_bias_mut(&mut self) -> &mut Tensor {
        &mut self.grad_bias
    }

    /// Accumulated weight gradient.
    pub fn grad_weight(&self) -> &Tensor {
        &self.grad_weight
    }

    /// Accumulated bias gradient.
    pub fn grad_bias(&self) -> &Tensor {
        &self.grad_bias
    }

    /// Applies one SGD step with the given learning rate and clears gradients.
    pub fn apply_gradients(&mut self, lr: f32) {
        for (w, g) in self.weight.as_mut_slice().iter_mut().zip(self.grad_weight.as_slice()) {
            *w -= lr * g;
        }
        for (b, g) in self.bias.as_mut_slice().iter_mut().zip(self.grad_bias.as_slice()) {
            *b -= lr * g;
        }
        self.zero_grad();
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.grad_weight.map_inplace(|_| 0.0);
        self.grad_bias.map_inplace(|_| 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn forward_matches_manual_computation() {
        let weight = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let bias = Tensor::from_vec(vec![0.5, -0.5], &[2]).unwrap();
        let layer = Dense::from_parameters(weight, bias).unwrap();
        let x = Tensor::from_vec(vec![1.0, 0.0, -1.0], &[3]).unwrap();
        let y = layer.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[-1.5, -2.5]);
    }

    #[test]
    fn forward_rejects_wrong_input_size() {
        let layer = Dense::new(&mut rng(), 4, 2);
        assert!(layer.forward(&Tensor::zeros(&[5])).is_err());
    }

    #[test]
    fn backward_gradients_match_finite_differences() {
        let mut r = rng();
        let mut layer = Dense::new(&mut r, 3, 2);
        let x = Tensor::randn(&mut r, &[3], 0.0, 1.0);
        // Loss = sum(forward(x)); dL/dy = ones.
        let ones = Tensor::ones(&[2]);
        layer.backward(&x, &ones).unwrap();
        let analytic = layer.grad_weight().clone();
        let eps = 1e-3;
        for i in 0..2 {
            for j in 0..3 {
                let mut bumped = layer.clone();
                let idx = i * 3 + j;
                bumped.weight_mut().as_mut_slice()[idx] += eps;
                let up = bumped.forward(&x).unwrap().sum();
                let mut bumped_down = layer.clone();
                bumped_down.weight_mut().as_mut_slice()[idx] -= eps;
                let down = bumped_down.forward(&x).unwrap().sum();
                let numeric = (up - down) / (2.0 * eps);
                let a = analytic.as_slice()[idx];
                assert!(
                    (numeric - a).abs() < 1e-2,
                    "dW[{i},{j}]: analytic {a} vs numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn backward_input_gradient_is_weight_transpose_times_grad() {
        let weight = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let bias = Tensor::zeros(&[2]);
        let mut layer = Dense::from_parameters(weight, bias).unwrap();
        let x = Tensor::from_vec(vec![1.0, 1.0], &[2]).unwrap();
        let go = Tensor::from_vec(vec![1.0, 0.0], &[2]).unwrap();
        let dx = layer.backward(&x, &go).unwrap();
        assert_eq!(dx.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn apply_gradients_moves_weights_and_clears() {
        let mut layer = Dense::new(&mut rng(), 2, 2);
        let before = layer.weight().clone();
        let x = Tensor::ones(&[2]);
        let go = Tensor::ones(&[2]);
        layer.backward(&x, &go).unwrap();
        layer.apply_gradients(0.1);
        assert_ne!(layer.weight(), &before);
        assert_eq!(layer.grad_weight().sum(), 0.0);
        assert_eq!(layer.grad_bias().sum(), 0.0);
    }

    #[test]
    fn from_parameters_validates_shapes() {
        let w = Tensor::zeros(&[2, 3]);
        assert!(Dense::from_parameters(w.clone(), Tensor::zeros(&[3])).is_err());
        assert!(Dense::from_parameters(Tensor::zeros(&[6]), Tensor::zeros(&[2])).is_err());
        assert!(Dense::from_parameters(w, Tensor::zeros(&[2])).is_ok());
    }
}
