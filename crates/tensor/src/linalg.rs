//! Matrix multiplication and vector products.
//!
//! The heavy kernels are exposed in two layers:
//!
//! * slice-level out-parameter kernels ([`gemm_into`], [`gemm_sparse_into`],
//!   [`matvec_into`]) that never allocate — these are what the execution-plan
//!   hot path in `ie_nn` drives against reusable [`crate::Workspace`] buffers;
//! * the allocating [`Tensor`] methods ([`Tensor::matmul`],
//!   [`Tensor::matvec`], …), which are thin wrappers that allocate the output
//!   once and delegate to the same kernels, so both paths produce bit-identical
//!   results.
//!
//! Every kernel is routed through the runtime ISA dispatch
//! ([`crate::dispatch`]): the portable tier is the safe-Rust implementation
//! below, the AVX2 tier recompiles the same register-tiled bodies with AVX2
//! enabled (8-lane `f32` vectors) — same scalar semantics, same accumulation
//! order, so results are bit-identical across tiers — and the sparse GEMM's
//! inner axpy additionally has an explicit-intrinsics AVX2 implementation
//! (separate multiply and add; no FMA contraction on any tier).
//!
//! The dense GEMM is cache-blocked (column panels of `B`, depth blocks of the
//! shared dimension) and register-tiled (6 rows of `A` per pass so each loaded
//! `B` element feeds 6 independent multiply–accumulate streams — 12 of the 16
//! AVX2 `ymm` registers hold accumulators). Per output element the
//! contributions are still accumulated in ascending order of the shared
//! dimension, exactly like the naive triple loop, so neither the blocking nor
//! the tile depth changes a single bit of the result for finite inputs.

use crate::dispatch::{self, IsaTier};
use crate::{Result, Tensor, TensorError};

/// Rows of `A` processed together by the register-tiled micro-kernel.
const GEMM_MR: usize = 6;
/// Columns of `B` covered by one register tile (two 8-lane vectors).
const GEMM_NR: usize = 16;
/// Depth (shared dimension) block size; bounds the `B` working set of one
/// column tile to `GEMM_KC · GEMM_NR` floats (16 KB), which fits L1.
const GEMM_KC: usize = 256;

fn check_gemm_lens(a: &[f32], b: &[f32], out: &[f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "gemm: lhs buffer length {} != {m}x{k}", a.len());
    assert_eq!(b.len(), k * n, "gemm: rhs buffer length {} != {k}x{n}", b.len());
    assert_eq!(out.len(), m * n, "gemm: out buffer length {} != {m}x{n}", out.len());
}

/// 6×16 register micro-kernel: accumulates rows `i..i+6`, columns
/// `jb..jb+16` of the product over the depth range `kb..kend`.
///
/// `panel` holds the `B` column panel for that range: depth index `p` reads
/// `panel[(p - kb) * panel_stride ..][..16]` — either a view straight into
/// `B` (`panel_stride == n`) or a packed contiguous copy
/// (`panel_stride == GEMM_NR`).
///
/// The accumulators are *loaded from* and *stored back to* `out`, so across
/// depth blocks every output element still receives its contributions in
/// ascending depth order — bit-identical to the naive triple loop.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn gemm_tile_6x16(
    a: &[f32],
    panel: &[f32],
    panel_stride: usize,
    out: &mut [f32],
    i: usize,
    jb: usize,
    kb: usize,
    kend: usize,
    k: usize,
    n: usize,
) {
    let mut acc = [[0.0f32; GEMM_NR]; GEMM_MR];
    if kb > 0 {
        for (r, acc_row) in acc.iter_mut().enumerate() {
            let row = (i + r) * n + jb;
            acc_row.copy_from_slice(&out[row..row + GEMM_NR]);
        }
    }
    let rows: [&[f32]; GEMM_MR] = core::array::from_fn(|r| &a[(i + r) * k..(i + r + 1) * k]);
    for p in kb..kend {
        let off = (p - kb) * panel_stride;
        let brow: &[f32; GEMM_NR] = panel[off..off + GEMM_NR].try_into().expect("tile width");
        for (acc_row, arow) in acc.iter_mut().zip(&rows) {
            let v = arow[p];
            for t in 0..GEMM_NR {
                acc_row[t] += v * brow[t];
            }
        }
    }
    for (r, acc_row) in acc.iter().enumerate() {
        let row = (i + r) * n + jb;
        out[row..row + GEMM_NR].copy_from_slice(acc_row);
    }
}

/// 1×16 register micro-kernel for the row remainder (`m % 6` rows); `panel`
/// addresses `B` exactly as in [`gemm_tile_6x16`].
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn gemm_tile_1x16(
    a: &[f32],
    panel: &[f32],
    panel_stride: usize,
    out: &mut [f32],
    i: usize,
    jb: usize,
    kb: usize,
    kend: usize,
    k: usize,
    n: usize,
) {
    let mut acc = [0.0f32; GEMM_NR];
    if kb > 0 {
        acc.copy_from_slice(&out[i * n + jb..i * n + jb + GEMM_NR]);
    }
    let arow = &a[i * k..(i + 1) * k];
    for (step, &v) in arow[kb..kend].iter().enumerate() {
        let off = step * panel_stride;
        let brow: &[f32; GEMM_NR] = panel[off..off + GEMM_NR].try_into().expect("tile width");
        for t in 0..GEMM_NR {
            acc[t] += v * brow[t];
        }
    }
    out[i * n + jb..i * n + jb + GEMM_NR].copy_from_slice(&acc);
}

/// Row tiles that must share one column panel before packing it pays for
/// itself (the packed copy is amortized across the row-tile sweep).
const GEMM_PACK_MIN_TILES: usize = 2;

/// Accumulates `A·B` into `out`, which the caller must have zeroed.
///
/// This body is compiled twice: once at the baseline feature level (the
/// portable tier) and once inside an `#[target_feature(enable = "avx2")]`
/// wrapper, where LLVM autovectorizes the same loops with 8-lane vectors.
/// Identical source, identical per-element operation order — bit-identical
/// output.
#[inline(always)]
fn gemm_accumulate_body(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    let n_main = n - n % GEMM_NR;
    // One column panel of `B` (`GEMM_KC x GEMM_NR`, 16 KB), packed contiguous
    // on the stack. For wide matrices — exactly what batched inference
    // produces — the panel rows sit `n` floats apart, so reading them once
    // into a dense panel turns every row-tile pass into contiguous L1
    // streaming. Packing only moves values; each tile still accumulates in
    // ascending depth order, so results stay bit-identical. With a single
    // row-tile sweep (or when the panel view is already the whole of `B`)
    // the copy cannot be amortized and the kernels read `B` in place — in
    // that case the buffer is never materialized, so small GEMMs skip its
    // 16 KB zero-fill entirely.
    let pack = m >= GEMM_PACK_MIN_TILES * GEMM_MR && n > GEMM_NR;
    let mut packed = if pack { Some([0.0f32; GEMM_KC * GEMM_NR]) } else { None };
    for kb in (0..k).step_by(GEMM_KC) {
        let kend = (kb + GEMM_KC).min(k);
        for jb in (0..n_main).step_by(GEMM_NR) {
            let (panel, panel_stride): (&[f32], usize) = if let Some(packed) = packed.as_mut() {
                for (p, row) in (kb..kend).zip(packed.chunks_exact_mut(GEMM_NR)) {
                    row.copy_from_slice(&b[p * n + jb..p * n + jb + GEMM_NR]);
                }
                (&packed[..], GEMM_NR)
            } else {
                (&b[kb * n + jb..], n)
            };
            let mut i = 0;
            while i + GEMM_MR <= m {
                gemm_tile_6x16(a, panel, panel_stride, out, i, jb, kb, kend, k, n);
                i += GEMM_MR;
            }
            while i < m {
                gemm_tile_1x16(a, panel, panel_stride, out, i, jb, kb, kend, k, n);
                i += 1;
            }
        }
        // Column remainder (n % 16): plain row-major accumulation in the same
        // ascending-depth order.
        if n_main < n {
            for i in 0..m {
                let arow = &a[i * k..(i + 1) * k];
                let orow = &mut out[i * n + n_main..(i + 1) * n];
                for p in kb..kend {
                    let v = arow[p];
                    let brow = &b[p * n + n_main..(p + 1) * n];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += v * bv;
                    }
                }
            }
        }
    }
}

/// The portable body of the sparsity-aware GEMM (see [`gemm_sparse_into`]).
#[inline(always)]
fn gemm_sparse_body(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for p in 0..k {
            let av = a[i * k + p];
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// AVX2 tier implementations. The GEMM and matvec wrappers recompile the
/// shared portable bodies with AVX2 enabled; the sparse axpy is written with
/// explicit intrinsics (broadcast + separate multiply and add per 8-lane
/// chunk — the exact scalar operation sequence, so results match bit for
/// bit).
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod x86 {
    use super::*;
    use core::arch::x86_64::*;

    /// Runs the AVX2 dense accumulation when the clamped tier allows it;
    /// returns `false` when the caller should take the portable path. Safe:
    /// the feature check sits right next to the `unsafe` call it justifies.
    pub(super) fn try_gemm_accumulate(
        tier: IsaTier,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) -> bool {
        if dispatch::clamp(tier) < IsaTier::Avx2 {
            return false;
        }
        // SAFETY: `clamp` only returns Avx2 or above when AVX2 is detected.
        unsafe { gemm_accumulate_avx2(a, b, out, m, k, n) };
        true
    }

    /// AVX2 sparse GEMM attempt; see [`try_gemm_accumulate`].
    pub(super) fn try_gemm_sparse(
        tier: IsaTier,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) -> bool {
        if dispatch::clamp(tier) < IsaTier::Avx2 {
            return false;
        }
        // SAFETY: `clamp` only returns Avx2 or above when AVX2 is detected.
        unsafe { gemm_sparse_avx2(a, b, out, m, k, n) };
        true
    }

    /// AVX2 matvec attempt; see [`try_gemm_accumulate`].
    pub(super) fn try_matvec(
        tier: IsaTier,
        a: &[f32],
        x: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
    ) -> bool {
        if dispatch::clamp(tier) < IsaTier::Avx2 {
            return false;
        }
        // SAFETY: `clamp` only returns Avx2 or above when AVX2 is detected.
        unsafe { matvec_avx2(a, x, out, m, k) };
        true
    }

    /// AVX2 batched matvec attempt; see [`try_gemm_accumulate`].
    pub(super) fn try_matvec_batch(
        tier: IsaTier,
        a: &[f32],
        xs: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        batch: usize,
    ) -> bool {
        if dispatch::clamp(tier) < IsaTier::Avx2 {
            return false;
        }
        // SAFETY: `clamp` only returns Avx2 or above when AVX2 is detected.
        unsafe { matvec_batch_f32_avx2(a, xs, out, m, k, batch) };
        true
    }

    /// AVX2 transposed matvec attempt; see [`try_gemm_accumulate`].
    pub(super) fn try_matvec_t(
        tier: IsaTier,
        a: &[f32],
        x: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
    ) -> bool {
        if dispatch::clamp(tier) < IsaTier::Avx2 {
            return false;
        }
        // SAFETY: `clamp` only returns Avx2 or above when AVX2 is detected.
        unsafe { matvec_t_avx2(a, x, out, m, k) };
        true
    }

    /// # Safety
    ///
    /// Caller must ensure AVX2 is supported.
    #[target_feature(enable = "avx2")]
    unsafe fn matvec_t_avx2(a: &[f32], x: &[f32], out: &mut [f32], m: usize, k: usize) {
        matvec_t_body(a, x, out, m, k);
    }

    /// # Safety
    ///
    /// Caller must ensure AVX2 is supported.
    #[target_feature(enable = "avx2")]
    unsafe fn gemm_accumulate_avx2(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        gemm_accumulate_body(a, b, out, m, k, n);
    }

    /// # Safety
    ///
    /// Caller must ensure AVX2 is supported.
    #[target_feature(enable = "avx2")]
    unsafe fn matvec_avx2(a: &[f32], x: &[f32], out: &mut [f32], m: usize, k: usize) {
        matvec_body(a, x, out, m, k);
    }

    /// # Safety
    ///
    /// Caller must ensure AVX2 is supported.
    #[target_feature(enable = "avx2")]
    unsafe fn matvec_batch_f32_avx2(
        a: &[f32],
        xs: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        batch: usize,
    ) {
        matvec_batch_body(a, xs, out, m, k, batch);
    }

    /// Sparsity-aware GEMM with the inner axpy in explicit 8-lane AVX2:
    /// `orow[j] += av · brow[j]` as a broadcast, a multiply and an add —
    /// two individually rounded operations per element, exactly like the
    /// scalar kernel (no FMA).
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is supported. Buffer lengths are validated by
    /// the dispatching wrapper.
    #[target_feature(enable = "avx2")]
    unsafe fn gemm_sparse_avx2(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        // Four independent 8-lane streams per step (32 floats): matches the
        // unroll depth LLVM picks for the portable body, so the explicit
        // kernel never falls behind it.
        let blocks = n / 32;
        let chunks = n / 8;
        for i in 0..m {
            let orow = &mut out[i * n..(i + 1) * n];
            for p in 0..k {
                let av = a[i * k + p];
                if av == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                let vav = _mm256_set1_ps(av);
                // SAFETY: block t covers [32t, 32t+32) and chunk c covers
                // [8c, 8c+8), both bounded by n — in bounds of `brow` and
                // `orow` (each n long).
                unsafe {
                    for t in 0..blocks {
                        let bp = brow.as_ptr().add(t * 32);
                        let op = orow.as_mut_ptr().add(t * 32);
                        let p0 = _mm256_mul_ps(vav, _mm256_loadu_ps(bp));
                        let p1 = _mm256_mul_ps(vav, _mm256_loadu_ps(bp.add(8)));
                        let p2 = _mm256_mul_ps(vav, _mm256_loadu_ps(bp.add(16)));
                        let p3 = _mm256_mul_ps(vav, _mm256_loadu_ps(bp.add(24)));
                        _mm256_storeu_ps(op, _mm256_add_ps(_mm256_loadu_ps(op), p0));
                        _mm256_storeu_ps(op.add(8), _mm256_add_ps(_mm256_loadu_ps(op.add(8)), p1));
                        _mm256_storeu_ps(
                            op.add(16),
                            _mm256_add_ps(_mm256_loadu_ps(op.add(16)), p2),
                        );
                        _mm256_storeu_ps(
                            op.add(24),
                            _mm256_add_ps(_mm256_loadu_ps(op.add(24)), p3),
                        );
                    }
                    for c in blocks * 4..chunks {
                        let bp = brow.as_ptr().add(c * 8);
                        let op = orow.as_mut_ptr().add(c * 8);
                        let prod = _mm256_mul_ps(vav, _mm256_loadu_ps(bp));
                        _mm256_storeu_ps(op, _mm256_add_ps(_mm256_loadu_ps(op), prod));
                    }
                }
                for j in chunks * 8..n {
                    orow[j] += av * brow[j];
                }
            }
        }
    }
}

/// Dispatches the dense accumulation to the requested (hardware-clamped)
/// tier. The VNNI tier has no dedicated `f32` GEMM — it runs the AVX2 one.
fn gemm_accumulate_tier(
    tier: IsaTier,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if x86::try_gemm_accumulate(tier, a, b, out, m, k, n) {
        return;
    }
    let _ = tier;
    gemm_accumulate_body(a, b, out, m, k, n);
}

/// Dense blocked GEMM: writes `A·B` into `out` without allocating.
///
/// `a` is `[m, k]`, `b` is `[k, n]` and `out` is `[m, n]`, all row-major.
/// The inner loop is an unconditional multiply–accumulate — no per-element
/// zero test — which is what dense (unpruned) weights want. Dispatched to the
/// active ISA tier; every tier is bit-identical (see [`crate::dispatch`]).
///
/// # Panics
///
/// Panics when a buffer length does not match its `m`/`k`/`n` dimensions.
pub fn gemm_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_into_tier(dispatch::active(), a, b, out, m, k, n);
}

/// [`gemm_into`] on an explicitly chosen ISA tier (clamped to the hardware) —
/// the entry point the tier-equivalence tests and kernel benchmarks drive.
///
/// # Panics
///
/// Panics when a buffer length does not match its `m`/`k`/`n` dimensions.
pub fn gemm_into_tier(
    tier: IsaTier,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    check_gemm_lens(a, b, out, m, k, n);
    out.fill(0.0);
    gemm_accumulate_tier(tier, a, b, out, m, k, n);
}

/// Sparsity-aware GEMM: like [`gemm_into`] but skips the whole `B`-row
/// contribution whenever the corresponding `A` element is exactly zero.
///
/// Channel pruning zeroes large contiguous runs of the filter matrix, so on
/// pruned weights the skip pays for its branch many times over; on dense
/// weights it is a pure branch-misprediction tax, which is why the dense path
/// uses [`gemm_into`] instead. For finite inputs both kernels produce
/// identical sums (a skipped term contributes exactly `±0.0`). The surviving
/// rows' axpy runs 8 lanes wide on the AVX2 tier (explicit intrinsics,
/// bit-identical to the portable loop).
///
/// # Panics
///
/// Panics when a buffer length does not match its `m`/`k`/`n` dimensions.
pub fn gemm_sparse_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_sparse_into_tier(dispatch::active(), a, b, out, m, k, n);
}

/// [`gemm_sparse_into`] on an explicitly chosen ISA tier (clamped to the
/// hardware).
///
/// # Panics
///
/// Panics when a buffer length does not match its `m`/`k`/`n` dimensions.
pub fn gemm_sparse_into_tier(
    tier: IsaTier,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    check_gemm_lens(a, b, out, m, k, n);
    out.fill(0.0);
    #[cfg(target_arch = "x86_64")]
    if x86::try_gemm_sparse(tier, a, b, out, m, k, n) {
        return;
    }
    let _ = tier;
    gemm_sparse_body(a, b, out, m, k, n);
}

/// Lanes of the vectorised dot product.
const DOT_LANES: usize = 8;

/// Dot product with eight parallel accumulator lanes and a fixed reduction
/// tree. The lane split lets LLVM vectorise the reduction (a strictly
/// sequential float sum cannot be vectorised without reassociation); the
/// reduction order is a deterministic function of the length only, so results
/// are reproducible across runs and identical for every caller and tier.
#[inline(always)]
fn dot_lanes(a: &[f32], b: &[f32]) -> f32 {
    let chunks = a.len() / DOT_LANES;
    let mut acc = [0.0f32; DOT_LANES];
    for c in 0..chunks {
        let av: &[f32; DOT_LANES] =
            a[c * DOT_LANES..(c + 1) * DOT_LANES].try_into().expect("lane width");
        let bv: &[f32; DOT_LANES] =
            b[c * DOT_LANES..(c + 1) * DOT_LANES].try_into().expect("lane width");
        for t in 0..DOT_LANES {
            acc[t] += av[t] * bv[t];
        }
    }
    let mut sum = ((acc[0] + acc[4]) + (acc[2] + acc[6])) + ((acc[1] + acc[5]) + (acc[3] + acc[7]));
    for i in chunks * DOT_LANES..a.len() {
        sum += a[i] * b[i];
    }
    sum
}

/// Portable body of [`matvec_into`] (recompiled for AVX2 by the dispatcher).
#[inline(always)]
fn matvec_body(a: &[f32], x: &[f32], out: &mut [f32], m: usize, k: usize) {
    let _ = m;
    for (o, row) in out.iter_mut().zip(a.chunks_exact(k)) {
        *o = dot_lanes(row, x);
    }
}

/// Portable body of [`matvec_batch_into`].
#[inline(always)]
fn matvec_batch_body(a: &[f32], xs: &[f32], out: &mut [f32], m: usize, k: usize, batch: usize) {
    for (i, row) in a.chunks_exact(k).enumerate() {
        for s in 0..batch {
            out[s * m + i] = dot_lanes(row, &xs[s * k..(s + 1) * k]);
        }
    }
}

/// Matrix–vector product into a caller-provided buffer: `a` is `[m, k]`, `x`
/// has `k` elements, `out` has `m` elements. Never allocates.
///
/// Uses the lane-parallel dot product ([`dot_lanes`]): deterministic, but the
/// summation order differs from a strictly sequential fold.
///
/// # Panics
///
/// Panics when a buffer length does not match its dimensions.
pub fn matvec_into(a: &[f32], x: &[f32], out: &mut [f32], m: usize, k: usize) {
    matvec_into_tier(dispatch::active(), a, x, out, m, k);
}

/// [`matvec_into`] on an explicitly chosen ISA tier (clamped to the
/// hardware).
///
/// # Panics
///
/// Panics when a buffer length does not match its dimensions.
pub fn matvec_into_tier(tier: IsaTier, a: &[f32], x: &[f32], out: &mut [f32], m: usize, k: usize) {
    assert_eq!(a.len(), m * k, "matvec: matrix buffer length {} != {m}x{k}", a.len());
    assert_eq!(x.len(), k, "matvec: vector length {} != {k}", x.len());
    assert_eq!(out.len(), m, "matvec: out length {} != {m}", out.len());
    if k == 0 {
        out.fill(0.0);
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if x86::try_matvec(tier, a, x, out, m, k) {
        return;
    }
    let _ = tier;
    matvec_body(a, x, out, m, k);
}

/// Batched matrix–vector product: one shared `[m, k]` matrix against `batch`
/// input vectors. `xs` holds the vectors sample-major (`[batch, k]`), `out`
/// receives the products sample-major (`[batch, m]`). Never allocates.
///
/// Each `(row, sample)` dot product runs through the same lane-parallel
/// kernel as [`matvec_into`], so every sample's result is bit-identical to a
/// separate `matvec_into` call. The loop is row-major over the matrix with
/// the samples innermost: each matrix row is streamed from memory once per
/// batch instead of once per sample, which is where batched dense layers win.
///
/// # Panics
///
/// Panics when a buffer length does not match its dimensions.
pub fn matvec_batch_into(a: &[f32], xs: &[f32], out: &mut [f32], m: usize, k: usize, batch: usize) {
    matvec_batch_into_tier(dispatch::active(), a, xs, out, m, k, batch);
}

/// [`matvec_batch_into`] on an explicitly chosen ISA tier (clamped to the
/// hardware).
///
/// # Panics
///
/// Panics when a buffer length does not match its dimensions.
pub fn matvec_batch_into_tier(
    tier: IsaTier,
    a: &[f32],
    xs: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    batch: usize,
) {
    assert_eq!(a.len(), m * k, "matvec_batch: matrix buffer length {} != {m}x{k}", a.len());
    assert_eq!(xs.len(), batch * k, "matvec_batch: vectors length {} != {batch}x{k}", xs.len());
    assert_eq!(out.len(), batch * m, "matvec_batch: out length {} != {batch}x{m}", out.len());
    if k == 0 {
        out.fill(0.0);
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if x86::try_matvec_batch(tier, a, xs, out, m, k, batch) {
        return;
    }
    let _ = tier;
    matvec_batch_body(a, xs, out, m, k, batch);
}

/// Output rows [`matvec_t_into`] processes per pass (8 lane-partials of this
/// width live on the stack: 2 KB).
const MT_BLOCK: usize = 64;

/// Portable body of [`matvec_t_into`]: for every output column block it
/// replays [`dot_lanes`] on the *columns* of `a` — lane `t` accumulates depth
/// indices `p ≡ t (mod 8)` in ascending order, the lanes combine through the
/// identical fixed reduction tree, and the `k % 8` tail folds in afterwards —
/// so each output element is bit-for-bit `dot_lanes(column, x)` without ever
/// materializing the transposed matrix.
#[inline(always)]
fn matvec_t_body(a: &[f32], x: &[f32], out: &mut [f32], m: usize, k: usize) {
    let chunks = k / DOT_LANES;
    let mut ib = 0usize;
    while ib < m {
        let bw = MT_BLOCK.min(m - ib);
        let mut acc = [[0.0f32; MT_BLOCK]; DOT_LANES];
        for c in 0..chunks {
            for (t, lane) in acc.iter_mut().enumerate() {
                let p = c * DOT_LANES + t;
                let xv = x[p];
                let arow = &a[p * m + ib..p * m + ib + bw];
                for (o, &av) in lane[..bw].iter_mut().zip(arow) {
                    *o += xv * av;
                }
            }
        }
        let orow = &mut out[ib..ib + bw];
        for (j, o) in orow.iter_mut().enumerate() {
            *o = ((acc[0][j] + acc[4][j]) + (acc[2][j] + acc[6][j]))
                + ((acc[1][j] + acc[5][j]) + (acc[3][j] + acc[7][j]));
        }
        for p in chunks * DOT_LANES..k {
            let xv = x[p];
            let arow = &a[p * m + ib..p * m + ib + bw];
            for (o, &av) in orow.iter_mut().zip(arow) {
                *o += xv * av;
            }
        }
        ib += bw;
    }
}

/// Transposed matrix–vector product: writes `Aᵀ·x` into `out` without
/// materializing the transpose. `a` is `[k, m]` row-major, `x` has `k`
/// elements and `out` has `m`. Never allocates.
///
/// Each output element reproduces [`matvec_into`]'s lane-parallel dot product
/// (same lane assignment, same reduction tree, same tail order) on the
/// corresponding column of `a` — bit-identical to
/// [`transpose_into`](crate::transpose_into) + [`matvec_into`], minus the
/// transposed copy. This is what the training plans use for the dense
/// input-gradient product `dx = Wᵀ·g`.
///
/// # Panics
///
/// Panics when a buffer length does not match its dimensions.
pub fn matvec_t_into(a: &[f32], x: &[f32], out: &mut [f32], m: usize, k: usize) {
    matvec_t_into_tier(dispatch::active(), a, x, out, m, k);
}

/// [`matvec_t_into`] on an explicitly chosen ISA tier (clamped to the
/// hardware).
///
/// # Panics
///
/// Panics when a buffer length does not match its dimensions.
pub fn matvec_t_into_tier(
    tier: IsaTier,
    a: &[f32],
    x: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
) {
    assert_eq!(a.len(), k * m, "matvec_t: matrix buffer length {} != {k}x{m}", a.len());
    assert_eq!(x.len(), k, "matvec_t: vector length {} != {k}", x.len());
    assert_eq!(out.len(), m, "matvec_t: out length {} != {m}", out.len());
    if k == 0 {
        out.fill(0.0);
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if x86::try_matvec_t(tier, a, x, out, m, k) {
        return;
    }
    let _ = tier;
    matvec_t_body(a, x, out, m, k);
}

impl Tensor {
    fn check_matmul(&self, other: &Tensor) -> Result<(usize, usize, usize)> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: self.shape().rank() });
        }
        if other.shape().rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: other.shape().rank() });
        }
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch { left_cols: k, right_rows: k2 });
        }
        Ok((m, k, n))
    }

    /// Matrix product of two rank-2 tensors.
    ///
    /// Allocates the result once and delegates to the dense blocked kernel
    /// ([`gemm_into`]); use [`Tensor::matmul_into`] to reuse an output buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] when either operand is not a
    /// matrix and [`TensorError::MatmulDimMismatch`] when the inner
    /// dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        let (m, k, n) = self.check_matmul(other)?;
        let mut out = vec![0.0f32; m * n];
        gemm_accumulate_tier(
            dispatch::active(),
            self.as_slice(),
            other.as_slice(),
            &mut out,
            m,
            k,
            n,
        );
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix product written into `out`, which must already be `[m, n]`.
    ///
    /// Bit-identical to [`Tensor::matmul`]; allocates nothing.
    ///
    /// # Errors
    ///
    /// Returns shape errors as [`Tensor::matmul`] does, plus
    /// [`TensorError::ShapeMismatch`] when `out` has the wrong shape.
    pub fn matmul_into(&self, other: &Tensor, out: &mut Tensor) -> Result<()> {
        let (m, k, n) = self.check_matmul(other)?;
        if out.dims() != [m, n] {
            return Err(TensorError::ShapeMismatch {
                left: out.dims().to_vec(),
                right: vec![m, n],
            });
        }
        gemm_into(self.as_slice(), other.as_slice(), out.as_mut_slice(), m, k, n);
        Ok(())
    }

    /// Matrix product that skips zero elements of `self` (see
    /// [`gemm_sparse_into`]). Intended for the pruned-weight path, where
    /// channel pruning has zeroed large runs of the left operand; on dense
    /// operands prefer [`Tensor::matmul`]. Agrees with [`Tensor::matmul`] on
    /// all finite inputs.
    ///
    /// # Errors
    ///
    /// Returns the same shape errors as [`Tensor::matmul`].
    pub fn matmul_sparse_aware(&self, other: &Tensor) -> Result<Tensor> {
        let (m, k, n) = self.check_matmul(other)?;
        let mut out = Tensor::zeros(&[m, n]);
        gemm_sparse_into(self.as_slice(), other.as_slice(), out.as_mut_slice(), m, k, n);
        Ok(out)
    }

    fn check_matvec(&self, vec: &Tensor) -> Result<(usize, usize)> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: self.shape().rank() });
        }
        let (m, k) = (self.dims()[0], self.dims()[1]);
        if vec.len() != k {
            return Err(TensorError::MatmulDimMismatch { left_cols: k, right_rows: vec.len() });
        }
        Ok((m, k))
    }

    /// Matrix–vector product: `self` must be `[m, k]`, `vec` must have `k`
    /// elements; the result has `m` elements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] or
    /// [`TensorError::MatmulDimMismatch`] on incompatible shapes.
    pub fn matvec(&self, vec: &Tensor) -> Result<Tensor> {
        let (m, k) = self.check_matvec(vec)?;
        let mut out = Tensor::zeros(&[m]);
        matvec_into(self.as_slice(), vec.as_slice(), out.as_mut_slice(), m, k);
        Ok(out)
    }

    /// Matrix–vector product written into `out`, which must have `m` elements.
    ///
    /// Bit-identical to [`Tensor::matvec`]; allocates nothing.
    ///
    /// # Errors
    ///
    /// Returns the same shape errors as [`Tensor::matvec`], plus
    /// [`TensorError::ShapeMismatch`] when `out` has the wrong length.
    pub fn matvec_into(&self, vec: &Tensor, out: &mut Tensor) -> Result<()> {
        let (m, k) = self.check_matvec(vec)?;
        if out.len() != m {
            return Err(TensorError::ShapeMismatch { left: out.dims().to_vec(), right: vec![m] });
        }
        matvec_into(self.as_slice(), vec.as_slice(), out.as_mut_slice(), m, k);
        Ok(())
    }

    /// Dot product of two equally sized tensors (flattened).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the element counts differ.
    pub fn dot(&self, other: &Tensor) -> Result<f32> {
        if self.len() != other.len() {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        Ok(self.as_slice().iter().zip(other.as_slice()).map(|(&a, &b)| a * b).sum())
    }

    /// Outer product of two vectors: result is `[self.len(), other.len()]`.
    pub fn outer(&self, other: &Tensor) -> Tensor {
        let m = self.len();
        let n = other.len();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a = self.as_slice()[i];
            for j in 0..n {
                out[i * n + j] = a * other.as_slice()[j];
            }
        }
        Tensor::from_vec(out, &[m, n]).expect("outer product shape is consistent")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_small_known_result() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::from_vec(vec![1.0, -2.0, 3.5, 0.0], &[2, 2]).unwrap();
        let c = a.matmul(&Tensor::eye(2)).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(a.matmul(&b).is_err());
        let v = Tensor::zeros(&[3]);
        assert!(v.matmul(&a).is_err());
    }

    #[test]
    fn matmul_into_matches_matmul_and_validates_out() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Tensor::randn(&mut rng, &[7, 9], 0.0, 1.0);
        let b = Tensor::randn(&mut rng, &[9, 11], 0.0, 1.0);
        let reference = a.matmul(&b).unwrap();
        let mut out = Tensor::zeros(&[7, 11]);
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!(out, reference);
        let mut wrong = Tensor::zeros(&[7, 10]);
        assert!(a.matmul_into(&b, &mut wrong).is_err());
    }

    #[test]
    fn sparse_aware_matmul_agrees_with_dense_on_pruned_weights() {
        // A pruned-looking matrix: whole input-channel blocks zeroed, exactly
        // what channel pruning produces. Dense and sparse-aware kernels must
        // agree bit for bit.
        let mut rng = StdRng::seed_from_u64(6);
        let mut a = Tensor::randn(&mut rng, &[6, 20], 0.0, 1.0);
        for (i, v) in a.as_mut_slice().iter_mut().enumerate() {
            if (i / 5) % 2 == 0 {
                *v = 0.0;
            }
        }
        let b = Tensor::randn(&mut rng, &[20, 13], 0.0, 1.0);
        let dense = a.matmul(&b).unwrap();
        let sparse = a.matmul_sparse_aware(&b).unwrap();
        assert_eq!(dense.dims(), sparse.dims());
        assert_eq!(dense.as_slice(), sparse.as_slice());
    }

    #[test]
    fn blocked_gemm_handles_sizes_around_the_block_boundaries() {
        // Exercise the register-tile remainder (m % 6 != 0) and panel edges.
        let mut rng = StdRng::seed_from_u64(7);
        for (m, k, n) in [
            (1, 1, 1),
            (3, 5, 2),
            (4, 128, 256),
            (5, 129, 257),
            (6, 64, 64),
            (7, 33, 48),
            (8, 260, 300),
            (13, 70, 100),
        ] {
            let a = Tensor::randn(&mut rng, &[m, k], 0.0, 1.0);
            let b = Tensor::randn(&mut rng, &[k, n], 0.0, 1.0);
            let blocked = a.matmul(&b).unwrap();
            // Naive reference computed with the same accumulation order.
            let (av, bv) = (a.as_slice(), b.as_slice());
            let mut naive = vec![0.0f32; m * n];
            for i in 0..m {
                for p in 0..k {
                    for j in 0..n {
                        naive[i * n + j] += av[i * k + p] * bv[p * n + j];
                    }
                }
            }
            assert_eq!(blocked.as_slice(), &naive[..], "shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let x = Tensor::from_vec(vec![1.0, 0.0, -1.0], &[3]).unwrap();
        let y = a.matvec(&x).unwrap();
        assert_eq!(y.as_slice(), &[-2.0, -2.0]);
        let mut out = Tensor::zeros(&[2]);
        a.matvec_into(&x, &mut out).unwrap();
        assert_eq!(out.as_slice(), y.as_slice());
        let mut wrong = Tensor::zeros(&[3]);
        assert!(a.matvec_into(&x, &mut wrong).is_err());
    }

    #[test]
    fn batched_matvec_is_bit_identical_to_per_sample_matvec() {
        let mut rng = StdRng::seed_from_u64(8);
        for (m, k, batch) in [(1, 1, 1), (5, 17, 3), (8, 64, 8), (3, 9, 16)] {
            let a = Tensor::randn(&mut rng, &[m, k], 0.0, 1.0);
            let xs = Tensor::randn(&mut rng, &[batch, k], 0.0, 1.0);
            let mut batched = vec![0.0f32; batch * m];
            matvec_batch_into(a.as_slice(), xs.as_slice(), &mut batched, m, k, batch);
            for s in 0..batch {
                let mut single = vec![0.0f32; m];
                matvec_into(a.as_slice(), &xs.as_slice()[s * k..(s + 1) * k], &mut single, m, k);
                assert_eq!(
                    batched[s * m..(s + 1) * m].iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    single.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "sample {s} of {m}x{k} batch {batch}"
                );
            }
        }
        // k == 0 zero-fills like matvec_into.
        let mut out = vec![1.0f32; 4];
        matvec_batch_into(&[], &[], &mut out, 2, 0, 2);
        assert_eq!(out, vec![0.0; 4]);
    }

    #[test]
    fn transposed_matvec_is_bit_identical_to_transpose_then_matvec() {
        let mut rng = StdRng::seed_from_u64(22);
        // Exercise the lane tail (k % 8 != 0) and the MT_BLOCK row remainder.
        for (m, k) in [(1, 1), (3, 9), (64, 64), (65, 8), (512, 128), (100, 70), (130, 257)] {
            let a = Tensor::randn(&mut rng, &[k, m], 0.0, 1.0);
            let x = Tensor::randn(&mut rng, &[k], 0.0, 1.0);
            let mut at = vec![0.0f32; k * m];
            crate::transpose_into(a.as_slice(), k, m, &mut at);
            let mut reference = vec![0.0f32; m];
            matvec_into(&at, x.as_slice(), &mut reference, m, k);
            let mut out = vec![f32::NAN; m];
            matvec_t_into(a.as_slice(), x.as_slice(), &mut out, m, k);
            assert_eq!(
                out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "shape {m}x{k}"
            );
        }
        // k == 0 zero-fills like matvec_into.
        let mut out = vec![1.0f32; 4];
        matvec_t_into(&[], &[], &mut out, 4, 0);
        assert_eq!(out, vec![0.0; 4]);
    }

    #[test]
    fn dot_and_outer() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        assert_eq!(a.dot(&b).unwrap(), 11.0);
        let o = a.outer(&b);
        assert_eq!(o.dims(), &[2, 2]);
        assert_eq!(o.as_slice(), &[3.0, 4.0, 6.0, 8.0]);
        let c = Tensor::zeros(&[3]);
        assert!(a.dot(&c).is_err());
    }
}
