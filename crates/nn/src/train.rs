//! A small training loop for multi-exit networks on in-memory datasets, plus
//! the batched, sharded multi-threaded dataset evaluator.

use crate::dataset::Sample;
use crate::quant::QuantConfig;
use crate::{BackwardPlan, BatchPlan, GradStore, MultiExitNetwork, NnError, Result, Sgd};
use ie_tensor::Tensor;

/// Configuration of a multi-exit training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training split.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// Per-epoch multiplicative learning-rate decay.
    pub lr_decay: f32,
    /// Mini-batch size (gradients are averaged over the batch).
    pub batch_size: usize,
    /// Loss weight of each exit. Must have one entry per exit; the usual
    /// multi-exit objective weights every exit equally.
    pub exit_weights: Vec<f32>,
}

impl TrainConfig {
    /// A reasonable default configuration for the given number of exits.
    pub fn for_exits(num_exits: usize) -> Self {
        TrainConfig {
            epochs: 10,
            learning_rate: 0.05,
            lr_decay: 0.95,
            batch_size: 8,
            exit_weights: vec![1.0; num_exits],
        }
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Epoch index, starting at 0.
    pub epoch: usize,
    /// Mean combined loss over the epoch.
    pub mean_loss: f32,
    /// Test accuracy of each exit after the epoch.
    pub exit_accuracy: Vec<f32>,
}

/// Trains `network` on the training samples and evaluates each exit on the
/// test samples after every epoch.
///
/// # Errors
///
/// Propagates layer shape errors or invalid labels from the dataset.
pub fn train(
    network: &mut MultiExitNetwork,
    train_set: &[Sample],
    test_set: &[Sample],
    config: &TrainConfig,
) -> Result<Vec<EpochStats>> {
    let mut sgd = Sgd::new(config.learning_rate).with_decay(config.lr_decay);
    let mut history = Vec::with_capacity(config.epochs);
    for epoch in 0..config.epochs {
        let mut total_loss = 0.0;
        let mut count = 0usize;
        for batch in train_set.chunks(config.batch_size.max(1)) {
            for sample in batch {
                total_loss +=
                    network.backward(&sample.image, sample.label, &config.exit_weights)?;
                count += 1;
            }
            // Average the gradient over the batch by scaling the step.
            network.apply_gradients(sgd.learning_rate() / batch.len() as f32);
        }
        sgd.end_epoch();
        let exit_accuracy = evaluate(network, test_set)?;
        history.push(EpochStats {
            epoch,
            mean_loss: if count > 0 { total_loss / count as f32 } else { 0.0 },
            exit_accuracy,
        });
    }
    Ok(history)
}

/// Evaluates the accuracy of every exit on the given samples.
///
/// Runs the planned (allocation-free) forward path — one
/// [`crate::ExecutionPlan`] is built up front and reused across every sample,
/// so the evaluation loop itself performs no per-sample tensor allocations.
/// Accuracies are identical to running the allocating
/// [`MultiExitNetwork::forward_all`] per sample, because the planned path is
/// bit-identical to it.
///
/// # Errors
///
/// Propagates layer shape errors.
pub fn evaluate(network: &MultiExitNetwork, samples: &[Sample]) -> Result<Vec<f32>> {
    let num_exits = network.num_exits();
    let mut plan = network.execution_plan();
    let mut correct = vec![0usize; num_exits];
    for sample in samples {
        network.forward_all_with(&mut plan, &sample.image, |out| {
            correct[out.exit] += usize::from(out.prediction == sample.label);
        })?;
    }
    if samples.is_empty() {
        return Ok(vec![0.0; num_exits]);
    }
    Ok(correct.iter().map(|&c| c as f32 / samples.len() as f32).collect())
}

/// Default batch size of the batched evaluators (8 samples per widened pass).
pub const DEFAULT_EVAL_BATCH: usize = 8;

/// Classification of a thread-count override read from the environment
/// (see [`classify_thread_override`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThreadOverride {
    /// The variable is not set — use the default.
    Unset,
    /// A valid positive-integer override.
    Threads(usize),
    /// The variable is set but unusable. Callers fall back to the default
    /// and should surface the problem once instead of swallowing it.
    Invalid {
        /// The raw value found in the environment.
        value: String,
        /// Why it was rejected.
        reason: &'static str,
    },
}

/// Classifies a thread-count override: `None` is [`ThreadOverride::Unset`],
/// a positive integer is [`ThreadOverride::Threads`], and anything else —
/// including an explicit `0`, which would deadlock a sharded evaluation —
/// is [`ThreadOverride::Invalid`] with the reason.
pub fn classify_thread_override(value: Option<&str>) -> ThreadOverride {
    let Some(raw) = value else { return ThreadOverride::Unset };
    match raw.trim().parse::<usize>() {
        Ok(0) => ThreadOverride::Invalid {
            value: raw.to_string(),
            reason: "thread count must be at least 1",
        },
        Ok(n) => ThreadOverride::Threads(n),
        Err(_) => {
            ThreadOverride::Invalid { value: raw.to_string(), reason: "not a positive integer" }
        }
    }
}

/// Default worker-thread count when no override is set: the machine's
/// available parallelism capped at 4.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get().min(4)).unwrap_or(1)
}

/// Resolves a thread-count environment knob (`IE_EVAL_THREADS`,
/// `IE_SERVE_THREADS`, `IE_FLEET_THREADS`, …): the variable's value when it
/// is a positive integer, otherwise [`default_threads`]. A set-but-invalid
/// value (including `0`, which would deadlock a sharded evaluation) falls
/// back to the default and warns once *per variable* on stderr instead of
/// being silently swallowed. Every consumer goes through this one helper so
/// the knobs cannot drift in parsing or fallback behaviour; none of them
/// ever changes results — the sharded reductions are deterministic — so
/// these are pure throughput knobs.
pub fn threads_from_env(var: &'static str) -> usize {
    match classify_thread_override(std::env::var(var).ok().as_deref()) {
        ThreadOverride::Threads(n) => n,
        ThreadOverride::Unset => default_threads(),
        ThreadOverride::Invalid { value, reason } => {
            let fallback = default_threads();
            static WARNED: std::sync::OnceLock<std::sync::Mutex<Vec<&'static str>>> =
                std::sync::OnceLock::new();
            let mut warned = WARNED
                .get_or_init(|| std::sync::Mutex::new(Vec::new()))
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            if !warned.contains(&var) {
                warned.push(var);
                eprintln!(
                    "warning: ignoring {var}={value:?} ({reason}); \
                     falling back to {fallback} worker threads"
                );
            }
            fallback
        }
    }
}

/// Worker-thread count for sharded evaluation: `IE_EVAL_THREADS` via
/// [`threads_from_env`] (what the CI thread-matrix job varies).
pub fn eval_threads() -> usize {
    threads_from_env("IE_EVAL_THREADS")
}

/// A reusable pool of per-worker [`BatchPlan`]s for the sharded evaluators.
///
/// `evaluate_batched` historically rebuilt one plan per worker on **every**
/// call; a search loop scores thousands of candidate policies, so those
/// buffers were re-allocated thousands of times. A pool owned by the caller
/// (e.g. the accuracy estimator) keeps the warmed plans across calls:
/// compression changes a network's weights but never its architecture, so
/// the same plans serve every candidate policy. Incompatible or undersized
/// plans are dropped and rebuilt transparently.
///
/// Plans in the pool are plain `f32` plans; quantized plans bake per-policy
/// weights in and are rebuilt per evaluation instead.
#[derive(Debug, Default)]
pub struct BatchPlanPool {
    plans: Vec<BatchPlan>,
}

impl BatchPlanPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        BatchPlanPool::default()
    }

    /// Number of plans currently pooled.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Returns `true` when no plans are pooled yet.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Hands out `count` plans compatible with `network` and `batch`,
    /// reusing pooled ones and building only what is missing.
    fn ensure(
        &mut self,
        network: &MultiExitNetwork,
        batch: usize,
        count: usize,
    ) -> &mut [BatchPlan] {
        self.plans.retain(|p| p.is_compatible(network) && p.max_batch() >= batch);
        while self.plans.len() < count {
            self.plans.push(BatchPlan::for_architecture(network.architecture(), batch));
        }
        &mut self.plans[..count]
    }

    /// Hands one warmed plan compatible with `network` and `batch` out of the
    /// pool, building a fresh one when nothing pooled fits. Ownership moves
    /// to the caller — this is the serve-worker handoff: each worker takes a
    /// plan at startup, owns it for its lifetime, and [`BatchPlanPool::put`]s
    /// it back on shutdown.
    pub fn take(&mut self, network: &MultiExitNetwork, batch: usize) -> BatchPlan {
        match self.plans.iter().position(|p| p.is_compatible(network) && p.max_batch() >= batch) {
            Some(i) => self.plans.swap_remove(i),
            None => BatchPlan::for_architecture(network.architecture(), batch),
        }
    }

    /// Returns a plan to the pool for later reuse.
    pub fn put(&mut self, plan: BatchPlan) {
        self.plans.push(plan);
    }
}

/// The shared shard/reduce skeleton of the batched evaluators: splits the
/// samples into one contiguous shard per plan, runs each shard through its
/// plan (inline for a single worker, scoped threads otherwise) and reduces
/// the per-shard correct counts in shard order.
fn evaluate_with_plans(
    network: &MultiExitNetwork,
    samples: &[Sample],
    batch: usize,
    plans: &mut [BatchPlan],
) -> Result<Vec<f32>> {
    let num_exits = network.num_exits();
    let eval_shard = |shard: &[Sample], plan: &mut BatchPlan| -> Result<Vec<usize>> {
        let mut correct = vec![0usize; num_exits];
        let mut refs: Vec<&Tensor> = Vec::with_capacity(batch);
        for chunk in shard.chunks(batch) {
            refs.clear();
            refs.extend(chunk.iter().map(|s| &s.image));
            network.forward_all_batch_with(plan, &refs, |out| {
                for (i, sample) in chunk.iter().enumerate() {
                    correct[out.exit()] += usize::from(out.prediction(i) == sample.label);
                }
            })?;
        }
        Ok(correct)
    };
    let threads = plans.len();
    let counts: Vec<Result<Vec<usize>>> = if threads == 1 {
        vec![eval_shard(samples, &mut plans[0])]
    } else {
        join_sharded(samples, plans, eval_shard)
    };
    let mut total = vec![0usize; num_exits];
    for shard_counts in counts {
        for (t, c) in total.iter_mut().zip(shard_counts?) {
            *t += c;
        }
    }
    Ok(total.iter().map(|&c| c as f32 / samples.len() as f32).collect())
}

/// The scoped-thread shard/join skeleton: one contiguous shard per plan,
/// results collected in shard order. A panicking worker is caught at join
/// and surfaced as [`NnError::WorkerPanic`] naming the worker and its shard
/// instead of aborting the whole process — a serving loop that shares this
/// path must degrade gracefully, not die.
fn join_sharded<F>(
    samples: &[Sample],
    plans: &mut [BatchPlan],
    eval_shard: F,
) -> Vec<Result<Vec<usize>>>
where
    F: Fn(&[Sample], &mut BatchPlan) -> Result<Vec<usize>> + Sync,
{
    let shard_len = samples.len().div_ceil(plans.len());
    let eval_shard = &eval_shard;
    std::thread::scope(|scope| {
        let handles: Vec<_> = samples
            .chunks(shard_len)
            .zip(plans.iter_mut())
            .enumerate()
            .map(|(worker, (shard, plan))| {
                (worker, shard.len(), scope.spawn(move || eval_shard(shard, plan)))
            })
            .collect();
        handles
            .into_iter()
            .map(|(worker, len, handle)| match handle.join() {
                Ok(result) => result,
                Err(payload) => Err(NnError::WorkerPanic {
                    worker,
                    shard_start: worker * shard_len,
                    shard_len: len,
                    message: panic_message(payload.as_ref()),
                }),
            })
            .collect()
    })
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Evaluates the accuracy of every exit on the given samples using batched
/// passes sharded across `threads` worker threads.
///
/// The samples are split into `threads` contiguous shards; each worker owns
/// one [`BatchPlan`] (the per-thread sharding unit) and streams its shard
/// through [`MultiExitNetwork::forward_all_batch_with`] in chunks of `batch`
/// samples. Per-shard correct counts are reduced in shard order — integer
/// sums over a fixed partition — so the result is identical for every thread
/// count, and because the batched pass is bit-identical to the single-input
/// planned path, identical to [`evaluate`] as well.
///
/// Builds fresh plans per call; hot loops should hold a [`BatchPlanPool`]
/// and call [`evaluate_batched_with_pool`] instead.
///
/// # Errors
///
/// Propagates layer shape errors from the workers (first shard's error wins).
/// A panicking worker is caught at join and surfaced as
/// [`NnError::WorkerPanic`] naming the worker and its shard.
pub fn evaluate_batched(
    network: &MultiExitNetwork,
    samples: &[Sample],
    batch: usize,
    threads: usize,
) -> Result<Vec<f32>> {
    let mut pool = BatchPlanPool::new();
    evaluate_batched_with_pool(network, samples, batch, threads, &mut pool)
}

/// [`evaluate_batched`] with caller-owned plans: per-worker [`BatchPlan`]s
/// are taken from (and kept warm in) `pool` across calls instead of being
/// rebuilt every time. Results are identical to [`evaluate_batched`] for
/// every pool state — a reused plan is reset by the first batched pass of
/// each evaluation.
///
/// # Errors
///
/// Propagates layer shape errors from the workers (first shard's error wins).
/// A panicking worker is caught at join and surfaced as
/// [`NnError::WorkerPanic`] naming the worker and its shard.
pub fn evaluate_batched_with_pool(
    network: &MultiExitNetwork,
    samples: &[Sample],
    batch: usize,
    threads: usize,
    pool: &mut BatchPlanPool,
) -> Result<Vec<f32>> {
    let num_exits = network.num_exits();
    if samples.is_empty() {
        return Ok(vec![0.0; num_exits]);
    }
    let batch = batch.max(1);
    let threads = threads.clamp(1, samples.len());
    let plans = pool.ensure(network, batch, threads);
    evaluate_with_plans(network, samples, batch, plans)
}

/// A reusable pool of per-worker **quantized** [`BatchPlan`]s.
///
/// Quantized plans bake per-policy weight codes in, so unlike
/// [`BatchPlanPool`] the pooled plans cannot be reused as-is — but their
/// buffers can: [`BatchPlan::repack_quantized`] re-packs the next policy's
/// codes into the previous policy's (grow-only) code matrices and keeps all
/// integer scratch. A search loop scoring thousands of candidate policies
/// through the integer backend therefore stops re-allocating the packed
/// weights on every evaluation (the ROADMAP's "QuantizedModel pool").
#[derive(Debug, Default)]
pub struct QuantPlanPool {
    plans: Vec<BatchPlan>,
}

impl QuantPlanPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        QuantPlanPool::default()
    }

    /// Number of plans currently pooled.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Returns `true` when no plans are pooled yet.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Hands out `count` quantized plans baked for `network` under `config`:
    /// pooled plans are re-packed in place, missing ones are built fresh
    /// (packing once and cloning the packed model, like the pool-less path).
    fn ensure(
        &mut self,
        network: &MultiExitNetwork,
        config: &QuantConfig,
        batch: usize,
        count: usize,
    ) -> Result<&mut [BatchPlan]> {
        self.plans.retain(|p| p.can_repack_quantized(network, batch));
        self.plans.truncate(count);
        for plan in &mut self.plans {
            plan.repack_quantized(network, config)?;
        }
        if self.plans.len() < count {
            let model = crate::quant::QuantizedModel::for_network(network, config)?;
            let arch = network.architecture();
            while self.plans.len() < count - 1 {
                self.plans.push(BatchPlan::for_quantized_model(arch, model.clone(), batch));
            }
            self.plans.push(BatchPlan::for_quantized_model(arch, model, batch));
        }
        Ok(&mut self.plans[..count])
    }

    /// Hands one quantized plan baked for `network` under `config` out of
    /// the pool: a repackable pooled plan is re-packed in place and moved to
    /// the caller, otherwise a fresh plan is built. The serve-worker
    /// counterpart of [`BatchPlanPool::take`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::InvalidSpec`] when `config` does not match
    /// the network.
    pub fn take(
        &mut self,
        network: &MultiExitNetwork,
        config: &QuantConfig,
        batch: usize,
    ) -> Result<BatchPlan> {
        match self.plans.iter().position(|p| p.can_repack_quantized(network, batch)) {
            Some(i) => {
                let mut plan = self.plans.swap_remove(i);
                plan.repack_quantized(network, config)?;
                Ok(plan)
            }
            None => {
                let model = crate::quant::QuantizedModel::for_network(network, config)?;
                Ok(BatchPlan::for_quantized_model(network.architecture(), model, batch))
            }
        }
    }

    /// Returns a plan to the pool for later repacking and reuse.
    pub fn put(&mut self, plan: BatchPlan) {
        self.plans.push(plan);
    }
}

/// Evaluates the accuracy of every exit with the **integer** execution
/// backend: each worker owns a quantized [`BatchPlan`] built from `network`
/// and `config` (pre-quantized packed weights, i8/i16 GEMM + requantization
/// epilogues), so the measured accuracy is that of true integer inference
/// rather than the fake-quant `f32` round trip.
///
/// Sharding and reduction are identical to [`evaluate_batched`]; results are
/// deterministic and independent of `batch` and `threads` (the quantized
/// batched pass is bit-identical per sample to the quantized single-input
/// plan). Quantized plans bake in per-policy weights, so they are built per
/// call rather than pooled.
///
/// # Errors
///
/// Returns [`crate::NnError::InvalidSpec`] when `config` does not match the
/// network, and propagates layer shape errors from the workers.
/// A panicking worker is caught at join and surfaced as
/// [`NnError::WorkerPanic`] naming the worker and its shard.
pub fn evaluate_quantized(
    network: &MultiExitNetwork,
    config: &QuantConfig,
    samples: &[Sample],
    batch: usize,
    threads: usize,
) -> Result<Vec<f32>> {
    let mut pool = QuantPlanPool::new();
    evaluate_quantized_with_pool(network, config, samples, batch, threads, &mut pool)
}

/// [`evaluate_quantized`] with caller-owned plans: per-worker quantized
/// [`BatchPlan`]s are taken from (and kept warm in) `pool` across calls —
/// each call re-packs the policy's weight codes into the pooled plans'
/// existing buffers instead of re-allocating them (see [`QuantPlanPool`]).
/// Results are identical to [`evaluate_quantized`] for every pool state.
///
/// # Errors
///
/// Returns [`crate::NnError::InvalidSpec`] when `config` does not match the
/// network, and propagates layer shape errors from the workers.
/// A panicking worker is caught at join and surfaced as
/// [`NnError::WorkerPanic`] naming the worker and its shard.
pub fn evaluate_quantized_with_pool(
    network: &MultiExitNetwork,
    config: &QuantConfig,
    samples: &[Sample],
    batch: usize,
    threads: usize,
    pool: &mut QuantPlanPool,
) -> Result<Vec<f32>> {
    let num_exits = network.num_exits();
    if samples.is_empty() {
        return Ok(vec![0.0; num_exits]);
    }
    let batch = batch.max(1);
    let threads = threads.clamp(1, samples.len());
    let plans = pool.ensure(network, config, batch, threads)?;
    evaluate_with_plans(network, samples, batch, plans)
}

/// [`evaluate_batched`] with the default batch size and the environment-driven
/// worker count ([`eval_threads`]).
///
/// # Errors
///
/// Propagates layer shape errors from the workers.
pub fn evaluate_batched_auto(network: &MultiExitNetwork, samples: &[Sample]) -> Result<Vec<f32>> {
    evaluate_batched(network, samples, DEFAULT_EVAL_BATCH, eval_threads())
}

/// Worker-thread count for the batched trainer: `IE_TRAIN_THREADS` via
/// [`threads_from_env`] (what the CI train-determinism job varies). Like all
/// thread knobs this never changes results — the batched trainer's gradient
/// reduction is deterministic and byte-identical across worker counts.
pub fn train_threads() -> usize {
    threads_from_env("IE_TRAIN_THREADS")
}

/// A reusable pool of per-worker [`BackwardPlan`]s, mirroring
/// [`BatchPlanPool`] for the training side: compression and training change
/// a network's weights but never its architecture, so the same warmed plans
/// serve every step. Plans built with a different architecture or fake-quant
/// configuration are dropped and rebuilt transparently.
#[derive(Debug, Default)]
pub struct BackwardPlanPool {
    plans: Vec<BackwardPlan>,
}

impl BackwardPlanPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        BackwardPlanPool::default()
    }

    /// Number of plans currently pooled.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Returns `true` when no plans are pooled yet.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Hands out `count` plans compatible with `network` (and the given
    /// fake-quant configuration), reusing pooled ones and building only what
    /// is missing.
    fn ensure(
        &mut self,
        network: &MultiExitNetwork,
        quant: Option<&QuantConfig>,
        count: usize,
    ) -> Result<&mut [BackwardPlan]> {
        self.plans.retain(|p| p.is_compatible(network) && p.quant_config() == quant);
        while self.plans.len() < count {
            self.plans.push(match quant {
                Some(config) => {
                    BackwardPlan::for_architecture_fake_quant(network.architecture(), config)?
                }
                None => BackwardPlan::for_architecture(network.architecture()),
            });
        }
        Ok(&mut self.plans[..count])
    }

    /// Hands one plan compatible with `network` (and the given fake-quant
    /// configuration) out of the pool, building a fresh one when nothing
    /// pooled fits.
    ///
    /// # Errors
    ///
    /// Propagates [`BackwardPlan::for_architecture_fake_quant`]'s validation
    /// errors when a fake-quant plan has to be built.
    pub fn take(
        &mut self,
        network: &MultiExitNetwork,
        quant: Option<&QuantConfig>,
    ) -> Result<BackwardPlan> {
        match self.plans.iter().position(|p| p.is_compatible(network) && p.quant_config() == quant)
        {
            Some(i) => Ok(self.plans.swap_remove(i)),
            None => match quant {
                Some(config) => {
                    BackwardPlan::for_architecture_fake_quant(network.architecture(), config)
                }
                None => Ok(BackwardPlan::for_architecture(network.architecture())),
            },
        }
    }

    /// Returns a plan to the pool for later reuse.
    pub fn put(&mut self, plan: BackwardPlan) {
        self.plans.push(plan);
    }
}

/// A batched, sharded training step: one [`BackwardPlan`] per worker, one
/// [`GradStore`] per sample, deterministic reduction.
///
/// `train_step` splits the mini-batch into one contiguous shard per worker.
/// Each worker runs its samples through its own plan, accumulating every
/// sample's gradients into that sample's store. The reduction then folds the
/// per-sample losses and flushes the per-sample stores **in ascending sample
/// order** — float addition is not associative, so a per-worker reduction
/// would change bits with the worker count; a per-sample one cannot. The
/// result is bit-identical to calling [`MultiExitNetwork::backward`] on each
/// sample sequentially, and byte-identical for every `threads` value.
///
/// An optional fake-quant configuration ([`BatchBackwardPlan::fake_quant`])
/// makes every worker run the quantize–dequantize forward half (see
/// [`BackwardPlan::for_architecture_fake_quant`]) — training with the
/// deployment-time quantization in the loop.
#[derive(Debug, Default)]
pub struct BatchBackwardPlan {
    pool: BackwardPlanPool,
    stores: Vec<GradStore>,
    losses: Vec<f32>,
    quant: Option<QuantConfig>,
}

impl BatchBackwardPlan {
    /// Creates an empty batched training plan (full-precision forward).
    pub fn new() -> Self {
        BatchBackwardPlan::default()
    }

    /// Creates a batched training plan whose forward half applies `config`'s
    /// fake-quantization on every step.
    pub fn fake_quant(config: QuantConfig) -> Self {
        BatchBackwardPlan { quant: Some(config), ..BatchBackwardPlan::default() }
    }

    /// The fake-quant configuration applied by every step, if any.
    pub fn quant_config(&self) -> Option<&QuantConfig> {
        self.quant.as_ref()
    }

    /// Runs one training step over `samples` sharded across `threads`
    /// workers and applies the batch-averaged gradients with learning rate
    /// `lr`. Returns the summed loss; see the type docs for the determinism
    /// contract. On error the network's gradients and weights are left
    /// untouched.
    ///
    /// # Errors
    ///
    /// Propagates [`BackwardPlan::backward_into_store`] errors from the
    /// workers (first shard's error wins). A panicking worker is caught at
    /// join and surfaced as [`NnError::WorkerPanic`] naming the worker and
    /// its shard.
    pub fn train_step(
        &mut self,
        network: &mut MultiExitNetwork,
        samples: &[Sample],
        exit_weights: &[f32],
        lr: f32,
        threads: usize,
    ) -> Result<f32> {
        let mut total = 0.0f32;
        self.train_step_into(network, samples, exit_weights, lr, threads, &mut total)?;
        Ok(total)
    }

    /// [`Self::train_step`] folding the per-sample losses into an external
    /// accumulator in ascending sample order, so an epoch-level sum is
    /// bit-identical to the legacy per-sample loop's.
    fn train_step_into(
        &mut self,
        network: &mut MultiExitNetwork,
        samples: &[Sample],
        exit_weights: &[f32],
        lr: f32,
        threads: usize,
        total_loss: &mut f32,
    ) -> Result<()> {
        if samples.is_empty() {
            return Ok(());
        }
        let n = samples.len();
        let threads = threads.clamp(1, n);
        let plans = self.pool.ensure(network, self.quant.as_ref(), threads)?;
        let want = plans[0].store_len();
        self.stores.retain(|s| s.len() == want);
        while self.stores.len() < n {
            self.stores.push(plans[0].make_store());
        }
        if self.losses.len() < n {
            self.losses.resize(n, 0.0);
        }
        let shard_len = n.div_ceil(threads);
        if threads == 1 {
            let plan = &mut plans[0];
            for ((sample, store), loss) in
                samples.iter().zip(&mut self.stores).zip(&mut self.losses)
            {
                *loss = plan.backward_into_store(
                    network,
                    &sample.image,
                    sample.label,
                    exit_weights,
                    store,
                )?;
            }
        } else {
            let net_ref: &MultiExitNetwork = network;
            let results: Vec<Result<()>> = std::thread::scope(|scope| {
                let handles: Vec<_> = samples
                    .chunks(shard_len)
                    .zip(self.stores.chunks_mut(shard_len))
                    .zip(self.losses.chunks_mut(shard_len))
                    .zip(plans.iter_mut())
                    .enumerate()
                    .map(|(worker, (((shard, stores), losses), plan))| {
                        let handle = scope.spawn(move || -> Result<()> {
                            for ((sample, store), loss) in shard.iter().zip(stores).zip(losses) {
                                *loss = plan.backward_into_store(
                                    net_ref,
                                    &sample.image,
                                    sample.label,
                                    exit_weights,
                                    store,
                                )?;
                            }
                            Ok(())
                        });
                        (worker, shard.len(), handle)
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|(worker, len, handle)| match handle.join() {
                        Ok(result) => result,
                        Err(payload) => Err(NnError::WorkerPanic {
                            worker,
                            shard_start: worker * shard_len,
                            shard_len: len,
                            message: panic_message(payload.as_ref()),
                        }),
                    })
                    .collect()
            });
            for result in results {
                result?;
            }
        }
        // Deterministic reduction: per-sample losses and stores are folded
        // in ascending sample order regardless of how the shards were cut.
        for loss in &self.losses[..n] {
            *total_loss += *loss;
        }
        for store in &self.stores[..n] {
            plans[0].flush_store(store, network);
        }
        network.apply_gradients(lr / n as f32);
        Ok(())
    }
}

/// Batched counterpart of [`train`]: same mini-batch schedule, learning-rate
/// decay and per-epoch evaluation, but each mini-batch runs through
/// [`BatchBackwardPlan::train_step`] — allocation-free once warm, sharded
/// across `threads` workers, and (when `plan` carries a fake-quant
/// configuration) with the deployment-time quantization in the training
/// loop. With a full-precision `plan` the returned history and the trained
/// weights are bit-identical to [`train`]'s for every `threads` value.
///
/// # Errors
///
/// Propagates layer shape errors, invalid labels from the dataset, and
/// worker panics (as [`NnError::WorkerPanic`]).
pub fn train_batched(
    network: &mut MultiExitNetwork,
    train_set: &[Sample],
    test_set: &[Sample],
    config: &TrainConfig,
    threads: usize,
    plan: &mut BatchBackwardPlan,
) -> Result<Vec<EpochStats>> {
    let mut sgd = Sgd::new(config.learning_rate).with_decay(config.lr_decay);
    let mut history = Vec::with_capacity(config.epochs);
    for epoch in 0..config.epochs {
        let mut total_loss = 0.0;
        let mut count = 0usize;
        for batch in train_set.chunks(config.batch_size.max(1)) {
            plan.train_step_into(
                network,
                batch,
                &config.exit_weights,
                sgd.learning_rate(),
                threads,
                &mut total_loss,
            )?;
            count += batch.len();
        }
        sgd.end_epoch();
        let exit_accuracy = evaluate(network, test_set)?;
        history.push(EpochStats {
            epoch,
            mean_loss: if count > 0 { total_loss / count as f32 } else { 0.0 },
            exit_accuracy,
        });
    }
    Ok(history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SyntheticDataset;
    use crate::spec::tiny_multi_exit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn training_improves_over_chance_on_synthetic_data() {
        let data = SyntheticDataset::generate(3, 8, 150, 0.05, 21);
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = MultiExitNetwork::from_architecture(&tiny_multi_exit(3), &mut rng).unwrap();
        let mut config = TrainConfig::for_exits(2);
        config.epochs = 6;
        config.learning_rate = 0.1;
        let history = train(&mut net, data.train(), data.test(), &config).unwrap();
        let last = history.last().unwrap();
        // Chance level is 1/3; both exits should comfortably beat it.
        assert!(
            last.exit_accuracy.iter().all(|&a| a > 0.5),
            "exit accuracies after training: {:?}",
            last.exit_accuracy
        );
        // Loss should decrease from the first epoch to the last.
        assert!(last.mean_loss < history[0].mean_loss);
    }

    /// Every weight and bias in apply-order, as raw bits.
    fn weight_bits(net: &MultiExitNetwork) -> Vec<u32> {
        let mut bits = Vec::new();
        for layer in net.segments().iter().flatten().chain(net.branches().iter().flatten()) {
            let (w, b) = match layer {
                crate::Layer::Conv2d(c) => (c.weight(), c.bias()),
                crate::Layer::Dense(d) => (d.weight(), d.bias()),
                _ => continue,
            };
            bits.extend(w.as_slice().iter().map(|v| v.to_bits()));
            bits.extend(b.as_slice().iter().map(|v| v.to_bits()));
        }
        bits
    }

    #[test]
    fn batched_training_is_bit_identical_to_legacy() {
        let data = SyntheticDataset::generate(3, 8, 60, 0.05, 23);
        let mut rng = StdRng::seed_from_u64(24);
        let reference = MultiExitNetwork::from_architecture(&tiny_multi_exit(3), &mut rng).unwrap();
        let mut config = TrainConfig::for_exits(2);
        config.epochs = 2;
        config.learning_rate = 0.1;

        let mut legacy = reference.clone();
        let legacy_history = train(&mut legacy, data.train(), data.test(), &config).unwrap();

        let mut batched = reference.clone();
        let mut plan = BatchBackwardPlan::new();
        let batched_history =
            train_batched(&mut batched, data.train(), data.test(), &config, 1, &mut plan).unwrap();

        assert_eq!(legacy_history, batched_history);
        assert_eq!(weight_bits(&legacy), weight_bits(&batched));
    }

    #[test]
    fn batched_training_is_byte_identical_across_worker_counts() {
        let data = SyntheticDataset::generate(3, 8, 45, 0.05, 25);
        let mut rng = StdRng::seed_from_u64(26);
        let reference = MultiExitNetwork::from_architecture(&tiny_multi_exit(3), &mut rng).unwrap();
        let mut config = TrainConfig::for_exits(2);
        config.epochs = 2;

        let mut single = reference.clone();
        let mut plan1 = BatchBackwardPlan::new();
        let history1 =
            train_batched(&mut single, data.train(), data.test(), &config, 1, &mut plan1).unwrap();
        let bits1 = weight_bits(&single);

        for threads in [2usize, 3, 4] {
            let mut net = reference.clone();
            let mut plan = BatchBackwardPlan::new();
            let history =
                train_batched(&mut net, data.train(), data.test(), &config, threads, &mut plan)
                    .unwrap();
            assert_eq!(history, history1, "{threads} workers diverged from 1");
            assert_eq!(weight_bits(&net), bits1, "{threads}-worker weights diverged from 1");
        }
    }

    #[test]
    fn fake_quant_batched_training_reduces_loss_and_is_thread_invariant() {
        use crate::quant::config_from_bits;
        use ie_tensor::QuantParams;

        let data = SyntheticDataset::generate(3, 8, 45, 0.05, 27);
        let mut rng = StdRng::seed_from_u64(28);
        let reference = MultiExitNetwork::from_architecture(&tiny_multi_exit(3), &mut rng).unwrap();
        let n = reference.architecture().compressible_layers().len();
        let act = QuantParams::from_range(-6.0, 6.0, 8);
        let cfg = config_from_bits(&reference, &vec![Some((8, act)); n]).unwrap();
        let mut config = TrainConfig::for_exits(2);
        config.epochs = 3;
        config.learning_rate = 0.1;

        let mut single = reference.clone();
        let mut plan1 = BatchBackwardPlan::fake_quant(cfg.clone());
        assert_eq!(plan1.quant_config(), Some(&cfg));
        let history1 =
            train_batched(&mut single, data.train(), data.test(), &config, 1, &mut plan1).unwrap();
        assert!(
            history1.last().unwrap().mean_loss < history1[0].mean_loss,
            "fake-quant training loss did not decrease: {history1:?}"
        );

        let mut multi = reference.clone();
        let mut plan4 = BatchBackwardPlan::fake_quant(cfg);
        let history4 =
            train_batched(&mut multi, data.train(), data.test(), &config, 4, &mut plan4).unwrap();
        assert_eq!(history1, history4);
        assert_eq!(weight_bits(&single), weight_bits(&multi));
    }

    #[test]
    fn train_step_surfaces_bad_labels_and_leaves_the_network_untouched() {
        let mut rng = StdRng::seed_from_u64(29);
        let mut net = MultiExitNetwork::from_architecture(&tiny_multi_exit(3), &mut rng).unwrap();
        let before = weight_bits(&net);
        let samples = vec![
            Sample { image: Tensor::ones(&[1, 8, 8]), label: 0 },
            Sample { image: Tensor::ones(&[1, 8, 8]), label: 99 },
        ];
        let mut plan = BatchBackwardPlan::new();
        let err = plan.train_step(&mut net, &samples, &[1.0, 1.0], 0.1, 2).unwrap_err();
        assert!(matches!(err, NnError::InvalidLabel { label: 99, classes: 3 }));
        assert_eq!(weight_bits(&net), before, "failed step must not move weights");
    }

    #[test]
    fn backward_plan_pool_hands_out_and_reuses_plans() {
        let mut rng = StdRng::seed_from_u64(30);
        let net = MultiExitNetwork::from_architecture(&tiny_multi_exit(3), &mut rng).unwrap();
        let mut pool = BackwardPlanPool::new();
        assert!(pool.is_empty());
        let plan = pool.take(&net, None).unwrap();
        assert!(plan.is_compatible(&net));
        pool.put(plan);
        assert_eq!(pool.len(), 1);
        let again = pool.take(&net, None).unwrap();
        assert!(pool.is_empty(), "the pooled plan was handed back out");
        pool.put(again);
        // A fake-quant request does not match the plain pooled plan.
        let n = net.architecture().compressible_layers().len();
        let cfg = crate::quant::QuantConfig::from_layers(vec![None; n]);
        let fq = pool.take(&net, Some(&cfg)).unwrap();
        assert_eq!(fq.quant_config(), Some(&cfg));
        assert_eq!(pool.len(), 1, "the plain pooled plan stays put");
    }

    #[test]
    fn train_threads_reads_the_environment_knob() {
        assert!(train_threads() >= 1);
    }

    #[test]
    fn evaluate_returns_one_accuracy_per_exit() {
        let data = SyntheticDataset::generate(2, 8, 20, 0.1, 5);
        let mut rng = StdRng::seed_from_u64(3);
        let net = MultiExitNetwork::from_architecture(&tiny_multi_exit(2), &mut rng).unwrap();
        let accs = evaluate(&net, data.test()).unwrap();
        assert_eq!(accs.len(), 2);
        assert!(accs.iter().all(|a| (0.0..=1.0).contains(a)));
    }

    #[test]
    fn default_config_matches_exit_count() {
        let c = TrainConfig::for_exits(3);
        assert_eq!(c.exit_weights.len(), 3);
    }

    #[test]
    fn batched_evaluation_is_identical_for_every_batch_and_thread_count() {
        let data = SyntheticDataset::generate(3, 8, 90, 0.1, 7);
        let mut rng = StdRng::seed_from_u64(6);
        let net = MultiExitNetwork::from_architecture(&tiny_multi_exit(3), &mut rng).unwrap();
        let reference = evaluate(&net, data.test()).unwrap();
        for batch in [1usize, 3, 8] {
            for threads in [1usize, 2, 4] {
                let sharded = evaluate_batched(&net, data.test(), batch, threads).unwrap();
                assert_eq!(
                    sharded, reference,
                    "batch {batch} x {threads} threads must match the single-input evaluation"
                );
            }
        }
        // More workers than samples degrades gracefully to one per sample.
        let few = &data.test()[..2];
        assert_eq!(evaluate_batched(&net, few, 4, 16).unwrap(), evaluate(&net, few).unwrap());
    }

    #[test]
    fn pooled_evaluation_reuses_plans_and_matches_the_fresh_path() {
        let data = SyntheticDataset::generate(3, 8, 60, 0.1, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let net = MultiExitNetwork::from_architecture(&tiny_multi_exit(3), &mut rng).unwrap();
        let reference = evaluate(&net, data.test()).unwrap();
        let mut pool = BatchPlanPool::new();
        assert!(pool.is_empty());
        for _ in 0..3 {
            let pooled = evaluate_batched_with_pool(&net, data.test(), 4, 2, &mut pool).unwrap();
            assert_eq!(pooled, reference);
            assert_eq!(pool.len(), 2, "both worker plans stay pooled across calls");
        }
        // A different (incompatible) network flushes the stale plans.
        let other = MultiExitNetwork::from_architecture(&tiny_multi_exit(4), &mut rng).unwrap();
        let small = SyntheticDataset::generate(4, 8, 20, 0.1, 11);
        let fresh = evaluate_batched_with_pool(&other, small.test(), 4, 2, &mut pool).unwrap();
        assert_eq!(fresh, evaluate(&other, small.test()).unwrap());
    }

    #[test]
    fn quantized_evaluation_is_identical_for_every_batch_and_thread_count() {
        use crate::quant::config_from_bits;
        use ie_tensor::QuantParams;

        let data = SyntheticDataset::generate(3, 8, 60, 0.1, 12);
        let mut rng = StdRng::seed_from_u64(13);
        let net = MultiExitNetwork::from_architecture(&tiny_multi_exit(3), &mut rng).unwrap();
        let n = net.architecture().compressible_layers().len();
        let first = QuantParams::from_range(-3.0, 3.0, 8);
        let act = QuantParams::from_range(0.0, 8.0, 8);
        let entries: Vec<Option<(u8, QuantParams)>> =
            (0..n).map(|i| Some((8, if i == 0 { first } else { act }))).collect();
        let cfg = config_from_bits(&net, &entries).unwrap();
        let reference = evaluate_quantized(&net, &cfg, data.test(), 1, 1).unwrap();
        for batch in [3usize, 8] {
            for threads in [1usize, 2, 4] {
                let accs = evaluate_quantized(&net, &cfg, data.test(), batch, threads).unwrap();
                assert_eq!(accs, reference, "batch {batch} x {threads} threads");
            }
        }
        assert_eq!(evaluate_quantized(&net, &cfg, &[], 8, 4).unwrap(), vec![0.0; 2]);
    }

    #[test]
    fn pooled_quantized_evaluation_matches_fresh_and_reuses_code_buffers() {
        use crate::quant::config_from_bits;
        use ie_tensor::QuantParams;

        let data = SyntheticDataset::generate(3, 8, 40, 0.1, 14);
        let mut rng = StdRng::seed_from_u64(15);
        let net = MultiExitNetwork::from_architecture(&tiny_multi_exit(3), &mut rng).unwrap();
        let n = net.architecture().compressible_layers().len();
        let first = QuantParams::from_range(-3.0, 3.0, 8);
        let act = QuantParams::from_range(0.0, 8.0, 8);
        let cfg_a = config_from_bits(
            &net,
            &(0..n).map(|i| Some((8, if i == 0 { first } else { act }))).collect::<Vec<_>>(),
        )
        .unwrap();
        let cfg_b = config_from_bits(
            &net,
            &(0..n)
                .map(|i| Some((if i % 2 == 0 { 4 } else { 12 }, if i == 0 { first } else { act })))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let mut pool = QuantPlanPool::new();
        assert!(pool.is_empty());
        for cfg in [&cfg_a, &cfg_b, &cfg_a] {
            let fresh = evaluate_quantized(&net, cfg, data.test(), 4, 2).unwrap();
            let pooled =
                evaluate_quantized_with_pool(&net, cfg, data.test(), 4, 2, &mut pool).unwrap();
            assert_eq!(pooled, fresh, "pooled quantized evaluation must match the fresh path");
            assert_eq!(pool.len(), 2, "both worker plans stay pooled across policies");
        }
        // Buffer reuse: repacking the same-shape policy into a warmed plan
        // keeps the packed weight-code allocation in place.
        let mut plan = pool.plans.pop().unwrap();
        let before = plan.quantized_model().unwrap().segment(0).iter().flatten().next().unwrap().w
            [..1]
            .as_ptr();
        plan.repack_quantized(&net, &cfg_a).unwrap();
        let after = plan.quantized_model().unwrap().segment(0).iter().flatten().next().unwrap().w
            [..1]
            .as_ptr();
        assert_eq!(before, after, "repacking must reuse the packed code buffer");
        // A plan for a different architecture is rejected, not repacked.
        let other = MultiExitNetwork::from_architecture(&tiny_multi_exit(4), &mut rng).unwrap();
        assert!(!plan.can_repack_quantized(&other, 4));
        assert!(plan.repack_quantized(&other, &cfg_a).is_err());
    }

    #[test]
    fn repack_guards_integer_scratch_capacity_and_survives_invalid_configs() {
        use crate::quant::config_from_bits;
        use crate::spec::ArchitectureBuilder;
        use ie_tensor::QuantParams;

        // Arch A: conv depth 18 (padded 32) over 4x4 positions -> patch
        // scratch 512; act capacity 128, col capacity 288.
        let arch_a = ArchitectureBuilder::new([2, 6, 6], 3)
            .conv("c", 8, 3, 1, 0)
            .relu()
            .begin_branch()
            .flatten()
            .dense("d", 3)
            .end_exit()
            .build()
            .unwrap();
        // Arch B: conv depth 8 (padded 16) over 6x6 positions -> patch
        // scratch 576 (> A's 512) while act (108) and col (288) both fit A's
        // f32 capacities — exactly the case the f32-side compatibility check
        // cannot see.
        let arch_b = ArchitectureBuilder::new([2, 7, 7], 3)
            .conv("c", 3, 2, 1, 0)
            .relu()
            .begin_branch()
            .flatten()
            .dense("d", 3)
            .end_exit()
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(16);
        let net_a = MultiExitNetwork::from_architecture(&arch_a, &mut rng).unwrap();
        let net_b = MultiExitNetwork::from_architecture(&arch_b, &mut rng).unwrap();
        let quant_cfg = |net: &MultiExitNetwork| {
            let n = net.architecture().compressible_layers().len();
            let first = QuantParams::from_range(-3.0, 3.0, 8);
            let act = QuantParams::from_range(0.0, 8.0, 8);
            config_from_bits(
                net,
                &(0..n).map(|i| Some((8, if i == 0 { first } else { act }))).collect::<Vec<_>>(),
            )
            .unwrap()
        };
        let cfg_a = quant_cfg(&net_a);
        let mut plan = BatchPlan::for_network_quantized(&net_a, &cfg_a, 2).unwrap();
        // The f32-side capacities of an A-sized plan do hold B...
        assert!(BatchPlan::for_architecture(net_a.architecture(), 2).is_compatible(&net_b));
        // ...but the integer patch scratch does not, so repacking must be
        // refused instead of overrunning `rows16` mid-forward.
        assert!(!plan.can_repack_quantized(&net_b, 2));
        assert!(plan.repack_quantized(&net_b, &quant_cfg(&net_b)).is_err());

        // An invalid config is rejected *without* destroying the plan's
        // quantized state (a failed repack must not silently degrade the
        // plan to the f32 engine).
        assert!(plan.repack_quantized(&net_a, &crate::quant::QuantConfig::default()).is_err());
        assert!(plan.quantized_model().is_some(), "failed repack kept the quantized state");
        // The plan still runs the integer engine correctly afterwards.
        let x = Tensor::ones(&[2, 6, 6]);
        let out = net_a.forward_to_exit_batch_with(&mut plan, &[&x], 0).unwrap();
        let model = crate::quant::QuantizedModel::for_network(&net_a, &cfg_a).unwrap();
        let reference = crate::quant::fake_quant_logits(&net_a, &model, &x, 0).unwrap();
        assert_eq!(out.logits(0), reference.as_slice());
    }

    #[test]
    fn batched_evaluation_handles_empty_sample_sets() {
        let mut rng = StdRng::seed_from_u64(8);
        let net = MultiExitNetwork::from_architecture(&tiny_multi_exit(2), &mut rng).unwrap();
        assert_eq!(evaluate_batched(&net, &[], 8, 4).unwrap(), vec![0.0, 0.0]);
    }

    #[test]
    fn thread_override_classifies_values_instead_of_swallowing_them() {
        assert_eq!(classify_thread_override(Some("4")), ThreadOverride::Threads(4));
        assert_eq!(classify_thread_override(Some(" 2 ")), ThreadOverride::Threads(2));
        assert_eq!(classify_thread_override(None), ThreadOverride::Unset);
        // `0` is rejected explicitly, with its own reason — a zero-thread
        // evaluation cannot make progress.
        assert_eq!(
            classify_thread_override(Some("0")),
            ThreadOverride::Invalid {
                value: "0".into(),
                reason: "thread count must be at least 1"
            }
        );
        for bad in ["-1", "lots", "", "4.5"] {
            assert!(
                matches!(
                    classify_thread_override(Some(bad)),
                    ThreadOverride::Invalid { ref value, reason: "not a positive integer" }
                        if value == bad
                ),
                "{bad:?} must classify as invalid"
            );
        }
        assert!(eval_threads() >= 1);
        assert!(default_threads() >= 1);
    }

    #[test]
    fn worker_panic_surfaces_as_an_error_naming_the_shard() {
        // Drive a panicking shard closure through the production join path:
        // the panic must come back as `NnError::WorkerPanic`, not abort.
        let data = SyntheticDataset::generate(2, 8, 20, 0.1, 17);
        let mut rng = StdRng::seed_from_u64(18);
        let net = MultiExitNetwork::from_architecture(&tiny_multi_exit(2), &mut rng).unwrap();
        let mut pool = BatchPlanPool::new();
        let plans = pool.ensure(&net, 4, 3);
        let samples = &data.train()[..12];
        let results = super::join_sharded(samples, plans, |shard, _plan| {
            if std::ptr::eq(&shard[0], &samples[4]) {
                panic!("injected shard failure");
            }
            Ok(vec![shard.len(), 0])
        });
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok() && results[2].is_ok(), "healthy shards still report");
        match &results[1] {
            Err(NnError::WorkerPanic { worker, shard_start, shard_len, message }) => {
                assert_eq!((*worker, *shard_start, *shard_len), (1, 4, 4));
                assert!(message.contains("injected shard failure"));
                let text = results[1].as_ref().unwrap_err().to_string();
                assert!(text.contains("worker 1") && text.contains("4..8"), "{text}");
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
    }

    #[test]
    fn pool_handoff_reuses_warmed_plans() {
        let mut rng = StdRng::seed_from_u64(19);
        let net = MultiExitNetwork::from_architecture(&tiny_multi_exit(3), &mut rng).unwrap();
        let mut pool = BatchPlanPool::new();
        // Taking from an empty pool builds; putting back pools it.
        let plan = pool.take(&net, 4);
        assert!(plan.is_compatible(&net) && plan.max_batch() >= 4);
        assert!(pool.is_empty());
        pool.put(plan);
        assert_eq!(pool.len(), 1);
        // A compatible request reuses the pooled plan instead of building.
        let again = pool.take(&net, 4);
        assert!(pool.is_empty(), "the pooled plan was handed back out");
        pool.put(again);
        // An incompatible request leaves the pooled plan alone.
        let other = MultiExitNetwork::from_architecture(&tiny_multi_exit(4), &mut rng).unwrap();
        let fresh = pool.take(&other, 4);
        assert!(fresh.is_compatible(&other));
        assert_eq!(pool.len(), 1, "the incompatible pooled plan stays put");
    }

    #[test]
    fn quant_pool_handoff_repacks_warmed_plans() {
        use crate::quant::config_from_bits;
        use ie_tensor::QuantParams;

        let data = SyntheticDataset::generate(3, 8, 24, 0.1, 20);
        let mut rng = StdRng::seed_from_u64(21);
        let net = MultiExitNetwork::from_architecture(&tiny_multi_exit(3), &mut rng).unwrap();
        let n = net.architecture().compressible_layers().len();
        let first = QuantParams::from_range(-3.0, 3.0, 8);
        let act = QuantParams::from_range(0.0, 8.0, 8);
        let cfg = config_from_bits(
            &net,
            &(0..n).map(|i| Some((8, if i == 0 { first } else { act }))).collect::<Vec<_>>(),
        )
        .unwrap();
        let mut pool = QuantPlanPool::new();
        let mut plan = pool.take(&net, &cfg, 4).unwrap();
        assert!(pool.is_empty());
        // The handed-out plan runs the integer engine and matches the
        // pool-less quantized evaluation.
        let reference = evaluate_quantized(&net, &cfg, data.test(), 4, 1).unwrap();
        let pooled =
            evaluate_with_plans(&net, data.test(), 4, std::slice::from_mut(&mut plan)).unwrap();
        assert_eq!(pooled, reference);
        pool.put(plan);
        assert_eq!(pool.len(), 1);
        // Taking again repacks the pooled plan in place (same code buffers).
        let warmed = pool.take(&net, &cfg, 4).unwrap();
        assert!(pool.is_empty(), "the pooled plan was repacked and handed out");
        assert!(warmed.quantized_model().is_some());
    }
}
