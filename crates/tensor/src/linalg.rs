//! Matrix multiplication and vector products.

use crate::{Result, Tensor, TensorError};

impl Tensor {
    /// Matrix product of two rank-2 tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] when either operand is not a
    /// matrix and [`TensorError::MatmulDimMismatch`] when the inner
    /// dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: self.shape().rank() });
        }
        if other.shape().rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: other.shape().rank() });
        }
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch { left_cols: k, right_rows: k2 });
        }
        let a = self.as_slice();
        let b = other.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let av = a[i * k + p];
                if av == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix–vector product: `self` must be `[m, k]`, `vec` must have `k`
    /// elements; the result has `m` elements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] or
    /// [`TensorError::MatmulDimMismatch`] on incompatible shapes.
    pub fn matvec(&self, vec: &Tensor) -> Result<Tensor> {
        if self.shape().rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: self.shape().rank() });
        }
        let (m, k) = (self.dims()[0], self.dims()[1]);
        if vec.len() != k {
            return Err(TensorError::MatmulDimMismatch { left_cols: k, right_rows: vec.len() });
        }
        let a = self.as_slice();
        let x = vec.as_slice();
        let mut out = vec![0.0f32; m];
        for i in 0..m {
            let row = &a[i * k..(i + 1) * k];
            out[i] = row.iter().zip(x).map(|(&w, &v)| w * v).sum();
        }
        Tensor::from_vec(out, &[m])
    }

    /// Dot product of two equally sized tensors (flattened).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the element counts differ.
    pub fn dot(&self, other: &Tensor) -> Result<f32> {
        if self.len() != other.len() {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        Ok(self.as_slice().iter().zip(other.as_slice()).map(|(&a, &b)| a * b).sum())
    }

    /// Outer product of two vectors: result is `[self.len(), other.len()]`.
    pub fn outer(&self, other: &Tensor) -> Tensor {
        let m = self.len();
        let n = other.len();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a = self.as_slice()[i];
            for j in 0..n {
                out[i * n + j] = a * other.as_slice()[j];
            }
        }
        Tensor::from_vec(out, &[m, n]).expect("outer product shape is consistent")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_known_result() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::from_vec(vec![1.0, -2.0, 3.5, 0.0], &[2, 2]).unwrap();
        let c = a.matmul(&Tensor::eye(2)).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(a.matmul(&b).is_err());
        let v = Tensor::zeros(&[3]);
        assert!(v.matmul(&a).is_err());
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let x = Tensor::from_vec(vec![1.0, 0.0, -1.0], &[3]).unwrap();
        let y = a.matvec(&x).unwrap();
        assert_eq!(y.as_slice(), &[-2.0, -2.0]);
    }

    #[test]
    fn dot_and_outer() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        assert_eq!(a.dot(&b).unwrap(), 11.0);
        let o = a.outer(&b);
        assert_eq!(o.dims(), &[2, 2]);
        assert_eq!(o.as_slice(), &[3.0, 4.0, 6.0, 8.0]);
        let c = Tensor::zeros(&[3]);
        assert!(a.dot(&c).is_err());
    }
}
