//! Batched, allocation-free inference: N inputs per forward pass.
//!
//! A [`BatchPlan`] is the batched counterpart of [`crate::ExecutionPlan`]: it
//! pre-sizes every buffer for up to `max_batch` samples and then runs whole
//! batches through **one widened GEMM per layer** instead of one GEMM per
//! sample. Spatial activations live in the *channel-major wide* layout
//! `[C, batch, H, W]`, so the batched `im2col`
//! ([`ie_tensor::im2col_batch_into`]) lowers all samples into a single
//! `[C·K·K, batch·out_h·out_w]` column block and the bias+ReLU epilogue
//! sweeps each output-channel row once. Flat activations (after a `Flatten`)
//! are sample-major `[batch, features]`, which is what the batched dense
//! kernel ([`ie_tensor::matvec_batch_into`]) and the per-sample softmax want.
//!
//! Every sample's logits are **bit-identical** to running that sample alone
//! through the planned single-input path ([`crate::ExecutionPlan`]): the
//! widened GEMM still accumulates each output element in ascending depth
//! order, the batched dense kernel reuses the same lane-parallel dot product,
//! and pooling/ReLU/bias apply the same per-element operations. Property
//! tests assert this across random batch sizes and sparse-hint (pruned)
//! networks.
//!
//! One `BatchPlan` per worker thread is the sharding unit of
//! [`crate::train::evaluate_batched`]; after construction a batched pass
//! performs zero heap allocations (asserted by the counting-allocator test).
//!
//! ```
//! use ie_nn::{spec::tiny_multi_exit, MultiExitNetwork};
//! use ie_tensor::Tensor;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let net = MultiExitNetwork::from_architecture(&tiny_multi_exit(3), &mut rng)?;
//! let mut plan = net.batch_plan(4);
//! let (a, b) = (Tensor::zeros(&[1, 8, 8]), Tensor::ones(&[1, 8, 8]));
//! let out = net.forward_to_exit_batch_with(&mut plan, &[&a, &b], 0)?;
//! assert_eq!(out.len(), 2);
//! assert_eq!(out.logits(1).len(), 3);
//! let deeper = net.continue_to_exit_batch_with(&mut plan, 1)?;
//! assert_eq!(deeper.exit(), 1);
//! # Ok::<(), ie_nn::NnError>(())
//! ```

use crate::loss::{argmax_slice, confidence_slice, softmax_into};
use crate::plan::{buffer_requirements, check_exit};
use crate::quant::{
    code_pair, quant_conv_forward, quant_dense_forward, quantize_slice, Domain, QuantBuffers,
    QuantConfig, QuantCtx, QuantDst, QuantState, QuantizedLayer, QuantizedModel,
};
use crate::spec::MultiExitArchitecture;
use crate::{Layer, MultiExitNetwork, NnError, PlannedOutput, Result};
use ie_tensor::{Tensor, Workspace};

/// Slot indices of the two-slot ping-pong workspaces.
const SLOT_A: usize = 0;
const SLOT_B: usize = 1;

/// Shape and layout of the batched activation currently held in a slot.
///
/// The layout is implied by the variant: spatial activations are
/// channel-major wide (`[C, batch, H, W]`), flat activations are sample-major
/// (`[batch, features]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BatchDims {
    /// A `[C, H, W]` feature map per sample, stored wide.
    Spatial([usize; 3]),
    /// A flat feature vector per sample, stored sample-major.
    Flat(usize),
}

impl BatchDims {
    /// Elements per sample.
    fn per_sample(&self) -> usize {
        match self {
            BatchDims::Spatial([c, h, w]) => c * h * w,
            BatchDims::Flat(n) => *n,
        }
    }
}

/// The per-exit results of a batched planned pass, borrowed from the plan's
/// pre-sized buffers (nothing is copied or allocated to produce it).
#[derive(Debug, Clone, Copy)]
pub struct BatchOutput<'a> {
    exit: usize,
    batch: usize,
    classes: usize,
    logits: &'a [f32],
    probs: &'a [f32],
    predictions: &'a [usize],
    confidences: &'a [f32],
}

impl<'a> BatchOutput<'a> {
    /// Which exit produced these results.
    pub fn exit(&self) -> usize {
        self.exit
    }

    /// Number of samples in the batch.
    pub fn len(&self) -> usize {
        self.batch
    }

    /// Returns `true` when the batch is empty (never the case for outputs
    /// produced by the planned entry points, which reject empty batches).
    pub fn is_empty(&self) -> bool {
        self.batch == 0
    }

    /// Raw logits of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn logits(&self, i: usize) -> &'a [f32] {
        assert!(i < self.batch, "sample {i} out of range for batch {}", self.batch);
        &self.logits[i * self.classes..(i + 1) * self.classes]
    }

    /// Softmax probabilities of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn probs(&self, i: usize) -> &'a [f32] {
        assert!(i < self.batch, "sample {i} out of range for batch {}", self.batch);
        &self.probs[i * self.classes..(i + 1) * self.classes]
    }

    /// Predicted class of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn prediction(&self, i: usize) -> usize {
        self.predictions[..self.batch][i]
    }

    /// Entropy-based confidence of sample `i` (see [`crate::loss::confidence`]).
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn confidence(&self, i: usize) -> f32 {
        self.confidences[..self.batch][i]
    }

    /// Sample `i` as a [`PlannedOutput`], interchangeable with the
    /// single-input planned API.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn sample(&self, i: usize) -> PlannedOutput {
        PlannedOutput {
            exit: self.exit,
            prediction: self.prediction(i),
            confidence: self.confidence(i),
        }
    }
}

/// Pre-sized buffers plus cached trunk state for allocation-free batched
/// inference over up to `max_batch` samples.
///
/// Build once per (architecture, worker thread) with
/// [`BatchPlan::for_architecture`] or [`MultiExitNetwork::batch_plan`], then
/// reuse across any number of batched passes. Like the single-input plan, the
/// batch plan caches the deepest trunk activation it has computed, so a batch
/// can be continued to a deeper exit without recomputing the shared trunk.
#[derive(Debug, Clone)]
pub struct BatchPlan {
    max_batch: usize,
    num_exits: usize,
    classes: usize,
    /// Per-sample activation capacity (the single-input plan's slot size).
    act_capacity: usize,
    /// Per-sample `im2col` column capacity.
    col_capacity: usize,
    /// Trunk activation ping-pong buffers, `max_batch` samples wide.
    trunk: Workspace,
    /// Branch activation ping-pong buffers, `max_batch` samples wide.
    branch: Workspace,
    /// Shared `im2col` column scratch for the widened activation matrix.
    col: Vec<f32>,
    /// Per-exit logits, sample-major `[batch, classes]`.
    logits: Vec<Vec<f32>>,
    /// Per-exit softmax probabilities, sample-major.
    probs: Vec<Vec<f32>>,
    /// Per-exit argmax predictions.
    predictions: Vec<Vec<usize>>,
    /// Per-exit entropy confidences.
    confidences: Vec<Vec<f32>>,
    /// Slot of `trunk` holding the current trunk activation.
    trunk_slot: usize,
    /// Shape of the cached trunk activation.
    trunk_dims: BatchDims,
    /// Number of samples currently cached in the trunk buffers.
    batch: usize,
    /// Trunk segments already executed (`0` when no state is cached).
    segments_done: usize,
    /// Exit most recently evaluated from the cached state.
    last_exit: Option<usize>,
    /// Pass generation: bumped by every fresh batched forward. Together with
    /// the per-exit stamps below it lets [`BatchPlan::output`] reject reads
    /// of an exit that was last evaluated for an *earlier* batch, instead of
    /// silently relabeling stale results with the current batch size.
    generation: u64,
    /// Generation in which each exit's buffers were last filled (0 = never).
    evaluated_gen: Vec<u64>,
    /// Quantized model + integer buffers when the plan executes ≤8/≤16-bit
    /// layers through the integer kernels (`None` → pure `f32` engine).
    quant: Option<QuantState>,
}

impl BatchPlan {
    /// Builds a plan for `arch` holding up to `max_batch` samples per pass
    /// (clamped to at least 1), pre-sizing every buffer so that batched
    /// forward passes never allocate.
    pub fn for_architecture(arch: &MultiExitArchitecture, max_batch: usize) -> Self {
        let max_batch = max_batch.max(1);
        let (act, col) = buffer_requirements(arch);
        let mut trunk = Workspace::new();
        trunk.ensure_slot(SLOT_A, act * max_batch);
        trunk.ensure_slot(SLOT_B, act * max_batch);
        let mut branch = Workspace::new();
        branch.ensure_slot(SLOT_A, act * max_batch);
        branch.ensure_slot(SLOT_B, act * max_batch);
        let classes = arch.num_classes();
        let exits = arch.num_exits();
        BatchPlan {
            max_batch,
            num_exits: exits,
            classes,
            act_capacity: act,
            col_capacity: col,
            trunk,
            branch,
            col: vec![0.0; col * max_batch],
            logits: vec![vec![0.0; classes * max_batch]; exits],
            probs: vec![vec![0.0; classes * max_batch]; exits],
            predictions: vec![vec![0; max_batch]; exits],
            confidences: vec![vec![0.0; max_batch]; exits],
            trunk_slot: SLOT_A,
            trunk_dims: BatchDims::Flat(0),
            batch: 0,
            segments_done: 0,
            last_exit: None,
            generation: 0,
            evaluated_gen: vec![0; exits],
            quant: None,
        }
    }

    /// Builds a **quantized** batch plan for `net`: the batched counterpart
    /// of [`crate::ExecutionPlan::for_network_quantized`]. Layers covered by
    /// `config` run the widened i8/i16 GEMM over the whole batch; integer
    /// scratch is pre-sized for `max_batch` samples, so warmed quantized
    /// batched passes perform zero heap allocations.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidSpec`] when `config` does not match the
    /// network's compressible layers.
    pub fn for_network_quantized(
        net: &MultiExitNetwork,
        config: &QuantConfig,
        max_batch: usize,
    ) -> Result<BatchPlan> {
        let model = QuantizedModel::for_network(net, config)?;
        Ok(BatchPlan::for_quantized_model(net.architecture(), model, max_batch))
    }

    /// [`Self::for_network_quantized`] from an already-built model: the
    /// sharded quantized evaluator packs the weights **once** per policy and
    /// clones the packed model into each worker's plan instead of
    /// re-quantizing per thread.
    pub(crate) fn for_quantized_model(
        arch: &MultiExitArchitecture,
        model: QuantizedModel,
        max_batch: usize,
    ) -> BatchPlan {
        let mut plan = BatchPlan::for_architecture(arch, max_batch);
        plan.quant =
            Some(QuantState { model, bufs: QuantBuffers::for_architecture(arch, max_batch) });
        plan
    }

    /// The quantized model baked into this plan, if any.
    pub fn quantized_model(&self) -> Option<&QuantizedModel> {
        self.quant.as_ref().map(|q| &q.model)
    }

    /// Returns `true` when this quantized plan's buffers can serve `net`
    /// with batches of `batch` after a [`BatchPlan::repack_quantized`] —
    /// the capacity side of [`BatchPlan::is_compatible`] without the baked
    /// model check (which repacking replaces).
    pub fn can_repack_quantized(&self, net: &MultiExitNetwork, batch: usize) -> bool {
        let arch = net.architecture();
        let (act, col) = buffer_requirements(arch);
        // The integer scratch (patch/widened-row buffers) has its own
        // capacity requirements that do not follow from act/col — a plan can
        // only be repacked when those fit too, for every batch size up to
        // its own maximum (later calls may legally use any of them).
        self.quant.as_ref().is_some_and(|q| q.bufs.fits(arch, self.max_batch))
            && self.max_batch >= batch
            && self.num_exits == arch.num_exits()
            && self.classes == arch.num_classes()
            && act <= self.act_capacity
            && col <= self.col_capacity
    }

    /// Re-bakes this **quantized** plan for `net` under a (possibly new)
    /// `config`: the per-layer weight codes are re-packed **into the old
    /// model's buffers** (grow-only, so a warmed plan repacks without heap
    /// allocation of the code matrices) and every integer scratch buffer is
    /// kept. The plan pool uses this to serve one candidate policy after
    /// another without rebuilding plans.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidSpec`] when this plan has no quantized
    /// state, its buffers cannot hold `net`, or `config` does not match the
    /// network's compressible layers.
    pub fn repack_quantized(&mut self, net: &MultiExitNetwork, config: &QuantConfig) -> Result<()> {
        if !self.can_repack_quantized(net, 1) {
            return Err(NnError::InvalidSpec(
                "plan has no quantized state or cannot hold this network".into(),
            ));
        }
        // Validate the config *before* surrendering the old model to the
        // recycling constructor: it consumes the model's buffers, so an
        // error raised after the handover would silently strip the plan of
        // its quantized state (degrading it to the f32 engine) instead of
        // leaving it untouched.
        crate::quant::validate_config(net, config)?;
        let state = self.quant.take().expect("checked above");
        let model = QuantizedModel::for_network_recycling(net, config, Some(state.model))
            .expect("for_network_recycling cannot fail on a validated config");
        self.quant = Some(QuantState { model, bufs: state.bufs });
        self.reset();
        Ok(())
    }

    /// Largest batch one pass can hold.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Number of exits the plan covers.
    pub fn num_exits(&self) -> usize {
        self.num_exits
    }

    /// Number of samples currently cached in the trunk buffers (0 before the
    /// first pass).
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The exit most recently evaluated from the cached trunk state, if any.
    pub fn last_exit(&self) -> Option<usize> {
        self.last_exit
    }

    /// Number of trunk segments whose output is currently cached.
    pub fn segments_done(&self) -> usize {
        self.segments_done
    }

    /// The results of the most recent batched pass over `exit`, sized to the
    /// current batch.
    ///
    /// # Panics
    ///
    /// Panics when `exit` is out of range, or when `exit` was not evaluated
    /// as part of the current batch (its buffers would otherwise be stale
    /// results of an earlier pass relabeled with the current batch size).
    pub fn output(&self, exit: usize) -> BatchOutput<'_> {
        assert!(
            self.generation > 0 && self.evaluated_gen[exit] == self.generation,
            "exit {exit} was not evaluated for the current batch"
        );
        BatchOutput {
            exit,
            batch: self.batch,
            classes: self.classes,
            logits: &self.logits[exit][..self.batch * self.classes],
            probs: &self.probs[exit][..self.batch * self.classes],
            predictions: &self.predictions[exit][..self.batch],
            confidences: &self.confidences[exit][..self.batch],
        }
    }

    /// Returns `true` when this plan can run `net` — the same check every
    /// batched planned entry point performs. Lets a plan pool decide whether
    /// a cached plan is reusable without paying a failed forward pass.
    pub fn is_compatible(&self, net: &MultiExitNetwork) -> bool {
        self.check_compatible(net).is_ok()
    }

    /// Drops the cached trunk state (buffers stay warm).
    pub fn reset(&mut self) {
        self.segments_done = 0;
        self.last_exit = None;
        self.trunk_dims = BatchDims::Flat(0);
        self.trunk_slot = SLOT_A;
        self.batch = 0;
        self.generation += 1;
    }

    /// Errors when `net` does not fit this plan's buffers (exit/class count or
    /// per-sample capacity mismatch). Allocation-free on the success path.
    fn check_compatible(&self, net: &MultiExitNetwork) -> Result<()> {
        let arch = net.architecture();
        let (act, col) = buffer_requirements(arch);
        let compatible = self.num_exits == arch.num_exits()
            && self.classes == arch.num_classes()
            && act <= self.act_capacity
            && col <= self.col_capacity
            && self.quant.as_ref().is_none_or(|q| q.model.matches(net));
        if !compatible {
            return Err(NnError::InvalidSpec(format!(
                "batch plan ({} exits, {} classes, act {}, col {}) does not fit the network \
                 ({} exits, {} classes, act {act}, col {col})",
                self.num_exits,
                self.classes,
                self.act_capacity,
                self.col_capacity,
                arch.num_exits(),
                arch.num_classes()
            )));
        }
        Ok(())
    }

    /// Transposes a wide spatial activation (`[C, batch, H·W]`) in the current
    /// slot into the sample-major flat layout (`[batch, C·H·W]`) in the other
    /// slot — the explicit work the batched `Flatten` performs. Values are
    /// only moved, never changed, so logits stay bit-identical to the
    /// single-input path (whose `Flatten` is a pure no-op).
    fn flatten_to_sample_major(
        ws: &mut Workspace,
        slot: &mut usize,
        dims: &mut BatchDims,
        batch: usize,
    ) {
        let BatchDims::Spatial([c, h, w]) = *dims else {
            return;
        };
        let plane = h * w;
        let features = c * plane;
        let (src, dst) = ws.pair_mut(*slot, 1 - *slot);
        for ch in 0..c {
            for s in 0..batch {
                let src_off = (ch * batch + s) * plane;
                let dst_off = s * features + ch * plane;
                dst[dst_off..dst_off + plane].copy_from_slice(&src[src_off..src_off + plane]);
            }
        }
        *slot = 1 - *slot;
        *dims = BatchDims::Flat(features);
    }

    /// [`Self::flatten_to_sample_major`] over the code ping-pong slots: the
    /// same pure transpose, moving `i8` codes instead of floats, used when a
    /// `Flatten` (or an implicit one before a dense layer) sits between two
    /// chained quantized layers.
    fn flatten_codes_to_sample_major(
        codes: &mut [Vec<i8>; 2],
        slot: &mut usize,
        dims: &mut BatchDims,
        batch: usize,
    ) {
        let BatchDims::Spatial([c, h, w]) = *dims else {
            return;
        };
        let plane = h * w;
        let features = c * plane;
        let (src, dst) = code_pair(codes, *slot);
        for ch in 0..c {
            for s in 0..batch {
                let src_off = (ch * batch + s) * plane;
                let dst_off = s * features + ch * plane;
                dst[dst_off..dst_off + plane].copy_from_slice(&src[src_off..src_off + plane]);
            }
        }
        *slot = 1 - *slot;
        *dims = BatchDims::Flat(features);
    }

    /// Runs `layers` over the batched activation held in `ws`, fusing
    /// Conv→ReLU / Dense→ReLU pairs into the kernel epilogues exactly like
    /// the single-input plan.
    ///
    /// With a quantized context, covered layers run the widened i8/i16
    /// integer kernels with the same code-domain chaining as the single-input
    /// plan (see [`crate::ExecutionPlan`]); the wide channel-major layout
    /// carries over unchanged because quantization is elementwise.
    fn run_layers(
        layers: &[Layer],
        ws: &mut Workspace,
        col: &mut [f32],
        slot: &mut usize,
        dims: &mut BatchDims,
        batch: usize,
        quant: QuantCtx<'_>,
    ) -> Result<()> {
        let (qlist, mut qbufs): (&[Option<QuantizedLayer>], Option<&mut QuantBuffers>) = match quant
        {
            Some((list, bufs)) => (list, Some(bufs)),
            None => (&[], None),
        };
        let mut domain = Domain::F32;
        let mut i = 0;
        while i < layers.len() {
            let fuse = matches!(layers.get(i + 1), Some(Layer::Relu(_)));
            let qentry = qlist.get(i).and_then(|e| e.as_ref());
            match &layers[i] {
                Layer::Conv2d(conv) => {
                    let geom = conv.geometry();
                    let expected = [geom.in_channels, geom.in_h, geom.in_w];
                    if *dims != BatchDims::Spatial(expected) {
                        return Err(shape_error("conv2d(batch)", &expected, dims));
                    }
                    let in_len = conv.input_len() * batch;
                    let out_len = conv.output_len() * batch;
                    if let Some(ql) = qentry {
                        let bufs = qbufs.as_deref_mut().expect("quantized entry implies buffers");
                        let QuantBuffers { codes, col8, rows16, acc, .. } = bufs;
                        let (src_c, dst_c) = code_pair(codes, *slot);
                        if domain == Domain::F32 {
                            quantize_slice(
                                &ws.slot(*slot)[..in_len],
                                &ql.input,
                                &mut src_c[..in_len],
                            );
                        }
                        match ql.out {
                            None => {
                                quant_conv_forward(
                                    conv,
                                    ql,
                                    &src_c[..in_len],
                                    batch,
                                    fuse,
                                    col8,
                                    rows16,
                                    acc,
                                    QuantDst::F32(&mut ws.slot_mut(1 - *slot)[..out_len]),
                                )?;
                                domain = Domain::F32;
                            }
                            Some(p) => {
                                quant_conv_forward(
                                    conv,
                                    ql,
                                    &src_c[..in_len],
                                    batch,
                                    fuse,
                                    col8,
                                    rows16,
                                    acc,
                                    QuantDst::Codes(&mut dst_c[..out_len]),
                                )?;
                                domain = Domain::Codes(p);
                            }
                        }
                    } else {
                        debug_assert_eq!(domain, Domain::F32, "float conv fed from code domain");
                        let (src, dst) = ws.pair_mut(*slot, 1 - *slot);
                        conv.forward_batch_into(
                            &src[..in_len],
                            &mut dst[..out_len],
                            &mut col[..conv.col_len() * batch],
                            batch,
                            fuse,
                        )?;
                    }
                    *slot = 1 - *slot;
                    *dims = BatchDims::Spatial(conv.output_dims());
                    i += if fuse { 2 } else { 1 };
                }
                Layer::Dense(dense) => {
                    // Dense layers want the sample-major flat layout; a wide
                    // spatial activation is flattened implicitly, mirroring
                    // the single-input path's tolerance of a missing Flatten.
                    match domain {
                        Domain::F32 => Self::flatten_to_sample_major(ws, slot, dims, batch),
                        Domain::Codes(_) => {
                            let bufs = qbufs.as_deref_mut().expect("code domain implies buffers");
                            Self::flatten_codes_to_sample_major(&mut bufs.codes, slot, dims, batch);
                        }
                    }
                    if dims.per_sample() != dense.in_features() {
                        return Err(shape_error("dense(batch)", &[dense.in_features()], dims));
                    }
                    let (in_f, out_f) = (dense.in_features(), dense.out_features());
                    if let Some(ql) = qentry {
                        let bufs = qbufs.as_deref_mut().expect("quantized entry implies buffers");
                        let QuantBuffers { codes, xs16, acc, .. } = bufs;
                        let (src_c, dst_c) = code_pair(codes, *slot);
                        if domain == Domain::F32 {
                            quantize_slice(
                                &ws.slot(*slot)[..in_f * batch],
                                &ql.input,
                                &mut src_c[..in_f * batch],
                            );
                        }
                        match ql.out {
                            None => {
                                quant_dense_forward(
                                    ql,
                                    &src_c[..in_f * batch],
                                    in_f,
                                    batch,
                                    fuse,
                                    xs16,
                                    acc,
                                    QuantDst::F32(&mut ws.slot_mut(1 - *slot)[..out_f * batch]),
                                );
                                domain = Domain::F32;
                            }
                            Some(p) => {
                                quant_dense_forward(
                                    ql,
                                    &src_c[..in_f * batch],
                                    in_f,
                                    batch,
                                    fuse,
                                    xs16,
                                    acc,
                                    QuantDst::Codes(&mut dst_c[..out_f * batch]),
                                );
                                domain = Domain::Codes(p);
                            }
                        }
                    } else {
                        debug_assert_eq!(domain, Domain::F32, "float dense fed from code domain");
                        let (src, dst) = ws.pair_mut(*slot, 1 - *slot);
                        dense.forward_batch_into(
                            &src[..in_f * batch],
                            &mut dst[..out_f * batch],
                            batch,
                            fuse,
                        )?;
                    }
                    *slot = 1 - *slot;
                    *dims = BatchDims::Flat(out_f);
                    i += if fuse { 2 } else { 1 };
                }
                Layer::Relu(_) => {
                    let len = dims.per_sample() * batch;
                    match domain {
                        Domain::F32 => {
                            ie_tensor::relu_slice(&mut ws.slot_mut(*slot)[..len]);
                        }
                        Domain::Codes(p) => {
                            let bufs = qbufs.as_deref_mut().expect("code domain implies buffers");
                            let zp = p.zero_point() as i8;
                            ie_tensor::relu_codes_floor(&mut bufs.codes[*slot][..len], zp);
                        }
                    }
                    i += 1;
                }
                Layer::MaxPool2d(pool) => {
                    let BatchDims::Spatial(d) = *dims else {
                        return Err(shape_error("maxpool2d(batch)", &[0, 0, 0], dims));
                    };
                    let out_dims = pool.output_dims(&d);
                    let in_len: usize = d.iter().product::<usize>() * batch;
                    let out_len: usize = out_dims.iter().product::<usize>() * batch;
                    match domain {
                        Domain::F32 => {
                            let (src, dst) = ws.pair_mut(*slot, 1 - *slot);
                            pool.forward_batch_slice_into(
                                &src[..in_len],
                                d,
                                batch,
                                &mut dst[..out_len],
                            )?;
                        }
                        Domain::Codes(_) => {
                            let bufs = qbufs.as_deref_mut().expect("code domain implies buffers");
                            let (src_c, dst_c) = code_pair(&mut bufs.codes, *slot);
                            pool.forward_batch_codes_into(
                                &src_c[..in_len],
                                d,
                                batch,
                                &mut dst_c[..out_len],
                            )?;
                        }
                    }
                    *slot = 1 - *slot;
                    *dims = BatchDims::Spatial(out_dims);
                    i += 1;
                }
                Layer::Flatten(_) => {
                    match domain {
                        Domain::F32 => Self::flatten_to_sample_major(ws, slot, dims, batch),
                        Domain::Codes(_) => {
                            let bufs = qbufs.as_deref_mut().expect("code domain implies buffers");
                            Self::flatten_codes_to_sample_major(&mut bufs.codes, slot, dims, batch);
                        }
                    }
                    i += 1;
                }
            }
        }
        if domain != Domain::F32 {
            return Err(NnError::InvalidSpec(
                "batched layer list ended in the code domain (quantized chaining bug)".into(),
            ));
        }
        Ok(())
    }

    /// Evaluates branch `exit` on the cached batched trunk activation,
    /// filling the per-exit logits/probability/prediction buffers.
    fn eval_branch(&mut self, net: &MultiExitNetwork, exit: usize) -> Result<()> {
        let batch = self.batch;
        let len = self.trunk_dims.per_sample() * batch;
        let src = &self.trunk.slot(self.trunk_slot)[..len];
        self.branch.slot_mut(SLOT_A)[..len].copy_from_slice(src);
        let mut slot = SLOT_A;
        let mut dims = self.trunk_dims;
        let quant = self.quant.as_mut().map(|q| (q.model.branch(exit), &mut q.bufs));
        BatchPlan::run_layers(
            &net.branches()[exit],
            &mut self.branch,
            &mut self.col,
            &mut slot,
            &mut dims,
            batch,
            quant,
        )?;
        // A branch that ends spatially (no trailing Flatten/Dense) still needs
        // the sample-major layout before per-sample logits can be read.
        BatchPlan::flatten_to_sample_major(&mut self.branch, &mut slot, &mut dims, batch);
        let classes = self.classes;
        if dims.per_sample() != classes {
            return Err(shape_error("branch(batch logits)", &[classes], &dims));
        }
        let logits_src = &self.branch.slot(slot)[..batch * classes];
        self.logits[exit][..batch * classes].copy_from_slice(logits_src);
        for s in 0..batch {
            let logits = &self.logits[exit][s * classes..(s + 1) * classes];
            let probs = &mut self.probs[exit][s * classes..(s + 1) * classes];
            softmax_into(logits, probs)?;
            self.predictions[exit][s] =
                argmax_slice(probs).expect("exit produces at least one class");
            self.confidences[exit][s] = confidence_slice(probs);
        }
        self.evaluated_gen[exit] = self.generation;
        Ok(())
    }

    /// Copies `inputs` into the trunk slot `SLOT_A` in the batched layout and
    /// returns the activation dims. All inputs must share one shape.
    fn load_inputs(&mut self, inputs: &[&Tensor]) -> Result<BatchDims> {
        let batch = inputs.len();
        if batch == 0 || batch > self.max_batch {
            return Err(NnError::InvalidSpec(format!(
                "batch of {batch} inputs does not fit the plan (1..={} samples)",
                self.max_batch
            )));
        }
        let first = inputs[0].dims();
        for input in inputs {
            if input.dims() != first {
                return Err(NnError::InputShapeMismatch {
                    layer: "batch(input)".into(),
                    expected: first.to_vec(),
                    actual: input.dims().to_vec(),
                });
            }
        }
        let per_sample = inputs[0].len();
        if per_sample > self.act_capacity {
            return Err(NnError::InputShapeMismatch {
                layer: "batch(input)".into(),
                expected: vec![self.act_capacity],
                actual: vec![per_sample],
            });
        }
        let slot = self.trunk.slot_mut(SLOT_A);
        match first.len() {
            3 => {
                let (c, h, w) = (first[0], first[1], first[2]);
                let plane = h * w;
                for (s, input) in inputs.iter().enumerate() {
                    let data = input.as_slice();
                    for ch in 0..c {
                        let dst = (ch * batch + s) * plane;
                        slot[dst..dst + plane].copy_from_slice(&data[ch * plane..][..plane]);
                    }
                }
                Ok(BatchDims::Spatial([c, h, w]))
            }
            _ => {
                for (s, input) in inputs.iter().enumerate() {
                    slot[s * per_sample..(s + 1) * per_sample].copy_from_slice(input.as_slice());
                }
                Ok(BatchDims::Flat(per_sample))
            }
        }
    }

    fn forward_to_exit(
        &mut self,
        net: &MultiExitNetwork,
        inputs: &[&Tensor],
        exit: usize,
    ) -> Result<()> {
        self.check_compatible(net)?;
        check_exit(net, exit)?;
        // The trunk buffers are about to be clobbered: invalidate the cached
        // state now and mark it valid again only when the whole pass succeeds.
        // A fresh pass also starts a new generation, so per-exit results of
        // earlier batches stop being readable through `output`.
        self.last_exit = None;
        self.segments_done = 0;
        self.generation += 1;
        let mut dims = self.load_inputs(inputs)?;
        self.batch = inputs.len();
        let mut slot = SLOT_A;
        for (seg, segment) in net.segments()[..=exit].iter().enumerate() {
            let quant = self.quant.as_mut().map(|q| (q.model.segment(seg), &mut q.bufs));
            BatchPlan::run_layers(
                segment,
                &mut self.trunk,
                &mut self.col,
                &mut slot,
                &mut dims,
                self.batch,
                quant,
            )?;
        }
        self.trunk_slot = slot;
        self.trunk_dims = dims;
        self.eval_branch(net, exit)?;
        self.segments_done = exit + 1;
        self.last_exit = Some(exit);
        Ok(())
    }

    fn continue_to_exit(&mut self, net: &MultiExitNetwork, exit: usize) -> Result<()> {
        self.check_compatible(net)?;
        check_exit(net, exit)?;
        let Some(last) = self.last_exit else {
            return Err(NnError::MissingPlannedState);
        };
        if exit <= last {
            return Err(NnError::NonMonotonicExit { current: last, requested: exit });
        }
        let segments_done = self.segments_done;
        self.last_exit = None;
        self.segments_done = 0;
        let mut slot = self.trunk_slot;
        let mut dims = self.trunk_dims;
        for (seg, segment) in net.segments()[segments_done..=exit].iter().enumerate() {
            let quant =
                self.quant.as_mut().map(|q| (q.model.segment(segments_done + seg), &mut q.bufs));
            BatchPlan::run_layers(
                segment,
                &mut self.trunk,
                &mut self.col,
                &mut slot,
                &mut dims,
                self.batch,
                quant,
            )?;
        }
        self.trunk_slot = slot;
        self.trunk_dims = dims;
        self.eval_branch(net, exit)?;
        self.segments_done = exit + 1;
        self.last_exit = Some(exit);
        Ok(())
    }
}

fn shape_error(layer: &str, expected: &[usize], dims: &BatchDims) -> NnError {
    let actual = match dims {
        BatchDims::Spatial(d) => d.to_vec(),
        BatchDims::Flat(n) => vec![*n],
    };
    NnError::InputShapeMismatch { layer: layer.into(), expected: expected.to_vec(), actual }
}

impl MultiExitNetwork {
    /// Builds a [`BatchPlan`] sized for this network's architecture and up to
    /// `max_batch` samples per pass.
    pub fn batch_plan(&self, max_batch: usize) -> BatchPlan {
        BatchPlan::for_architecture(self.architecture(), max_batch)
    }

    /// Builds a **quantized** [`BatchPlan`] (see
    /// [`BatchPlan::for_network_quantized`]).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidSpec`] when `config` does not match this
    /// network's compressible layers.
    pub fn batch_plan_quantized(
        &self,
        config: &QuantConfig,
        max_batch: usize,
    ) -> Result<BatchPlan> {
        BatchPlan::for_network_quantized(self, config, max_batch)
    }

    /// Batched counterpart of [`MultiExitNetwork::forward_to_exit_with`]:
    /// runs every input of the batch up to (and including) `exit` in one
    /// widened pass inside `plan`'s pre-sized buffers. After the plan's
    /// construction this performs zero heap allocations, and each sample's
    /// logits are bit-identical to a separate single-input planned pass.
    ///
    /// The plan caches the batched trunk activation, so
    /// [`MultiExitNetwork::continue_to_exit_batch_with`] can resume the whole
    /// batch at a deeper exit.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidSpec`] for an empty or oversized batch,
    /// [`NnError::InvalidExit`] for an unknown exit, or a shape error when the
    /// inputs disagree with each other or the architecture.
    pub fn forward_to_exit_batch_with<'p>(
        &self,
        plan: &'p mut BatchPlan,
        inputs: &[&Tensor],
        exit: usize,
    ) -> Result<BatchOutput<'p>> {
        plan.forward_to_exit(self, inputs, exit)?;
        Ok(plan.output(exit))
    }

    /// Batched counterpart of [`MultiExitNetwork::continue_to_exit_with`]:
    /// continues the cached batch to a strictly deeper exit without
    /// recomputing the shared trunk and without allocating.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MissingPlannedState`] when no batched pass has
    /// populated the plan, [`NnError::NonMonotonicExit`] when `exit` is not
    /// deeper than the cached one, or [`NnError::InvalidExit`] when it does
    /// not exist.
    pub fn continue_to_exit_batch_with<'p>(
        &self,
        plan: &'p mut BatchPlan,
        exit: usize,
    ) -> Result<BatchOutput<'p>> {
        plan.continue_to_exit(self, exit)?;
        Ok(plan.output(exit))
    }

    /// Batched counterpart of [`MultiExitNetwork::forward_all_with`]:
    /// evaluates every exit on the batch, invoking `visit` with each exit's
    /// [`BatchOutput`] in order. Allocation-free like the other batched entry
    /// points; per-exit results remain readable from the plan afterwards.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the layers.
    pub fn forward_all_batch_with<F: FnMut(BatchOutput<'_>)>(
        &self,
        plan: &mut BatchPlan,
        inputs: &[&Tensor],
        mut visit: F,
    ) -> Result<()> {
        plan.forward_to_exit(self, inputs, 0)?;
        visit(plan.output(0));
        for exit in 1..self.num_exits() {
            plan.continue_to_exit(self, exit)?;
            visit(plan.output(exit));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{lenet_multi_exit, tiny_multi_exit};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_net(seed: u64) -> MultiExitNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        MultiExitNetwork::from_architecture(&tiny_multi_exit(3), &mut rng).unwrap()
    }

    fn random_batch(rng: &mut StdRng, dims: &[usize], n: usize) -> Vec<Tensor> {
        (0..n).map(|_| Tensor::randn(rng, dims, 0.0, 1.0)).collect()
    }

    /// Zeroes every other filter of each conv and marks it sparse, emulating
    /// what channel pruning does to the weights.
    fn prune_convs(layer_groups: &mut [&mut Vec<Layer>]) {
        for layers in layer_groups.iter_mut() {
            for layer in layers.iter_mut() {
                if let Layer::Conv2d(conv) = layer {
                    let out_ch = conv.out_channels();
                    let per_filter = conv.weight().len() / out_ch;
                    for (i, w) in conv.weight_mut().as_mut_slice().iter_mut().enumerate() {
                        if (i / per_filter) % 2 == 0 {
                            *w = 0.0;
                        }
                    }
                    conv.set_sparse_hint(true);
                }
            }
        }
    }

    fn assert_batch_matches_singles(net: &MultiExitNetwork, inputs: &[Tensor]) {
        let mut batch_plan = net.batch_plan(inputs.len());
        let mut single_plan = net.execution_plan();
        let refs: Vec<&Tensor> = inputs.iter().collect();
        for exit in 0..net.num_exits() {
            let out = net.forward_to_exit_batch_with(&mut batch_plan, &refs, exit).unwrap();
            for (i, input) in inputs.iter().enumerate() {
                let single = net.forward_to_exit_with(&mut single_plan, input, exit).unwrap();
                assert_eq!(out.prediction(i), single.prediction, "exit {exit} sample {i}");
                assert_eq!(
                    out.confidence(i).to_bits(),
                    single.confidence.to_bits(),
                    "exit {exit} sample {i}"
                );
                let single_logits: Vec<u32> =
                    single_plan.logits(exit).iter().map(|v| v.to_bits()).collect();
                let batch_logits: Vec<u32> = out.logits(i).iter().map(|v| v.to_bits()).collect();
                assert_eq!(batch_logits, single_logits, "exit {exit} sample {i} logits");
                assert_eq!(out.probs(i), single_plan.probs(exit), "exit {exit} sample {i}");
            }
        }
    }

    #[test]
    fn batched_forward_is_bit_identical_to_single_planned_forward() {
        let net = tiny_net(1);
        let mut rng = StdRng::seed_from_u64(2);
        for n in [1usize, 2, 5, 8] {
            let inputs = random_batch(&mut rng, &[1, 8, 8], n);
            assert_batch_matches_singles(&net, &inputs);
        }
    }

    #[test]
    fn batched_forward_matches_on_the_paper_backbone() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = MultiExitNetwork::from_architecture(&lenet_multi_exit(), &mut rng).unwrap();
        let inputs = random_batch(&mut rng, &[3, 32, 32], 4);
        assert_batch_matches_singles(&net, &inputs);
    }

    #[test]
    fn batched_forward_matches_with_sparse_hints_and_pruned_weights() {
        // Emulate what channel pruning does: zero whole filter rows and mark
        // the convs sparse so the batched pass exercises gemm_sparse_into.
        let mut net = tiny_net(4);
        let mut all_layers: Vec<&mut Vec<Layer>> = net.segments_mut().iter_mut().collect();
        prune_convs(&mut all_layers);
        let mut branch_layers: Vec<&mut Vec<Layer>> = net.branches_mut().iter_mut().collect();
        prune_convs(&mut branch_layers);
        let mut rng = StdRng::seed_from_u64(5);
        let inputs = random_batch(&mut rng, &[1, 8, 8], 6);
        assert_batch_matches_singles(&net, &inputs);
    }

    #[test]
    fn batched_continuation_matches_batched_direct() {
        let net = tiny_net(6);
        let mut rng = StdRng::seed_from_u64(7);
        let inputs = random_batch(&mut rng, &[1, 8, 8], 3);
        let refs: Vec<&Tensor> = inputs.iter().collect();
        let mut direct = net.batch_plan(3);
        net.forward_to_exit_batch_with(&mut direct, &refs, 1).unwrap();
        let mut incremental = net.batch_plan(3);
        net.forward_to_exit_batch_with(&mut incremental, &refs, 0).unwrap();
        let out = net.continue_to_exit_batch_with(&mut incremental, 1).unwrap();
        assert_eq!(out.exit(), 1);
        for i in 0..3 {
            assert_eq!(out.logits(i), direct.output(1).logits(i), "sample {i}");
        }
        assert_eq!(incremental.segments_done(), 2);
        assert_eq!(incremental.last_exit(), Some(1));
    }

    #[test]
    fn forward_all_batch_visits_every_exit_in_order() {
        let net = tiny_net(8);
        let mut rng = StdRng::seed_from_u64(9);
        let inputs = random_batch(&mut rng, &[1, 8, 8], 4);
        let refs: Vec<&Tensor> = inputs.iter().collect();
        let mut plan = net.batch_plan(4);
        let mut seen = Vec::new();
        net.forward_all_batch_with(&mut plan, &refs, |out| {
            seen.push((out.exit(), out.len()));
        })
        .unwrap();
        assert_eq!(seen, vec![(0, 4), (1, 4)]);
        // And per-sample agreement with the allocating forward_all.
        for (i, input) in inputs.iter().enumerate() {
            let reference = net.forward_all(input).unwrap();
            for out in &reference {
                assert_eq!(plan.output(out.exit).prediction(i), out.prediction);
            }
        }
    }

    #[test]
    fn batched_errors_mirror_the_single_planned_path() {
        let net = tiny_net(10);
        let mut plan = net.batch_plan(2);
        let x = Tensor::zeros(&[1, 8, 8]);
        // Empty and oversized batches are rejected.
        assert!(matches!(
            net.forward_to_exit_batch_with(&mut plan, &[], 0),
            Err(NnError::InvalidSpec(_))
        ));
        assert!(matches!(
            net.forward_to_exit_batch_with(&mut plan, &[&x, &x, &x], 0),
            Err(NnError::InvalidSpec(_))
        ));
        // Unknown exit, missing state, non-monotonic continuation.
        assert!(matches!(
            net.forward_to_exit_batch_with(&mut plan, &[&x], 9),
            Err(NnError::InvalidExit { .. })
        ));
        assert!(matches!(
            net.continue_to_exit_batch_with(&mut plan, 1),
            Err(NnError::MissingPlannedState)
        ));
        net.forward_to_exit_batch_with(&mut plan, &[&x], 1).unwrap();
        assert!(matches!(
            net.continue_to_exit_batch_with(&mut plan, 0),
            Err(NnError::NonMonotonicExit { .. })
        ));
        // Mismatched input shapes within one batch.
        let y = Tensor::zeros(&[1, 8, 7]);
        assert!(matches!(
            net.forward_to_exit_batch_with(&mut plan, &[&x, &y], 0),
            Err(NnError::InputShapeMismatch { .. })
        ));
        // A failed pass invalidates the cached state.
        assert!(matches!(
            net.continue_to_exit_batch_with(&mut plan, 1),
            Err(NnError::MissingPlannedState)
        ));
        // The plan stays usable after errors.
        plan.reset();
        net.forward_to_exit_batch_with(&mut plan, &[&x, &x], 0).unwrap();
        assert_eq!(plan.last_exit(), Some(0));
        assert_eq!(plan.batch(), 2);
    }

    fn mixed_quant_config(net: &MultiExitNetwork) -> crate::quant::QuantConfig {
        use ie_tensor::QuantParams;
        let n = net.architecture().compressible_layers().len();
        let first = QuantParams::from_range(-3.0, 3.0, 8);
        let act = QuantParams::from_range(0.0, 8.0, 8);
        let entries: Vec<Option<(u8, QuantParams)>> = (0..n)
            .map(|i| match i % 4 {
                0 => Some((8, if i == 0 { first } else { act })),
                1 => Some((11, act)),
                2 => None,
                _ => Some((6, act)),
            })
            .collect();
        crate::quant::config_from_bits(net, &entries).unwrap()
    }

    #[test]
    fn quantized_batched_forward_is_bit_identical_to_quantized_single_planned() {
        let net = tiny_net(30);
        let cfg = mixed_quant_config(&net);
        let mut single = net.execution_plan_quantized(&cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(31);
        for n in [1usize, 3, 8] {
            let inputs = random_batch(&mut rng, &[1, 8, 8], n);
            let refs: Vec<&Tensor> = inputs.iter().collect();
            let mut plan = net.batch_plan_quantized(&cfg, n).unwrap();
            assert!(plan.quantized_model().is_some());
            for exit in 0..net.num_exits() {
                let out = net.forward_to_exit_batch_with(&mut plan, &refs, exit).unwrap();
                for (i, input) in inputs.iter().enumerate() {
                    let s = net.forward_to_exit_with(&mut single, input, exit).unwrap();
                    assert_eq!(out.prediction(i), s.prediction, "batch {n} exit {exit} sample {i}");
                    let batch_bits: Vec<u32> = out.logits(i).iter().map(|v| v.to_bits()).collect();
                    let single_bits: Vec<u32> =
                        single.logits(exit).iter().map(|v| v.to_bits()).collect();
                    assert_eq!(batch_bits, single_bits, "batch {n} exit {exit} sample {i}");
                }
            }
        }
    }

    #[test]
    fn quantized_batched_continuation_matches_direct() {
        let net = tiny_net(32);
        let cfg = mixed_quant_config(&net);
        let mut rng = StdRng::seed_from_u64(33);
        let inputs = random_batch(&mut rng, &[1, 8, 8], 4);
        let refs: Vec<&Tensor> = inputs.iter().collect();
        let mut direct = net.batch_plan_quantized(&cfg, 4).unwrap();
        net.forward_to_exit_batch_with(&mut direct, &refs, 1).unwrap();
        let mut incremental = net.batch_plan_quantized(&cfg, 4).unwrap();
        net.forward_to_exit_batch_with(&mut incremental, &refs, 0).unwrap();
        let out = net.continue_to_exit_batch_with(&mut incremental, 1).unwrap();
        for i in 0..4 {
            assert_eq!(out.logits(i), direct.output(1).logits(i), "sample {i}");
        }
    }

    #[test]
    #[should_panic(expected = "not evaluated for the current batch")]
    fn reading_an_exit_from_an_earlier_batch_panics_instead_of_relabeling() {
        let net = tiny_net(12);
        let mut plan = net.batch_plan(4);
        let mut rng = StdRng::seed_from_u64(13);
        let old = random_batch(&mut rng, &[1, 8, 8], 4);
        let old_refs: Vec<&Tensor> = old.iter().collect();
        net.forward_to_exit_batch_with(&mut plan, &old_refs, 1).unwrap();
        let fresh = random_batch(&mut rng, &[1, 8, 8], 2);
        let fresh_refs: Vec<&Tensor> = fresh.iter().collect();
        net.forward_to_exit_batch_with(&mut plan, &fresh_refs, 0).unwrap();
        // Exit 1 was only evaluated for the previous 4-sample batch; reading
        // it now would relabel stale logits with the new batch size.
        let _ = plan.output(1);
    }

    #[test]
    fn plan_for_a_smaller_architecture_is_rejected_not_a_panic() {
        let mut rng = StdRng::seed_from_u64(11);
        let lenet = MultiExitNetwork::from_architecture(&lenet_multi_exit(), &mut rng).unwrap();
        let tiny = tiny_net(11);
        let mut tiny_plan = tiny.batch_plan(2);
        let x = Tensor::zeros(&[3, 32, 32]);
        let err = lenet.forward_to_exit_batch_with(&mut tiny_plan, &[&x], 0).unwrap_err();
        assert!(matches!(err, NnError::InvalidSpec(_)), "got {err:?}");
    }
}
