use crate::{EnergyError, EnergyStorage, PowerTrace, Result};

/// Combines a [`PowerTrace`] with an [`EnergyStorage`] and tracks simulated
/// time.
///
/// The runtime advances the simulator to each event's arrival time; the
/// harvested energy accumulated in between is charged into the storage. The
/// simulator also exposes the *charging efficiency* observable used as part of
/// the Q-learning state: the mean harvested power over a recent window,
/// normalised by the trace's peak power.
#[derive(Debug)]
pub struct HarvestSimulator {
    trace: Box<dyn PowerTrace>,
    storage: EnergyStorage,
    now_s: f64,
    recent_window_s: f64,
    peak_power_mw: f64,
}

impl HarvestSimulator {
    /// Creates a simulator at time zero.
    pub fn new(trace: Box<dyn PowerTrace>, storage: EnergyStorage) -> Self {
        // Estimate the trace's peak power by coarse sampling; used only to
        // normalise the charging-efficiency observable into [0, 1].
        let duration = trace.duration_s().max(1.0);
        let mut peak: f64 = 0.0;
        let samples = 512;
        for i in 0..=samples {
            peak = peak.max(trace.power_mw(duration * i as f64 / samples as f64));
        }
        HarvestSimulator {
            trace,
            storage,
            now_s: 0.0,
            recent_window_s: 600.0,
            peak_power_mw: peak.max(1e-9),
        }
    }

    /// Sets the averaging window (seconds) for the charging-efficiency
    /// observable.
    pub fn with_recent_window_s(mut self, window_s: f64) -> Self {
        self.recent_window_s = window_s.max(1.0);
        self
    }

    /// Current simulated time in seconds.
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// The energy storage.
    pub fn storage(&self) -> &EnergyStorage {
        &self.storage
    }

    /// Mutable access to the energy storage (inference draws go through here).
    pub fn storage_mut(&mut self) -> &mut EnergyStorage {
        &mut self.storage
    }

    /// The underlying power trace.
    pub fn trace(&self) -> &dyn PowerTrace {
        self.trace.as_ref()
    }

    /// Advances simulated time to `t_s`, harvesting the trace energy
    /// accumulated since the current time into the storage. Returns the
    /// energy (mJ) that was actually stored.
    ///
    /// Requests earlier than the current time are clamped (no-op) rather than
    /// rejected, because repeated events at the same timestamp are legal.
    pub fn advance_to(&mut self, t_s: f64) -> f64 {
        if t_s <= self.now_s {
            return 0.0;
        }
        let harvested = self.trace.energy_mj(self.now_s, t_s);
        self.now_s = t_s;
        self.storage.harvest(harvested)
    }

    /// Advances simulated time by `dt_s` seconds.
    pub fn advance_by(&mut self, dt_s: f64) -> f64 {
        let target = self.now_s + dt_s.max(0.0);
        self.advance_to(target)
    }

    /// Draws `amount_mj` from the storage at the current time.
    ///
    /// # Errors
    ///
    /// Returns [`EnergyError::InsufficientEnergy`] when the storage cannot
    /// supply the draw.
    pub fn consume(&mut self, amount_mj: f64) -> Result<()> {
        self.storage.consume(amount_mj)
    }

    /// Waits (advancing time) until the storage holds at least `amount_mj`,
    /// polling the trace in `step_s` increments, up to `max_wait_s`. Returns
    /// the waiting time in seconds.
    ///
    /// # Errors
    ///
    /// Returns [`EnergyError::InsufficientEnergy`] when the energy target is
    /// still not reached after `max_wait_s` (the event is then considered
    /// missed by the caller).
    pub fn wait_for_energy(&mut self, amount_mj: f64, step_s: f64, max_wait_s: f64) -> Result<f64> {
        let start = self.now_s;
        let step = step_s.max(1e-3);
        while self.storage.level_mj() + 1e-12 < amount_mj {
            if self.now_s - start >= max_wait_s {
                return Err(EnergyError::InsufficientEnergy {
                    requested_mj: amount_mj,
                    available_mj: self.storage.level_mj(),
                });
            }
            self.advance_by(step);
        }
        Ok(self.now_s - start)
    }

    /// Charging efficiency observable in `[0, 1]`: mean harvested power over
    /// the recent window divided by the trace's peak power.
    pub fn charging_efficiency(&self) -> f64 {
        let t0 = (self.now_s - self.recent_window_s).max(0.0);
        let window = (self.now_s - t0).max(1e-9);
        let mean = self.trace.energy_mj(t0, self.now_s.max(t0 + 1e-9)) / window;
        (mean / self.peak_power_mw).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConstantTrace, SolarTrace};

    fn constant_sim(power_mw: f64, capacity: f64) -> HarvestSimulator {
        HarvestSimulator::new(
            Box::new(ConstantTrace::new(power_mw, 1_000_000.0)),
            EnergyStorage::new(capacity, 1.0),
        )
    }

    #[test]
    fn advancing_accumulates_energy() {
        let mut sim = constant_sim(2.0, 100.0);
        let stored = sim.advance_to(10.0);
        assert!((stored - 20.0).abs() < 1e-6);
        assert!((sim.storage().level_mj() - 20.0).abs() < 1e-6);
        assert_eq!(sim.now_s(), 10.0);
        // Moving backwards is a no-op.
        assert_eq!(sim.advance_to(5.0), 0.0);
        assert_eq!(sim.now_s(), 10.0);
    }

    #[test]
    fn consume_and_wait_for_energy() {
        let mut sim = constant_sim(1.0, 50.0);
        sim.advance_to(5.0);
        sim.consume(3.0).unwrap();
        assert!((sim.storage().level_mj() - 2.0).abs() < 1e-6);
        // Need 10 mJ total; at 1 mW we need ~8 more seconds.
        let waited = sim.wait_for_energy(10.0, 0.5, 100.0).unwrap();
        assert!((7.5..=9.0).contains(&waited), "waited {waited}");
        assert!(sim.storage().level_mj() >= 10.0);
    }

    #[test]
    fn wait_for_energy_times_out_when_unreachable() {
        let mut sim = constant_sim(0.0, 50.0);
        let err = sim.wait_for_energy(1.0, 1.0, 10.0).unwrap_err();
        assert!(matches!(err, EnergyError::InsufficientEnergy { .. }));
        assert!(sim.now_s() >= 10.0);
    }

    #[test]
    fn charging_efficiency_tracks_the_trace() {
        let trace =
            SolarTrace::builder().seed(4).cloud_probability(0.0).noise_fraction(0.0).build();
        let mut sim = HarvestSimulator::new(Box::new(trace), EnergyStorage::new(1000.0, 1.0));
        sim.advance_to(2.0 * 3600.0); // night
        let night = sim.charging_efficiency();
        sim.advance_to(12.0 * 3600.0); // noon
        let noon = sim.charging_efficiency();
        assert!(night < 0.05, "night efficiency {night}");
        assert!(noon > 0.5, "noon efficiency {noon}");
        assert!((0.0..=1.0).contains(&night) && (0.0..=1.0).contains(&noon));
    }

    #[test]
    fn seeded_harvest_runs_are_reproducible() {
        // Two simulators over traces built from the same helper-drawn seed
        // must agree on every observable after identical advance schedules.
        let mut rng = crate::test_support::seeded_rng(None);
        let seed = rand::Rng::gen(&mut rng);
        let build = || {
            HarvestSimulator::new(
                Box::new(SolarTrace::builder().seed(seed).build()),
                EnergyStorage::new(25.0, 0.8),
            )
        };
        let (mut a, mut b) = (build(), build());
        for hour in 1..=24 {
            let t = hour as f64 * 3600.0;
            a.advance_to(t);
            b.advance_to(t);
            assert_eq!(a.storage().level_mj().to_bits(), b.storage().level_mj().to_bits());
            assert_eq!(a.charging_efficiency().to_bits(), b.charging_efficiency().to_bits());
        }
    }

    #[test]
    fn charging_efficiency_is_bounded_for_constant_traces() {
        let mut sim = constant_sim(5.0, 10.0);
        sim.advance_to(100.0);
        let eff = sim.charging_efficiency();
        assert!((eff - 1.0).abs() < 1e-6);
    }
}
