use crate::{Dense, Relu, Result};
use ie_tensor::Tensor;
use rand::Rng;

/// Output activation applied by an [`Mlp`] after its final dense layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputActivation {
    /// No activation (linear output) — used by critics.
    #[default]
    Linear,
    /// Logistic sigmoid, squashing each output into `(0, 1)` — used by the
    /// compression agents whose actions are pruning rates / bitwidth fractions.
    Sigmoid,
    /// Hyperbolic tangent, squashing into `(-1, 1)`.
    Tanh,
}

/// A small multi-layer perceptron with ReLU hidden activations.
///
/// This is the function approximator behind the DDPG actor and critic in
/// `ie-rl`. It supports forward evaluation, backward propagation of an output
/// gradient, SGD updates and the soft ("Polyak") parameter blending DDPG uses
/// for its target networks.
///
/// # Example
///
/// ```
/// use ie_nn::{Mlp, OutputActivation};
/// use ie_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mlp = Mlp::new(&mut rng, &[4, 8, 2], OutputActivation::Tanh);
/// let y = mlp.forward(&Tensor::zeros(&[4]))?;
/// assert_eq!(y.len(), 2);
/// # Ok::<(), ie_nn::NnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
    relu: Relu,
    output_activation: OutputActivation,
}

impl Mlp {
    /// Creates an MLP with the given layer sizes (`sizes[0]` inputs,
    /// `sizes.last()` outputs) and output activation.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, sizes: &[usize], output: OutputActivation) -> Self {
        assert!(sizes.len() >= 2, "an MLP needs at least an input and an output size");
        let layers = sizes.windows(2).map(|w| Dense::new(rng, w[0], w[1])).collect();
        Mlp { layers, relu: Relu::new(), output_activation: output }
    }

    /// Number of inputs.
    pub fn input_size(&self) -> usize {
        self.layers.first().map(Dense::in_features).unwrap_or(0)
    }

    /// Number of outputs.
    pub fn output_size(&self) -> usize {
        self.layers.last().map(Dense::out_features).unwrap_or(0)
    }

    /// Total number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(Dense::parameter_count).sum()
    }

    fn apply_output(&self, x: &Tensor) -> Tensor {
        match self.output_activation {
            OutputActivation::Linear => x.clone(),
            OutputActivation::Sigmoid => x.sigmoid(),
            OutputActivation::Tanh => x.tanh(),
        }
    }

    fn output_grad(&self, pre_activation: &Tensor, grad_out: &Tensor) -> Result<Tensor> {
        Ok(match self.output_activation {
            OutputActivation::Linear => grad_out.clone(),
            OutputActivation::Sigmoid => {
                let s = pre_activation.sigmoid();
                let ds = s.map(|v| v * (1.0 - v));
                ds.mul(grad_out)?
            }
            OutputActivation::Tanh => {
                let t = pre_activation.tanh();
                let dt = t.map(|v| 1.0 - v * v);
                dt.mul(grad_out)?
            }
        })
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Returns a shape error when `input` does not match the first layer.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        let (out, _) = self.forward_cached(input)?;
        Ok(out)
    }

    /// Forward pass that also returns the cached layer inputs and the final
    /// pre-activation, as needed by [`Self::backward`].
    fn forward_cached(&self, input: &Tensor) -> Result<(Tensor, (Vec<Tensor>, Tensor))> {
        let mut x = input.clone();
        let mut caches = Vec::with_capacity(self.layers.len());
        for (i, layer) in self.layers.iter().enumerate() {
            caches.push(x.clone());
            x = layer.forward(&x)?;
            if i + 1 < self.layers.len() {
                x = self.relu.forward(&x)?;
            }
        }
        let pre = x.clone();
        Ok((self.apply_output(&x), (caches, pre)))
    }

    /// Backward pass: accumulates parameter gradients for `dL/d_output` and
    /// returns `dL/d_input`.
    ///
    /// # Errors
    ///
    /// Returns a shape error when `grad_output` does not match the output size.
    pub fn backward(&mut self, input: &Tensor, grad_output: &Tensor) -> Result<Tensor> {
        let (_, (caches, pre)) = self.forward_cached(input)?;
        let mut g = self.output_grad(&pre, grad_output)?;
        let n = self.layers.len();
        for i in (0..n).rev() {
            if i + 1 < n {
                // Gradient through the hidden ReLU: its input is the dense output,
                // which equals forward(cache) of that layer.
                let dense_out = self.layers[i].forward(&caches[i])?;
                g = self.relu.backward(&dense_out, &g)?;
            }
            g = self.layers[i].backward(&caches[i], &g)?;
        }
        Ok(g)
    }

    /// Applies accumulated gradients with learning rate `lr` and clears them.
    pub fn apply_gradients(&mut self, lr: f32) {
        for layer in &mut self.layers {
            layer.apply_gradients(lr);
        }
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Polyak soft update: `self ← τ·other + (1 − τ)·self`.
    ///
    /// Used to track DDPG target networks. Layer shapes must match.
    ///
    /// # Panics
    ///
    /// Panics if the two MLPs have different layer shapes.
    pub fn blend_from(&mut self, other: &Mlp, tau: f32) {
        assert_eq!(self.layers.len(), other.layers.len(), "MLP layer counts differ");
        for (mine, theirs) in self.layers.iter_mut().zip(&other.layers) {
            assert_eq!(mine.weight().dims(), theirs.weight().dims(), "MLP layer shapes differ");
            for (w, o) in
                mine.weight_mut().as_mut_slice().iter_mut().zip(theirs.weight().as_slice())
            {
                *w = tau * o + (1.0 - tau) * *w;
            }
            for (b, o) in mine.bias_mut().as_mut_slice().iter_mut().zip(theirs.bias().as_slice()) {
                *b = tau * o + (1.0 - tau) * *b;
            }
        }
    }

    /// Copies all parameters from `other` (equivalent to `blend_from` with τ = 1).
    pub fn copy_from(&mut self, other: &Mlp) {
        self.blend_from(other, 1.0);
    }

    /// The dense layers of the MLP (read-only).
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    #[test]
    fn forward_respects_output_activation_ranges() {
        let mut r = rng();
        let x = Tensor::randn(&mut r, &[6], 0.0, 3.0);
        let sig = Mlp::new(&mut r, &[6, 12, 4], OutputActivation::Sigmoid);
        let tanh = Mlp::new(&mut r, &[6, 12, 4], OutputActivation::Tanh);
        let y_sig = sig.forward(&x).unwrap();
        let y_tanh = tanh.forward(&x).unwrap();
        assert!(y_sig.as_slice().iter().all(|v| (0.0..=1.0).contains(v)));
        assert!(y_tanh.as_slice().iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    #[test]
    fn gradient_descent_fits_a_simple_target() {
        let mut r = rng();
        let mut mlp = Mlp::new(&mut r, &[2, 16, 1], OutputActivation::Linear);
        // Fit y = x0 + x1 on a few points.
        let data: Vec<(Tensor, f32)> = (0..20)
            .map(|i| {
                let a = (i % 5) as f32 / 5.0;
                let b = (i / 5) as f32 / 4.0;
                (Tensor::from_vec(vec![a, b], &[2]).unwrap(), a + b)
            })
            .collect();
        let loss_of = |m: &Mlp| -> f32 {
            data.iter()
                .map(|(x, y)| {
                    let p = m.forward(x).unwrap().as_slice()[0];
                    (p - y) * (p - y)
                })
                .sum::<f32>()
                / data.len() as f32
        };
        let initial = loss_of(&mlp);
        for _ in 0..300 {
            for (x, y) in &data {
                let p = mlp.forward(x).unwrap().as_slice()[0];
                let grad = Tensor::from_vec(vec![2.0 * (p - y)], &[1]).unwrap();
                mlp.backward(x, &grad).unwrap();
            }
            mlp.apply_gradients(0.01 / data.len() as f32);
        }
        let final_loss = loss_of(&mlp);
        assert!(final_loss < initial * 0.2, "MSE should drop: {initial} -> {final_loss}");
    }

    #[test]
    fn backward_gradient_matches_finite_differences() {
        let mut r = rng();
        let mut mlp = Mlp::new(&mut r, &[3, 5, 2], OutputActivation::Tanh);
        let x = Tensor::randn(&mut r, &[3], 0.0, 1.0);
        let ones = Tensor::ones(&[2]);
        let dx = mlp.backward(&x, &ones).unwrap();
        mlp.zero_grad();
        let eps = 1e-3;
        for i in 0..3 {
            let mut xu = x.clone();
            xu.as_mut_slice()[i] += eps;
            let up = mlp.forward(&xu).unwrap().sum();
            let mut xd = x.clone();
            xd.as_mut_slice()[i] -= eps;
            let down = mlp.forward(&xd).unwrap().sum();
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - dx.as_slice()[i]).abs() < 1e-2,
                "dx[{i}]: analytic {} vs numeric {numeric}",
                dx.as_slice()[i]
            );
        }
    }

    #[test]
    fn blend_from_moves_parameters_towards_source() {
        let mut r = rng();
        let a = Mlp::new(&mut r, &[2, 4, 1], OutputActivation::Linear);
        let mut b = Mlp::new(&mut r, &[2, 4, 1], OutputActivation::Linear);
        let before = b.layers()[0].weight().as_slice()[0];
        let target = a.layers()[0].weight().as_slice()[0];
        b.blend_from(&a, 0.5);
        let after = b.layers()[0].weight().as_slice()[0];
        assert!((after - (0.5 * target + 0.5 * before)).abs() < 1e-6);
        b.copy_from(&a);
        assert_eq!(b.layers()[0].weight().as_slice()[0], target);
    }

    #[test]
    #[should_panic(expected = "at least an input and an output size")]
    fn mlp_requires_two_sizes() {
        let mut r = rng();
        let _ = Mlp::new(&mut r, &[4], OutputActivation::Linear);
    }
}
