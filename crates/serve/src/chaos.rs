//! Deterministic chaos injection for the serving loop.
//!
//! A [`ChaosPlan`] injects three failure modes into the server — worker
//! panics, worker stalls, and arrival bursts — all derived from one master
//! seed via [`ie_energy::fork_seed`], the same hierarchical scheme PR 7's
//! `FaultPlan` uses for crash injection. Every decision is keyed on **what**
//! is being perturbed (a batch index and its retry attempt, a submission
//! index) and never on *who* runs it (worker id) or *when* (wall clock), so
//! in replay mode a fixed seed produces byte-identical outcomes across
//! 1 vs N workers and across repeated runs — which is what lets CI diff
//! chaos runs the way it already diffs fault-free ones.
//!
//! Injected panics carry a [`ChaosPanic`] payload thrown with
//! [`std::panic::panic_any`], and the server installs (once, chaining the
//! previous hook) a panic hook that silences exactly that payload type:
//! chaos runs stay byte-identical on stderr too, while every *real* panic
//! still prints through the prior hook.

use ie_energy::fork_rng;
use rand::Rng;
use std::sync::OnceLock;

/// Path components separating the chaos decision streams under the master
/// seed (the `purpose` level of the fork hierarchy).
const KIND_PANIC: u64 = 0;
const KIND_STALL: u64 = 1;
const KIND_BURST: u64 = 2;

/// Payload type of an injected worker panic. Public so embedders can
/// recognise chaos panics in their own hooks; the server's supervision loop
/// treats it like any other worker loss.
#[derive(Debug)]
pub struct ChaosPanic {
    /// The perturbation key (batch index in replay, head request id live).
    pub key: u64,
    /// The retry attempt the panic was injected into.
    pub attempt: u32,
}

/// A seeded, deterministic chaos-injection schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPlan {
    /// Master seed; 0 disables every injection.
    pub seed: u64,
    /// Probability that a batch's worker panics mid-batch (drawn per
    /// batch key — by default only on the first attempt, so supervision
    /// always recovers within one retry).
    pub panic_probability: f64,
    /// Probability that a worker stalls (sleeps) before serving a batch.
    pub stall_probability: f64,
    /// Probability that a given arrival opens a burst (subsequent arrivals
    /// collapse onto it).
    pub burst_probability: f64,
    /// How many arrivals a burst collapses together.
    pub burst_len: usize,
    /// Upper bound on an injected stall, in milliseconds (kept small so
    /// chaos tests stay fast; the stall is a liveness probe, not a load
    /// test).
    pub stall_max_ms: u64,
    /// When `true`, the panic draw is repeated on every retry attempt —
    /// a batch that draws a panic keeps panicking until its retry budget is
    /// exhausted. Off by default (panics hit only attempt 0), used by tests
    /// that exercise the [`RetryExhausted`](crate::ShedReason) path.
    pub panic_every_attempt: bool,
}

impl ChaosPlan {
    /// The no-op plan: nothing is ever injected.
    pub fn none() -> Self {
        ChaosPlan {
            seed: 0,
            panic_probability: 0.0,
            stall_probability: 0.0,
            burst_probability: 0.0,
            burst_len: 0,
            stall_max_ms: 0,
            panic_every_attempt: false,
        }
    }

    /// The standard chaos mix under `seed` (0 yields [`ChaosPlan::none`]):
    /// 20% of batches lose their worker to a panic, 10% stall for up to
    /// 2 ms, and 25% of arrivals open a 4-request burst.
    pub fn seeded(seed: u64) -> Self {
        if seed == 0 {
            return ChaosPlan::none();
        }
        ChaosPlan {
            seed,
            panic_probability: 0.20,
            stall_probability: 0.10,
            burst_probability: 0.25,
            burst_len: 4,
            stall_max_ms: 2,
            panic_every_attempt: false,
        }
    }

    /// Reads the `IE_CHAOS_SEED` knob (0, unset or unparsable → no chaos;
    /// unparsable additionally warns on stderr).
    pub fn from_env() -> Self {
        match std::env::var("IE_CHAOS_SEED") {
            Ok(raw) => match raw.trim().parse::<u64>() {
                Ok(seed) => ChaosPlan::seeded(seed),
                Err(_) => {
                    eprintln!(
                        "warning: ignoring invalid IE_CHAOS_SEED={raw:?} (want a u64; 0 disables \
                         chaos)"
                    );
                    ChaosPlan::none()
                }
            },
            Err(_) => ChaosPlan::none(),
        }
    }

    /// Whether any injection can ever fire.
    pub fn is_active(&self) -> bool {
        self.seed != 0
            && (self.panic_probability > 0.0
                || self.stall_probability > 0.0
                || self.burst_probability > 0.0)
    }

    /// Whether the worker serving `(key, attempt)` loses itself to an
    /// injected panic. Unless [`ChaosPlan::panic_every_attempt`] is set,
    /// only attempt 0 draws — the retried batch then completes, which keeps
    /// the default chaos mix recoverable within a retry budget of 1.
    pub fn panics(&self, key: u64, attempt: u32) -> bool {
        if self.seed == 0 || self.panic_probability <= 0.0 {
            return false;
        }
        if attempt > 0 && !self.panic_every_attempt {
            return false;
        }
        // The draw deliberately ignores the attempt: with
        // `panic_every_attempt` the *same* doomed batches keep panicking,
        // which is what drives them into retry exhaustion deterministically.
        let draw: f64 = fork_rng(self.seed, &[KIND_PANIC, key]).gen();
        draw < self.panic_probability
    }

    /// Panics with a [`ChaosPanic`] payload when the schedule says the
    /// worker serving `(key, attempt)` is lost.
    pub fn maybe_panic(&self, key: u64, attempt: u32) {
        if self.panics(key, attempt) {
            std::panic::panic_any(ChaosPanic { key, attempt });
        }
    }

    /// Injected stall (milliseconds) before serving `(key, attempt)`, or
    /// `None`. The duration is drawn from the same fork, in
    /// `1..=stall_max_ms`.
    pub fn stall_ms(&self, key: u64, attempt: u32) -> Option<u64> {
        if self.seed == 0 || self.stall_probability <= 0.0 || self.stall_max_ms == 0 {
            return None;
        }
        let mut rng = fork_rng(self.seed, &[KIND_STALL, key, u64::from(attempt)]);
        let draw: f64 = rng.gen();
        if draw < self.stall_probability {
            Some(rng.gen_range(1..=self.stall_max_ms))
        } else {
            None
        }
    }

    /// Whether submission index `s` opens an arrival burst.
    pub fn burst_at(&self, s: u64) -> bool {
        if self.seed == 0 || self.burst_probability <= 0.0 || self.burst_len < 2 {
            return false;
        }
        let draw: f64 = fork_rng(self.seed, &[KIND_BURST, s]).gen();
        draw < self.burst_probability
    }

    /// Collapses scheduled arrival times into bursts in place: when index
    /// `i` opens a burst, the next `burst_len − 1` arrivals land at the same
    /// instant. Monotonicity is preserved (times only move earlier, toward
    /// a still-earlier-or-equal burst head), so the stream stays a valid
    /// replay input. Returns the number of bursts injected.
    pub fn burstify_arrivals(&self, arrivals: &mut [f64]) -> usize {
        let mut bursts = 0;
        let mut i = 0;
        while i < arrivals.len() {
            if self.burst_at(i as u64) {
                let end = (i + self.burst_len).min(arrivals.len());
                let head = arrivals[i];
                for t in arrivals[i + 1..end].iter_mut() {
                    *t = head;
                }
                bursts += usize::from(end > i + 1);
                i = end;
            } else {
                i += 1;
            }
        }
        bursts
    }
}

/// Installs (once per process) a panic hook that suppresses the default
/// "thread panicked" report for [`ChaosPanic`] payloads and chains to the
/// previously installed hook for everything else. Injected panics are
/// expected and caught by supervision — reporting them would drown real
/// failures and make chaos-run stderr nondeterministic across retries.
pub fn silence_chaos_panics() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ChaosPanic>().is_none() {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_zero_is_inert() {
        let plan = ChaosPlan::seeded(0);
        assert_eq!(plan, ChaosPlan::none());
        assert!(!plan.is_active());
        for k in 0..64 {
            assert!(!plan.panics(k, 0));
            assert!(plan.stall_ms(k, 0).is_none());
            assert!(!plan.burst_at(k));
        }
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = ChaosPlan::seeded(7);
        let b = ChaosPlan::seeded(7);
        let c = ChaosPlan::seeded(8);
        let sig = |p: &ChaosPlan| {
            (0..256).map(|k| (p.panics(k, 0), p.stall_ms(k, 0), p.burst_at(k))).collect::<Vec<_>>()
        };
        assert_eq!(sig(&a), sig(&b));
        assert_ne!(sig(&a), sig(&c));
        // The standard mix actually fires at this sample size.
        assert!(sig(&a).iter().any(|&(p, _, _)| p), "no panic in 256 draws at p=0.2");
        assert!(sig(&a).iter().any(|&(_, s, _)| s.is_some()), "no stall in 256 draws");
    }

    #[test]
    fn panics_hit_only_attempt_zero_unless_exhaustion_mode() {
        let plan = ChaosPlan::seeded(7);
        let doomed = (0..256).find(|&k| plan.panics(k, 0)).expect("some batch panics");
        assert!(!plan.panics(doomed, 1), "the retried attempt must succeed by default");
        let exhausting = ChaosPlan { panic_every_attempt: true, ..plan };
        assert!(exhausting.panics(doomed, 1));
        assert!(exhausting.panics(doomed, 5));
    }

    #[test]
    fn stall_durations_are_bounded() {
        let plan = ChaosPlan { stall_probability: 1.0, ..ChaosPlan::seeded(3) };
        for k in 0..128 {
            let ms = plan.stall_ms(k, 0).expect("p=1 always stalls");
            assert!((1..=plan.stall_max_ms).contains(&ms));
        }
    }

    #[test]
    fn burstify_preserves_monotonicity_and_collapses_heads() {
        let plan = ChaosPlan { burst_probability: 1.0, burst_len: 3, ..ChaosPlan::seeded(11) };
        let mut arrivals: Vec<f64> = (0..10).map(|i| i as f64 * 0.01).collect();
        let bursts = plan.burstify_arrivals(&mut arrivals);
        assert!(bursts >= 3, "p=1 bursts of 3 over 10 arrivals");
        for w in arrivals.windows(2) {
            assert!(w[1] >= w[0], "burstified stream must stay sorted");
        }
        assert_eq!(arrivals[0], arrivals[1]);
        assert_eq!(arrivals[0], arrivals[2]);
        assert_ne!(arrivals[2], arrivals[3], "next burst opens at its own head");
    }

    #[test]
    fn maybe_panic_throws_a_recognisable_payload() {
        let plan = ChaosPlan { panic_probability: 1.0, ..ChaosPlan::seeded(5) };
        silence_chaos_panics();
        let caught = std::panic::catch_unwind(|| plan.maybe_panic(0, 0))
            .expect_err("p=1 must panic on attempt 0");
        let payload = caught.downcast_ref::<ChaosPanic>().expect("payload is ChaosPanic");
        assert_eq!(payload.key, 0);
        assert_eq!(payload.attempt, 0);
    }
}
