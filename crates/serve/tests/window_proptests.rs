//! Property: the dynamic batching window partitions the request stream —
//! for ANY sorted arrival schedule, window size and deadline, every request
//! lands in exactly one batch (never dropped, never duplicated), batches
//! respect the size cap, and no request waits past the deadline.

use ie_serve::{compose_batches, WindowConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn windows_partition_the_stream_without_drops_or_duplicates(
        gaps in proptest::collection::vec(0.0f64..0.02, 0..80),
        max_batch in 1usize..=9,
        deadline_ms in 0.0f64..15.0,
    ) {
        // Arrivals from non-negative gaps are sorted by construction.
        let mut arrivals = Vec::with_capacity(gaps.len());
        let mut t = 0.0;
        for g in &gaps {
            t += g;
            arrivals.push(t);
        }
        let cfg = WindowConfig { max_batch, deadline_s: deadline_ms / 1000.0 };
        let batches = compose_batches(&arrivals, &cfg).unwrap();

        // Exactly once, in order: the concatenated indices are 0..n.
        let flat: Vec<usize> = batches.iter().flat_map(|b| b.indices.iter().copied()).collect();
        prop_assert_eq!(flat, (0..arrivals.len()).collect::<Vec<_>>());

        for b in &batches {
            prop_assert!(!b.indices.is_empty(), "no empty windows");
            prop_assert!(b.indices.len() <= max_batch, "size cap respected");
            prop_assert!(b.close_s >= b.open_s);
            // A filled window closes at its last arrival, an unfilled one at
            // the deadline — either way nobody waits past the deadline.
            for &i in &b.indices {
                let wait = b.wait_s(arrivals[i]);
                prop_assert!(
                    (-1e-9..=cfg.deadline_s + 1e-9).contains(&wait),
                    "wait {} vs deadline {}", wait, cfg.deadline_s
                );
                prop_assert!(arrivals[i] >= b.open_s && arrivals[i] <= b.close_s);
            }
        }
    }
}
