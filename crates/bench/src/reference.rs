//! The numbers the paper reports, used to print "paper vs. measured" rows.

/// Per-exit accuracy of the full-precision network (Fig. 1(b)), fractions.
pub const PAPER_FULL_PRECISION_ACC: [f64; 3] = [0.649, 0.720, 0.730];
/// Per-exit accuracy under uniform compression (Fig. 1(b)).
pub const PAPER_UNIFORM_ACC: [f64; 3] = [0.573, 0.652, 0.675];
/// Per-exit accuracy under the paper's nonuniform compression (Fig. 1(b)).
pub const PAPER_NONUNIFORM_ACC: [f64; 3] = [0.619, 0.685, 0.699];

/// Per-exit FLOPs of the uncompressed backbone (Section V-A), in FLOPs.
pub const PAPER_EXIT_FLOPS_BEFORE: [f64; 3] = [445_200.0, 1_260_200.0, 1_620_200.0];
/// FLOPs reduction factors of the three exits after compression (Fig. 6).
pub const PAPER_EXIT_FLOPS_RATIO: [f64; 3] = [0.31, 0.44, 0.67];

/// IEpmJ of (ours, SonicNet, SpArSeNet, LeNet-Cifar) from Fig. 5.
/// The LeNet-Cifar value is derived from the stated 0.28× margin over it.
pub const PAPER_IEPMJ: [f64; 4] = [0.89, 0.25, 0.05, 0.70];
/// All-event accuracy of the four systems (Section V-C), fractions.
pub const PAPER_ACC_ALL_EVENTS: [f64; 4] = [0.501, 0.140, 0.026, 0.392];
/// Processed-event accuracy of the four systems (Section V-C), fractions.
pub const PAPER_ACC_PROCESSED: [f64; 4] = [0.654, 0.754, 0.827, 0.747];
/// Mean per-event latency of the four systems (Section V-D), seconds.
pub const PAPER_LATENCY_S: [f64; 4] = [18.0, 139.9, 183.4, 56.7];

/// Exit-selection percentages of the Q-learning runtime (Fig. 7(b)):
/// exits 1–3 as fractions of all events.
pub const PAPER_QLEARNING_EXIT_FRACTIONS: [f64; 3] = [0.710, 0.028, 0.114];
/// Exit-selection percentages of the static LUT (Fig. 7(b)).
pub const PAPER_STATIC_EXIT_FRACTIONS: [f64; 3] = [0.576, 0.038, 0.152];
/// Accuracy improvement of the runtime adaptation over the static LUT
/// (Section V-E), absolute fraction of all events.
pub const PAPER_RUNTIME_IMPROVEMENT: f64 = 0.102;

/// System names in the order used by the comparison tables.
pub const SYSTEM_NAMES: [&str; 4] = ["Our Approach", "SonicNet", "SpArSeNet", "LeNet-Cifar"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_tables_are_internally_consistent() {
        // IEpmJ ordering of Fig. 5.
        const { assert!(PAPER_IEPMJ[0] > PAPER_IEPMJ[3]) };
        const { assert!(PAPER_IEPMJ[3] > PAPER_IEPMJ[1]) };
        const { assert!(PAPER_IEPMJ[1] > PAPER_IEPMJ[2]) };
        // Nonuniform beats uniform at every exit.
        for i in 0..3 {
            assert!(PAPER_NONUNIFORM_ACC[i] > PAPER_UNIFORM_ACC[i]);
            assert!(PAPER_FULL_PRECISION_ACC[i] > PAPER_NONUNIFORM_ACC[i]);
        }
        // Our approach has the lowest per-event latency.
        assert!(PAPER_LATENCY_S.iter().skip(1).all(|&l| l > PAPER_LATENCY_S[0]));
        assert_eq!(SYSTEM_NAMES.len(), PAPER_IEPMJ.len());
    }
}
