//! Counting-allocator regression test: a warmed-up planned forward pass
//! performs **zero** heap allocations.
//!
//! The counting is per-thread (a `const`-initialised thread-local `Cell`, so
//! the bookkeeping itself never allocates and never races with the other test
//! threads of the harness), and the whole file contains a single test so no
//! sibling test can interleave allocations on this thread.

use ie_nn::quant::config_from_bits;
use ie_nn::spec::{lenet_multi_exit, tiny_multi_exit};
use ie_nn::MultiExitNetwork;
use ie_tensor::{QuantParams, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAllocator;

// SAFETY: delegates every operation to the system allocator unchanged; the
// only addition is a thread-local counter bump, which cannot allocate or
// unwind.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations_on_this_thread() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

#[test]
fn warmed_planned_forward_performs_zero_heap_allocations() {
    let mut rng = StdRng::seed_from_u64(42);
    let tiny = MultiExitNetwork::from_architecture(&tiny_multi_exit(3), &mut rng).unwrap();
    let lenet = MultiExitNetwork::from_architecture(&lenet_multi_exit(), &mut rng).unwrap();
    let tiny_input = Tensor::randn(&mut rng, &[1, 8, 8], 0.0, 1.0);
    let lenet_input = Tensor::randn(&mut rng, &[3, 32, 32], 0.0, 1.0);
    let mut tiny_plan = tiny.execution_plan();
    let mut lenet_plan = lenet.execution_plan();

    // Batched counterparts: the ref slices are built up front so the measured
    // loop only reuses them.
    let mut tiny_batch_plan = tiny.batch_plan(2);
    let mut lenet_batch_plan = lenet.batch_plan(4);
    let tiny_batch = [Tensor::randn(&mut rng, &[1, 8, 8], 0.0, 1.0), tiny_input.clone()];
    let tiny_refs: Vec<&Tensor> = tiny_batch.iter().collect();
    let lenet_batch: Vec<Tensor> =
        (0..4).map(|_| Tensor::randn(&mut rng, &[3, 32, 32], 0.0, 1.0)).collect();
    let lenet_refs: Vec<&Tensor> = lenet_batch.iter().collect();

    // Quantized plans: a kernel mix (i8, i16, f32) so the integer GEMMs, the
    // quantized im2col, the widening scratch and both requantization
    // emissions (codes and f32) are all exercised inside the measured loop.
    let n = lenet.architecture().compressible_layers().len();
    let first = QuantParams::from_range(-3.0, 3.0, 8);
    let act = QuantParams::from_range(0.0, 12.0, 8);
    let entries: Vec<Option<(u8, QuantParams)>> = (0..n)
        .map(|i| match i % 3 {
            0 => Some((8, if i == 0 { first } else { act })),
            1 => Some((12, act)),
            _ => None,
        })
        .collect();
    let quant_cfg = config_from_bits(&lenet, &entries).unwrap();
    let mut quant_plan = lenet.execution_plan_quantized(&quant_cfg).unwrap();
    let mut quant_batch_plan = lenet.batch_plan_quantized(&quant_cfg, 4).unwrap();

    // Warm-up: touch every code path the measured section will run.
    for _ in 0..2 {
        tiny.forward_to_exit_with(&mut tiny_plan, &tiny_input, 0).unwrap();
        tiny.continue_to_exit_with(&mut tiny_plan, 1).unwrap();
        tiny.forward_all_with(&mut tiny_plan, &tiny_input, |_| {}).unwrap();
        for exit in 0..3 {
            lenet.forward_to_exit_with(&mut lenet_plan, &lenet_input, exit).unwrap();
        }
        lenet.forward_to_exit_with(&mut lenet_plan, &lenet_input, 0).unwrap();
        lenet.continue_to_exit_with(&mut lenet_plan, 2).unwrap();
        tiny.forward_all_batch_with(&mut tiny_batch_plan, &tiny_refs, |_| {}).unwrap();
        lenet.forward_to_exit_batch_with(&mut lenet_batch_plan, &lenet_refs, 0).unwrap();
        lenet.continue_to_exit_batch_with(&mut lenet_batch_plan, 2).unwrap();
        lenet.forward_to_exit_with(&mut quant_plan, &lenet_input, 0).unwrap();
        lenet.continue_to_exit_with(&mut quant_plan, 2).unwrap();
        lenet.forward_to_exit_batch_with(&mut quant_batch_plan, &lenet_refs, 2).unwrap();
    }

    let before = allocations_on_this_thread();
    let mut checksum = 0usize;
    for _ in 0..10 {
        checksum += tiny.forward_to_exit_with(&mut tiny_plan, &tiny_input, 0).unwrap().prediction;
        checksum += tiny.continue_to_exit_with(&mut tiny_plan, 1).unwrap().prediction;
        tiny.forward_all_with(&mut tiny_plan, &tiny_input, |out| checksum += out.prediction)
            .unwrap();
        for exit in 0..3 {
            checksum +=
                lenet.forward_to_exit_with(&mut lenet_plan, &lenet_input, exit).unwrap().prediction;
        }
        checksum +=
            lenet.forward_to_exit_with(&mut lenet_plan, &lenet_input, 0).unwrap().prediction;
        checksum += lenet.continue_to_exit_with(&mut lenet_plan, 2).unwrap().prediction;
        // A warmed batched pass is equally allocation-free.
        tiny.forward_all_batch_with(&mut tiny_batch_plan, &tiny_refs, |out| {
            checksum += out.prediction(0) + out.prediction(1);
        })
        .unwrap();
        checksum += lenet
            .forward_to_exit_batch_with(&mut lenet_batch_plan, &lenet_refs, 0)
            .unwrap()
            .prediction(3);
        checksum +=
            lenet.continue_to_exit_batch_with(&mut lenet_batch_plan, 2).unwrap().prediction(1);
        // A warmed quantized plan (integer kernels + requantization) is
        // equally allocation-free, single-input and batched.
        checksum +=
            lenet.forward_to_exit_with(&mut quant_plan, &lenet_input, 0).unwrap().prediction;
        checksum += lenet.continue_to_exit_with(&mut quant_plan, 2).unwrap().prediction;
        checksum += lenet
            .forward_to_exit_batch_with(&mut quant_batch_plan, &lenet_refs, 2)
            .unwrap()
            .prediction(2);
    }
    let after = allocations_on_this_thread();

    assert_eq!(
        after - before,
        0,
        "warmed planned inference must not allocate (checksum {checksum})"
    );
}
