use crate::{EnergyError, Result};

/// The energy buffer (super-capacitor) of an energy-harvesting node.
///
/// Harvested energy is charged into the storage subject to a charging
/// efficiency and a hard capacity; inference draws discharge it. The paper's
/// runtime uses the current level and the recent charging efficiency as the
/// Q-learning state.
///
/// # Example
///
/// ```
/// use ie_energy::EnergyStorage;
///
/// let mut cap = EnergyStorage::new(10.0, 0.8);
/// cap.harvest(5.0);                 // 5 mJ harvested, 4 mJ stored
/// assert_eq!(cap.level_mj(), 4.0);
/// cap.consume(1.5)?;                // inference draws 1.5 mJ
/// assert_eq!(cap.level_mj(), 2.5);
/// # Ok::<(), ie_energy::EnergyError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyStorage {
    capacity_mj: f64,
    level_mj: f64,
    initial_level_mj: f64,
    charge_efficiency: f64,
    total_harvested_mj: f64,
    total_stored_mj: f64,
    total_consumed_mj: f64,
    total_wasted_mj: f64,
}

impl EnergyStorage {
    /// Creates an empty storage with the given capacity (millijoules) and
    /// charging efficiency in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_mj` is not positive or `charge_efficiency` is not
    /// in `(0, 1]`.
    pub fn new(capacity_mj: f64, charge_efficiency: f64) -> Self {
        assert!(capacity_mj > 0.0, "capacity must be positive");
        assert!(
            charge_efficiency > 0.0 && charge_efficiency <= 1.0,
            "charge efficiency must be in (0, 1]"
        );
        EnergyStorage {
            capacity_mj,
            level_mj: 0.0,
            initial_level_mj: 0.0,
            charge_efficiency,
            total_harvested_mj: 0.0,
            total_stored_mj: 0.0,
            total_consumed_mj: 0.0,
            total_wasted_mj: 0.0,
        }
    }

    /// Returns a copy of this storage pre-charged to `level_mj` (clamped to
    /// the capacity).
    pub fn with_initial_level(mut self, level_mj: f64) -> Self {
        self.level_mj = level_mj.clamp(0.0, self.capacity_mj);
        self.initial_level_mj = self.level_mj;
        self
    }

    /// The pre-charge the storage started with (see [`Self::with_initial_level`]).
    pub fn initial_level_mj(&self) -> f64 {
        self.initial_level_mj
    }

    /// Capacity in millijoules.
    pub fn capacity_mj(&self) -> f64 {
        self.capacity_mj
    }

    /// Currently stored energy in millijoules.
    pub fn level_mj(&self) -> f64 {
        self.level_mj
    }

    /// Stored energy as a fraction of the capacity, in `[0, 1]`.
    pub fn level_fraction(&self) -> f64 {
        self.level_mj / self.capacity_mj
    }

    /// The charging efficiency applied to harvested energy.
    pub fn charge_efficiency(&self) -> f64 {
        self.charge_efficiency
    }

    /// Charges harvested energy into the storage, applying the charging
    /// efficiency and discarding whatever exceeds the capacity. Returns the
    /// energy actually stored.
    ///
    /// Negative amounts are treated as zero.
    pub fn harvest(&mut self, harvested_mj: f64) -> f64 {
        if harvested_mj <= 0.0 {
            return 0.0;
        }
        self.total_harvested_mj += harvested_mj;
        let after_efficiency = harvested_mj * self.charge_efficiency;
        let room = self.capacity_mj - self.level_mj;
        let stored = after_efficiency.min(room);
        self.level_mj += stored;
        self.total_stored_mj += stored;
        self.total_wasted_mj += harvested_mj - stored;
        stored
    }

    /// Draws energy for a computation.
    ///
    /// # Errors
    ///
    /// Returns [`EnergyError::NegativeAmount`] for a negative draw and
    /// [`EnergyError::InsufficientEnergy`] when the storage holds less than
    /// the requested amount (nothing is drawn in that case).
    pub fn consume(&mut self, amount_mj: f64) -> Result<()> {
        if amount_mj < 0.0 {
            return Err(EnergyError::NegativeAmount { value: amount_mj });
        }
        if amount_mj > self.level_mj + 1e-12 {
            return Err(EnergyError::InsufficientEnergy {
                requested_mj: amount_mj,
                available_mj: self.level_mj,
            });
        }
        self.level_mj = (self.level_mj - amount_mj).max(0.0);
        self.total_consumed_mj += amount_mj;
        Ok(())
    }

    /// Returns `true` when the storage can supply `amount_mj` right now.
    pub fn can_supply(&self, amount_mj: f64) -> bool {
        amount_mj >= 0.0 && amount_mj <= self.level_mj + 1e-12
    }

    /// Total energy ever offered to the storage (before efficiency losses).
    pub fn total_harvested_mj(&self) -> f64 {
        self.total_harvested_mj
    }

    /// Total energy ever consumed from the storage.
    pub fn total_consumed_mj(&self) -> f64 {
        self.total_consumed_mj
    }

    /// Total harvested energy lost to conversion inefficiency or overflow.
    pub fn total_wasted_mj(&self) -> f64 {
        self.total_wasted_mj
    }

    /// Energy-conservation check: stored + wasted equals harvested, and the
    /// current level equals the initial pre-charge plus stored − consumed (up
    /// to rounding).
    pub fn conservation_error_mj(&self) -> f64 {
        let in_out = (self.total_stored_mj + self.total_wasted_mj - self.total_harvested_mj).abs();
        let level =
            (self.initial_level_mj + self.total_stored_mj - self.total_consumed_mj - self.level_mj)
                .abs();
        in_out.max(level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harvest_applies_efficiency_and_capacity() {
        let mut s = EnergyStorage::new(10.0, 0.5);
        assert_eq!(s.harvest(4.0), 2.0);
        assert_eq!(s.level_mj(), 2.0);
        // Overfill: only 8 mJ of room remain.
        assert_eq!(s.harvest(100.0), 8.0);
        assert_eq!(s.level_mj(), 10.0);
        assert_eq!(s.level_fraction(), 1.0);
        assert_eq!(s.harvest(-3.0), 0.0);
    }

    #[test]
    fn consume_enforces_availability() {
        let mut s = EnergyStorage::new(10.0, 1.0).with_initial_level(3.0);
        assert!(s.consume(2.0).is_ok());
        assert!((s.level_mj() - 1.0).abs() < 1e-12);
        let err = s.consume(5.0).unwrap_err();
        assert!(matches!(err, EnergyError::InsufficientEnergy { .. }));
        assert!((s.level_mj() - 1.0).abs() < 1e-12, "failed draw must not change the level");
        assert!(s.consume(-1.0).is_err());
        assert!(s.can_supply(1.0));
        assert!(!s.can_supply(1.1));
    }

    #[test]
    fn energy_is_conserved_through_arbitrary_usage() {
        let mut s = EnergyStorage::new(5.0, 0.7);
        for i in 0..100 {
            s.harvest((i % 7) as f64 * 0.3);
            let want = (i % 5) as f64 * 0.2;
            if s.can_supply(want) {
                s.consume(want).unwrap();
            }
        }
        assert!(s.conservation_error_mj() < 1e-9);
        assert!(s.level_mj() >= 0.0 && s.level_mj() <= s.capacity_mj());
    }

    #[test]
    fn conservation_holds_for_a_precharged_storage() {
        let mut s = EnergyStorage::new(8.0, 0.6).with_initial_level(3.0);
        assert_eq!(s.initial_level_mj(), 3.0);
        s.harvest(4.0);
        s.consume(1.0).unwrap();
        assert!(s.conservation_error_mj() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "charge efficiency")]
    fn invalid_efficiency_panics() {
        let _ = EnergyStorage::new(1.0, 1.5);
    }

    #[test]
    fn initial_level_is_clamped() {
        let s = EnergyStorage::new(2.0, 1.0).with_initial_level(99.0);
        assert_eq!(s.level_mj(), 2.0);
    }
}
