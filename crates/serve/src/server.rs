//! The serving loop itself: worker threads own warmed [`BatchPlan`]s, a
//! dynamic batching window groups admitted requests, and a runtime policy
//! (via [`LatencyAdmission`]) picks each request's early exit — or sheds it —
//! under its latency budget.
//!
//! Two execution modes share all decision logic:
//!
//! * **replay** ([`Server::replay`]) runs a pre-recorded request stream on a
//!   virtual clock. Batch composition is the pure [`compose_batches`], so
//!   the whole run — responses *and* queue waits — is deterministic for a
//!   fixed stream, independent of worker count. This is what the tests and
//!   the `serve_loop/*` bench family use.
//! * **live** ([`Server::run_live`]) accepts requests pushed from a load
//!   generator and closes windows against the wall clock. Response *content*
//!   is still deterministic for a fixed submission order (admission runs in
//!   submission order and batched inference is bit-identical per sample);
//!   timing statistics are measured and machine-dependent.
//!
//! Admission happens strictly in arrival order before batching, and no
//! outcome feedback reaches the policy, so batch composition can never
//! change a decision — the key to byte-identical responses across thread
//! counts.

use crate::window::{compose_batches, WindowBatch, WindowConfig};
use crate::{percentile, Request, Response, Result, ServeError, ServeReport, Verdict};
use ie_nn::quant::QuantConfig;
use ie_nn::train::threads_from_env;
use ie_nn::train::{BatchPlanPool, QuantPlanPool};
use ie_nn::{BatchPlan, MultiExitNetwork};
use ie_runtime::LatencyAdmission;
use ie_tensor::Tensor;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Configuration of a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// The dynamic batching window (size-N / deadline-T close rule).
    pub window: WindowConfig,
    /// Worker threads; each owns one warmed [`BatchPlan`].
    pub threads: usize,
}

impl ServeConfig {
    /// Validates the window and thread count.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for a zero thread count or an
    /// invalid window.
    pub fn validate(&self) -> Result<()> {
        self.window.validate()?;
        if self.threads == 0 {
            return Err(ServeError::InvalidConfig("server needs at least one worker".into()));
        }
        Ok(())
    }
}

/// Worker-thread count for the server: `IE_SERVE_THREADS` via the shared
/// [`threads_from_env`] helper (same parsing, fallback and warn-once
/// behaviour as `IE_EVAL_THREADS` / `IE_FLEET_THREADS`) — thread count never
/// changes response content, only throughput.
pub fn serve_threads() -> usize {
    threads_from_env("IE_SERVE_THREADS")
}

/// Everything one serving run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOutcome {
    /// One response per request, in request order (replay) or id order
    /// (live). Deterministic for a fixed stream.
    pub responses: Vec<Response>,
    /// Aggregate statistics; see [`ServeReport`] for what is deterministic.
    pub report: ServeReport,
}

/// One replay worker's completed batches: `(batch index, per-request
/// verdicts, measured compute seconds)`.
type WorkerBatches = Vec<(usize, Vec<Verdict>, f64)>;

/// An inference server over one multi-exit network. Worker plans are taken
/// out of a caller-owned pool at construction (the warm handoff) and
/// returned with [`Server::into_plans`].
pub struct Server<'n> {
    network: &'n MultiExitNetwork,
    config: ServeConfig,
    plans: Vec<BatchPlan>,
}

impl std::fmt::Debug for Server<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("config", &self.config)
            .field("workers", &self.plans.len())
            .finish()
    }
}

impl<'n> Server<'n> {
    /// Builds an `f32` server: takes `config.threads` warmed plans sized for
    /// the batching window out of `pool`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for an invalid configuration.
    pub fn new(
        network: &'n MultiExitNetwork,
        config: ServeConfig,
        pool: &mut BatchPlanPool,
    ) -> Result<Self> {
        config.validate()?;
        let plans =
            (0..config.threads).map(|_| pool.take(network, config.window.max_batch)).collect();
        Ok(Server { network, config, plans })
    }

    /// Builds a server running the **integer** engine: each worker plan is
    /// a quantized [`BatchPlan`] baked (or repacked) for `quant`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for an invalid configuration
    /// and propagates quantization errors from plan building.
    pub fn new_quantized(
        network: &'n MultiExitNetwork,
        quant: &QuantConfig,
        config: ServeConfig,
        pool: &mut QuantPlanPool,
    ) -> Result<Self> {
        config.validate()?;
        let plans = (0..config.threads)
            .map(|_| pool.take(network, quant, config.window.max_batch))
            .collect::<std::result::Result<Vec<_>, ie_nn::NnError>>()
            .map_err(ServeError::from)?;
        Ok(Server { network, config, plans })
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Tears the server down, handing the worker plans back so the caller
    /// can [`BatchPlanPool::put`] (or [`QuantPlanPool::put`]) them for the
    /// next server.
    pub fn into_plans(self) -> Vec<BatchPlan> {
        self.plans
    }

    fn check_admission(&self, admission: &LatencyAdmission) -> Result<()> {
        if admission.num_exits() != self.network.num_exits() {
            return Err(ServeError::InvalidConfig(format!(
                "admission table covers {} exits but the network has {}",
                admission.num_exits(),
                self.network.num_exits()
            )));
        }
        Ok(())
    }

    /// Serves a pre-recorded, arrival-ordered request stream on the virtual
    /// clock. Responses come back in request order and are byte-identical
    /// across worker counts and repeated runs; queue-wait statistics in the
    /// report are deterministic too, while latency percentiles and
    /// throughput fold in measured compute time.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidRequest`] for an unsorted stream,
    /// [`ServeError::InvalidConfig`] for an admission table that does not
    /// match the network, [`ServeError::WorkerLost`] when a worker dies, and
    /// propagates inference errors.
    pub fn replay(
        &mut self,
        admission: &mut LatencyAdmission,
        requests: &[Request],
    ) -> Result<ServeOutcome> {
        self.check_admission(admission)?;
        // 1. Admission control in strict arrival order, before any batching:
        //    each decision depends only on the request's own budget.
        let decisions: Vec<Option<usize>> =
            requests.iter().map(|r| admission.admit(r.id, r.budget_s)).collect();
        let admitted: Vec<usize> =
            (0..requests.len()).filter(|&i| decisions[i].is_some()).collect();
        let arrivals: Vec<f64> = admitted.iter().map(|&i| requests[i].arrival_s).collect();
        // 2. Pure batch composition over the admitted sub-stream.
        let batches = compose_batches(&arrivals, &self.config.window)?;
        // 3. Workers pull batches from a shared counter; each owns its plan.
        //    Pull order is racy but content is not: per-sample results are
        //    bit-identical whatever the grouping of the *same* batch, and
        //    batch composition was fixed in step 2.
        let next = AtomicUsize::new(0);
        let network = self.network;
        let num_exits = network.num_exits();
        let per_worker: Vec<Result<WorkerBatches>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .plans
                .iter_mut()
                .map(|plan| {
                    let (next, batches, admitted, decisions) =
                        (&next, &batches, &admitted, &decisions);
                    scope.spawn(move || {
                        let mut done = Vec::new();
                        loop {
                            let b = next.fetch_add(1, Ordering::Relaxed);
                            if b >= batches.len() {
                                return Ok(done);
                            }
                            let batch = &batches[b];
                            let inputs: Vec<&Tensor> = batch
                                .indices
                                .iter()
                                .map(|&p| &requests[admitted[p]].input)
                                .collect();
                            let exits: Vec<usize> = batch
                                .indices
                                .iter()
                                .map(|&p| {
                                    decisions[admitted[p]].expect("batched requests admitted")
                                })
                                .collect();
                            debug_assert!(exits.iter().all(|&e| e < num_exits));
                            let t0 = Instant::now();
                            let verdicts = run_batch(network, plan, &inputs, &exits)?;
                            done.push((b, verdicts, t0.elapsed().as_secs_f64()));
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(worker, h)| match h.join() {
                    Ok(result) => result,
                    Err(_) => {
                        Err(ServeError::WorkerLost(format!("serve worker {worker} panicked")))
                    }
                })
                .collect()
        });
        // 4. Merge per-batch verdicts back into request order.
        let mut batch_results: Vec<Option<(Vec<Verdict>, f64)>> = vec![None; batches.len()];
        for worker in per_worker {
            for (b, verdicts, compute_s) in worker? {
                batch_results[b] = Some((verdicts, compute_s));
            }
        }
        let mut responses: Vec<Response> =
            requests.iter().map(|r| Response { id: r.id, verdict: Verdict::Rejected }).collect();
        let mut waits = Vec::with_capacity(admitted.len());
        let mut computes = Vec::with_capacity(batches.len());
        for (batch, result) in batches.iter().zip(batch_results) {
            let (verdicts, compute_s) = result.expect("every batch ran");
            computes.push(compute_s);
            for (&p, verdict) in batch.indices.iter().zip(verdicts) {
                responses[admitted[p]].verdict = verdict;
                waits.push(batch.wait_s(requests[admitted[p]].arrival_s));
            }
        }
        // 5. Latency model: batches start at their (virtual) close time or
        //    when a worker frees up, and run for their measured compute time.
        let (latencies, last_done) =
            model_latencies(&batches, &computes, &arrivals, self.config.threads);
        let makespan_s = arrivals.first().map_or(0.0, |&first| last_done - first);
        let report = build_report(
            admitted.len(),
            requests.len() - admitted.len(),
            batches.len(),
            &waits,
            &latencies,
            computes.iter().sum(),
            makespan_s,
        );
        Ok(ServeOutcome { responses, report })
    }

    /// Runs the live server: spawns the workers, hands the load generator a
    /// [`LiveHandle`] to push requests through, and shuts down (draining the
    /// queue) when the generator returns. Response content is deterministic
    /// for a fixed submission order; timing is wall-clock.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for a mismatched admission
    /// table, [`ServeError::WorkerLost`] when a worker dies, and propagates
    /// inference errors.
    pub fn run_live<F>(&mut self, admission: &mut LatencyAdmission, load: F) -> Result<ServeOutcome>
    where
        F: FnOnce(&LiveHandle<'_>),
    {
        self.check_admission(admission)?;
        let shared = LiveShared {
            state: Mutex::new(LiveState { queue: VecDeque::new(), closed: false }),
            cond: Condvar::new(),
        };
        let results = Mutex::new(LiveResults::default());
        let started = Instant::now();
        let network = self.network;
        let window = self.config.window;
        let joined: Vec<Result<()>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .plans
                .iter_mut()
                .map(|plan| {
                    let (shared, results) = (&shared, &results);
                    scope.spawn(move || live_worker(network, plan, shared, results, &window))
                })
                .collect();
            let handle =
                LiveHandle { shared: &shared, admission: Mutex::new(admission), results: &results };
            load(&handle);
            // Shutdown must reach the workers even if a panicking worker
            // poisoned the queue — the state (a flag and a drainable queue)
            // is still structurally sound, so recover it and close.
            match shared.state.lock() {
                Ok(mut st) => st.closed = true,
                Err(p) => p.into_inner().closed = true,
            }
            shared.cond.notify_all();
            handles
                .into_iter()
                .enumerate()
                .map(|(worker, h)| match h.join() {
                    Ok(result) => result,
                    Err(_) => {
                        Err(ServeError::WorkerLost(format!("serve worker {worker} panicked")))
                    }
                })
                .collect()
        });
        let makespan_s = started.elapsed().as_secs_f64();
        for r in joined {
            r?;
        }
        let mut res = results.into_inner().map_err(|_| poisoned("serve results"))?;
        res.responses.sort_by_key(|r| r.id);
        let report = build_report(
            res.served,
            res.rejected,
            res.batches,
            &res.waits,
            &res.latencies,
            res.compute_s,
            makespan_s,
        );
        Ok(ServeOutcome { responses: res.responses, report })
    }
}

/// Runs one batch to every exit its requests were admitted to, shallowest
/// first: the first exit pays the shared trunk once, deeper exits continue
/// incrementally from the cached state (the paper's incremental inference,
/// batched). `exits[i]` is the target exit of `inputs[i]`.
fn run_batch(
    network: &MultiExitNetwork,
    plan: &mut BatchPlan,
    inputs: &[&Tensor],
    exits: &[usize],
) -> Result<Vec<Verdict>> {
    let mut targets = exits.to_vec();
    targets.sort_unstable();
    targets.dedup();
    let mut verdicts = vec![Verdict::Rejected; exits.len()];
    let mut first = true;
    for &exit in &targets {
        let out = if first {
            network.forward_to_exit_batch_with(plan, inputs, exit).map_err(ServeError::from)?
        } else {
            network.continue_to_exit_batch_with(plan, exit).map_err(ServeError::from)?
        };
        first = false;
        for (i, &target) in exits.iter().enumerate() {
            if target == exit {
                verdicts[i] = Verdict::Served {
                    exit,
                    prediction: out.prediction(i),
                    confidence: out.confidence(i),
                };
            }
        }
    }
    Ok(verdicts)
}

/// Deterministic multi-server queueing model over the virtual clock: batch
/// `b` starts at its close time or when one of `servers` workers frees up,
/// whichever is later, and occupies that worker for its measured compute
/// time. Returns one latency (completion − arrival) per admitted request in
/// admitted order, plus the completion time of the last batch.
fn model_latencies(
    batches: &[WindowBatch],
    computes: &[f64],
    arrivals: &[f64],
    servers: usize,
) -> (Vec<f64>, f64) {
    let mut free = vec![f64::NEG_INFINITY; servers.max(1)];
    let mut latencies = vec![0.0; arrivals.len()];
    let mut last_done = f64::NEG_INFINITY;
    for (batch, &compute_s) in batches.iter().zip(computes) {
        let (slot, &soonest) = free
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite server times"))
            .expect("at least one server");
        let start = batch.close_s.max(soonest);
        let done = start + compute_s;
        free[slot] = done;
        last_done = last_done.max(done);
        for &p in &batch.indices {
            latencies[p] = done - arrivals[p];
        }
    }
    (latencies, last_done)
}

#[allow(clippy::too_many_arguments)]
fn build_report(
    served: usize,
    rejected: usize,
    batches: usize,
    waits: &[f64],
    latencies: &[f64],
    compute_s: f64,
    makespan_s: f64,
) -> ServeReport {
    ServeReport {
        served,
        rejected,
        batches,
        mean_batch_fill: if batches > 0 { served as f64 / batches as f64 } else { 0.0 },
        wait_p50_s: percentile(waits, 0.50),
        wait_p99_s: percentile(waits, 0.99),
        latency_p50_s: percentile(latencies, 0.50),
        latency_p99_s: percentile(latencies, 0.99),
        throughput_rps: if makespan_s > 0.0 { served as f64 / makespan_s } else { 0.0 },
        compute_s,
    }
}

// ---------------------------------------------------------------------------
// Live mode plumbing
// ---------------------------------------------------------------------------

/// A shared mutex poisoned by a panicking worker: degrade to a recoverable
/// [`ServeError::WorkerLost`] instead of cascading the panic into the caller.
fn poisoned(what: &str) -> ServeError {
    ServeError::WorkerLost(format!("{what} mutex poisoned by a panicked worker"))
}

struct LiveRequest {
    id: u64,
    exit: usize,
    input: Tensor,
    arrival: Instant,
}

struct LiveState {
    queue: VecDeque<LiveRequest>,
    closed: bool,
}

struct LiveShared {
    state: Mutex<LiveState>,
    cond: Condvar,
}

#[derive(Default)]
struct LiveResults {
    responses: Vec<Response>,
    waits: Vec<f64>,
    latencies: Vec<f64>,
    compute_s: f64,
    batches: usize,
    served: usize,
    rejected: usize,
}

/// The load generator's interface to a running live server.
pub struct LiveHandle<'a> {
    shared: &'a LiveShared,
    admission: Mutex<&'a mut LatencyAdmission>,
    results: &'a Mutex<LiveResults>,
}

impl LiveHandle<'_> {
    /// Submits one request. Admission runs immediately, in submission order;
    /// a shed request is answered right away, an admitted one is stamped
    /// with its wall-clock arrival and queued for the next window.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::WorkerLost`] when a panicked worker poisoned the
    /// shared queue or results — the load generator can stop submitting and
    /// let `run_live` report the lost worker.
    pub fn submit(&self, id: u64, budget_s: f64, input: Tensor) -> Result<()> {
        let decision =
            self.admission.lock().map_err(|_| poisoned("serve admission"))?.admit(id, budget_s);
        match decision {
            None => {
                let mut res = self.results.lock().map_err(|_| poisoned("serve results"))?;
                res.rejected += 1;
                res.responses.push(Response { id, verdict: Verdict::Rejected });
            }
            Some(exit) => {
                let mut st = self.shared.state.lock().map_err(|_| poisoned("serve queue"))?;
                st.queue.push_back(LiveRequest { id, exit, input, arrival: Instant::now() });
                drop(st);
                self.shared.cond.notify_all();
            }
        }
        Ok(())
    }
}

/// One live worker: waits for the window to close (size-N, deadline-T or
/// shutdown drain), claims up to `max_batch` requests, runs them on its own
/// plan and records the responses.
fn live_worker(
    network: &MultiExitNetwork,
    plan: &mut BatchPlan,
    shared: &LiveShared,
    results: &Mutex<LiveResults>,
    window: &WindowConfig,
) -> Result<()> {
    let deadline = Duration::from_secs_f64(window.deadline_s);
    loop {
        let mut st = shared.state.lock().map_err(|_| poisoned("serve queue"))?;
        // Wait for work (or shutdown with an empty queue).
        loop {
            if !st.queue.is_empty() {
                break;
            }
            if st.closed {
                return Ok(());
            }
            st = shared.cond.wait(st).map_err(|_| poisoned("serve queue"))?;
        }
        // Window phase: hold until filled, the deadline passes, or shutdown
        // starts draining. The front's arrival opens the window.
        while let Some(front) = st.queue.front() {
            if st.queue.len() >= window.max_batch || st.closed {
                break;
            }
            let elapsed = front.arrival.elapsed();
            if elapsed >= deadline {
                break;
            }
            let (guard, _) = shared
                .cond
                .wait_timeout(st, deadline - elapsed)
                .map_err(|_| poisoned("serve queue"))?;
            st = guard;
        }
        if st.queue.is_empty() {
            // Another worker claimed the window while this one slept.
            continue;
        }
        let n = st.queue.len().min(window.max_batch);
        let batch: Vec<LiveRequest> = st.queue.drain(..n).collect();
        drop(st);
        let close = Instant::now();
        let inputs: Vec<&Tensor> = batch.iter().map(|r| &r.input).collect();
        let exits: Vec<usize> = batch.iter().map(|r| r.exit).collect();
        let verdicts = run_batch(network, plan, &inputs, &exits)?;
        let done = Instant::now();
        let mut res = results.lock().map_err(|_| poisoned("serve results"))?;
        res.batches += 1;
        res.compute_s += (done - close).as_secs_f64();
        for (req, verdict) in batch.iter().zip(verdicts) {
            res.served += 1;
            res.waits.push((close - req.arrival).as_secs_f64());
            res.latencies.push((done - req.arrival).as_secs_f64());
            res.responses.push(Response { id: req.id, verdict });
        }
    }
}
