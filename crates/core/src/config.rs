use crate::{CoreError, Result};
use ie_energy::{
    EnergyStorage, Event, EventDistribution, EventGenerator, HarvestSimulator, SolarTrace,
};
use ie_mcu::{CostModel, McuDevice};
use ie_nn::spec::{lenet_multi_exit, MultiExitArchitecture};

/// The full experimental setup of Section V-A of the paper, with every knob
/// the benches, examples and ablations need.
///
/// The defaults reproduce the paper's environment: the multi-exit LeNet
/// backbone, a TI MSP432-class device at 1.5 mJ/MFLOP, a day-long solar
/// harvesting trace scaled so 500 uniformly distributed events compete for a
/// few hundred millijoules of harvested energy, and the 1.15 M-FLOP / 16 KB
/// compression targets.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// The multi-exit backbone architecture.
    pub architecture: MultiExitArchitecture,
    /// The target MCU.
    pub device: McuDevice,
    /// Number of interesting events distributed over the trace.
    pub num_events: usize,
    /// How event arrival times are distributed.
    pub event_distribution: EventDistribution,
    /// Seed of the event generator.
    pub event_seed: u64,
    /// Seed of the synthetic solar trace.
    pub trace_seed: u64,
    /// Peak (midday, clear-sky) harvested power in milliwatts.
    pub solar_peak_power_mw: f64,
    /// Trace duration in seconds.
    pub trace_duration_s: f64,
    /// Capacity of the energy buffer in millijoules.
    pub storage_capacity_mj: f64,
    /// Charging efficiency of the energy buffer, in `(0, 1]`.
    pub charge_efficiency: f64,
    /// Energy already stored when the experiment starts, in millijoules.
    pub initial_energy_mj: f64,
    /// Compression target for the whole network's FLOPs (`F_target`).
    pub flops_target: u64,
    /// Compression target for the weight storage in bytes (`S_target`).
    pub size_target_bytes: u64,
    /// Normalised-confidence threshold below which an incremental inference is
    /// considered.
    pub confidence_threshold: f64,
    /// Whether incremental inference is enabled at all (ablation knob).
    pub incremental_enabled: bool,
    /// Seed for the event-loop simulator's stochastic correctness draws.
    pub simulation_seed: u64,
    /// Optional power-cut fault injection; `None` (the default) reproduces
    /// the paper's fault-free environment bit-for-bit.
    pub fault: Option<FaultConfig>,
}

/// Deterministic power-cut fault injection for the deployed-system paths.
///
/// The analytic [`crate::EventLoopSimulator`] interprets this as a
/// per-event cut probability; the task-level baseline runner turns it into an
/// `ie_mcu::FaultPlan::Random` whose cuts strike between tasks, mid-task and
/// inside checkpoint writes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Master seed of the fault schedule (harnesses may override it from the
    /// `IE_FAULT_SEED` env knob, see `ie_mcu::fault_seed_from_env`).
    pub seed: u64,
    /// Probability that a power cut strikes any given crash opportunity,
    /// in `[0, 1]`.
    pub cut_probability: f64,
    /// Hard bound on injected cuts over the whole run, so every schedule
    /// terminates.
    pub max_cuts: u64,
}

impl FaultConfig {
    /// A moderate default schedule: 10% of opportunities are struck, at most
    /// 64 cuts over the run.
    pub fn from_seed(seed: u64) -> Self {
        FaultConfig { seed, cut_probability: 0.1, max_cuts: 64 }
    }
}

impl ExperimentConfig {
    /// The paper's default setup.
    pub fn paper_default() -> Self {
        ExperimentConfig {
            architecture: lenet_multi_exit(),
            device: McuDevice::msp432(),
            num_events: 500,
            event_distribution: EventDistribution::Uniform,
            event_seed: 2020,
            trace_seed: 17,
            solar_peak_power_mw: 0.012,
            trace_duration_s: 24.0 * 3600.0,
            storage_capacity_mj: 25.0,
            charge_efficiency: 0.8,
            initial_energy_mj: 1.0,
            flops_target: 1_150_000,
            size_target_bytes: 16 * 1024,
            confidence_threshold: 0.55,
            incremental_enabled: true,
            simulation_seed: 7,
            fault: None,
        }
    }

    /// A smaller, faster configuration for unit tests: fewer events over a
    /// shorter trace with a generous energy budget.
    pub fn small_test() -> Self {
        ExperimentConfig {
            num_events: 60,
            solar_peak_power_mw: 0.05,
            storage_capacity_mj: 4.0,
            initial_energy_mj: 2.0,
            ..Self::paper_default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for nonsensical values (no events,
    /// non-positive durations or capacities, thresholds outside `[0, 1]`).
    pub fn validate(&self) -> Result<()> {
        if self.num_events == 0 {
            return Err(CoreError::InvalidConfig("num_events must be non-zero".into()));
        }
        if self.trace_duration_s <= 0.0 {
            return Err(CoreError::InvalidConfig("trace duration must be positive".into()));
        }
        if self.storage_capacity_mj <= 0.0 {
            return Err(CoreError::InvalidConfig("storage capacity must be positive".into()));
        }
        if !(0.0..=1.0).contains(&self.confidence_threshold) {
            return Err(CoreError::InvalidConfig("confidence threshold must be in [0, 1]".into()));
        }
        if !(0.0..=1.0).contains(&self.charge_efficiency) || self.charge_efficiency == 0.0 {
            return Err(CoreError::InvalidConfig("charge efficiency must be in (0, 1]".into()));
        }
        if let Some(fault) = &self.fault {
            if !(0.0..=1.0).contains(&fault.cut_probability) {
                return Err(CoreError::InvalidConfig(
                    "fault cut probability must be in [0, 1]".into(),
                ));
            }
        }
        Ok(())
    }

    /// Builds the solar power trace.
    pub fn build_trace(&self) -> SolarTrace {
        SolarTrace::builder()
            .seed(self.trace_seed)
            .peak_power_mw(self.solar_peak_power_mw)
            .duration_s(self.trace_duration_s)
            .build()
    }

    /// Generates the event arrival sequence.
    pub fn build_events(&self) -> Vec<Event> {
        EventGenerator::new(self.event_distribution, self.event_seed)
            .generate(self.num_events, self.trace_duration_s)
    }

    /// Builds the energy storage in its initial state.
    pub fn build_storage(&self) -> EnergyStorage {
        EnergyStorage::new(self.storage_capacity_mj, self.charge_efficiency)
            .with_initial_level(self.initial_energy_mj)
    }

    /// Builds a harvesting simulator over a fresh trace and storage.
    pub fn build_harvest_simulator(&self) -> HarvestSimulator {
        HarvestSimulator::new(Box::new(self.build_trace()), self.build_storage())
    }

    /// The cost model of the configured device.
    pub fn cost_model(&self) -> CostModel {
        CostModel::for_device(&self.device)
    }

    /// Total energy the trace offers over its full duration, in millijoules
    /// (the `E_total` denominator of the IEpmJ metric).
    pub fn total_harvestable_mj(&self) -> f64 {
        use ie_energy::PowerTrace;
        let trace = self.build_trace();
        trace.energy_mj(0.0, self.trace_duration_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid_and_matches_headline_constants() {
        let c = ExperimentConfig::paper_default();
        c.validate().unwrap();
        assert_eq!(c.num_events, 500);
        assert_eq!(c.flops_target, 1_150_000);
        assert_eq!(c.size_target_bytes, 16 * 1024);
        assert_eq!(c.architecture.num_exits(), 3);
        assert!((c.device.energy_per_mflop_mj() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn validation_catches_nonsense() {
        let mut c = ExperimentConfig::paper_default();
        c.num_events = 0;
        assert!(c.validate().is_err());
        let mut c = ExperimentConfig::paper_default();
        c.trace_duration_s = -1.0;
        assert!(c.validate().is_err());
        let mut c = ExperimentConfig::paper_default();
        c.confidence_threshold = 1.5;
        assert!(c.validate().is_err());
        let mut c = ExperimentConfig::paper_default();
        c.charge_efficiency = 0.0;
        assert!(c.validate().is_err());
        let mut c = ExperimentConfig::paper_default();
        c.fault = Some(FaultConfig { seed: 1, cut_probability: 1.5, max_cuts: 4 });
        assert!(c.validate().is_err());
        c.fault = Some(FaultConfig::from_seed(1));
        c.validate().unwrap();
    }

    #[test]
    fn builders_are_deterministic() {
        let c = ExperimentConfig::paper_default();
        assert_eq!(c.build_events(), c.build_events());
        assert_eq!(c.build_trace().samples(), c.build_trace().samples());
        assert_eq!(c.build_events().len(), 500);
    }

    #[test]
    fn harvested_budget_is_scarce_relative_to_the_workload() {
        // The whole point of the paper: the harvested energy cannot power 500
        // full-network inferences. Full exit-3 inference ≈ 2.3 mJ; 500 of them
        // would need >1 J while the trace offers a few hundred mJ.
        let c = ExperimentConfig::paper_default();
        let total = c.total_harvestable_mj();
        let full_inference_mj = c.cost_model().inference_energy_mj(c.architecture.exit_flops()[2]);
        assert!(total > 50.0, "trace offers a usable budget: {total} mJ");
        assert!(
            total < 0.8 * full_inference_mj * c.num_events as f64,
            "energy must be scarce: {total} mJ for {} events needing {full_inference_mj} mJ each",
            c.num_events
        );
    }

    #[test]
    fn small_test_config_is_valid() {
        ExperimentConfig::small_test().validate().unwrap();
        assert!(ExperimentConfig::small_test().num_events < 100);
    }
}
