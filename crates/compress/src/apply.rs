//! Applies a [`CompressionPolicy`] to the weights of a real
//! [`ie_nn::MultiExitNetwork`].
//!
//! Pruned input channels are zeroed (equivalent to removal for the produced
//! activations) and weights are passed through the quantize→dequantize round
//! trip, so the compressed network computes exactly what the deployed integer
//! model would.

use crate::pruning::prune_weight;
use crate::quantize::quantize_weights;
use crate::{CompressionPolicy, Result};
use ie_nn::{Layer, MultiExitNetwork};

/// Applies `policy` to `network` in place.
///
/// The policy's entries must be in the canonical compressible-layer order of
/// the network's architecture (trunk segment 0, branch 0, trunk segment 1, …),
/// which is the order `MultiExitArchitecture::compressible_layers` reports.
///
/// # Errors
///
/// Returns [`crate::CompressError::PolicyLengthMismatch`] when the policy does
/// not cover every parameterised layer.
pub fn apply_policy(network: &mut MultiExitNetwork, policy: &CompressionPolicy) -> Result<()> {
    let expected = network.architecture().compressible_layers().len();
    policy.check_length(expected)?;
    let mut index = 0usize;
    let num_exits = network.num_exits();
    for exit in 0..num_exits {
        // Trunk segment `exit` first, then branch `exit`, matching the spec order.
        for part in [true, false] {
            let layers = if part {
                &mut network.segments_mut()[exit]
            } else {
                &mut network.branches_mut()[exit]
            };
            for layer in layers.iter_mut() {
                let Some(policy_entry) = policy.layer(index).copied() else {
                    continue;
                };
                match layer {
                    Layer::Conv2d(conv) => {
                        prune_weight(conv.weight_mut(), policy_entry.preserve_ratio);
                        let q = quantize_weights(conv.weight(), policy_entry.weight_bits);
                        *conv.weight_mut() = q.values;
                        // Pruned filters have zeroed channel blocks: route this
                        // layer's forward passes through the sparsity-aware
                        // GEMM, which skips them. The dense (unpruned) path
                        // keeps the branch-free blocked kernel.
                        conv.set_sparse_hint(policy_entry.preserve_ratio < 1.0);
                        index += 1;
                    }
                    Layer::Dense(dense) => {
                        prune_weight(dense.weight_mut(), policy_entry.preserve_ratio);
                        let q = quantize_weights(dense.weight(), policy_entry.weight_bits);
                        *dense.weight_mut() = q.values;
                        index += 1;
                    }
                    _ => {}
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompressionPolicy, LayerPolicy};
    use ie_nn::spec::tiny_multi_exit;
    use ie_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn network(seed: u64) -> MultiExitNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        MultiExitNetwork::from_architecture(&tiny_multi_exit(3), &mut rng).unwrap()
    }

    #[test]
    fn identity_policy_leaves_outputs_unchanged() {
        let net = network(3);
        let mut compressed = net.clone();
        let n = net.architecture().compressible_layers().len();
        apply_policy(&mut compressed, &CompressionPolicy::full_precision(n)).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::randn(&mut rng, &[1, 8, 8], 0.0, 1.0);
        let a = net.forward_all(&x).unwrap();
        let b = compressed.forward_all(&x).unwrap();
        for (oa, ob) in a.iter().zip(&b) {
            for (va, vb) in oa.logits.as_slice().iter().zip(ob.logits.as_slice()) {
                assert!((va - vb).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn aggressive_policy_changes_weights_and_zeroes_channels() {
        let mut net = network(4);
        let n = net.architecture().compressible_layers().len();
        let policy = CompressionPolicy::uniform(n, 0.5, 2, 8).unwrap();
        apply_policy(&mut net, &policy).unwrap();
        // The second conv layer (trunk segment 1) must have some zeroed input channels.
        let conv2 = net.segments()[1]
            .iter()
            .find_map(|l| match l {
                Layer::Conv2d(c) => Some(c),
                _ => None,
            })
            .expect("segment 1 contains a conv layer");
        let dims = conv2.weight().dims().to_vec();
        let per_channel: Vec<f32> = (0..dims[1])
            .map(|ic| {
                let mut s = 0.0;
                for oc in 0..dims[0] {
                    for ky in 0..dims[2] {
                        for kx in 0..dims[3] {
                            s += conv2.weight().get(&[oc, ic, ky, kx]).unwrap().abs();
                        }
                    }
                }
                s
            })
            .collect();
        let zeroed = per_channel.iter().filter(|&&s| s == 0.0).count();
        assert!(
            zeroed >= dims[1] / 2 - 1,
            "expected roughly half the channels zeroed, got {zeroed}"
        );
    }

    #[test]
    fn policy_length_mismatch_is_rejected() {
        let mut net = network(5);
        let err = apply_policy(&mut net, &CompressionPolicy::full_precision(1)).unwrap_err();
        assert!(matches!(err, crate::CompressError::PolicyLengthMismatch { .. }));
    }

    #[test]
    fn per_layer_policies_apply_in_canonical_order() {
        // Give the very first compressible layer (Conv1) 1-bit weights and leave
        // the rest untouched: only Conv1's weights should collapse to two levels.
        let mut net = network(6);
        let n = net.architecture().compressible_layers().len();
        let mut policy = CompressionPolicy::full_precision(n);
        policy.layers_mut()[0] = LayerPolicy::new(1.0, 1, 32).unwrap();
        apply_policy(&mut net, &policy).unwrap();
        let conv1 = net.segments()[0]
            .iter()
            .find_map(|l| match l {
                Layer::Conv2d(c) => Some(c),
                _ => None,
            })
            .unwrap();
        let distinct: std::collections::BTreeSet<i64> =
            conv1.weight().as_slice().iter().map(|v| (v * 1e5).round() as i64).collect();
        assert!(distinct.len() <= 3, "1-bit weights collapse to ≤2 magnitudes (plus zero)");
        // A dense layer elsewhere keeps many distinct values.
        let fc = net.branches()[0]
            .iter()
            .find_map(|l| match l {
                Layer::Dense(d) => Some(d),
                _ => None,
            })
            .unwrap();
        let distinct_fc: std::collections::BTreeSet<i64> =
            fc.weight().as_slice().iter().map(|v| (v * 1e5).round() as i64).collect();
        assert!(distinct_fc.len() > 10);
    }
}
