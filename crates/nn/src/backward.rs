//! Statically planned, allocation-free training: [`BackwardPlan`] is the
//! backward-pass counterpart of [`crate::ExecutionPlan`].
//!
//! The plan walks the architecture once at construction time and pre-sizes
//! every buffer the combined forward + backward pass of
//! [`MultiExitNetwork::backward`] needs:
//!
//! * one grow-only activation arena caching each layer's input (the forward
//!   half of a training step must keep pre-activations alive for the
//!   backward half),
//! * a ping-pong pair of gradient buffers sized to the widest activation,
//! * a per-convolution `im2col` arena — the forward half lowers each conv
//!   input once and the backward weight-gradient GEMM re-reads the cached
//!   lowering instead of recomputing it,
//! * one transpose scratch sized to the widest lowering (the column
//!   transpose the weight-gradient GEMM needs, reused as the `dcols`
//!   staging buffer of the data-gradient `col2im`),
//! * a flat [`GradStore`] holding one `f32` per trainable parameter, laid
//!   out in the exact iteration order of
//!   [`MultiExitNetwork::apply_gradients`].
//!
//! Gradients are accumulated into the store and flushed into the network's
//! per-layer gradient tensors only on success, through the same dispatched
//! slice kernels ([`ie_tensor::gemm_into`],
//! [`ie_tensor::matvec_t_into`], [`ie_tensor::relu_backward_into`],
//! [`ie_tensor::max_pool_backward_into`],
//! [`ie_tensor::outer_accumulate_into`],
//! [`ie_tensor::cross_entropy_grad_into`], …) on every ISA tier. Dense data
//! gradients go through the transposed-operand [`ie_tensor::matvec_t_into`],
//! which consumes the weight matrix in its stored layout — no weight
//! transpose; the first layer of the network additionally skips its data
//! gradient entirely (the input image's gradient is never read). The planned
//! step is
//! **bit-identical** to the allocating [`MultiExitNetwork::backward`] —
//! same loss, same gradient bits — and performs zero heap allocations once
//! warm.
//!
//! A plan can additionally carry a fake-quant configuration
//! ([`BackwardPlan::for_architecture_fake_quant`]): the forward half of each
//! step then runs covered layers on quantize–dequantize'd inputs and
//! dequantized weight codes (bias stays full precision), while the backward
//! half applies the straight-through estimator — gradients flow to the
//! full-precision master weights. With an empty configuration the fake-quant
//! plan is bitwise identical to the plain one.

use crate::layer::Layer;
use crate::loss::softmax_into;
use crate::quant::QuantConfig;
use crate::spec::{LayerSpec, LayerSpecKind, MultiExitArchitecture};
use crate::{MultiExitNetwork, NnError, Result};
use ie_tensor::{QuantParams, Tensor};

/// One layer's input/output regions inside the activation arena.
///
/// Regions are allocated in walk order, so for every non-flatten layer
/// `in_off + in_len <= out_off`: input and output never alias and
/// `split_at_mut(out_off)` yields disjoint slices. `Flatten` aliases its
/// input (`out_off == in_off`) and is a no-op in both directions.
#[derive(Debug, Clone, Copy)]
struct StepIo {
    in_off: usize,
    in_len: usize,
    out_off: usize,
    out_len: usize,
    /// `[C, H, W]` of the input when it is rank-3 (used by max-pool).
    in_dims: [usize; 3],
    /// Convolution layers only: offset of this layer's cached `im2col`
    /// lowering inside the plan's `cols` arena. The forward half writes it,
    /// the backward half re-reads it for the weight-gradient GEMM — the
    /// input is never lowered twice per step.
    col_off: usize,
}

/// A parameterised layer's slice of the gradient store. The bias region
/// directly follows the weight region (`b_off == w_off + w_len`).
#[derive(Debug, Clone, Copy)]
struct ParamRegion {
    w_off: usize,
    w_len: usize,
    b_off: usize,
    b_len: usize,
}

/// A flat per-parameter gradient accumulator produced by
/// [`BackwardPlan::make_store`].
///
/// One `f32` per trainable parameter, in the iteration order of
/// [`MultiExitNetwork::apply_gradients`] (trunk segments flattened, then
/// branches flattened). Stores let callers accumulate sample gradients
/// off-network — the batched trainer gives every sample its own store and
/// folds them in ascending sample order, which keeps the reduction
/// bit-identical to a sequential loop regardless of worker count.
#[derive(Debug, Clone, Default)]
pub struct GradStore {
    data: Vec<f32>,
}

impl GradStore {
    /// Number of parameter slots in the store.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the store covers zero parameters.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Fake-quant coverage of one parameterised layer.
#[derive(Debug, Clone, Copy)]
struct FqEntry {
    /// Region of the dequantized weight codes inside [`FqState::weights`].
    w_off: usize,
    w_len: usize,
    /// Region of the quantize–dequantize'd input inside [`FqState::acts`].
    x_off: usize,
    weight_bits: u8,
    weight_scale: f32,
    input: QuantParams,
}

/// Pre-sized fake-quant buffers and per-layer coverage.
#[derive(Debug, Clone)]
struct FqState {
    /// Dequantized weight codes of every covered layer, refreshed from the
    /// full-precision master weights at the start of each step.
    weights: Vec<f32>,
    /// Quantize–dequantize'd inputs of every covered layer, written during
    /// the forward half and re-read by the weight-gradient GEMMs.
    acts: Vec<f32>,
    trunk_entries: Vec<Vec<Option<FqEntry>>>,
    branch_entries: Vec<Vec<Option<FqEntry>>>,
}

/// A pre-sized training plan for a [`MultiExitNetwork`]; see the
/// [module documentation](self) for the full story.
#[derive(Debug, Clone)]
pub struct BackwardPlan {
    arch: MultiExitArchitecture,
    classes: usize,
    input_len: usize,
    /// Activation arena: `[input, layer outputs...]` in walk order.
    acts: Vec<f32>,
    trunk_steps: Vec<Vec<StepIo>>,
    branch_steps: Vec<Vec<StepIo>>,
    logits_regions: Vec<(usize, usize)>,
    probs: Vec<f32>,
    /// Ping-pong gradient buffers, each sized to the widest activation.
    grad: [Vec<f32>; 2],
    /// Arena of per-segment boundary gradients (one region per exit).
    trunk_grad: Vec<f32>,
    trunk_grad_regions: Vec<(usize, usize)>,
    trunk_grad_touched: Vec<bool>,
    /// Arena of cached `im2col` lowerings, one region per convolution
    /// (see [`StepIo::col_off`]).
    cols: Vec<f32>,
    /// Transpose scratch sized to the widest lowering; doubles as the
    /// `dcols` staging buffer of the data-gradient `col2im`.
    colt: Vec<f32>,
    /// Weight-transpose scratch for the convolution data-gradient GEMM,
    /// sized to the widest conv filter (dense layers use the
    /// transposed-operand [`ie_tensor::matvec_t_into`] and need none).
    wt: Vec<f32>,
    regions: Vec<ParamRegion>,
    trunk_param: Vec<Vec<Option<usize>>>,
    branch_param: Vec<Vec<Option<usize>>>,
    store_len: usize,
    /// The plan's own store, used by [`MultiExitNetwork::backward_with`].
    store: GradStore,
    quant: Option<QuantConfig>,
    fq: Option<FqState>,
}

/// Accumulates buffer extents while walking the architecture.
struct PlanBuilder {
    cursor: usize,
    max_grad: usize,
    max_col: usize,
    max_conv_w: usize,
    col_cursor: usize,
    pcursor: usize,
    regions: Vec<ParamRegion>,
}

impl PlanBuilder {
    fn walk(
        &mut self,
        specs: &[LayerSpec],
        cur: &mut (usize, usize),
    ) -> (Vec<StepIo>, Vec<Option<usize>>) {
        let mut steps = Vec::with_capacity(specs.len());
        let mut params = Vec::with_capacity(specs.len());
        for spec in specs {
            let (in_off, in_len) = *cur;
            let out_len: usize = spec.output_dims.iter().product();
            let mut in_dims = [0usize; 3];
            if spec.input_dims.len() == 3 {
                in_dims.copy_from_slice(&spec.input_dims);
            }
            let out_off = if matches!(spec.kind, LayerSpecKind::Flatten) {
                in_off
            } else {
                let off = self.cursor;
                self.cursor += out_len;
                off
            };
            self.max_grad = self.max_grad.max(in_len).max(out_len);
            let mut col_off = 0usize;
            if let LayerSpecKind::Conv { in_channels, kernel, .. } = &spec.kind {
                let col_len =
                    in_channels * kernel * kernel * spec.output_dims[1] * spec.output_dims[2];
                self.max_col = self.max_col.max(col_len);
                self.max_conv_w = self.max_conv_w.max(spec.weight_params() as usize);
                col_off = self.col_cursor;
                self.col_cursor += col_len;
            }
            if spec.is_parameterised() {
                let w_len = spec.weight_params() as usize;
                let b_len = spec.bias_params() as usize;
                let region =
                    ParamRegion { w_off: self.pcursor, w_len, b_off: self.pcursor + w_len, b_len };
                self.pcursor += w_len + b_len;
                self.regions.push(region);
                params.push(Some(self.regions.len() - 1));
            } else {
                params.push(None);
            }
            steps.push(StepIo { in_off, in_len, out_off, out_len, in_dims, col_off });
            *cur = (out_off, out_len);
        }
        (steps, params)
    }
}

impl BackwardPlan {
    /// Builds a training plan for `arch`, pre-sizing every buffer.
    pub fn for_architecture(arch: &MultiExitArchitecture) -> BackwardPlan {
        let input_len: usize = arch.input_dims().iter().product();
        let classes = arch.num_classes();
        let mut builder = PlanBuilder {
            cursor: input_len,
            max_grad: input_len,
            max_col: 0,
            max_conv_w: 0,
            col_cursor: 0,
            pcursor: 0,
            regions: Vec::new(),
        };
        let mut cur = (0usize, input_len);
        let mut trunk_steps = Vec::with_capacity(arch.segments().len());
        let mut trunk_param = Vec::with_capacity(arch.segments().len());
        let mut boundaries = Vec::with_capacity(arch.segments().len());
        for segment in arch.segments() {
            let (steps, params) = builder.walk(segment, &mut cur);
            trunk_steps.push(steps);
            trunk_param.push(params);
            boundaries.push(cur);
        }
        let mut branch_steps = Vec::with_capacity(arch.branches().len());
        let mut branch_param = Vec::with_capacity(arch.branches().len());
        let mut logits_regions = Vec::with_capacity(arch.branches().len());
        for (i, branch) in arch.branches().iter().enumerate() {
            let mut bcur = boundaries[i];
            let (steps, params) = builder.walk(branch, &mut bcur);
            branch_steps.push(steps);
            branch_param.push(params);
            debug_assert_eq!(bcur.1, classes, "branch {i} does not end in the class logits");
            logits_regions.push(bcur);
        }
        let mut trunk_grad_regions = Vec::with_capacity(boundaries.len());
        let mut toff = 0usize;
        for &(_, len) in &boundaries {
            trunk_grad_regions.push((toff, len));
            toff += len;
        }
        BackwardPlan {
            arch: arch.clone(),
            classes,
            input_len,
            acts: vec![0.0; builder.cursor],
            trunk_steps,
            branch_steps,
            logits_regions,
            probs: vec![0.0; classes],
            grad: [vec![0.0; builder.max_grad], vec![0.0; builder.max_grad]],
            trunk_grad: vec![0.0; toff],
            trunk_grad_regions,
            trunk_grad_touched: vec![false; boundaries.len()],
            cols: vec![0.0; builder.col_cursor],
            colt: vec![0.0; builder.max_col],
            wt: vec![0.0; builder.max_conv_w],
            regions: builder.regions,
            trunk_param,
            branch_param,
            store_len: builder.pcursor,
            store: GradStore { data: vec![0.0; builder.pcursor] },
            quant: None,
            fq: None,
        }
    }

    /// Builds a training plan whose forward half applies `config`'s
    /// fake-quantization (quantize–dequantize'd inputs and dequantized
    /// weight codes for covered layers, full-precision bias) while the
    /// backward half uses the straight-through estimator. `config` follows
    /// the canonical compressible-layer order of
    /// [`MultiExitArchitecture::compressible_layers`]; an all-`None` config
    /// makes the plan bitwise identical to [`Self::for_architecture`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidSpec`] when `config` does not cover exactly
    /// the architecture's compressible layers, or when a covered layer has
    /// weight bits outside `1..=16` or a non-positive / non-finite weight
    /// scale.
    pub fn for_architecture_fake_quant(
        arch: &MultiExitArchitecture,
        config: &QuantConfig,
    ) -> Result<BackwardPlan> {
        let mut plan = Self::for_architecture(arch);
        let compressible = arch.compressible_layers();
        if config.len() != compressible.len() {
            return Err(NnError::InvalidSpec(format!(
                "fake-quant config covers {} layers but the architecture has {} \
                 compressible layers",
                config.len(),
                compressible.len()
            )));
        }
        let mut weights_len = 0usize;
        let mut acts_len = 0usize;
        let mut trunk_entries: Vec<Vec<Option<FqEntry>>> =
            plan.trunk_steps.iter().map(|s| vec![None; s.len()]).collect();
        let mut branch_entries: Vec<Vec<Option<FqEntry>>> =
            plan.branch_steps.iter().map(|s| vec![None; s.len()]).collect();
        let mut ci = 0usize;
        // Builds the fq entry for compressible layer `ci` (or advances past
        // an uncovered one), returning the entry to record.
        let mut build_entry =
            |ci: usize, spec: &LayerSpec, in_len: usize| -> Result<Option<FqEntry>> {
                let Some(lq) = &config.layers()[ci] else { return Ok(None) };
                if !(1..=16).contains(&lq.weight_bits) {
                    return Err(NnError::InvalidSpec(format!(
                        "fake-quant layer {ci} has unsupported weight bits {}",
                        lq.weight_bits
                    )));
                }
                if !(lq.weight_scale.is_finite() && lq.weight_scale > 0.0) {
                    return Err(NnError::InvalidSpec(format!(
                        "fake-quant layer {ci} has invalid weight scale {}",
                        lq.weight_scale
                    )));
                }
                let w_len = spec.weight_params() as usize;
                let entry = FqEntry {
                    w_off: weights_len,
                    w_len,
                    x_off: acts_len,
                    weight_bits: lq.weight_bits,
                    weight_scale: lq.weight_scale,
                    input: lq.input,
                };
                weights_len += w_len;
                acts_len += in_len;
                Ok(Some(entry))
            };
        // The compressible order interleaves per exit: segment `e`'s
        // parameterised layers, then branch `e`'s.
        for exit in 0..arch.num_exits() {
            for (j, spec) in arch.segments()[exit].iter().enumerate() {
                if !spec.is_parameterised() {
                    continue;
                }
                trunk_entries[exit][j] = build_entry(ci, spec, plan.trunk_steps[exit][j].in_len)?;
                ci += 1;
            }
            for (j, spec) in arch.branches()[exit].iter().enumerate() {
                if !spec.is_parameterised() {
                    continue;
                }
                branch_entries[exit][j] = build_entry(ci, spec, plan.branch_steps[exit][j].in_len)?;
                ci += 1;
            }
        }
        debug_assert_eq!(ci, compressible.len());
        plan.quant = Some(config.clone());
        plan.fq = Some(FqState {
            weights: vec![0.0; weights_len],
            acts: vec![0.0; acts_len],
            trunk_entries,
            branch_entries,
        });
        Ok(plan)
    }

    /// Returns `true` when the plan was built for `net`'s architecture.
    pub fn is_compatible(&self, net: &MultiExitNetwork) -> bool {
        net.architecture() == &self.arch
    }

    /// The fake-quant configuration the plan was built with, if any.
    pub fn quant_config(&self) -> Option<&QuantConfig> {
        self.quant.as_ref()
    }

    /// Allocates a zeroed gradient store sized for this plan's architecture.
    pub fn make_store(&self) -> GradStore {
        GradStore { data: vec![0.0; self.store_len] }
    }

    /// Number of parameter slots a compatible [`GradStore`] must have.
    pub(crate) fn store_len(&self) -> usize {
        self.store_len
    }

    /// Analytic memory traffic of one full planned step (every exit
    /// weighted), in bytes.
    ///
    /// Counts, per non-flatten layer, the forward pass reading its input and
    /// writing its output plus the backward pass reading the output gradient
    /// and writing the input gradient (`2·(in + out)` floats), and for
    /// parameterised layers one weight read per direction plus one gradient
    /// write per parameter (`3·(w + b)` floats), plus the final store flush
    /// (read + accumulate, `2·params`). Deliberately a *lower bound* — im2col
    /// scratch and transpose staging are excluded — so the bytes-per-op the
    /// bench records understates, never inflates, the bandwidth story.
    pub fn traffic_bytes(&self) -> u64 {
        let mut floats = 0u64;
        let mut walk = |specs: &[LayerSpec], steps: &[StepIo]| {
            for (spec, step) in specs.iter().zip(steps) {
                if step.out_off == step.in_off && step.out_len == step.in_len {
                    continue; // flatten: aliased, no data moves
                }
                floats += 2 * (step.in_len + step.out_len) as u64;
                if spec.is_parameterised() {
                    floats += 3 * (spec.weight_params() + spec.bias_params());
                }
            }
        };
        for (exit, segment) in self.arch.segments().iter().enumerate() {
            walk(segment, &self.trunk_steps[exit]);
        }
        for (exit, branch) in self.arch.branches().iter().enumerate() {
            walk(branch, &self.branch_steps[exit]);
        }
        floats += 2 * self.store_len as u64;
        floats * std::mem::size_of::<f32>() as u64
    }

    /// Refreshes the dequantized weight codes from the network's current
    /// full-precision weights. No-op for plans without fake-quant state.
    fn prepare_fake_quant(&mut self, net: &MultiExitNetwork) {
        let Some(fq) = &mut self.fq else { return };
        let groups = [(net.segments(), &fq.trunk_entries), (net.branches(), &fq.branch_entries)];
        for (layers, entries) in groups {
            for (s, group) in layers.iter().enumerate() {
                for (j, layer) in group.iter().enumerate() {
                    let Some(e) = &entries[s][j] else { continue };
                    let w = match layer {
                        Layer::Conv2d(c) => c.weight().as_slice(),
                        Layer::Dense(d) => d.weight().as_slice(),
                        _ => continue,
                    };
                    debug_assert_eq!(w.len(), e.w_len);
                    for (q, &v) in fq.weights[e.w_off..e.w_off + e.w_len].iter_mut().zip(w) {
                        *q = ie_tensor::weight_code(v, e.weight_scale, e.weight_bits) as f32
                            * e.weight_scale;
                    }
                }
            }
        }
    }

    /// Runs one forward + backward pass, accumulating the gradients of every
    /// trainable parameter into `store` (which is zeroed first) instead of
    /// the network's gradient tensors. Returns the weighted loss. Loss and
    /// gradient bits are identical to [`MultiExitNetwork::backward`];
    /// performs no heap allocation.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidSpec`] when the plan was built for a
    /// different architecture or `store` has the wrong size,
    /// [`NnError::InvalidExit`] when `exit_weights` has the wrong length,
    /// [`NnError::InputShapeMismatch`] when `input` does not match the
    /// architecture's input dimensions, and [`NnError::InvalidLabel`] when a
    /// non-zero-weighted exit sees a label outside the class range.
    pub fn backward_into_store(
        &mut self,
        net: &MultiExitNetwork,
        input: &Tensor,
        label: usize,
        exit_weights: &[f32],
        store: &mut GradStore,
    ) -> Result<f32> {
        if net.architecture() != &self.arch {
            return Err(NnError::InvalidSpec(
                "backward plan built for a different architecture".into(),
            ));
        }
        if exit_weights.len() != self.trunk_steps.len() {
            return Err(NnError::InvalidExit {
                requested: exit_weights.len(),
                available: self.trunk_steps.len(),
            });
        }
        if store.data.len() != self.store_len {
            return Err(NnError::InvalidSpec(format!(
                "gradient store holds {} parameters, plan expects {}",
                store.data.len(),
                self.store_len
            )));
        }
        if input.dims() != self.arch.input_dims() {
            return Err(NnError::InputShapeMismatch {
                layer: "backward_plan".into(),
                expected: self.arch.input_dims().to_vec(),
                actual: input.dims().to_vec(),
            });
        }
        self.prepare_fake_quant(net);

        let Self {
            classes,
            input_len,
            acts,
            trunk_steps,
            branch_steps,
            logits_regions,
            probs,
            grad,
            trunk_grad,
            trunk_grad_regions,
            trunk_grad_touched,
            cols,
            colt,
            wt,
            regions,
            trunk_param,
            branch_param,
            fq,
            ..
        } = self;
        #[allow(clippy::type_complexity)]
        let (fq_w, fq_a, fq_trunk, fq_branch): (
            &[f32],
            &mut [f32],
            Option<&Vec<Vec<Option<FqEntry>>>>,
            Option<&Vec<Vec<Option<FqEntry>>>>,
        ) = match fq {
            Some(FqState { weights, acts, trunk_entries, branch_entries }) => {
                (&weights[..], &mut acts[..], Some(trunk_entries), Some(branch_entries))
            }
            None => (&[][..], &mut [][..], None, None),
        };

        acts[..*input_len].copy_from_slice(input.as_slice());
        store.data.fill(0.0);
        trunk_grad_touched.iter_mut().for_each(|t| *t = false);
        let mut total_loss = 0.0f32;

        // Forward through trunk segment `s`, then (when its exit carries a
        // non-zero weight) through branch `s`, followed immediately by that
        // exit's loss and branch backward — caches stay warm and
        // zero-weighted branches cost nothing, exactly like the legacy path.
        for s in 0..trunk_steps.len() {
            for (j, step) in trunk_steps[s].iter().enumerate() {
                let entry = fq_trunk.and_then(|t| t[s][j].as_ref());
                forward_layer(&net.segments()[s][j], step, entry, fq_w, fq_a, acts, cols)?;
            }
            let w = exit_weights[s];
            if w == 0.0 {
                continue;
            }
            if label >= *classes {
                return Err(NnError::InvalidLabel { label, classes: *classes });
            }
            for (j, step) in branch_steps[s].iter().enumerate() {
                let entry = fq_branch.and_then(|b| b[s][j].as_ref());
                forward_layer(&net.branches()[s][j], step, entry, fq_w, fq_a, acts, cols)?;
            }
            let (loff, llen) = logits_regions[s];
            softmax_into(&acts[loff..loff + llen], probs)?;
            let p_true = probs[label].max(1e-12);
            total_loss += w * -p_true.ln();
            ie_tensor::cross_entropy_grad_into(probs, label, w, &mut grad[0][..*classes]);
            let mut gslot = 0usize;
            for j in (0..branch_steps[s].len()).rev() {
                let step = &branch_steps[s][j];
                let entry = fq_branch.and_then(|b| b[s][j].as_ref());
                let region = branch_param[s][j].map(|ri| regions[ri]);
                backward_layer(
                    &net.branches()[s][j],
                    step,
                    entry,
                    fq_w,
                    fq_a,
                    region,
                    &mut store.data,
                    acts,
                    grad,
                    &mut gslot,
                    cols,
                    colt,
                    wt,
                    true,
                )?;
            }
            let (toff, tlen) = trunk_grad_regions[s];
            trunk_grad[toff..toff + tlen].copy_from_slice(&grad[gslot][..tlen]);
            trunk_grad_touched[s] = true;
        }

        // Backward through the trunk from the deepest segment to the first,
        // folding each exit's boundary gradient in as it is passed.
        let mut carried = false;
        let mut gslot = 0usize;
        for s in (0..trunk_steps.len()).rev() {
            let (toff, tlen) = trunk_grad_regions[s];
            match (carried, trunk_grad_touched[s]) {
                (true, true) => ie_tensor::accumulate_slice_into(
                    &mut grad[gslot][..tlen],
                    &trunk_grad[toff..toff + tlen],
                ),
                (true, false) => {}
                (false, true) => {
                    grad[0][..tlen].copy_from_slice(&trunk_grad[toff..toff + tlen]);
                    gslot = 0;
                    carried = true;
                }
                (false, false) => continue,
            }
            for j in (0..trunk_steps[s].len()).rev() {
                let step = &trunk_steps[s][j];
                let entry = fq_trunk.and_then(|t| t[s][j].as_ref());
                let region = trunk_param[s][j].map(|ri| regions[ri]);
                // The first layer of the network produces the input image's
                // gradient, which nothing reads — skip computing it.
                let need_dx = s > 0 || j > 0;
                backward_layer(
                    &net.segments()[s][j],
                    step,
                    entry,
                    fq_w,
                    fq_a,
                    region,
                    &mut store.data,
                    acts,
                    grad,
                    &mut gslot,
                    cols,
                    colt,
                    wt,
                    need_dx,
                )?;
            }
        }
        Ok(total_loss)
    }

    /// Adds `store`'s accumulated gradients onto the network's per-layer
    /// gradient tensors, in [`MultiExitNetwork::apply_gradients`] order.
    pub fn flush_store(&self, store: &GradStore, net: &mut MultiExitNetwork) {
        debug_assert_eq!(store.data.len(), self.store_len);
        let mut idx = 0usize;
        for layer in net.layers_mut() {
            if !layer.is_parameterised() {
                continue;
            }
            let r = self.regions[idx];
            idx += 1;
            let (sw, sb) =
                (&store.data[r.w_off..r.w_off + r.w_len], &store.data[r.b_off..r.b_off + r.b_len]);
            match layer {
                Layer::Conv2d(c) => {
                    ie_tensor::accumulate_slice_into(c.grad_weight_mut().as_mut_slice(), sw);
                    ie_tensor::accumulate_slice_into(c.grad_bias_mut().as_mut_slice(), sb);
                }
                Layer::Dense(d) => {
                    ie_tensor::accumulate_slice_into(d.grad_weight_mut().as_mut_slice(), sw);
                    ie_tensor::accumulate_slice_into(d.grad_bias_mut().as_mut_slice(), sb);
                }
                _ => {}
            }
        }
        debug_assert_eq!(idx, self.regions.len());
    }
}

/// Runs one layer's forward pass inside the activation arena. Convolutions
/// write their `im2col` lowering into the layer's cached region of `cols`,
/// where the backward weight-gradient GEMM re-reads it.
fn forward_layer(
    layer: &Layer,
    step: &StepIo,
    entry: Option<&FqEntry>,
    fq_weights: &[f32],
    fq_acts: &mut [f32],
    acts: &mut [f32],
    cols: &mut [f32],
) -> Result<()> {
    if matches!(layer, Layer::Flatten(_)) {
        return Ok(());
    }
    let (head, tail) = acts.split_at_mut(step.out_off);
    let input = &head[step.in_off..step.in_off + step.in_len];
    let out = &mut tail[..step.out_len];
    match layer {
        Layer::Relu(_) => {
            out.copy_from_slice(input);
            ie_tensor::relu_slice(out);
            Ok(())
        }
        Layer::MaxPool2d(p) => p.forward_slice_into(input, step.in_dims, out),
        Layer::Conv2d(c) => {
            let col = &mut cols[step.col_off..step.col_off + c.col_len()];
            if let Some(e) = entry {
                let xq = &mut fq_acts[e.x_off..e.x_off + step.in_len];
                for (q, &v) in xq.iter_mut().zip(input.iter()) {
                    *q = e.input.dequantize(e.input.quantize(v));
                }
                c.forward_with_weight_into(&fq_weights[e.w_off..e.w_off + e.w_len], xq, out, col)
            } else {
                c.forward_into(input, out, col, false)
            }
        }
        Layer::Dense(d) => {
            if let Some(e) = entry {
                let xq = &mut fq_acts[e.x_off..e.x_off + step.in_len];
                for (q, &v) in xq.iter_mut().zip(input.iter()) {
                    *q = e.input.dequantize(e.input.quantize(v));
                }
                d.forward_with_weight_into(&fq_weights[e.w_off..e.w_off + e.w_len], xq, out);
                Ok(())
            } else {
                d.forward_into(input, out, false)
            }
        }
        Layer::Flatten(_) => Ok(()),
    }
}

/// Runs one layer's backward pass: reads the upstream gradient from the
/// active ping-pong slot, writes the input gradient into the other slot
/// (flipping `gslot`), and accumulates parameter gradients into `store`.
///
/// With `need_dx == false` (the network's first layer — the input image's
/// gradient is never read) parameterised layers still accumulate their
/// weight and bias gradients but skip the data-gradient kernel, and
/// non-parameterised layers skip entirely. `gslot` still flips so callers
/// need no special case; the skipped slot's contents are simply unread.
#[allow(clippy::too_many_arguments)]
fn backward_layer(
    layer: &Layer,
    step: &StepIo,
    entry: Option<&FqEntry>,
    fq_weights: &[f32],
    fq_acts: &[f32],
    region: Option<ParamRegion>,
    store: &mut [f32],
    acts: &[f32],
    grad: &mut [Vec<f32>; 2],
    gslot: &mut usize,
    cols: &[f32],
    colt: &mut [f32],
    wt: &mut [f32],
    need_dx: bool,
) -> Result<()> {
    if matches!(layer, Layer::Flatten(_)) {
        return Ok(());
    }
    let (lo, hi) = grad.split_at_mut(1);
    let (src, dst) = if *gslot == 0 {
        (&lo[0][..step.out_len], &mut hi[0][..step.in_len])
    } else {
        (&hi[0][..step.out_len], &mut lo[0][..step.in_len])
    };
    let input = &acts[step.in_off..step.in_off + step.in_len];
    match layer {
        Layer::Relu(_) => {
            if need_dx {
                ie_tensor::relu_backward_into(input, src, dst);
            }
        }
        Layer::MaxPool2d(p) => {
            if need_dx {
                let [c, h, w] = step.in_dims;
                ie_tensor::max_pool_backward_into(input, c, h, w, p.size(), src, dst);
            }
        }
        Layer::Conv2d(conv) => {
            let r = region.expect("conv layer without a parameter region");
            let (gw, gb) = store[r.w_off..r.b_off + r.b_len].split_at_mut(r.w_len);
            let weight = match entry {
                Some(e) => &fq_weights[e.w_off..e.w_off + e.w_len],
                None => conv.weight().as_slice(),
            };
            let (clen, wlen) = (conv.col_len(), weight.len());
            let col = &cols[step.col_off..step.col_off + clen];
            let dx = need_dx.then_some(&mut dst[..]);
            conv.backward_slice_into(
                weight,
                col,
                src,
                dx,
                gw,
                gb,
                &mut colt[..clen],
                &mut wt[..wlen],
            )?;
        }
        Layer::Dense(dense) => {
            let r = region.expect("dense layer without a parameter region");
            let (gw, gb) = store[r.w_off..r.b_off + r.b_len].split_at_mut(r.w_len);
            let (weight, x) = match entry {
                Some(e) => (
                    &fq_weights[e.w_off..e.w_off + e.w_len],
                    &fq_acts[e.x_off..e.x_off + step.in_len],
                ),
                None => (dense.weight().as_slice(), input),
            };
            let dx = need_dx.then_some(&mut dst[..]);
            dense.backward_slice_into(weight, x, src, dx, gw, gb);
        }
        Layer::Flatten(_) => {}
    }
    *gslot ^= 1;
    Ok(())
}

impl MultiExitNetwork {
    /// Builds a [`BackwardPlan`] for this network's architecture.
    pub fn backward_plan(&self) -> BackwardPlan {
        BackwardPlan::for_architecture(self.architecture())
    }

    /// Builds a fake-quant [`BackwardPlan`] for this network's architecture.
    ///
    /// # Errors
    ///
    /// Propagates [`BackwardPlan::for_architecture_fake_quant`]'s validation
    /// errors.
    pub fn backward_plan_fake_quant(&self, config: &QuantConfig) -> Result<BackwardPlan> {
        BackwardPlan::for_architecture_fake_quant(self.architecture(), config)
    }

    /// Planned counterpart of [`Self::backward`]: accumulates the same
    /// gradients (bit-identical) and returns the same loss, but performs no
    /// heap allocation once `plan` is warm. On error the network's gradient
    /// tensors are left untouched (the legacy path may leave partial
    /// gradients behind).
    ///
    /// # Errors
    ///
    /// See [`BackwardPlan::backward_into_store`].
    pub fn backward_with(
        &mut self,
        plan: &mut BackwardPlan,
        input: &Tensor,
        label: usize,
        exit_weights: &[f32],
    ) -> Result<f32> {
        let mut store = std::mem::take(&mut plan.store);
        let result = plan.backward_into_store(self, input, label, exit_weights, &mut store);
        if result.is_ok() {
            plan.flush_store(&store, self);
        }
        plan.store = store;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::config_from_bits;
    use crate::spec::{lenet_multi_exit, tiny_multi_exit};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net_for(arch: &MultiExitArchitecture, seed: u64) -> MultiExitNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        MultiExitNetwork::from_architecture(arch, &mut rng).unwrap()
    }

    /// Every parameter gradient in apply-order, as raw bits.
    fn grad_bits(net: &MultiExitNetwork) -> Vec<u32> {
        let mut bits = Vec::new();
        for layer in net.segments().iter().flatten().chain(net.branches().iter().flatten()) {
            let (gw, gb) = match layer {
                Layer::Conv2d(c) => (c.grad_weight(), c.grad_bias()),
                Layer::Dense(d) => (d.grad_weight(), d.grad_bias()),
                _ => continue,
            };
            bits.extend(gw.as_slice().iter().map(|v| v.to_bits()));
            bits.extend(gb.as_slice().iter().map(|v| v.to_bits()));
        }
        bits
    }

    fn assert_planned_matches_legacy(arch: &MultiExitArchitecture, seed: u64, weights: &[f32]) {
        let reference = net_for(arch, seed);
        let mut legacy = reference.clone();
        let mut planned = reference.clone();
        let mut plan = planned.backward_plan();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let dims: Vec<usize> = arch.input_dims().to_vec();
        for step in 0..3 {
            let x = Tensor::randn(&mut rng, &dims, 0.0, 1.0);
            let label = step % arch.num_classes();
            let l_loss = legacy.backward(&x, label, weights).unwrap();
            let p_loss = planned.backward_with(&mut plan, &x, label, weights).unwrap();
            assert_eq!(l_loss.to_bits(), p_loss.to_bits(), "loss diverged at step {step}");
            assert_eq!(grad_bits(&legacy), grad_bits(&planned), "grads diverged at step {step}");
            legacy.apply_gradients(0.05);
            planned.apply_gradients(0.05);
        }
    }

    #[test]
    fn planned_backward_is_bit_identical_on_tiny_net() {
        let arch = tiny_multi_exit(3);
        assert_planned_matches_legacy(&arch, 7, &[0.5, 1.0]);
        assert_planned_matches_legacy(&arch, 8, &[1.0, 0.0]);
        assert_planned_matches_legacy(&arch, 9, &[0.0, 1.0]);
    }

    #[test]
    fn planned_backward_is_bit_identical_on_lenet() {
        let arch = lenet_multi_exit();
        assert_planned_matches_legacy(&arch, 21, &[0.3, 0.3, 1.0]);
        assert_planned_matches_legacy(&arch, 22, &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn planned_backward_is_bit_identical_with_sparse_hint() {
        let arch = tiny_multi_exit(4);
        let reference = net_for(&arch, 13);
        let mut legacy = reference.clone();
        let mut planned = reference.clone();
        for net in [&mut legacy, &mut planned] {
            for layer in net.segments_mut().iter_mut().flatten() {
                if let Layer::Conv2d(c) = layer {
                    c.set_sparse_hint(true);
                }
            }
        }
        let mut plan = planned.backward_plan();
        let mut rng = StdRng::seed_from_u64(99);
        let x = Tensor::randn(&mut rng, &[1, 8, 8], 0.0, 1.0);
        let l = legacy.backward(&x, 2, &[1.0, 1.0]).unwrap();
        let p = planned.backward_with(&mut plan, &x, 2, &[1.0, 1.0]).unwrap();
        assert_eq!(l.to_bits(), p.to_bits());
        assert_eq!(grad_bits(&legacy), grad_bits(&planned));
    }

    #[test]
    fn empty_fake_quant_config_is_bitwise_plain() {
        let arch = tiny_multi_exit(3);
        let reference = net_for(&arch, 31);
        let mut plain = reference.clone();
        let mut quantized = reference.clone();
        let n_layers = arch.compressible_layers().len();
        let config = QuantConfig::from_layers(vec![None; n_layers]);
        let mut plan_plain = plain.backward_plan();
        let mut plan_fq = quantized.backward_plan_fake_quant(&config).unwrap();
        let mut rng = StdRng::seed_from_u64(32);
        let x = Tensor::randn(&mut rng, &[1, 8, 8], 0.0, 1.0);
        let a = plain.backward_with(&mut plan_plain, &x, 1, &[1.0, 0.5]).unwrap();
        let b = quantized.backward_with(&mut plan_fq, &x, 1, &[1.0, 0.5]).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(grad_bits(&plain), grad_bits(&quantized));
    }

    #[test]
    fn fake_quant_training_reduces_loss() {
        let arch = tiny_multi_exit(3);
        let mut net = net_for(&arch, 41);
        let entries: Vec<Option<(u8, QuantParams)>> = arch
            .compressible_layers()
            .iter()
            .map(|_| Some((8, QuantParams::from_range(-4.0, 4.0, 8))))
            .collect();
        let config = config_from_bits(&net, &entries).unwrap();
        let mut plan = net.backward_plan_fake_quant(&config).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let x = Tensor::randn(&mut rng, &[1, 8, 8], 0.0, 1.0);
        let first = net.backward_with(&mut plan, &x, 2, &[1.0, 1.0]).unwrap();
        net.apply_gradients(0.1);
        let mut last = first;
        for _ in 0..20 {
            last = net.backward_with(&mut plan, &x, 2, &[1.0, 1.0]).unwrap();
            net.apply_gradients(0.1);
        }
        assert!(first.is_finite() && last.is_finite());
        assert!(last < first, "fake-quant loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn fake_quant_forward_actually_quantizes() {
        // A plan whose config rounds aggressively (2-bit weights) must not
        // produce the same gradients as the plain plan.
        let arch = tiny_multi_exit(3);
        let reference = net_for(&arch, 51);
        let mut plain = reference.clone();
        let mut quantized = reference.clone();
        let entries: Vec<Option<(u8, QuantParams)>> = arch
            .compressible_layers()
            .iter()
            .map(|_| Some((2, QuantParams::from_range(-2.0, 2.0, 4))))
            .collect();
        let config = config_from_bits(&reference, &entries).unwrap();
        let mut plan_plain = plain.backward_plan();
        let mut plan_fq = quantized.backward_plan_fake_quant(&config).unwrap();
        let mut rng = StdRng::seed_from_u64(52);
        let x = Tensor::randn(&mut rng, &[1, 8, 8], 0.0, 1.0);
        plain.backward_with(&mut plan_plain, &x, 0, &[1.0, 1.0]).unwrap();
        quantized.backward_with(&mut plan_fq, &x, 0, &[1.0, 1.0]).unwrap();
        assert_ne!(grad_bits(&plain), grad_bits(&quantized));
    }

    #[test]
    fn planned_backward_validates_arguments() {
        let arch = tiny_multi_exit(3);
        let mut net = net_for(&arch, 61);
        let mut plan = net.backward_plan();
        let x = Tensor::ones(&[1, 8, 8]);
        assert!(matches!(
            net.backward_with(&mut plan, &x, 9, &[1.0, 1.0]),
            Err(NnError::InvalidLabel { label: 9, classes: 3 })
        ));
        assert!(matches!(
            net.backward_with(&mut plan, &x, 0, &[1.0]),
            Err(NnError::InvalidExit { requested: 1, available: 2 })
        ));
        assert!(net.backward_with(&mut plan, &Tensor::ones(&[1, 4, 4]), 0, &[1.0, 1.0]).is_err());
        // Bad label with all-zero weights matches the legacy lazy validation.
        assert_eq!(net.backward_with(&mut plan, &x, 9, &[0.0, 0.0]).unwrap(), 0.0);
        // A plan built for another architecture is rejected.
        let other = tiny_multi_exit(4);
        let mut other_net = net_for(&other, 62);
        assert!(matches!(
            other_net.backward_with(&mut plan, &Tensor::ones(&[1, 8, 8]), 0, &[1.0, 1.0]),
            Err(NnError::InvalidSpec(_))
        ));
    }

    #[test]
    fn plan_reports_compatibility_and_config() {
        let arch = tiny_multi_exit(3);
        let net = net_for(&arch, 71);
        let plan = net.backward_plan();
        assert!(plan.is_compatible(&net));
        assert!(plan.quant_config().is_none());
        assert_eq!(plan.make_store().len(), net.parameter_count());
        assert!(!plan.make_store().is_empty());
        let other = net_for(&tiny_multi_exit(4), 72);
        assert!(!plan.is_compatible(&other));
    }
}
