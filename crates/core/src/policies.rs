//! Simple, non-learning exit policies.
//!
//! These serve three purposes: they are the "static" strategies the paper's
//! runtime adaptation is compared against, they are used inside the
//! compression search to estimate how often each exit would be selected under
//! a candidate policy, and they are convenient baselines for tests.

use crate::{ContinueContext, EventContext, ExitChoice, ExitPolicy};

/// Always selects the deepest exit the currently stored energy can pay for
/// ("use all available energy for the best answer now"). This is the simple
/// static policy described in Section III-A's problem formulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GreedyAffordablePolicy;

impl GreedyAffordablePolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        GreedyAffordablePolicy
    }
}

impl ExitPolicy for GreedyAffordablePolicy {
    fn choose_exit(&mut self, ctx: &EventContext) -> ExitChoice {
        match ctx.deepest_affordable_exit() {
            Some(exit) => ExitChoice::Exit(exit),
            None => ExitChoice::Skip,
        }
    }

    fn choose_continue(&mut self, ctx: &ContinueContext) -> bool {
        // Greedy: continue whenever the continuation is affordable.
        ctx.affordable()
    }

    fn name(&self) -> &str {
        "greedy-affordable"
    }
}

/// Always requests the same exit (missing the event when it is unaffordable).
/// Single-exit baselines (SonicNet, SpArSeNet, LeNet-Cifar) are a special case
/// with exit 0 on a single-exit profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedExitPolicy {
    exit: usize,
}

impl FixedExitPolicy {
    /// Creates a policy that always chooses `exit`.
    pub fn new(exit: usize) -> Self {
        FixedExitPolicy { exit }
    }

    /// The fixed exit.
    pub fn exit(&self) -> usize {
        self.exit
    }
}

impl ExitPolicy for FixedExitPolicy {
    fn choose_exit(&mut self, ctx: &EventContext) -> ExitChoice {
        if ctx.affordable(self.exit) {
            ExitChoice::Exit(self.exit)
        } else {
            ExitChoice::Skip
        }
    }

    fn name(&self) -> &str {
        "fixed-exit"
    }
}

/// Greedy selection, but only over the energy above a reserve margin: a fixed
/// fraction of the capacity is held back for future events. This captures the
/// "reserve some energy for the future" intuition the paper's Q-learning
/// discovers automatically, without any learning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReserveMarginPolicy {
    reserve_fraction: f64,
}

impl ReserveMarginPolicy {
    /// Creates a policy that keeps `reserve_fraction` of the capacity in
    /// reserve (clamped to `[0, 0.9]`).
    pub fn new(reserve_fraction: f64) -> Self {
        ReserveMarginPolicy { reserve_fraction: reserve_fraction.clamp(0.0, 0.9) }
    }

    /// The configured reserve fraction.
    pub fn reserve_fraction(&self) -> f64 {
        self.reserve_fraction
    }
}

impl ExitPolicy for ReserveMarginPolicy {
    fn choose_exit(&mut self, ctx: &EventContext) -> ExitChoice {
        let reserve = self.reserve_fraction * ctx.capacity_mj;
        let spendable = (ctx.available_energy_mj - reserve).max(0.0);
        let affordable = ctx
            .exit_energy_mj
            .iter()
            .enumerate()
            .filter(|(_, &cost)| cost <= spendable + 1e-12)
            .map(|(i, _)| i)
            .next_back();
        match affordable {
            Some(exit) => ExitChoice::Exit(exit),
            // Fall back to the cheapest exit if it is affordable at all, so an
            // event is not missed merely to protect the reserve.
            None if ctx.affordable(0) => ExitChoice::Exit(0),
            None => ExitChoice::Skip,
        }
    }

    fn choose_continue(&mut self, ctx: &ContinueContext) -> bool {
        let reserve = self.reserve_fraction * ctx.capacity_mj;
        ctx.incremental_energy_mj <= (ctx.available_energy_mj - reserve).max(0.0)
    }

    fn name(&self) -> &str {
        "reserve-margin"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(available: f64) -> EventContext {
        EventContext {
            event_id: 0,
            time_s: 0.0,
            available_energy_mj: available,
            capacity_mj: 4.0,
            charging_efficiency: 0.5,
            exit_energy_mj: vec![0.2, 0.8, 1.6],
            exit_accuracy: vec![0.62, 0.69, 0.70],
        }
    }

    #[test]
    fn greedy_selects_deepest_affordable_or_skips() {
        let mut p = GreedyAffordablePolicy::new();
        assert_eq!(p.choose_exit(&ctx(2.0)), ExitChoice::Exit(2));
        assert_eq!(p.choose_exit(&ctx(1.0)), ExitChoice::Exit(1));
        assert_eq!(p.choose_exit(&ctx(0.05)), ExitChoice::Skip);
        assert_eq!(p.name(), "greedy-affordable");
    }

    #[test]
    fn fixed_exit_misses_when_unaffordable() {
        let mut p = FixedExitPolicy::new(2);
        assert_eq!(p.exit(), 2);
        assert_eq!(p.choose_exit(&ctx(2.0)), ExitChoice::Exit(2));
        assert_eq!(p.choose_exit(&ctx(1.0)), ExitChoice::Skip);
    }

    #[test]
    fn reserve_margin_prefers_cheaper_exits_than_greedy() {
        let mut greedy = GreedyAffordablePolicy::new();
        let mut reserved = ReserveMarginPolicy::new(0.5);
        assert!((reserved.reserve_fraction() - 0.5).abs() < 1e-12);
        // With 2.0 mJ stored and a 2.0 mJ reserve, only the fallback cheapest
        // exit is selectable, while greedy picks the deepest.
        assert_eq!(greedy.choose_exit(&ctx(2.0)), ExitChoice::Exit(2));
        assert_eq!(reserved.choose_exit(&ctx(2.0)), ExitChoice::Exit(0));
        // With a full buffer the spendable margin allows deeper exits again.
        assert_eq!(reserved.choose_exit(&ctx(4.0)), ExitChoice::Exit(2));
        // If even the cheapest exit is unaffordable, the event is skipped.
        assert_eq!(reserved.choose_exit(&ctx(0.1)), ExitChoice::Skip);
    }

    #[test]
    fn continuation_decisions_respect_reserve() {
        let cc = ContinueContext {
            event_id: 0,
            current_exit: 0,
            next_exit: 1,
            confidence: 0.2,
            available_energy_mj: 1.0,
            capacity_mj: 4.0,
            incremental_energy_mj: 0.8,
        };
        let mut greedy = GreedyAffordablePolicy::new();
        let mut reserved = ReserveMarginPolicy::new(0.5);
        assert!(greedy.choose_continue(&cc));
        assert!(!reserved.choose_continue(&cc), "reserve of 2 mJ blocks the continuation");
    }
}
