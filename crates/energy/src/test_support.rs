//! Shared helpers for deterministic stochastic tests.
//!
//! Stochastic harvesting traces and simulators must be reproducible across
//! runs for the test suite to act as a gate (and for any two systems to be
//! comparable at all — run-to-run energy-trace variation would drown the
//! effects under test). Tests draw their randomness through [`seeded_rng`],
//! which always logs the seed it chose so a failure can be replayed exactly.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Seed used when neither an explicit seed nor `IE_TEST_SEED` is provided.
pub const DEFAULT_TEST_SEED: u64 = 0x1E57_5EED;

/// An RNG suitable for testing.
///
/// The seed is taken from, in order of preference: the `seed` argument, the
/// `IE_TEST_SEED` environment variable, or [`DEFAULT_TEST_SEED`]. The chosen
/// seed is logged to stderr (visible with `cargo test -- --nocapture`), so a
/// failing stochastic test can be reproduced bit-for-bit by exporting
/// `IE_TEST_SEED`.
pub fn seeded_rng(seed: Option<u64>) -> StdRng {
    let seed = seed
        .or_else(|| std::env::var("IE_TEST_SEED").ok().and_then(|s| s.parse().ok()))
        .unwrap_or(DEFAULT_TEST_SEED);
    eprintln!("seeded_rng: RNG seed: {seed}");
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn explicit_seed_reproduces_the_stream() {
        let mut a = seeded_rng(Some(77));
        let mut b = seeded_rng(Some(77));
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn default_seed_is_stable_across_calls() {
        // Without an explicit seed the helper must still be deterministic,
        // otherwise the tier-1 gate would flake.
        let x: u64 = seeded_rng(None).gen();
        let y: u64 = seeded_rng(None).gen();
        if std::env::var("IE_TEST_SEED").is_err() {
            assert_eq!(seeded_rng(Some(DEFAULT_TEST_SEED)).gen::<u64>(), x);
        }
        assert_eq!(x, y);
    }
}
