//! Property tests for `NonvolatileMemory` invariants under arbitrary
//! interleavings of write / overwrite / erase / torn-write.

use ie_mcu::{McuError, NonvolatileMemory};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Write { key: usize, len: usize },
    TornWrite { key: usize, len: usize, committed: usize },
    Erase { key: usize },
    PowerFailure,
}

const KEYS: [&str; 4] = ["a", "bb", "ckpt-a", "ckpt-b"];

fn op_strategy() -> impl Strategy<Value = Op> {
    (0usize..4, 0usize..4, 0usize..48, 0usize..64).prop_map(
        |(kind, key, len, committed)| match kind {
            0 => Op::Write { key, len },
            1 => Op::TornWrite { key, len, committed },
            2 => Op::Erase { key },
            _ => Op::PowerFailure,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn used_bytes_never_exceeds_capacity_and_failed_writes_never_clobber(
        capacity in 8usize..96,
        ops in proptest::collection::vec(op_strategy(), 1..60),
        fill in 0u8..255,
    ) {
        let mut nv = NonvolatileMemory::new(capacity);
        for (step, op) in ops.iter().enumerate() {
            match *op {
                Op::Write { key, len } => {
                    let key = KEYS[key];
                    let before: Option<Vec<u8>> = nv.read(key).map(<[u8]>::to_vec);
                    let data = vec![fill.wrapping_add(step as u8); len];
                    match nv.write(key, &data) {
                        Ok(()) => prop_assert_eq!(nv.read(key), Some(&data[..])),
                        Err(McuError::NonvolatileFull { .. }) => {
                            // A failed write must keep the previous value.
                            prop_assert_eq!(nv.read(key), before.as_deref());
                        }
                        Err(e) => prop_assert!(false, "unexpected error {:?}", e),
                    }
                }
                Op::TornWrite { key, len, committed } => {
                    let key = KEYS[key];
                    let before: Option<Vec<u8>> = nv.read(key).map(<[u8]>::to_vec);
                    let data = vec![fill.wrapping_add(step as u8); len];
                    match nv.write_torn(key, &data, committed) {
                        Ok(()) => {
                            let cell = nv.read(key).unwrap();
                            prop_assert_eq!(cell.len(), len, "torn cell has the new length");
                            let c = committed.min(len);
                            prop_assert_eq!(&cell[..c], &data[..c], "committed prefix holds");
                        }
                        Err(McuError::NonvolatileFull { .. }) => {
                            prop_assert_eq!(nv.read(key), before.as_deref());
                        }
                        Err(e) => prop_assert!(false, "unexpected error {:?}", e),
                    }
                }
                Op::Erase { key } => {
                    nv.erase(KEYS[key]);
                    prop_assert_eq!(nv.read(KEYS[key]), None);
                }
                Op::PowerFailure => nv.power_failure(),
            }
            prop_assert!(
                nv.used_bytes() <= nv.capacity_bytes(),
                "step {}: used {} > capacity {}",
                step, nv.used_bytes(), nv.capacity_bytes()
            );
        }
    }

    #[test]
    fn over_capacity_write_preserves_other_keys(
        capacity in 4usize..32,
        first_len in 1usize..16,
    ) {
        let capacity = capacity.max(first_len);
        let mut nv = NonvolatileMemory::new(capacity);
        let first = vec![0x5A; first_len];
        nv.write("keep", &first).unwrap();
        let oversize = vec![0x77; capacity + 1];
        prop_assert!(nv.write("big", &oversize).is_err());
        prop_assert!(nv.write_torn("big", &oversize, 1).is_err());
        prop_assert_eq!(nv.read("keep"), Some(&first[..]), "failed writes never clobber");
        prop_assert_eq!(nv.read("big"), None);
        prop_assert!(nv.used_bytes() <= nv.capacity_bytes());
    }
}
