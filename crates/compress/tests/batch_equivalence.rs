//! Property-based equivalence of batched and single-input inference on
//! **compressed** networks: random pruning/quantization policies are applied
//! through the real `apply_policy` path (which zeroes channels, fake-quantizes
//! weights and sets the sparse GEMM hint), then every sample's batched logits
//! must be bit-identical to a separate single-input planned pass, and the
//! sharded batched dataset evaluation must equal the sequential one for every
//! worker count.

use ie_compress::apply::apply_policy;
use ie_compress::{CompressionPolicy, LayerPolicy};
use ie_nn::dataset::SyntheticDataset;
use ie_nn::spec::tiny_multi_exit;
use ie_nn::MultiExitNetwork;
use ie_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_layer_policy() -> impl Strategy<Value = LayerPolicy> {
    (1usize..=20, 1u8..=32, 1u8..=32).prop_map(|(ratio_steps, w_bits, a_bits)| {
        LayerPolicy::new(ratio_steps as f32 / 20.0, w_bits, a_bits)
            .expect("generated policies are within range")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random compression policies (pruned + quantized, sparse-hinted convs):
    /// batched logits stay bit-identical to N single-input planned passes.
    #[test]
    fn batched_logits_match_single_planned_on_compressed_networks(
        seed in 0u64..500,
        batch in 1usize..=16,
        policies in proptest::collection::vec(arb_layer_policy(), 5),
        data in proptest::collection::vec(-2.0f32..2.0, 16 * 64),
    ) {
        let arch = tiny_multi_exit(3);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = MultiExitNetwork::from_architecture(&arch, &mut rng).unwrap();
        let policy: CompressionPolicy = policies.into_iter().collect();
        prop_assume!(policy.layers().len() == arch.compressible_layers().len());
        apply_policy(&mut net, &policy).unwrap();

        let inputs: Vec<Tensor> = (0..batch)
            .map(|s| {
                Tensor::from_vec(data[s * 64..(s + 1) * 64].to_vec(), &[1, 8, 8])
                    .expect("slice length matches shape")
            })
            .collect();
        let refs: Vec<&Tensor> = inputs.iter().collect();
        let mut batch_plan = net.batch_plan(batch);
        let mut single_plan = net.execution_plan();
        for exit in 0..net.num_exits() {
            let out = net.forward_to_exit_batch_with(&mut batch_plan, &refs, exit).unwrap();
            for (i, input) in inputs.iter().enumerate() {
                net.forward_to_exit_with(&mut single_plan, input, exit).unwrap();
                let batched: Vec<u32> = out.logits(i).iter().map(|v| v.to_bits()).collect();
                let single: Vec<u32> =
                    single_plan.logits(exit).iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(batched, single, "exit {} sample {}", exit, i);
            }
        }
    }

    /// The sharded evaluation of a compressed network is invariant in the
    /// worker count and equal to the sequential planned evaluation.
    #[test]
    fn sharded_evaluation_is_worker_count_invariant(
        seed in 0u64..500,
        ratio_steps in 2usize..=20,
        threads in 1usize..=6,
    ) {
        let arch = tiny_multi_exit(3);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = MultiExitNetwork::from_architecture(&arch, &mut rng).unwrap();
        let n_layers = arch.compressible_layers().len();
        let policy =
            CompressionPolicy::uniform(n_layers, ratio_steps as f32 / 20.0, 8, 8).unwrap();
        apply_policy(&mut net, &policy).unwrap();
        let data = SyntheticDataset::generate(3, 8, 60, 0.1, seed);
        let sequential = ie_nn::train::evaluate(&net, data.test()).unwrap();
        let sharded =
            ie_nn::train::evaluate_batched(&net, data.test(), 4, threads).unwrap();
        prop_assert_eq!(sharded, sequential, "threads {}", threads);
    }
}
