use std::fmt;

/// Errors produced by the core domain model.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Propagated neural-network error.
    Nn(ie_nn::NnError),
    /// Propagated compression error.
    Compress(ie_compress::CompressError),
    /// Propagated energy-substrate error.
    Energy(ie_energy::EnergyError),
    /// Propagated MCU-substrate error.
    Mcu(ie_mcu::McuError),
    /// The policy chose an exit that does not exist on the deployed model.
    UnknownExit {
        /// The requested exit.
        requested: usize,
        /// Number of exits available.
        available: usize,
    },
    /// The experiment configuration is inconsistent.
    InvalidConfig(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Nn(e) => write!(f, "network error: {e}"),
            CoreError::Compress(e) => write!(f, "compression error: {e}"),
            CoreError::Energy(e) => write!(f, "energy error: {e}"),
            CoreError::Mcu(e) => write!(f, "mcu error: {e}"),
            CoreError::UnknownExit { requested, available } => {
                write!(f, "policy chose exit {requested} but the model has {available} exits")
            }
            CoreError::InvalidConfig(msg) => write!(f, "invalid experiment configuration: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Nn(e) => Some(e),
            CoreError::Compress(e) => Some(e),
            CoreError::Energy(e) => Some(e),
            CoreError::Mcu(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ie_nn::NnError> for CoreError {
    fn from(e: ie_nn::NnError) -> Self {
        CoreError::Nn(e)
    }
}

impl From<ie_compress::CompressError> for CoreError {
    fn from(e: ie_compress::CompressError) -> Self {
        CoreError::Compress(e)
    }
}

impl From<ie_energy::EnergyError> for CoreError {
    fn from(e: ie_energy::EnergyError) -> Self {
        CoreError::Energy(e)
    }
}

impl From<ie_mcu::McuError> for CoreError {
    fn from(e: ie_mcu::McuError) -> Self {
        CoreError::Mcu(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let errs: Vec<CoreError> = vec![
            ie_nn::NnError::InvalidSpec("x".into()).into(),
            ie_compress::CompressError::InvalidBitwidth { bits: 0 }.into(),
            ie_energy::EnergyError::NegativeAmount { value: -1.0 }.into(),
            ie_mcu::McuError::EmptyTaskGraph.into(),
            CoreError::UnknownExit { requested: 4, available: 3 },
            CoreError::InvalidConfig("no events".into()),
        ];
        for e in &errs {
            assert!(!e.to_string().is_empty());
        }
        assert!(std::error::Error::source(&errs[0]).is_some());
        assert!(std::error::Error::source(&errs[4]).is_none());
    }
}
