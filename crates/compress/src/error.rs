use std::fmt;

/// Errors produced by the compression crate.
#[derive(Debug, Clone, PartialEq)]
pub enum CompressError {
    /// A pruning rate outside the paper's allowed range `[0.05, 1.0]`.
    InvalidPreserveRatio {
        /// The offending ratio.
        ratio: f32,
    },
    /// A bitwidth outside the allowed range `1..=32`.
    InvalidBitwidth {
        /// The offending bitwidth.
        bits: u8,
    },
    /// The policy has a different number of layer entries than the model has
    /// compressible layers.
    PolicyLengthMismatch {
        /// Entries in the policy.
        policy_layers: usize,
        /// Compressible layers in the model.
        model_layers: usize,
    },
    /// Quantized execution was requested without any calibration samples
    /// (activation scales/zero points need observed ranges).
    EmptyCalibrationSet,
    /// A propagated neural-network error (shape problems while applying a
    /// policy to real weights).
    Nn(ie_nn::NnError),
}

impl fmt::Display for CompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressError::InvalidPreserveRatio { ratio } => {
                write!(f, "preserve ratio {ratio} outside the allowed range [0.05, 1.0]")
            }
            CompressError::InvalidBitwidth { bits } => {
                write!(f, "bitwidth {bits} outside the allowed range 1..=32")
            }
            CompressError::PolicyLengthMismatch { policy_layers, model_layers } => write!(
                f,
                "policy describes {policy_layers} layers but the model has {model_layers} compressible layers"
            ),
            CompressError::EmptyCalibrationSet => {
                write!(f, "quantized execution needs at least one calibration sample")
            }
            CompressError::Nn(e) => write!(f, "network error: {e}"),
        }
    }
}

impl std::error::Error for CompressError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompressError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ie_nn::NnError> for CompressError {
    fn from(e: ie_nn::NnError) -> Self {
        CompressError::Nn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty() {
        let errs = [
            CompressError::InvalidPreserveRatio { ratio: 0.0 },
            CompressError::InvalidBitwidth { bits: 0 },
            CompressError::PolicyLengthMismatch { policy_layers: 3, model_layers: 11 },
            CompressError::EmptyCalibrationSet,
            CompressError::Nn(ie_nn::NnError::InvalidSpec("x".into())),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
