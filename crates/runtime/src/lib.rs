//! `ie-runtime` — phase 2 of the paper: online exit selection and incremental
//! inference on the deployed device.
//!
//! During compression the exit for each event was chosen by a *static* policy
//! (select the deepest exit the stored energy can pay for). At runtime the
//! power trace and event distribution are unknown, so the paper replaces the
//! static rule with a lightweight Q-learning agent:
//!
//! * the **exit Q-table** maps the discretised `(stored energy, charging
//!   efficiency)` state to the exit to run ([`QLearningExitPolicy`]),
//! * a second **continuation Q-table** maps `(confidence, remaining energy)`
//!   to the binary decision of whether to run an incremental inference to the
//!   next exit,
//! * both tables are updated with Eq. (16); the reward is the accuracy of the
//!   selected exit (zero for missed events).
//!
//! [`StaticLutPolicy`] reproduces the static lookup-table baseline of
//! Fig. 7, and [`RuntimeAdaptation`] runs the repeated learning episodes that
//! generate the Fig. 7(a) learning curve and the Fig. 7(b) exit histogram.
//!
//! [`LatencyAdmission`] re-reads either policy as **admission control** for
//! the inference server (`ie_serve`): the per-exit energy costs become
//! per-exit latency costs and the stored energy becomes a request's latency
//! budget, so the same tables that pick exits on the harvesting device pick
//! exits (or shed load) under a latency SLO.
//!
//! # Example
//!
//! ```
//! use ie_core::{DeployedModel, ExperimentConfig};
//! use ie_runtime::{AdaptationConfig, RuntimeAdaptation};
//!
//! let config = ExperimentConfig::small_test();
//! let model = DeployedModel::uncompressed_reference(&config)?;
//! let adaptation = RuntimeAdaptation::new(AdaptationConfig { episodes: 3, ..Default::default() });
//! let outcome = adaptation.run(&config, &model)?;
//! assert_eq!(outcome.learning_curve.len(), 3);
//! # Ok::<(), ie_runtime::RuntimeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptation;
mod admission;
mod error;
mod qpolicy;
mod state;
mod static_lut;

pub use adaptation::{AdaptationConfig, AdaptationOutcome, RuntimeAdaptation};
pub use admission::{deepest_affordable, LatencyAdmission};
pub use error::RuntimeError;
pub use qpolicy::{QLearningConfig, QLearningExitPolicy};
pub use state::StateDiscretizer;
pub use static_lut::StaticLutPolicy;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, RuntimeError>;
