//! SONIC-style task-based intermittent execution.
//!
//! Gobieski et al.'s SONIC (the paper's "SonicNet" baseline) splits a DNN
//! inference into tasks, checkpoints progress into non-volatile memory after
//! every task and therefore survives arbitrarily many power failures — at the
//! price of waiting, possibly for a very long time, until enough energy has
//! been harvested to finish all tasks. This module reproduces that execution
//! model over the [`ie_energy::HarvestSimulator`].

use crate::{CostModel, McuError, NonvolatileMemory, Result};
use ie_energy::HarvestSimulator;

/// One atomic unit of work: runs to completion within a single power cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Task {
    /// Task name (used in diagnostics).
    pub name: String,
    /// FLOPs the task performs.
    pub flops: u64,
}

impl Task {
    /// Creates a task.
    pub fn new(name: &str, flops: u64) -> Self {
        Task { name: name.to_string(), flops }
    }
}

/// An ordered collection of tasks making up one inference.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TaskGraph {
    tasks: Vec<Task>,
}

impl TaskGraph {
    /// Creates an empty task graph.
    pub fn new() -> Self {
        TaskGraph::default()
    }

    /// Splits a monolithic inference of `total_flops` into `num_tasks` equal
    /// tasks (SONIC tiles loop iterations; equal splitting captures the same
    /// behaviour at the granularity that matters for energy accounting).
    pub fn split_evenly(name_prefix: &str, total_flops: u64, num_tasks: usize) -> Self {
        let n = num_tasks.max(1) as u64;
        let base = total_flops / n;
        let remainder = total_flops % n;
        let tasks = (0..n)
            .map(|i| Task::new(&format!("{name_prefix}-{i}"), base + u64::from(i < remainder)))
            .collect();
        TaskGraph { tasks }
    }

    /// Appends a task.
    pub fn push(&mut self, task: Task) {
        self.tasks.push(task);
    }

    /// The tasks in execution order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Total FLOPs across all tasks.
    pub fn total_flops(&self) -> u64 {
        self.tasks.iter().map(|t| t.flops).sum()
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Returns `true` when the graph holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

impl FromIterator<Task> for TaskGraph {
    fn from_iter<I: IntoIterator<Item = Task>>(iter: I) -> Self {
        TaskGraph { tasks: iter.into_iter().collect() }
    }
}

/// Outcome of running a task graph under intermittent power.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    /// Whether every task completed.
    pub completed: bool,
    /// Wall-clock time spent, in seconds (compute plus waiting for energy).
    pub elapsed_s: f64,
    /// Time spent waiting for energy, in seconds.
    pub waiting_s: f64,
    /// Total energy drawn from storage, in millijoules.
    pub energy_consumed_mj: f64,
    /// Number of power failures (recharge waits) encountered.
    pub power_cycles: u64,
    /// Number of checkpoints written.
    pub checkpoints: u64,
    /// Index of the first task that failed to run (when `completed == false`).
    pub failed_task: Option<usize>,
}

/// Executes task graphs over a harvesting environment with checkpointing.
#[derive(Debug, Clone, PartialEq)]
pub struct IntermittentExecutor {
    cost: CostModel,
    /// Maximum time the executor will wait for energy before declaring the
    /// inference dead (the event is then missed).
    max_wait_s: f64,
    /// Polling step while waiting for energy, seconds.
    wait_step_s: f64,
}

impl IntermittentExecutor {
    /// Creates an executor with the given cost model and a default waiting
    /// budget of one hour per task.
    pub fn new(cost: CostModel) -> Self {
        IntermittentExecutor { cost, max_wait_s: 3_600.0, wait_step_s: 1.0 }
    }

    /// Overrides the maximum time to wait for energy before giving up.
    pub fn with_max_wait_s(mut self, max_wait_s: f64) -> Self {
        self.max_wait_s = max_wait_s.max(0.0);
        self
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Runs `graph` to completion (or starvation) against the harvesting
    /// simulator, checkpointing progress into `nv` after every task.
    ///
    /// # Errors
    ///
    /// Returns [`McuError::EmptyTaskGraph`] for an empty graph. Starvation is
    /// *not* an error: it is reported through
    /// [`ExecutionReport::completed`] so callers can count missed events.
    pub fn execute(
        &self,
        graph: &TaskGraph,
        sim: &mut HarvestSimulator,
        nv: &mut NonvolatileMemory,
    ) -> Result<ExecutionReport> {
        if graph.is_empty() {
            return Err(McuError::EmptyTaskGraph);
        }
        let start_s = sim.now_s();
        let mut waiting_s = 0.0;
        let mut energy_consumed = 0.0;
        let mut power_cycles = 0u64;
        let mut checkpoints = 0u64;

        for (index, task) in graph.tasks().iter().enumerate() {
            let task_energy = self.cost.inference_energy_mj(task.flops);
            let checkpoint_energy = self.cost.checkpoint_energy_mj();
            let needed = task_energy + checkpoint_energy;

            if !sim.storage().can_supply(needed) {
                // Power failure: progress is safe in NV memory; wait to recharge.
                power_cycles += 1;
                nv.power_failure();
                match sim.wait_for_energy(needed, self.wait_step_s, self.max_wait_s) {
                    Ok(waited) => waiting_s += waited,
                    Err(_) => {
                        return Ok(ExecutionReport {
                            completed: false,
                            elapsed_s: sim.now_s() - start_s,
                            waiting_s: waiting_s + self.max_wait_s,
                            energy_consumed_mj: energy_consumed,
                            power_cycles,
                            checkpoints,
                            failed_task: Some(index),
                        });
                    }
                }
            }

            sim.consume(needed)?;
            energy_consumed += needed;
            sim.advance_by(
                self.cost.inference_latency_s(task.flops) + self.cost.checkpoint_latency_s(),
            );
            // Persist progress so a later power failure resumes after this task.
            nv.write("task-progress", &(index as u32).to_le_bytes())?;
            checkpoints += 1;
        }

        Ok(ExecutionReport {
            completed: true,
            elapsed_s: sim.now_s() - start_s,
            waiting_s,
            energy_consumed_mj: energy_consumed,
            power_cycles,
            checkpoints,
            failed_task: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::McuDevice;
    use ie_energy::{ConstantTrace, EnergyStorage, HarvestSimulator};

    fn executor() -> IntermittentExecutor {
        IntermittentExecutor::new(CostModel::for_device(&McuDevice::msp432()))
    }

    fn sim_with(power_mw: f64, capacity_mj: f64, initial_mj: f64) -> HarvestSimulator {
        HarvestSimulator::new(
            Box::new(ConstantTrace::new(power_mw, 10_000_000.0)),
            EnergyStorage::new(capacity_mj, 1.0).with_initial_level(initial_mj),
        )
    }

    #[test]
    fn split_evenly_preserves_total_flops() {
        let g = TaskGraph::split_evenly("conv", 1_000_003, 7);
        assert_eq!(g.len(), 7);
        assert_eq!(g.total_flops(), 1_000_003);
        // Individual tasks differ by at most one FLOP.
        let min = g.tasks().iter().map(|t| t.flops).min().unwrap();
        let max = g.tasks().iter().map(|t| t.flops).max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn ample_energy_completes_in_one_power_cycle() {
        let exec = executor();
        // 2 MFLOPs -> 3 mJ; give the capacitor plenty.
        let graph = TaskGraph::split_evenly("net", 2_000_000, 10);
        let mut sim = sim_with(1.0, 100.0, 50.0);
        let mut nv = NonvolatileMemory::new(1024);
        let report = exec.execute(&graph, &mut sim, &mut nv).unwrap();
        assert!(report.completed);
        assert_eq!(report.power_cycles, 0);
        assert_eq!(report.checkpoints, 10);
        assert!(report.energy_consumed_mj >= 3.0);
        assert!(report.waiting_s == 0.0);
        assert!(report.failed_task.is_none());
    }

    #[test]
    fn weak_harvesting_needs_multiple_power_cycles() {
        let exec = executor();
        // 2 MFLOPs -> 3 mJ total, but the capacitor only holds 0.5 mJ, so the
        // executor must repeatedly wait for recharge between tasks.
        let graph = TaskGraph::split_evenly("net", 2_000_000, 10);
        let mut sim = sim_with(0.05, 0.5, 0.0);
        let mut nv = NonvolatileMemory::new(1024);
        let report = exec.execute(&graph, &mut sim, &mut nv).unwrap();
        assert!(report.completed);
        assert!(report.power_cycles >= 5, "power cycles {}", report.power_cycles);
        assert!(report.waiting_s > 0.0);
        assert_eq!(nv.power_failures(), report.power_cycles);
    }

    #[test]
    fn starvation_reports_incomplete_instead_of_erroring() {
        let exec = executor().with_max_wait_s(10.0);
        let graph = TaskGraph::split_evenly("net", 2_000_000, 4);
        // Zero harvest power and an empty capacitor: nothing can ever run.
        let mut sim = sim_with(0.0, 1.0, 0.0);
        let mut nv = NonvolatileMemory::new(1024);
        let report = exec.execute(&graph, &mut sim, &mut nv).unwrap();
        assert!(!report.completed);
        assert_eq!(report.failed_task, Some(0));
        assert_eq!(report.checkpoints, 0);
    }

    #[test]
    fn empty_graph_is_rejected() {
        let exec = executor();
        let mut sim = sim_with(1.0, 10.0, 10.0);
        let mut nv = NonvolatileMemory::new(64);
        assert!(matches!(
            exec.execute(&TaskGraph::new(), &mut sim, &mut nv),
            Err(McuError::EmptyTaskGraph)
        ));
    }

    #[test]
    fn more_tasks_mean_more_checkpoint_energy() {
        let coarse = TaskGraph::split_evenly("net", 1_000_000, 2);
        let fine = TaskGraph::split_evenly("net", 1_000_000, 50);
        let exec = executor();
        let mut nv1 = NonvolatileMemory::new(1024);
        let mut nv2 = NonvolatileMemory::new(1024);
        let mut sim1 = sim_with(1.0, 100.0, 100.0);
        let mut sim2 = sim_with(1.0, 100.0, 100.0);
        let r1 = exec.execute(&coarse, &mut sim1, &mut nv1).unwrap();
        let r2 = exec.execute(&fine, &mut sim2, &mut nv2).unwrap();
        assert!(r2.energy_consumed_mj > r1.energy_consumed_mj);
    }
}
