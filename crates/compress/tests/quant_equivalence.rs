//! Equivalence property tests of the quantized (integer) execution backend.
//!
//! Over random per-layer policies — mixing i8, i16 and f32 kernels — and
//! random batch sizes 1..=16, the optimized quantized plans must reproduce
//! the naive fake-quant reference ([`ie_nn::quant::fake_quant_logits`])
//! **bit for bit**: integer accumulation is associative, so any divergence
//! is a real bug in the kernels, the lowering, the requantization epilogue
//! or the mixed-precision chaining, never harmless float reassociation.

use ie_compress::apply::apply_policy_quantized;
use ie_compress::{CompressionPolicy, LayerPolicy};
use ie_nn::dataset::SyntheticDataset;
use ie_nn::quant::{fake_quant_logits, QuantizedModel};
use ie_nn::spec::tiny_multi_exit;
use ie_nn::MultiExitNetwork;
use ie_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Weight bitwidth choices: i8 kernels (1..=8), i16 kernels (9..=16) and the
/// f32 fallback (32).
const WEIGHT_BITS: [u8; 7] = [1, 2, 4, 8, 12, 16, 32];
/// Activation bitwidth choices: quantizable (≤ 8) and the f32 fallback.
const ACT_BITS: [u8; 3] = [4, 8, 32];

fn tiny_net(seed: u64) -> MultiExitNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    MultiExitNetwork::from_architecture(&tiny_multi_exit(3), &mut rng).unwrap()
}

/// One random layer policy: (weight-bits index, act-bits index, ratio).
fn arb_layer() -> impl Strategy<Value = (usize, usize, f32)> {
    (0usize..WEIGHT_BITS.len(), 0usize..ACT_BITS.len(), 0.3f32..1.0)
}

fn policy_from(choices: &[(usize, usize, f32)]) -> CompressionPolicy {
    choices
        .iter()
        .map(|&(w, a, ratio)| LayerPolicy::new(ratio, WEIGHT_BITS[w], ACT_BITS[a]).unwrap())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The planned quantized path (single-input and batched, including
    /// incremental continuation) is bit-identical to the naive fake-quant
    /// reference for arbitrary kernel mixes and batch sizes.
    #[test]
    fn quantized_plans_match_the_fake_quant_reference_bit_for_bit(
        choices in proptest::collection::vec(arb_layer(), 5usize),
        batch in 1usize..=16,
        net_seed in 0u64..4,
    ) {
        let net = tiny_net(net_seed);
        prop_assert_eq!(net.architecture().compressible_layers().len(), choices.len());
        let policy = policy_from(&choices);
        let data = SyntheticDataset::generate(3, 8, 40, 0.05, net_seed.wrapping_add(90));
        let mut qnet = net.clone();
        // Calibrate on a few samples only, so evaluation inputs can exceed
        // the calibrated ranges (the epilogue's saturation is exercised).
        let cfg = apply_policy_quantized(&mut qnet, &policy, &data.train()[..8]).expect("config");
        let model = QuantizedModel::for_network(&qnet, &cfg).expect("model");
        let mut single = qnet.execution_plan_quantized(&cfg).expect("single plan");
        let mut batched = qnet.batch_plan_quantized(&cfg, batch).expect("batch plan");
        let inputs: Vec<&Tensor> =
            data.train().iter().take(batch).map(|s| &s.image).collect();
        prop_assert_eq!(inputs.len(), batch);
        for exit in 0..qnet.num_exits() {
            let out = qnet
                .forward_to_exit_batch_with(&mut batched, &inputs, exit)
                .expect("batched forward");
            for (i, input) in inputs.iter().enumerate() {
                let reference = fake_quant_logits(&qnet, &model, input, exit).expect("reference");
                qnet.forward_to_exit_with(&mut single, input, exit).expect("planned forward");
                let single_bits: Vec<u32> =
                    single.logits(exit).iter().map(|v| v.to_bits()).collect();
                let ref_bits: Vec<u32> = reference.iter().map(|v| v.to_bits()).collect();
                let batch_bits: Vec<u32> = out.logits(i).iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(&single_bits, &ref_bits, "planned vs reference, exit {} sample {}", exit, i);
                prop_assert_eq!(&batch_bits, &ref_bits, "batched vs reference, exit {} sample {}", exit, i);
            }
        }
        // Incremental continuation from exit 0 agrees with the reference too.
        let input = inputs[0];
        qnet.forward_to_exit_with(&mut single, input, 0).expect("planned forward");
        qnet.continue_to_exit_with(&mut single, 1).expect("continuation");
        let reference = fake_quant_logits(&qnet, &model, input, 1).expect("reference");
        prop_assert_eq!(single.logits(1), reference.as_slice());
    }
}

#[test]
fn an_i8_dominant_policy_keeps_usable_accuracy_through_the_integer_backend() {
    // End-to-end sanity beyond bit-identity: 8-bit integer execution of a
    // trained tiny network scores close to the fake-quant f32 path.
    use ie_nn::train::{evaluate, evaluate_quantized, train, TrainConfig};

    let data = SyntheticDataset::generate(3, 8, 140, 0.05, 41);
    let mut rng = StdRng::seed_from_u64(42);
    let mut net = MultiExitNetwork::from_architecture(&tiny_multi_exit(3), &mut rng).unwrap();
    let mut cfg = TrainConfig::for_exits(2);
    cfg.epochs = 5;
    cfg.learning_rate = 0.1;
    train(&mut net, data.train(), data.test(), &cfg).unwrap();

    let n = net.architecture().compressible_layers().len();
    let policy = CompressionPolicy::uniform(n, 1.0, 8, 8).unwrap();
    let mut qnet = net.clone();
    let quant_cfg = apply_policy_quantized(&mut qnet, &policy, data.train()).unwrap();
    let float_accs = evaluate(&net, data.test()).unwrap();
    let int_accs = evaluate_quantized(&qnet, &quant_cfg, data.test(), 8, 2).unwrap();
    for (f, q) in float_accs.iter().zip(&int_accs) {
        assert!((f - q).abs() < 0.15, "8-bit integer accuracy {q} strays too far from float {f}");
    }
    assert!(int_accs.iter().all(|&a| a > 0.5), "integer accuracy stays usable: {int_accs:?}");
}
