//! `im2col`/`col2im` lowering used by the convolution layers.
//!
//! A convolution over a `[C, H, W]` input with `[O, C, K, K]` filters is
//! computed as a matrix product between the filter matrix `[O, C·K·K]` and
//! the column matrix `[C·K·K, H_out·W_out]` produced by [`im2col`]. The
//! backward pass uses [`col2im`] to scatter column gradients back into image
//! layout.

use crate::{Result, Tensor, TensorError};

/// Geometry of a 2-D convolution: input size, kernel, stride and padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dGeometry {
    /// Number of input channels.
    pub in_channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding on every side.
    pub padding: usize,
}

impl Conv2dGeometry {
    /// Output height of the convolution.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Output width of the convolution.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Validates that the kernel fits in the padded input and the stride is
    /// non-zero.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidConvGeometry`] describing the problem.
    pub fn validate(&self) -> Result<()> {
        if self.stride == 0 {
            return Err(TensorError::InvalidConvGeometry("stride must be non-zero".into()));
        }
        if self.kernel == 0 {
            return Err(TensorError::InvalidConvGeometry("kernel must be non-zero".into()));
        }
        if self.in_h + 2 * self.padding < self.kernel || self.in_w + 2 * self.padding < self.kernel
        {
            return Err(TensorError::InvalidConvGeometry(format!(
                "kernel {} larger than padded input {}x{}",
                self.kernel,
                self.in_h + 2 * self.padding,
                self.in_w + 2 * self.padding
            )));
        }
        Ok(())
    }
}

/// Lowers a `[C, H, W]` image into a `[C·K·K, out_h·out_w]` column matrix.
///
/// # Errors
///
/// Returns an error when the input tensor is not rank 3, its channel/height/
/// width do not match `geom`, or the geometry itself is invalid.
pub fn im2col(input: &Tensor, geom: &Conv2dGeometry) -> Result<Tensor> {
    geom.validate()?;
    if input.shape().rank() != 3 {
        return Err(TensorError::RankMismatch { expected: 3, actual: input.shape().rank() });
    }
    let dims = input.dims();
    if dims != [geom.in_channels, geom.in_h, geom.in_w] {
        return Err(TensorError::ShapeMismatch {
            left: dims.to_vec(),
            right: vec![geom.in_channels, geom.in_h, geom.in_w],
        });
    }
    let (out_h, out_w) = (geom.out_h(), geom.out_w());
    let k = geom.kernel;
    let cols = out_h * out_w;
    let rows = geom.in_channels * k * k;
    let mut out = vec![0.0f32; rows * cols];
    let data = input.as_slice();
    for c in 0..geom.in_channels {
        for ky in 0..k {
            for kx in 0..k {
                let row = (c * k + ky) * k + kx;
                for oy in 0..out_h {
                    let iy = (oy * geom.stride + ky) as isize - geom.padding as isize;
                    for ox in 0..out_w {
                        let ix = (ox * geom.stride + kx) as isize - geom.padding as isize;
                        let col = oy * out_w + ox;
                        let value = if iy >= 0
                            && iy < geom.in_h as isize
                            && ix >= 0
                            && ix < geom.in_w as isize
                        {
                            data[(c * geom.in_h + iy as usize) * geom.in_w + ix as usize]
                        } else {
                            0.0
                        };
                        out[row * cols + col] = value;
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[rows, cols])
}

/// Scatters a `[C·K·K, out_h·out_w]` column-gradient matrix back into a
/// `[C, H, W]` image-gradient tensor (the adjoint of [`im2col`]).
///
/// # Errors
///
/// Returns an error when the column matrix shape does not match `geom` or the
/// geometry is invalid.
pub fn col2im(cols: &Tensor, geom: &Conv2dGeometry) -> Result<Tensor> {
    geom.validate()?;
    let (out_h, out_w) = (geom.out_h(), geom.out_w());
    let k = geom.kernel;
    let expected = [geom.in_channels * k * k, out_h * out_w];
    if cols.dims() != expected {
        return Err(TensorError::ShapeMismatch {
            left: cols.dims().to_vec(),
            right: expected.to_vec(),
        });
    }
    let mut image = Tensor::zeros(&[geom.in_channels, geom.in_h, geom.in_w]);
    let src = cols.as_slice();
    let ncols = out_h * out_w;
    {
        let dst = image.as_mut_slice();
        for c in 0..geom.in_channels {
            for ky in 0..k {
                for kx in 0..k {
                    let row = (c * k + ky) * k + kx;
                    for oy in 0..out_h {
                        let iy = (oy * geom.stride + ky) as isize - geom.padding as isize;
                        if iy < 0 || iy >= geom.in_h as isize {
                            continue;
                        }
                        for ox in 0..out_w {
                            let ix = (ox * geom.stride + kx) as isize - geom.padding as isize;
                            if ix < 0 || ix >= geom.in_w as isize {
                                continue;
                            }
                            let col = oy * out_w + ox;
                            dst[(c * geom.in_h + iy as usize) * geom.in_w + ix as usize] +=
                                src[row * ncols + col];
                        }
                    }
                }
            }
        }
    }
    Ok(image)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom_3x3_stride1_nopad() -> Conv2dGeometry {
        Conv2dGeometry { in_channels: 1, in_h: 4, in_w: 4, kernel: 3, stride: 1, padding: 0 }
    }

    #[test]
    fn output_dims_follow_conv_arithmetic() {
        let g =
            Conv2dGeometry { in_channels: 3, in_h: 32, in_w: 32, kernel: 5, stride: 1, padding: 2 };
        assert_eq!(g.out_h(), 32);
        assert_eq!(g.out_w(), 32);
        let g2 =
            Conv2dGeometry { in_channels: 3, in_h: 32, in_w: 32, kernel: 5, stride: 2, padding: 0 };
        assert_eq!(g2.out_h(), 14);
    }

    #[test]
    fn validate_rejects_degenerate_geometry() {
        let mut g = geom_3x3_stride1_nopad();
        g.stride = 0;
        assert!(g.validate().is_err());
        let mut g = geom_3x3_stride1_nopad();
        g.kernel = 9;
        assert!(g.validate().is_err());
    }

    #[test]
    fn im2col_produces_expected_columns() {
        let g = geom_3x3_stride1_nopad();
        let input = Tensor::from_vec((0..16).map(|x| x as f32).collect(), &[1, 4, 4]).unwrap();
        let cols = im2col(&input, &g).unwrap();
        assert_eq!(cols.dims(), &[9, 4]);
        // First column is the top-left 3x3 patch in row-major order.
        let first_col: Vec<f32> = (0..9).map(|r| cols.get(&[r, 0]).unwrap()).collect();
        assert_eq!(first_col, vec![0.0, 1.0, 2.0, 4.0, 5.0, 6.0, 8.0, 9.0, 10.0]);
        // Last column is the bottom-right patch.
        let last_col: Vec<f32> = (0..9).map(|r| cols.get(&[r, 3]).unwrap()).collect();
        assert_eq!(last_col, vec![5.0, 6.0, 7.0, 9.0, 10.0, 11.0, 13.0, 14.0, 15.0]);
    }

    #[test]
    fn im2col_zero_pads_border() {
        let g =
            Conv2dGeometry { in_channels: 1, in_h: 2, in_w: 2, kernel: 3, stride: 1, padding: 1 };
        let input = Tensor::ones(&[1, 2, 2]);
        let cols = im2col(&input, &g).unwrap();
        // Top-left output position: only the bottom-right 2x2 of the kernel
        // overlaps real pixels, so exactly 4 ones.
        let first_col_sum: f32 = (0..9).map(|r| cols.get(&[r, 0]).unwrap()).sum();
        assert_eq!(first_col_sum, 4.0);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col_for_counting() {
        // col2im(im2col(ones)) counts how many patches cover each pixel.
        let g = geom_3x3_stride1_nopad();
        let input = Tensor::ones(&[1, 4, 4]);
        let cols = im2col(&input, &g).unwrap();
        let back = col2im(&cols, &g).unwrap();
        // Centre pixels are covered by all 4 patches, corners by exactly 1.
        assert_eq!(back.get(&[0, 0, 0]), Some(1.0));
        assert_eq!(back.get(&[0, 1, 1]), Some(4.0));
        assert_eq!(back.get(&[0, 3, 3]), Some(1.0));
    }

    #[test]
    fn shape_mismatches_are_rejected() {
        let g = geom_3x3_stride1_nopad();
        let wrong = Tensor::zeros(&[1, 5, 5]);
        assert!(im2col(&wrong, &g).is_err());
        let wrong_cols = Tensor::zeros(&[9, 5]);
        assert!(col2im(&wrong_cols, &g).is_err());
    }
}
