use crate::{McuError, Result};
use std::collections::BTreeMap;

/// A FRAM-like non-volatile byte store.
///
/// Contents survive simulated power failures (which only clear volatile
/// state), have a bounded capacity, and every write is metered so the
/// intermittent executor can charge checkpointing energy against the storage.
///
/// # Example
///
/// ```
/// use ie_mcu::NonvolatileMemory;
///
/// let mut nv = NonvolatileMemory::new(1024);
/// nv.write("progress", &[3])?;
/// assert_eq!(nv.read("progress"), Some(&[3][..]));
/// nv.power_failure();
/// assert_eq!(nv.read("progress"), Some(&[3][..]), "contents survive power loss");
/// # Ok::<(), ie_mcu::McuError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NonvolatileMemory {
    capacity_bytes: usize,
    entries: BTreeMap<String, Vec<u8>>,
    bytes_written: u64,
    power_failures: u64,
    torn_writes: u64,
}

impl NonvolatileMemory {
    /// Creates an empty store with the given capacity in bytes.
    pub fn new(capacity_bytes: usize) -> Self {
        NonvolatileMemory { capacity_bytes, ..Default::default() }
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Bytes currently occupied.
    pub fn used_bytes(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// Total bytes ever written (for energy accounting).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Number of power failures the memory has survived.
    pub fn power_failures(&self) -> u64 {
        self.power_failures
    }

    /// Number of writes that were torn by a mid-write power cut.
    pub fn torn_writes(&self) -> u64 {
        self.torn_writes
    }

    /// Writes (or overwrites) `key` with `data`.
    ///
    /// Overwriting an existing key reuses its buffer in place (unless the new
    /// value is larger), so steady-state checkpointing — the intermittent
    /// executor rewriting `task-progress` after every task — allocates
    /// nothing per write.
    ///
    /// # Errors
    ///
    /// Returns [`McuError::NonvolatileFull`] when the write would exceed the
    /// capacity; the previous value of `key` is kept in that case.
    pub fn write(&mut self, key: &str, data: &[u8]) -> Result<()> {
        let existing = self.entries.get(key).map(Vec::len).unwrap_or(0);
        let used_without = self.used_bytes() - existing;
        if used_without + data.len() > self.capacity_bytes {
            return Err(McuError::NonvolatileFull {
                requested: data.len(),
                available: self.capacity_bytes - used_without,
            });
        }
        self.bytes_written += data.len() as u64;
        if let Some(slot) = self.entries.get_mut(key) {
            slot.clear();
            slot.extend_from_slice(data);
        } else {
            self.entries.insert(key.to_string(), data.to_vec());
        }
        Ok(())
    }

    /// Writes `key` but tears the write after `committed` bytes, modelling a
    /// power cut striking the FRAM write partway through.
    ///
    /// The cell is left with the first `committed` bytes of `data`, the old
    /// contents beyond that point (erased-cell `0xFF` where the entry grows),
    /// and — when the tear lands strictly inside the value — the boundary
    /// byte corrupted, as a partially programmed cell would read back.
    /// `committed >= data.len()` is a complete, untorn write. Only the bytes
    /// that reached the cell are metered.
    ///
    /// # Errors
    ///
    /// Returns [`McuError::NonvolatileFull`] under the same capacity rule as
    /// [`Self::write`]; the previous value of `key` is kept in that case.
    pub fn write_torn(&mut self, key: &str, data: &[u8], committed: usize) -> Result<()> {
        let existing = self.entries.get(key).map(Vec::len).unwrap_or(0);
        let used_without = self.used_bytes() - existing;
        if used_without + data.len() > self.capacity_bytes {
            return Err(McuError::NonvolatileFull {
                requested: data.len(),
                available: self.capacity_bytes - used_without,
            });
        }
        let committed = committed.min(data.len());
        self.bytes_written += committed as u64;
        if committed == data.len() {
            // The cut landed after the last byte: the write is durable.
            if let Some(slot) = self.entries.get_mut(key) {
                slot.clear();
                slot.extend_from_slice(data);
            } else {
                self.entries.insert(key.to_string(), data.to_vec());
            }
            return Ok(());
        }
        self.torn_writes += 1;
        let slot = self.entries.entry(key.to_string()).or_default();
        slot.resize(data.len(), 0xFF);
        slot[..committed].copy_from_slice(&data[..committed]);
        slot[committed] ^= 0xA5;
        Ok(())
    }

    /// Reads the value stored under `key`, if any.
    pub fn read(&self, key: &str) -> Option<&[u8]> {
        self.entries.get(key).map(Vec::as_slice)
    }

    /// Removes `key`, returning whether it existed.
    pub fn erase(&mut self, key: &str) -> bool {
        self.entries.remove(key).is_some()
    }

    /// Records a power failure. Non-volatile contents are untouched; the
    /// counter exists so experiments can report how many power cycles an
    /// execution needed.
    pub fn power_failure(&mut self) {
        self.power_failures += 1;
    }

    /// Clears all contents (a deliberate reset, not a power failure).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_erase_roundtrip() {
        let mut nv = NonvolatileMemory::new(64);
        nv.write("a", &[1, 2, 3]).unwrap();
        assert_eq!(nv.read("a"), Some(&[1, 2, 3][..]));
        assert_eq!(nv.used_bytes(), 3);
        assert!(nv.erase("a"));
        assert!(!nv.erase("a"));
        assert_eq!(nv.read("a"), None);
    }

    #[test]
    fn capacity_is_enforced_and_existing_value_preserved() {
        let mut nv = NonvolatileMemory::new(8);
        nv.write("k", &[0; 6]).unwrap();
        let err = nv.write("other", &[0; 4]).unwrap_err();
        assert!(matches!(err, McuError::NonvolatileFull { .. }));
        // Overwriting the same key with a size that fits after reclaiming is fine.
        nv.write("k", &[1; 8]).unwrap();
        assert_eq!(nv.read("k"), Some(&[1u8; 8][..]));
    }

    #[test]
    fn torn_write_leaves_prefix_and_corrupt_boundary() {
        let mut nv = NonvolatileMemory::new(64);
        nv.write("k", &[0x11; 8]).unwrap();
        nv.write_torn("k", &[0x22; 8], 3).unwrap();
        let cell = nv.read("k").unwrap();
        assert_eq!(&cell[..3], &[0x22; 3], "committed prefix holds new data");
        assert_eq!(cell[3], 0x11 ^ 0xA5, "boundary byte is a partially programmed cell");
        assert_eq!(&cell[4..], &[0x11; 4], "suffix still holds the old data");
        assert_eq!(nv.torn_writes(), 1);
        assert_eq!(nv.bytes_written(), 8 + 3, "only committed bytes are metered");

        // A tear at or past the length is a complete write.
        nv.write_torn("k", &[0x33; 8], 8).unwrap();
        assert_eq!(nv.read("k"), Some(&[0x33; 8][..]));
        assert_eq!(nv.torn_writes(), 1);

        // A torn write into a fresh, longer cell reads erased 0xFF beyond the
        // committed prefix (boundary byte corrupted).
        nv.write_torn("fresh", &[0x44; 4], 2).unwrap();
        assert_eq!(nv.read("fresh"), Some(&[0x44, 0x44, 0xFF ^ 0xA5, 0xFF][..]));
    }

    #[test]
    fn torn_write_respects_capacity() {
        let mut nv = NonvolatileMemory::new(8);
        nv.write("k", &[9; 6]).unwrap();
        let err = nv.write_torn("other", &[0; 4], 2).unwrap_err();
        assert!(matches!(err, McuError::NonvolatileFull { .. }));
        assert_eq!(nv.read("k"), Some(&[9; 6][..]));
        assert_eq!(nv.read("other"), None);
        assert!(nv.used_bytes() <= nv.capacity_bytes());
    }

    #[test]
    fn contents_survive_power_failures_and_writes_are_metered() {
        let mut nv = NonvolatileMemory::new(32);
        nv.write("progress", &[7]).unwrap();
        nv.power_failure();
        nv.power_failure();
        assert_eq!(nv.power_failures(), 2);
        assert_eq!(nv.read("progress"), Some(&[7][..]));
        assert_eq!(nv.bytes_written(), 1);
        nv.clear();
        assert_eq!(nv.read("progress"), None);
    }
}
