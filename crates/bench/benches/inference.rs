//! Criterion benches of the neural-network substrate: forward passes of the
//! multi-exit backbone, incremental continuation and compression mechanics.

use criterion::{criterion_group, criterion_main, Criterion};
use ie_compress::{apply::apply_policy, pruning, quantize, CompressionPolicy};
use ie_nn::spec::{lenet_multi_exit, tiny_multi_exit};
use ie_nn::MultiExitNetwork;
use ie_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_multi_exit_forward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let arch = lenet_multi_exit();
    let net = MultiExitNetwork::from_architecture(&arch, &mut rng).unwrap();
    let input = Tensor::randn(&mut rng, &[3, 32, 32], 0.0, 1.0);
    let mut group = c.benchmark_group("multi_exit_forward");
    group.sample_size(10);
    for exit in 0..3 {
        group.bench_function(format!("to_exit_{}", exit + 1), |b| {
            b.iter(|| black_box(net.forward_to_exit(&input, exit).unwrap().0.prediction))
        });
    }
    group.bench_function("incremental_exit1_to_exit3", |b| {
        b.iter(|| {
            let (_, state) = net.forward_to_exit(&input, 0).unwrap();
            black_box(net.continue_to_exit(&state, 2).unwrap().0.prediction)
        })
    });
    group.finish();

    // Planned (allocation-free) path against the allocating API on the same
    // network and input, so the two groups are directly comparable.
    let mut plan = net.execution_plan();
    let mut group = c.benchmark_group("multi_exit_forward_planned");
    group.sample_size(10);
    for exit in 0..3 {
        group.bench_function(format!("to_exit_{}", exit + 1), |b| {
            b.iter(|| {
                black_box(net.forward_to_exit_with(&mut plan, &input, exit).unwrap().prediction)
            })
        });
    }
    group.bench_function("incremental_exit1_to_exit3", |b| {
        b.iter(|| {
            net.forward_to_exit_with(&mut plan, &input, 0).unwrap();
            black_box(net.continue_to_exit_with(&mut plan, 2).unwrap().prediction)
        })
    });
    group.finish();

    // Batched path: 8 samples per widened pass through a reusable BatchPlan,
    // directly comparable to 8 iterations of the planned group above.
    let batch_inputs: Vec<Tensor> =
        (0..8).map(|_| Tensor::randn(&mut rng, &[3, 32, 32], 0.0, 1.0)).collect();
    let batch_refs: Vec<&Tensor> = batch_inputs.iter().collect();
    let mut batch_plan = net.batch_plan(8);
    let mut group = c.benchmark_group("multi_exit_forward_batched");
    group.sample_size(10);
    for exit in 0..3 {
        group.bench_function(format!("to_exit_{}_batch8", exit + 1), |b| {
            b.iter(|| {
                black_box(
                    net.forward_to_exit_batch_with(&mut batch_plan, &batch_refs, exit)
                        .unwrap()
                        .prediction(0),
                )
            })
        });
    }
    group.bench_function("incremental_exit1_to_exit3_batch8", |b| {
        b.iter(|| {
            net.forward_to_exit_batch_with(&mut batch_plan, &batch_refs, 0).unwrap();
            black_box(net.continue_to_exit_batch_with(&mut batch_plan, 2).unwrap().prediction(7))
        })
    });
    group.finish();
}

fn bench_training_step(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let arch = tiny_multi_exit(4);
    let mut net = MultiExitNetwork::from_architecture(&arch, &mut rng).unwrap();
    let input = Tensor::randn(&mut rng, &[1, 8, 8], 0.0, 1.0);
    c.bench_function("tiny_multi_exit_train_step", |b| {
        b.iter(|| {
            let loss = net.backward(&input, 1, &[1.0, 1.0]).unwrap();
            net.apply_gradients(0.01);
            black_box(loss)
        })
    });
}

fn bench_compression_mechanics(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let weights = Tensor::randn(&mut rng, &[64, 48, 5, 5], 0.0, 0.1);
    c.bench_function("channel_importance_64x48x5x5", |b| {
        b.iter(|| black_box(pruning::channel_importance(&weights).len()))
    });
    c.bench_function("quantize_weights_4bit_64x48x5x5", |b| {
        b.iter(|| black_box(quantize::quantize_weights(&weights, 4).mse))
    });
    let arch = lenet_multi_exit();
    let net = MultiExitNetwork::from_architecture(&arch, &mut rng).unwrap();
    let n = arch.compressible_layers().len();
    let policy = CompressionPolicy::uniform(n, 0.5, 4, 8).unwrap();
    c.bench_function("apply_policy_to_backbone", |b| {
        b.iter(|| {
            let mut clone = net.clone();
            apply_policy(&mut clone, &policy).unwrap();
            black_box(clone.parameter_count())
        })
    });
}

criterion_group!(
    name = inference;
    config = Criterion::default().sample_size(10);
    targets = bench_multi_exit_forward, bench_training_step, bench_compression_mechanics
);
criterion_main!(inference);
