//! Edge-case unit tests for the compression primitives: policy validation
//! boundaries and the extreme 1-bit quantization path.

use ie_compress::{quantize, CompressError, LayerPolicy};
use ie_tensor::Tensor;

#[test]
fn layer_policy_rejects_invalid_preserve_ratios() {
    for ratio in [0.0f32, 0.0499, -0.3, 1.0001, 2.0, f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
        let err = LayerPolicy::new(ratio, 8, 8).expect_err("ratio must be rejected");
        assert!(
            matches!(err, CompressError::InvalidPreserveRatio { .. }),
            "ratio {ratio} produced the wrong error: {err:?}"
        );
    }
    // The boundaries themselves are legal.
    assert!(LayerPolicy::new(0.05, 8, 8).is_ok());
    assert!(LayerPolicy::new(1.0, 8, 8).is_ok());
}

#[test]
fn layer_policy_rejects_invalid_bitwidths() {
    for (wbits, abits) in [(0u8, 8u8), (8, 0), (33, 8), (8, 33), (0, 0), (255, 255)] {
        let err = LayerPolicy::new(0.5, wbits, abits).expect_err("bitwidth must be rejected");
        assert!(
            matches!(err, CompressError::InvalidBitwidth { .. }),
            "bits ({wbits}, {abits}) produced the wrong error: {err:?}"
        );
    }
    // 1-bit and full-precision 32-bit are both inside the legal range.
    assert!(LayerPolicy::new(0.5, 1, 1).is_ok());
    assert!(LayerPolicy::new(0.5, 32, 32).is_ok());
}

#[test]
fn one_bit_weight_quantization_round_trip_is_sane() {
    let weights =
        Tensor::from_vec(vec![-0.8f32, -0.2, 0.1, 0.4, 0.9, -0.5], &[2, 3]).expect("valid shape");
    let q = quantize::quantize_weights(&weights, 1);

    // The 1-bit signed grid clamps to the levels {-s, 0, +s}; the round trip
    // must land every value on that grid.
    assert!(q.scale > 0.0, "scale must be positive, got {}", q.scale);
    for (i, &v) in q.values.as_slice().iter().enumerate() {
        let on_grid = v == 0.0 || (v.abs() - q.scale).abs() < 1e-6;
        assert!(on_grid, "value {i} ({v}) is off the 1-bit grid for scale {}", q.scale);
    }

    // The error is bounded by the input's energy (quantizing to {-s, 0} can
    // never be worse than the all-zero reconstruction the optimal scale
    // search also considers).
    let mean_sq: f32 =
        weights.as_slice().iter().map(|w| w * w).sum::<f32>() / weights.as_slice().len() as f32;
    assert!(q.mse <= mean_sq + 1e-6, "1-bit mse {} exceeds signal energy {}", q.mse, mean_sq);

    // Determinism: the same tensor quantizes to the same result.
    let q2 = quantize::quantize_weights(&weights, 1);
    assert_eq!(q, q2);
}

#[test]
fn one_bit_activation_quantization_stays_unsigned() {
    let acts = Tensor::from_vec(vec![0.0f32, 0.1, 0.4, 0.75, 1.2, 0.9], &[6]).expect("valid");
    let q = quantize::quantize_activations(&acts, 1);
    // Unsigned 1-bit range is {0, s}: nothing may go negative.
    for &v in q.values.as_slice() {
        assert!(v >= 0.0, "activation quantization produced a negative value {v}");
        let on_grid = v == 0.0 || (v - q.scale).abs() < 1e-6;
        assert!(on_grid, "value {v} is off the unsigned 1-bit grid for scale {}", q.scale);
    }
}
