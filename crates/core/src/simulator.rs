use crate::metrics::{EventOutcome, EventRecord, RecoveryStats, SimulationReport};
use crate::{
    ContinueContext, CoreError, DeployedModel, EventContext, EventFeedback, ExitChoice, ExitPolicy,
    ExperimentConfig, Result,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Volatile state of the analytic fault injector: its own RNG stream (so
/// enabling faults never perturbs the correctness/confidence draws), the cut
/// budget, and the recovery statistics accumulated so far.
struct FaultState {
    rng: StdRng,
    cut_probability: f64,
    max_cuts: u64,
    cuts: u64,
    stats: RecoveryStats,
}

impl FaultState {
    /// Draws whether a power cut strikes the current inference and, if so, at
    /// which fraction of its progress.
    fn draw_cut(&mut self) -> Option<f64> {
        if self.cuts >= self.max_cuts || !self.rng.gen_bool(self.cut_probability) {
            return None;
        }
        self.cuts += 1;
        Some(self.rng.gen::<f64>())
    }
}

/// Replays the configured event sequence over the configured power trace,
/// letting an [`ExitPolicy`] decide how each event is handled, and produces a
/// [`SimulationReport`].
///
/// Correctness of each processed event is sampled from the deployed model's
/// per-exit accuracy (the analytic counterpart of running the real compressed
/// network on a labelled input — see `DESIGN.md`); the result's confidence is
/// sampled so that wrong answers tend to look less confident, which is what
/// makes entropy-triggered incremental inference useful.
#[derive(Debug, Clone)]
pub struct EventLoopSimulator {
    config: ExperimentConfig,
}

impl EventLoopSimulator {
    /// Creates a simulator for the given experiment configuration.
    pub fn new(config: &ExperimentConfig) -> Self {
        EventLoopSimulator { config: config.clone() }
    }

    /// The experiment configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Samples a normalised confidence for a result that is `correct` or not:
    /// correct results are usually confident, wrong results usually are not.
    fn sample_confidence(rng: &mut StdRng, correct: bool) -> f64 {
        if correct {
            0.55 + 0.45 * rng.gen::<f64>()
        } else {
            0.75 * rng.gen::<f64>()
        }
    }

    /// Runs the simulation, handling every event at its arrival instant.
    ///
    /// Equivalent to [`Self::run_batched`] with a wake window of one event
    /// (and implemented as exactly that, so the two paths cannot drift).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an invalid configuration or
    /// [`CoreError::UnknownExit`] when the policy requests a non-existent exit.
    pub fn run(
        &self,
        model: &DeployedModel,
        policy: &mut dyn ExitPolicy,
    ) -> Result<SimulationReport> {
        self.run_batched(model, policy, 1)
    }

    /// Runs the simulation with events batched per wake window: the device
    /// sleeps while up to `window` events accumulate (harvesting energy the
    /// whole time), then wakes once and drains the pending batch in arrival
    /// order. This is the intermittent-serving analogue of batched inference
    /// — a wake-up is amortized over a whole window, and energy that arrives
    /// while events queue is available to the entire batch, so energy-bound
    /// traces typically miss fewer events at the cost of queueing latency
    /// (each record's `latency_s` includes the time the event waited for its
    /// window to close).
    ///
    /// A window of 1 reproduces [`Self::run`] exactly: every event is drained
    /// at its own arrival time with zero wait.
    ///
    /// A window of 0 is meaningless (a batch that can never hold an event)
    /// and is rejected up front rather than silently treated as 1 — the same
    /// contract the serving layer's `WindowConfig` enforces for its
    /// `max_batch`, so a zero window can never loop forever or drop events
    /// in either batching path.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an invalid configuration or a
    /// zero window, and [`CoreError::UnknownExit`] when the policy requests a
    /// non-existent exit.
    pub fn run_batched(
        &self,
        model: &DeployedModel,
        policy: &mut dyn ExitPolicy,
        window: usize,
    ) -> Result<SimulationReport> {
        if window == 0 {
            return Err(CoreError::InvalidConfig("wake window must be at least one event".into()));
        }
        self.config.validate()?;
        let mut rng = StdRng::seed_from_u64(self.config.simulation_seed);
        let mut faults = self.config.fault.map(|f| FaultState {
            rng: StdRng::seed_from_u64(f.seed),
            cut_probability: f.cut_probability,
            max_cuts: f.max_cuts,
            cuts: 0,
            stats: RecoveryStats::default(),
        });
        let mut sim = self.config.build_harvest_simulator();
        let events = self.config.build_events();
        let num_exits = model.num_exits();
        let exit_energy = model.exit_energies_mj();
        let mut records = Vec::with_capacity(events.len());

        // The per-exit cost/accuracy tables are fixed for the whole run, so
        // the context is built once and only its scalar fields change per
        // event — the event loop itself performs no per-event allocations.
        let mut ctx = EventContext {
            event_id: 0,
            time_s: 0.0,
            available_energy_mj: 0.0,
            capacity_mj: sim.storage().capacity_mj(),
            charging_efficiency: 0.0,
            exit_energy_mj: exit_energy.clone(),
            exit_accuracy: model.exit_accuracies(),
        };

        for batch in events.chunks(window) {
            // One wake-up per window: harvest up to the latest arrival before
            // any queued event is considered.
            let wake_time = batch.last().expect("chunks are non-empty").time_s;
            sim.advance_to(wake_time);
            for event in batch {
                ctx.event_id = event.id;
                ctx.time_s = event.time_s;
                ctx.available_energy_mj = sim.storage().level_mj();
                ctx.capacity_mj = sim.storage().capacity_mj();
                ctx.charging_efficiency = sim.charging_efficiency();
                let choice = policy.choose_exit(&ctx);

                let (record, feedback) = match choice {
                    ExitChoice::Skip => self.miss(event.id, event.time_s, None, 0.0),
                    ExitChoice::Exit(exit) => {
                        if exit >= num_exits {
                            return Err(CoreError::UnknownExit {
                                requested: exit,
                                available: num_exits,
                            });
                        }
                        if !sim.storage().can_supply(exit_energy[exit]) {
                            self.miss(event.id, event.time_s, Some(exit), 0.0)
                        } else {
                            self.process(
                                event.id,
                                event.time_s,
                                wake_time - event.time_s,
                                exit,
                                model,
                                policy,
                                &mut sim,
                                &mut rng,
                                &mut faults,
                            )?
                        }
                    }
                };
                policy.observe_outcome(&feedback);
                records.push(record);
            }
        }

        // Harvest the remainder of the trace so E_total covers the full fixed
        // energy budget of the environment.
        sim.advance_to(self.config.trace_duration_s);
        let total_harvested = self.config.total_harvestable_mj();
        let recovery = faults.map(|f| f.stats).unwrap_or_default();
        Ok(SimulationReport::from_records(records, num_exits, total_harvested)
            .with_recovery(recovery))
    }

    fn miss(
        &self,
        event_id: usize,
        time_s: f64,
        chosen: Option<usize>,
        energy_mj: f64,
    ) -> (EventRecord, EventFeedback) {
        (
            EventRecord {
                event_id,
                time_s,
                outcome: EventOutcome::Missed,
                latency_s: 0.0,
                energy_mj,
                flops: 0,
            },
            EventFeedback {
                event_id,
                chosen_exit: chosen,
                final_exit: None,
                expected_accuracy: 0.0,
                correct: false,
                energy_spent_mj: energy_mj,
                missed: true,
            },
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn process(
        &self,
        event_id: usize,
        time_s: f64,
        wait_s: f64,
        exit: usize,
        model: &DeployedModel,
        policy: &mut dyn ExitPolicy,
        sim: &mut ie_energy::HarvestSimulator,
        rng: &mut StdRng,
        faults: &mut Option<FaultState>,
    ) -> Result<(EventRecord, EventFeedback)> {
        let mut final_exit = exit;
        let mut energy = model.exit_energy_mj(exit);
        // Queueing delay (zero outside batched runs) counts towards the
        // event's end-to-end latency but does not occupy the device — the
        // harvester already advanced to the wake time, so only the inference
        // itself advances the trace further.
        let inference_latency = model.exit_latency_s(exit);
        let mut latency = wait_s + inference_latency;
        let mut flops = model.exit_flops(exit);

        // Injected power cut: the analytic path models whole-inference
        // retries (per-task recovery lives in `ie_mcu`'s executor) — the
        // partial work is lost, the device reboots, and the inference
        // restarts from scratch if the remaining charge still affords it.
        if let Some(fs) = faults.as_mut() {
            if let Some(fraction) = fs.draw_cut() {
                let partial = fraction * model.exit_energy_mj(exit);
                sim.consume(partial)?;
                sim.advance_by(fraction * inference_latency);
                fs.stats.recovered_boots += 1;
                fs.stats.wasted_reexecution_mj += partial;
                if !sim.storage().can_supply(model.exit_energy_mj(exit)) {
                    // The retry is unaffordable: the event is missed, with
                    // the destroyed partial work on its energy ledger.
                    return Ok(self.miss(event_id, time_s, Some(exit), partial));
                }
                energy += partial;
                latency += fraction * inference_latency;
            }
        }
        sim.consume(model.exit_energy_mj(exit))?;
        sim.advance_by(inference_latency);
        let mut correct = rng.gen::<f64>() < model.exit_accuracy(exit);
        let mut incremental = false;
        let confidence = Self::sample_confidence(rng, correct);

        // Incremental inference: only if enabled, a deeper exit exists and the
        // confidence fell below the configured threshold.
        if self.config.incremental_enabled
            && confidence < self.config.confidence_threshold
            && exit + 1 < model.num_exits()
        {
            let next_exit = exit + 1;
            let inc_energy = model.incremental_energy_mj(exit, next_exit)?;
            let cc = ContinueContext {
                event_id,
                current_exit: exit,
                next_exit,
                confidence,
                available_energy_mj: sim.storage().level_mj(),
                capacity_mj: sim.storage().capacity_mj(),
                incremental_energy_mj: inc_energy,
            };
            if policy.choose_continue(&cc) && sim.storage().can_supply(inc_energy) {
                sim.consume(inc_energy)?;
                let inc_latency = model.incremental_latency_s(exit, next_exit)?;
                sim.advance_by(inc_latency);
                energy += inc_energy;
                latency += inc_latency;
                flops += model.incremental_flops(exit, next_exit)?;
                final_exit = next_exit;
                incremental = true;
                // Conditional refinement: inputs the shallow exit already got
                // right stay right; inputs it got wrong are *hard*, so the
                // deeper exit only fixes the fraction that makes its
                // unconditional accuracy come out at `exit_accuracy(next)`.
                if !correct {
                    let a_shallow = model.exit_accuracy(exit);
                    let a_deep = model.exit_accuracy(next_exit);
                    let fix_probability =
                        ((a_deep - a_shallow) / (1.0 - a_shallow).max(1e-9)).clamp(0.0, 1.0);
                    correct = rng.gen::<f64>() < fix_probability;
                }
            }
        }

        Ok((
            EventRecord {
                event_id,
                time_s,
                outcome: EventOutcome::Processed { exit: final_exit, correct, incremental },
                latency_s: latency,
                energy_mj: energy,
                flops,
            },
            EventFeedback {
                event_id,
                chosen_exit: Some(exit),
                final_exit: Some(final_exit),
                expected_accuracy: model.exit_accuracy(final_exit),
                correct,
                energy_spent_mj: energy,
                missed: false,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{FixedExitPolicy, GreedyAffordablePolicy, ReserveMarginPolicy};

    fn config() -> ExperimentConfig {
        ExperimentConfig::small_test()
    }

    #[test]
    fn every_event_is_accounted_for() {
        let c = config();
        let model = DeployedModel::uncompressed_reference(&c).unwrap();
        let mut policy = GreedyAffordablePolicy::new();
        let report = EventLoopSimulator::new(&c).run(&model, &mut policy).unwrap();
        assert_eq!(report.total_events, c.num_events);
        assert_eq!(report.processed_events + report.missed_events, report.total_events);
        assert_eq!(report.exit_counts.iter().sum::<usize>(), report.processed_events);
        assert!(report.correct_events <= report.processed_events);
        assert!(report.total_harvested_mj > 0.0);
        assert!(report.total_consumed_mj <= report.total_harvested_mj + c.initial_energy_mj + 1e-6);
    }

    #[test]
    fn simulation_is_deterministic_for_a_seed() {
        let c = config();
        let model = DeployedModel::uncompressed_reference(&c).unwrap();
        let a =
            EventLoopSimulator::new(&c).run(&model, &mut GreedyAffordablePolicy::new()).unwrap();
        let b =
            EventLoopSimulator::new(&c).run(&model, &mut GreedyAffordablePolicy::new()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fixed_deep_exit_misses_more_events_than_greedy() {
        let c = config();
        let model = DeployedModel::uncompressed_reference(&c).unwrap();
        let greedy =
            EventLoopSimulator::new(&c).run(&model, &mut GreedyAffordablePolicy::new()).unwrap();
        let fixed_deep =
            EventLoopSimulator::new(&c).run(&model, &mut FixedExitPolicy::new(2)).unwrap();
        assert!(
            fixed_deep.missed_events >= greedy.missed_events,
            "always demanding the deepest exit can only miss more events ({} vs {})",
            fixed_deep.missed_events,
            greedy.missed_events
        );
        assert!(greedy.processed_events > 0);
    }

    #[test]
    fn disabling_incremental_inference_removes_continuations() {
        let mut c = config();
        c.incremental_enabled = false;
        let model = DeployedModel::uncompressed_reference(&c).unwrap();
        let report =
            EventLoopSimulator::new(&c).run(&model, &mut GreedyAffordablePolicy::new()).unwrap();
        assert_eq!(report.incremental_count, 0);
        c.incremental_enabled = true;
        let with_inc =
            EventLoopSimulator::new(&c).run(&model, &mut GreedyAffordablePolicy::new()).unwrap();
        // Greedy continues whenever affordable, so with the threshold at its
        // default some continuations should occur.
        assert!(with_inc.incremental_count >= report.incremental_count);
    }

    #[test]
    fn a_wake_window_of_one_reproduces_the_unbatched_run() {
        let c = config();
        let model = DeployedModel::uncompressed_reference(&c).unwrap();
        let plain =
            EventLoopSimulator::new(&c).run(&model, &mut GreedyAffordablePolicy::new()).unwrap();
        let windowed = EventLoopSimulator::new(&c)
            .run_batched(&model, &mut GreedyAffordablePolicy::new(), 1)
            .unwrap();
        assert_eq!(plain, windowed);
    }

    #[test]
    fn batched_windows_account_for_every_event_and_stay_deterministic() {
        let c = config();
        let model = DeployedModel::uncompressed_reference(&c).unwrap();
        for window in [2usize, 5, c.num_events] {
            let a = EventLoopSimulator::new(&c)
                .run_batched(&model, &mut GreedyAffordablePolicy::new(), window)
                .unwrap();
            let b = EventLoopSimulator::new(&c)
                .run_batched(&model, &mut GreedyAffordablePolicy::new(), window)
                .unwrap();
            assert_eq!(a, b, "window {window} must be deterministic");
            assert_eq!(a.total_events, c.num_events);
            assert_eq!(a.processed_events + a.missed_events, a.total_events);
            assert_eq!(a.exit_counts.iter().sum::<usize>(), a.processed_events);
            assert!(
                a.total_consumed_mj <= a.total_harvested_mj + c.initial_energy_mj + 1e-6,
                "window {window} cannot consume more than the budget"
            );
        }
    }

    #[test]
    fn queued_events_pay_their_wait_in_latency() {
        let c = config();
        let model = DeployedModel::uncompressed_reference(&c).unwrap();
        // One wake for the whole trace: every processed event except the last
        // waited for the window to close.
        let report = EventLoopSimulator::new(&c)
            .run_batched(&model, &mut FixedExitPolicy::new(0), c.num_events)
            .unwrap();
        assert!(report.processed_events > 0, "the drained batch must process something");
        let inference_latency = model.exit_latency_s(0);
        let waited = report
            .records
            .iter()
            .filter(|r| matches!(r.outcome, EventOutcome::Processed { .. }))
            .filter(|r| r.latency_s > inference_latency + 1e-12)
            .count();
        assert!(waited > 0, "queued events must include their wait in latency_s");
    }

    #[test]
    fn a_zero_wake_window_is_rejected() {
        let c = config();
        let model = DeployedModel::uncompressed_reference(&c).unwrap();
        let err = EventLoopSimulator::new(&c)
            .run_batched(&model, &mut GreedyAffordablePolicy::new(), 0)
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig(_)));
    }

    #[test]
    fn fault_injection_is_deterministic_and_accounted() {
        let mut c = config();
        c.fault = Some(crate::FaultConfig { seed: 11, cut_probability: 0.5, max_cuts: 40 });
        let model = DeployedModel::uncompressed_reference(&c).unwrap();
        let a =
            EventLoopSimulator::new(&c).run(&model, &mut GreedyAffordablePolicy::new()).unwrap();
        let b =
            EventLoopSimulator::new(&c).run(&model, &mut GreedyAffordablePolicy::new()).unwrap();
        assert_eq!(a, b, "faulted runs must be deterministic per seed");
        assert!(a.recovery.recovered_boots > 0, "p=0.5 over 60 events must cut something");
        assert!(a.recovery.recovered_boots <= 40);
        assert!(a.recovery.wasted_reexecution_mj >= 0.0);
        assert_eq!(a.total_events, c.num_events);
        assert_eq!(a.processed_events + a.missed_events, a.total_events);
        assert!(a.total_consumed_mj <= a.total_harvested_mj + c.initial_energy_mj + 1e-6);
    }

    #[test]
    fn fault_injection_never_perturbs_the_fault_free_stream() {
        // The cut RNG is separate from the correctness RNG, so a zero-cut
        // fault config must reproduce the fault-free run bit-for-bit.
        let c = config();
        let mut zero_cut = config();
        zero_cut.fault = Some(crate::FaultConfig { seed: 3, cut_probability: 0.0, max_cuts: 64 });
        let model = DeployedModel::uncompressed_reference(&c).unwrap();
        let free =
            EventLoopSimulator::new(&c).run(&model, &mut GreedyAffordablePolicy::new()).unwrap();
        let zero = EventLoopSimulator::new(&zero_cut)
            .run(&model, &mut GreedyAffordablePolicy::new())
            .unwrap();
        assert_eq!(free, zero);
        assert_eq!(free.recovery, crate::RecoveryStats::default());
    }

    #[test]
    fn injected_cuts_cost_energy_or_events() {
        let c = config();
        let mut faulty = config();
        faulty.fault = Some(crate::FaultConfig { seed: 5, cut_probability: 0.8, max_cuts: 200 });
        let model = DeployedModel::uncompressed_reference(&c).unwrap();
        let free =
            EventLoopSimulator::new(&c).run(&model, &mut GreedyAffordablePolicy::new()).unwrap();
        let hit = EventLoopSimulator::new(&faulty)
            .run(&model, &mut GreedyAffordablePolicy::new())
            .unwrap();
        assert!(hit.recovery.recovered_boots > 0);
        // Re-execution burns budget: the faulted run can only do worse or
        // equal on correct events, and its waste shows up somewhere — fewer
        // correct events or more energy consumed.
        assert!(
            hit.correct_events <= free.correct_events
                || hit.total_consumed_mj > free.total_consumed_mj
        );
    }

    #[test]
    fn unknown_exit_choice_is_an_error() {
        struct Bogus;
        impl ExitPolicy for Bogus {
            fn choose_exit(&mut self, _ctx: &EventContext) -> ExitChoice {
                ExitChoice::Exit(99)
            }
        }
        let c = config();
        let model = DeployedModel::uncompressed_reference(&c).unwrap();
        let err = EventLoopSimulator::new(&c).run(&model, &mut Bogus).unwrap_err();
        assert!(matches!(err, CoreError::UnknownExit { requested: 99, .. }));
    }

    #[test]
    fn reserve_policy_shifts_selection_towards_cheap_exits() {
        let c = config();
        let model = DeployedModel::uncompressed_reference(&c).unwrap();
        let greedy =
            EventLoopSimulator::new(&c).run(&model, &mut GreedyAffordablePolicy::new()).unwrap();
        let reserved =
            EventLoopSimulator::new(&c).run(&model, &mut ReserveMarginPolicy::new(0.6)).unwrap();
        // The reserve policy must use exit 0 at least as often as greedy does.
        assert!(reserved.exit_counts[0] >= greedy.exit_counts[0]);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut c = config();
        c.num_events = 0;
        let model = DeployedModel::uncompressed_reference(&config()).unwrap();
        assert!(EventLoopSimulator::new(&c)
            .run(&model, &mut GreedyAffordablePolicy::new())
            .is_err());
    }
}
