//! The IEpmJ figure of merit and per-run statistics.
//!
//! IEpmJ (*Interesting Events per milliJoule*, Eq. 1 of the paper) is the
//! number of events classified correctly per millijoule of harvested energy.
//! Because the harvested energy and the event count are fixed by the
//! environment, maximising IEpmJ is equivalent to maximising the average
//! accuracy over **all** events, where missed events count as incorrect.

/// What happened to one event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventOutcome {
    /// The event could not be processed (insufficient energy before it became
    /// obsolete).
    Missed,
    /// The event was processed.
    Processed {
        /// The exit that produced the final result.
        exit: usize,
        /// Whether the classification was correct.
        correct: bool,
        /// Whether an incremental inference to a deeper exit was performed.
        incremental: bool,
    },
}

impl EventOutcome {
    /// Returns `true` when the event was classified correctly.
    pub fn is_correct(&self) -> bool {
        matches!(self, EventOutcome::Processed { correct: true, .. })
    }

    /// Returns `true` when the event was processed at all.
    pub fn is_processed(&self) -> bool {
        matches!(self, EventOutcome::Processed { .. })
    }
}

/// Per-event record produced by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Event identifier.
    pub event_id: usize,
    /// Arrival time, seconds.
    pub time_s: f64,
    /// Outcome of the event.
    pub outcome: EventOutcome,
    /// Latency from arrival to result, seconds (0 for missed events).
    pub latency_s: f64,
    /// Energy drawn for this event, millijoules.
    pub energy_mj: f64,
    /// FLOPs executed for this event.
    pub flops: u64,
}

/// Crash-recovery statistics aggregated over a run.
///
/// All-zero for fault-free runs; populated when the configuration enables
/// power-cut injection ([`crate::FaultConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RecoveryStats {
    /// Boots that recovered volatile state from NV after an injected cut.
    pub recovered_boots: u64,
    /// Checkpoint NV writes torn mid-write by a power cut.
    pub torn_writes: u64,
    /// Energy spent on work a cut destroyed and that had to re-execute,
    /// millijoules.
    pub wasted_reexecution_mj: f64,
}

impl RecoveryStats {
    /// Accumulates another set of stats (e.g. one per event) into this one.
    pub fn absorb(&mut self, other: &RecoveryStats) {
        self.recovered_boots += other.recovered_boots;
        self.torn_writes += other.torn_writes;
        self.wasted_reexecution_mj += other.wasted_reexecution_mj;
    }
}

/// Aggregated statistics of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationReport {
    /// Number of events in the run.
    pub total_events: usize,
    /// Events that produced a result.
    pub processed_events: usize,
    /// Events missed due to insufficient energy.
    pub missed_events: usize,
    /// Events classified correctly.
    pub correct_events: usize,
    /// Number of processed events whose final result came from each exit.
    pub exit_counts: Vec<usize>,
    /// Number of events that used an incremental inference.
    pub incremental_count: usize,
    /// Total energy offered by the harvester over the full trace, millijoules.
    pub total_harvested_mj: f64,
    /// Total energy drawn for inference, millijoules.
    pub total_consumed_mj: f64,
    /// Sum of per-event latencies over processed events, seconds.
    pub total_latency_s: f64,
    /// Total FLOPs executed.
    pub total_flops: u64,
    /// Per-event records (in arrival order).
    pub records: Vec<EventRecord>,
    /// Crash-recovery statistics (all-zero when fault injection is off).
    pub recovery: RecoveryStats,
}

impl SimulationReport {
    /// Builds the aggregate report from per-event records.
    pub fn from_records(
        records: Vec<EventRecord>,
        num_exits: usize,
        total_harvested_mj: f64,
    ) -> Self {
        let mut exit_counts = vec![0usize; num_exits];
        let mut processed = 0;
        let mut correct = 0;
        let mut incremental = 0;
        let mut total_latency = 0.0;
        let mut total_energy = 0.0;
        let mut total_flops = 0u64;
        for r in &records {
            total_energy += r.energy_mj;
            total_flops += r.flops;
            match r.outcome {
                EventOutcome::Missed => {}
                EventOutcome::Processed { exit, correct: ok, incremental: inc } => {
                    processed += 1;
                    total_latency += r.latency_s;
                    if exit < num_exits {
                        exit_counts[exit] += 1;
                    }
                    if ok {
                        correct += 1;
                    }
                    if inc {
                        incremental += 1;
                    }
                }
            }
        }
        SimulationReport {
            total_events: records.len(),
            processed_events: processed,
            missed_events: records.len() - processed,
            correct_events: correct,
            exit_counts,
            incremental_count: incremental,
            total_harvested_mj,
            total_consumed_mj: total_energy,
            total_latency_s: total_latency,
            total_flops,
            records,
            recovery: RecoveryStats::default(),
        }
    }

    /// Attaches crash-recovery statistics to the report.
    pub fn with_recovery(mut self, recovery: RecoveryStats) -> Self {
        self.recovery = recovery;
        self
    }

    /// Interesting events per millijoule of harvested energy (Eq. 1).
    pub fn ie_pmj(&self) -> f64 {
        if self.total_harvested_mj <= 0.0 {
            0.0
        } else {
            self.correct_events as f64 / self.total_harvested_mj
        }
    }

    /// Average accuracy over **all** events (missed events count as wrong) —
    /// the quantity IEpmJ is equivalent to.
    pub fn accuracy_all_events(&self) -> f64 {
        if self.total_events == 0 {
            0.0
        } else {
            self.correct_events as f64 / self.total_events as f64
        }
    }

    /// Average accuracy over the processed events only.
    pub fn accuracy_processed_events(&self) -> f64 {
        if self.processed_events == 0 {
            0.0
        } else {
            self.correct_events as f64 / self.processed_events as f64
        }
    }

    /// Mean per-event latency (arrival → result) over processed events,
    /// seconds.
    pub fn mean_latency_s(&self) -> f64 {
        if self.processed_events == 0 {
            0.0
        } else {
            self.total_latency_s / self.processed_events as f64
        }
    }

    /// Mean FLOPs per processed event — the paper's per-inference latency
    /// proxy.
    pub fn mean_flops_per_inference(&self) -> f64 {
        if self.processed_events == 0 {
            0.0
        } else {
            self.total_flops as f64 / self.processed_events as f64
        }
    }

    /// Fraction of *all* events whose final result came from each exit.
    pub fn exit_fractions(&self) -> Vec<f64> {
        if self.total_events == 0 {
            return vec![0.0; self.exit_counts.len()];
        }
        self.exit_counts.iter().map(|&c| c as f64 / self.total_events as f64).collect()
    }

    /// Fraction of all events that were missed.
    pub fn missed_fraction(&self) -> f64 {
        if self.total_events == 0 {
            0.0
        } else {
            self.missed_events as f64 / self.total_events as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(
        id: usize,
        outcome: EventOutcome,
        latency: f64,
        energy: f64,
        flops: u64,
    ) -> EventRecord {
        EventRecord {
            event_id: id,
            time_s: id as f64,
            outcome,
            latency_s: latency,
            energy_mj: energy,
            flops,
        }
    }

    fn sample_report() -> SimulationReport {
        let records = vec![
            record(
                0,
                EventOutcome::Processed { exit: 0, correct: true, incremental: false },
                1.0,
                0.2,
                100,
            ),
            record(
                1,
                EventOutcome::Processed { exit: 2, correct: false, incremental: true },
                5.0,
                1.5,
                900,
            ),
            record(2, EventOutcome::Missed, 0.0, 0.0, 0),
            record(
                3,
                EventOutcome::Processed { exit: 0, correct: true, incremental: false },
                1.0,
                0.2,
                100,
            ),
        ];
        SimulationReport::from_records(records, 3, 10.0)
    }

    #[test]
    fn aggregation_counts_are_consistent() {
        let r = sample_report();
        assert_eq!(r.total_events, 4);
        assert_eq!(r.processed_events, 3);
        assert_eq!(r.missed_events, 1);
        assert_eq!(r.correct_events, 2);
        assert_eq!(r.exit_counts, vec![2, 0, 1]);
        assert_eq!(r.incremental_count, 1);
        assert_eq!(r.total_flops, 1100);
        assert!((r.total_consumed_mj - 1.9).abs() < 1e-12);
        assert_eq!(r.processed_events + r.missed_events, r.total_events);
    }

    #[test]
    fn metric_formulas_match_definitions() {
        let r = sample_report();
        assert!((r.ie_pmj() - 0.2).abs() < 1e-12, "2 correct / 10 mJ");
        assert!((r.accuracy_all_events() - 0.5).abs() < 1e-12);
        assert!((r.accuracy_processed_events() - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.mean_latency_s() - 7.0 / 3.0).abs() < 1e-12);
        assert!((r.mean_flops_per_inference() - 1100.0 / 3.0).abs() < 1e-9);
        assert!((r.missed_fraction() - 0.25).abs() < 1e-12);
        let fr = r.exit_fractions();
        assert!((fr[0] - 0.5).abs() < 1e-12);
        assert!((fr[2] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_all_zeroes() {
        let r = SimulationReport::from_records(Vec::new(), 3, 0.0);
        assert_eq!(r.total_events, 0);
        assert_eq!(r.ie_pmj(), 0.0);
        assert_eq!(r.accuracy_all_events(), 0.0);
        assert_eq!(r.accuracy_processed_events(), 0.0);
        assert_eq!(r.mean_latency_s(), 0.0);
        assert_eq!(r.mean_flops_per_inference(), 0.0);
        assert_eq!(r.missed_fraction(), 0.0);
    }

    #[test]
    fn ie_pmj_equals_scaled_all_event_accuracy() {
        // IEpmJ = N / E_total * mean accuracy — the equivalence the paper uses.
        let r = sample_report();
        let lhs = r.ie_pmj();
        let rhs = r.total_events as f64 / r.total_harvested_mj * r.accuracy_all_events();
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn recovery_stats_default_zero_and_absorb() {
        let r = sample_report();
        assert_eq!(r.recovery, RecoveryStats::default());
        let mut total = RecoveryStats::default();
        total.absorb(&RecoveryStats {
            recovered_boots: 2,
            torn_writes: 1,
            wasted_reexecution_mj: 0.5,
        });
        total.absorb(&RecoveryStats {
            recovered_boots: 3,
            torn_writes: 0,
            wasted_reexecution_mj: 0.25,
        });
        let r = sample_report().with_recovery(total);
        assert_eq!(r.recovery.recovered_boots, 5);
        assert_eq!(r.recovery.torn_writes, 1);
        assert!((r.recovery.wasted_reexecution_mj - 0.75).abs() < 1e-12);
    }

    #[test]
    fn outcome_helpers() {
        assert!(EventOutcome::Processed { exit: 0, correct: true, incremental: false }.is_correct());
        assert!(!EventOutcome::Missed.is_correct());
        assert!(!EventOutcome::Missed.is_processed());
    }
}
