use rand::Rng;
use std::collections::VecDeque;

/// A bounded experience-replay buffer.
///
/// Oldest experiences are evicted when the capacity is reached; sampling is
/// uniform with replacement, which is all DDPG needs at this scale.
///
/// # Example
///
/// ```
/// use ie_rl::ReplayBuffer;
/// use rand::SeedableRng;
///
/// let mut buffer = ReplayBuffer::new(8);
/// for i in 0..20 {
///     buffer.push(i);
/// }
/// assert_eq!(buffer.len(), 8);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// assert_eq!(buffer.sample(&mut rng, 4).len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayBuffer<T> {
    capacity: usize,
    items: VecDeque<T>,
}

impl<T: Clone> ReplayBuffer<T> {
    /// Creates a buffer holding at most `capacity` experiences.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay capacity must be non-zero");
        ReplayBuffer { capacity, items: VecDeque::with_capacity(capacity) }
    }

    /// Maximum number of experiences retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of experiences currently stored.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` when no experiences are stored.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Adds an experience, evicting the oldest one if the buffer is full.
    pub fn push(&mut self, item: T) {
        if self.items.len() == self.capacity {
            self.items.pop_front();
        }
        self.items.push_back(item);
    }

    /// Uniformly samples `count` experiences with replacement. Returns an
    /// empty vector when the buffer is empty.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<T> {
        if self.items.is_empty() {
            return Vec::new();
        }
        (0..count).map(|_| self.items[rng.gen_range(0..self.items.len())].clone()).collect()
    }

    /// Iterates over the stored experiences, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Removes all stored experiences.
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn eviction_keeps_the_newest_items() {
        let mut b = ReplayBuffer::new(3);
        for i in 0..5 {
            b.push(i);
        }
        let items: Vec<i32> = b.iter().copied().collect();
        assert_eq!(items, vec![2, 3, 4]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.capacity(), 3);
    }

    #[test]
    fn sampling_only_returns_stored_items() {
        let mut b = ReplayBuffer::new(10);
        for i in 0..10 {
            b.push(i * 10);
        }
        let mut rng = StdRng::seed_from_u64(2);
        let sample = b.sample(&mut rng, 100);
        assert_eq!(sample.len(), 100);
        assert!(sample.iter().all(|x| x % 10 == 0 && *x < 100));
    }

    #[test]
    fn empty_buffer_samples_nothing() {
        let b: ReplayBuffer<u8> = ReplayBuffer::new(4);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(b.sample(&mut rng, 5).is_empty());
        assert!(b.is_empty());
    }

    #[test]
    fn clear_empties_the_buffer() {
        let mut b = ReplayBuffer::new(4);
        b.push(1);
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    #[should_panic(expected = "replay capacity must be non-zero")]
    fn zero_capacity_panics() {
        let _: ReplayBuffer<u8> = ReplayBuffer::new(0);
    }
}
