//! Finite-difference gradient checks for the layer backward passes.
//!
//! Both layers under test are piecewise **linear** in every argument
//! (convolution exactly, max-pooling away from window ties), so the central
//! difference `(L(θ+ε) − L(θ−ε)) / 2ε` of the scalar probe loss
//! `L = Σ_i r_i·y_i` equals the analytic directional derivative up to `f32`
//! rounding — no truncation-error tolerance games needed. Inputs are drawn so
//! no max-pool window has two entries within `2ε` of each other, which keeps
//! the argmax (and therefore the subgradient) stable across the probe.

use ie_nn::{Conv2d, MaxPool2d};
use ie_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Scalar probe loss `Σ r·y` in f64 to keep the reduction itself exact.
fn probe(y: &Tensor, r: &[f32]) -> f64 {
    y.as_slice().iter().zip(r).map(|(&v, &c)| v as f64 * c as f64).sum()
}

/// Central finite difference of `f` when entry `i` of `data` moves by `eps`.
fn central_diff(data: &mut [f32], i: usize, eps: f32, mut f: impl FnMut(&[f32]) -> f64) -> f64 {
    let saved = data[i];
    data[i] = saved + eps;
    let up = f(data);
    data[i] = saved - eps;
    let down = f(data);
    data[i] = saved;
    (up - down) / (2.0 * eps as f64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Conv2d's accumulated weight/bias gradients and returned input gradient
    /// all match central finite differences of the probe loss.
    #[test]
    fn conv_backward_matches_finite_differences(
        seed in 0u64..1_000,
        in_channels in 1usize..=2,
        out_channels in 1usize..=2,
        kernel in 2usize..=3,
        padding in 0usize..=1,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (h, w) = (4usize, 4usize);
        let mut conv = Conv2d::new(&mut rng, in_channels, out_channels, kernel, 1, padding, h, w);
        let x = Tensor::randn(&mut rng, &[in_channels, h, w], 0.0, 1.0);
        let y = conv.forward(&x).unwrap();
        let r: Vec<f32> =
            (0..y.len()).map(|_| Tensor::randn(&mut rng, &[1], 0.0, 1.0).as_slice()[0]).collect();
        let go = Tensor::from_vec(r.clone(), y.dims()).unwrap();

        let dx = conv.backward(&x, &go).unwrap();

        // The probe loss is linear in weights, bias and input, so a modest
        // epsilon gives an exact derivative up to f32 rounding noise.
        let eps = 1e-2f32;
        let tol = 2e-2f64;

        let mut weights = conv.weight().as_slice().to_vec();
        for i in 0..weights.len() {
            let num = central_diff(&mut weights, i, eps, |ws| {
                let mut probe_conv = conv.clone();
                probe_conv.weight_mut().as_mut_slice().copy_from_slice(ws);
                probe(&probe_conv.forward(&x).unwrap(), &r)
            });
            let ana = conv.grad_weight().as_slice()[i] as f64;
            prop_assert!(
                (num - ana).abs() <= tol * ana.abs().max(1.0),
                "dW[{i}]: finite-difference {num} vs analytic {ana}"
            );
        }

        let mut bias = conv.bias().as_slice().to_vec();
        for i in 0..bias.len() {
            let num = central_diff(&mut bias, i, eps, |bs| {
                let mut probe_conv = conv.clone();
                probe_conv.bias_mut().as_mut_slice().copy_from_slice(bs);
                probe(&probe_conv.forward(&x).unwrap(), &r)
            });
            let ana = conv.grad_bias().as_slice()[i] as f64;
            prop_assert!(
                (num - ana).abs() <= tol * ana.abs().max(1.0),
                "dB[{i}]: finite-difference {num} vs analytic {ana}"
            );
        }

        let mut input = x.as_slice().to_vec();
        for i in 0..input.len() {
            let num = central_diff(&mut input, i, eps, |xs| {
                let probe_x = Tensor::from_vec(xs.to_vec(), x.dims()).unwrap();
                probe(&conv.forward(&probe_x).unwrap(), &r)
            });
            let ana = dx.as_slice()[i] as f64;
            prop_assert!(
                (num - ana).abs() <= tol * ana.abs().max(1.0),
                "dX[{i}]: finite-difference {num} vs analytic {ana}"
            );
        }
    }

    /// Max-pool's input gradient matches central finite differences when the
    /// probe stays on one linear piece (every window's values separated by
    /// more than `2ε`).
    #[test]
    fn maxpool_backward_matches_finite_differences(
        seed in 0u64..1_000,
        channels in 1usize..=3,
        size in 2usize..=3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (h, w) = (size * 2, size * 2);
        let pool = MaxPool2d::new(size);
        // Distinct, well-separated values: a random permutation of a grid
        // with spacing 0.1 ≫ 2ε, so no perturbation can change an argmax.
        let n = channels * h * w;
        let mut values: Vec<f32> = (0..n).map(|i| i as f32 * 0.1).collect();
        for i in (1..n).rev() {
            let j = rand::Rng::gen_range(&mut rng, 0..=i);
            values.swap(i, j);
        }
        let x = Tensor::from_vec(values.clone(), &[channels, h, w]).unwrap();
        let y = pool.forward(&x).unwrap();
        let r: Vec<f32> =
            (0..y.len()).map(|_| Tensor::randn(&mut rng, &[1], 0.0, 1.0).as_slice()[0]).collect();
        let go = Tensor::from_vec(r.clone(), y.dims()).unwrap();

        let dx = pool.backward(&x, &go).unwrap();

        let eps = 1e-3f32;
        for i in 0..values.len() {
            let num = central_diff(&mut values, i, eps, |xs| {
                let probe_x = Tensor::from_vec(xs.to_vec(), x.dims()).unwrap();
                probe(&pool.forward(&probe_x).unwrap(), &r)
            });
            let ana = dx.as_slice()[i] as f64;
            prop_assert!(
                (num - ana).abs() <= 1e-3 * ana.abs().max(1.0),
                "dX[{i}]: finite-difference {num} vs analytic {ana}"
            );
        }
    }
}
