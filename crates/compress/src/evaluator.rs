use crate::quantize::storage_bytes;
use crate::{CompressionPolicy, ExitAccuracyEstimator, Result};
use ie_nn::spec::{CompressibleLayer, MultiExitArchitecture};

/// What a compression policy does to the deployed model: per-exit FLOPs and
/// accuracy, the total network FLOPs (`F_model` of Eq. 8) and the weight
/// storage footprint (`S_model`).
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedProfile {
    /// FLOPs to reach each exit under the policy.
    pub exit_flops: Vec<u64>,
    /// FLOPs of each exit's private branch under the policy (used to price
    /// incremental inference: continuing from exit `i` to `j` costs
    /// `exit_flops[j] − (exit_flops[i] − branch_flops[i])`).
    pub branch_flops: Vec<u64>,
    /// Predicted accuracy of each exit under the policy, in `[0, 1]`.
    pub exit_accuracy: Vec<f64>,
    /// FLOPs of the whole network (every unique layer once) under the policy.
    pub total_flops: u64,
    /// Weight storage footprint in bytes under the policy.
    pub model_size_bytes: u64,
}

impl CompressedProfile {
    /// Number of exits.
    pub fn num_exits(&self) -> usize {
        self.exit_flops.len()
    }

    /// Accuracy-weighted by an exit-selection distribution: `Σ p_i · Acc_i`
    /// (the `R_acc` reward of Eq. 10).
    ///
    /// # Panics
    ///
    /// Panics if `exit_probability` has a different length than the exits.
    pub fn expected_accuracy(&self, exit_probability: &[f64]) -> f64 {
        assert_eq!(exit_probability.len(), self.exit_accuracy.len(), "probability length mismatch");
        self.exit_accuracy.iter().zip(exit_probability).map(|(a, p)| a * p).sum()
    }

    /// Additional FLOPs needed to continue an inference that stopped at
    /// `from_exit` until the strictly deeper `to_exit` (the shared trunk up to
    /// `from_exit` is reused, the deeper branch runs from scratch).
    ///
    /// Returns `None` when `to_exit` is not strictly deeper or either exit is
    /// out of range.
    pub fn incremental_flops(&self, from_exit: usize, to_exit: usize) -> Option<u64> {
        if to_exit <= from_exit || to_exit >= self.exit_flops.len() {
            return None;
        }
        let shared_trunk = self.exit_flops[from_exit].saturating_sub(self.branch_flops[from_exit]);
        Some(self.exit_flops[to_exit].saturating_sub(shared_trunk))
    }
}

/// Evaluates compression policies against an architecture: cost comes from the
/// layer descriptions, accuracy from an [`ExitAccuracyEstimator`].
pub struct PolicyEvaluator {
    layers: Vec<CompressibleLayer>,
    estimator: Box<dyn ExitAccuracyEstimator + Send + Sync>,
    num_exits: usize,
}

impl std::fmt::Debug for PolicyEvaluator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolicyEvaluator")
            .field("layers", &self.layers.len())
            .field("num_exits", &self.num_exits)
            .finish()
    }
}

impl PolicyEvaluator {
    /// Creates an evaluator for `arch` using the given accuracy estimator.
    pub fn new<E>(arch: &MultiExitArchitecture, estimator: E) -> Self
    where
        E: ExitAccuracyEstimator + Send + Sync + 'static,
    {
        PolicyEvaluator {
            layers: arch.compressible_layers(),
            estimator: Box::new(estimator),
            num_exits: arch.num_exits(),
        }
    }

    /// The compressible layers of the architecture, in canonical order.
    pub fn layers(&self) -> &[CompressibleLayer] {
        &self.layers
    }

    /// Number of exits.
    pub fn num_exits(&self) -> usize {
        self.num_exits
    }

    /// Evaluates a policy.
    ///
    /// Allocating wrapper over [`Self::evaluate_into`].
    ///
    /// # Errors
    ///
    /// Returns a length-mismatch error when the policy does not cover every
    /// compressible layer, or whatever the accuracy estimator reports.
    pub fn evaluate(&self, policy: &CompressionPolicy) -> Result<CompressedProfile> {
        let mut profile = CompressedProfile {
            exit_flops: Vec::new(),
            branch_flops: Vec::new(),
            exit_accuracy: Vec::new(),
            total_flops: 0,
            model_size_bytes: 0,
        };
        self.evaluate_into(policy, &mut profile)?;
        Ok(profile)
    }

    /// Evaluates a policy into an existing profile, reusing its buffers.
    ///
    /// The compression search evaluates thousands of candidate policies; with
    /// a reused profile the cost accounting allocates nothing per candidate
    /// (the accuracy estimator may still allocate internally, e.g. the
    /// calibrated model returns one `Vec` of per-exit accuracies).
    ///
    /// # Errors
    ///
    /// Returns a length-mismatch error when the policy does not cover every
    /// compressible layer, or whatever the accuracy estimator reports. On
    /// error the profile contents are unspecified.
    pub fn evaluate_into(
        &self,
        policy: &CompressionPolicy,
        profile: &mut CompressedProfile,
    ) -> Result<()> {
        self.account_costs(policy, profile)?;
        profile.exit_accuracy = self.estimator.exit_accuracy(&self.layers, policy)?;
        Ok(())
    }

    /// Evaluates a policy with the batched, sharded accuracy path: the
    /// estimator streams its calibration set through one
    /// [`ie_nn::BatchPlan`] per worker thread (see
    /// [`crate::ExitAccuracyEstimator::exit_accuracy_batched`]). Results are
    /// identical to [`Self::evaluate`] for every batch size and thread count;
    /// whole-policy scoring just gets cheaper, which is what the compression
    /// search loop cares about.
    ///
    /// Uses the default evaluation batch
    /// ([`ie_nn::train::DEFAULT_EVAL_BATCH`]) and the environment-driven
    /// worker count ([`ie_nn::train::eval_threads`], `IE_EVAL_THREADS`).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Self::evaluate`].
    pub fn evaluate_batched(&self, policy: &CompressionPolicy) -> Result<CompressedProfile> {
        self.evaluate_batched_with(
            policy,
            ie_nn::train::DEFAULT_EVAL_BATCH,
            ie_nn::train::eval_threads(),
        )
    }

    /// [`Self::evaluate_batched`] with explicit batch size and worker count.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Self::evaluate`].
    pub fn evaluate_batched_with(
        &self,
        policy: &CompressionPolicy,
        batch: usize,
        threads: usize,
    ) -> Result<CompressedProfile> {
        let mut profile = CompressedProfile {
            exit_flops: Vec::new(),
            branch_flops: Vec::new(),
            exit_accuracy: Vec::new(),
            total_flops: 0,
            model_size_bytes: 0,
        };
        self.evaluate_batched_into(policy, batch, threads, &mut profile)?;
        Ok(profile)
    }

    /// Batched counterpart of [`Self::evaluate_into`], reusing the profile's
    /// buffers across candidates.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Self::evaluate_into`].
    pub fn evaluate_batched_into(
        &self,
        policy: &CompressionPolicy,
        batch: usize,
        threads: usize,
        profile: &mut CompressedProfile,
    ) -> Result<()> {
        self.account_costs(policy, profile)?;
        profile.exit_accuracy =
            self.estimator.exit_accuracy_batched(&self.layers, policy, batch, threads)?;
        Ok(())
    }

    /// Evaluates a policy with the **integer** execution backend: the
    /// accuracy estimate comes from running the compressed network through
    /// the quantized plans (i8/i16 GEMM + requantization epilogues, see
    /// [`crate::ExitAccuracyEstimator::exit_accuracy_quantized`]), so the
    /// search's signal reflects MCU-class integer arithmetic — including
    /// activation quantization, which the fake-quant `f32` round trip of
    /// [`Self::evaluate`] does not model. Cost accounting (FLOPs/size) is
    /// identical to the other paths; analytical estimators fall back to the
    /// plain accuracy model.
    ///
    /// Uses the default evaluation batch and the environment-driven worker
    /// count, like [`Self::evaluate_batched`].
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Self::evaluate`], plus
    /// [`crate::CompressError::EmptyCalibrationSet`] when an empirical
    /// estimator has no samples to calibrate on.
    pub fn evaluate_quantized(&self, policy: &CompressionPolicy) -> Result<CompressedProfile> {
        self.evaluate_quantized_with(
            policy,
            ie_nn::train::DEFAULT_EVAL_BATCH,
            ie_nn::train::eval_threads(),
        )
    }

    /// [`Self::evaluate_quantized`] with explicit batch size and worker count.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Self::evaluate_quantized`].
    pub fn evaluate_quantized_with(
        &self,
        policy: &CompressionPolicy,
        batch: usize,
        threads: usize,
    ) -> Result<CompressedProfile> {
        let mut profile = CompressedProfile {
            exit_flops: Vec::new(),
            branch_flops: Vec::new(),
            exit_accuracy: Vec::new(),
            total_flops: 0,
            model_size_bytes: 0,
        };
        self.evaluate_quantized_into(policy, batch, threads, &mut profile)?;
        Ok(profile)
    }

    /// Integer-backend counterpart of [`Self::evaluate_into`], reusing the
    /// profile's buffers across candidates.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Self::evaluate_quantized`].
    pub fn evaluate_quantized_into(
        &self,
        policy: &CompressionPolicy,
        batch: usize,
        threads: usize,
        profile: &mut CompressedProfile,
    ) -> Result<()> {
        self.account_costs(policy, profile)?;
        profile.exit_accuracy =
            self.estimator.exit_accuracy_quantized(&self.layers, policy, batch, threads)?;
        Ok(())
    }

    /// The allocation-free FLOPs/size accounting shared by the plain and
    /// batched evaluation paths (everything except the accuracy estimate).
    fn account_costs(
        &self,
        policy: &CompressionPolicy,
        profile: &mut CompressedProfile,
    ) -> Result<()> {
        policy.check_length(self.layers.len())?;
        profile.exit_flops.clear();
        profile.exit_flops.resize(self.num_exits, 0);
        profile.branch_flops.clear();
        profile.branch_flops.resize(self.num_exits, 0);
        profile.total_flops = 0;
        profile.model_size_bytes = 0;
        for (layer, lp) in self.layers.iter().zip(policy.layers()) {
            let ratio = f64::from(lp.preserve_ratio.clamp(0.0, 1.0));
            let eff_macs = (layer.macs as f64 * ratio).round() as u64;
            let eff_params = (layer.weight_params as f64 * ratio).round() as u64;
            profile.total_flops += eff_macs;
            profile.model_size_bytes += storage_bytes(eff_params, lp.weight_bits.min(32));
            if !layer.in_trunk {
                profile.branch_flops[layer.first_exit] += eff_macs;
            }
            for (exit, flops) in profile.exit_flops.iter_mut().enumerate() {
                if layer.used_by_exit(exit) {
                    *flops += eff_macs;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CalibratedAccuracyModel, CompressionPolicy, LayerPolicy};
    use ie_nn::spec::lenet_multi_exit;

    fn evaluator() -> PolicyEvaluator {
        PolicyEvaluator::new(&lenet_multi_exit(), CalibratedAccuracyModel::for_paper_backbone())
    }

    #[test]
    fn identity_policy_reproduces_uncompressed_costs() {
        let arch = lenet_multi_exit();
        let ev = evaluator();
        let profile = ev.evaluate(&CompressionPolicy::full_precision(ev.layers().len())).unwrap();
        assert_eq!(profile.exit_flops, arch.exit_flops());
        assert_eq!(profile.model_size_bytes, arch.model_size_bytes(32));
        assert_eq!(profile.num_exits(), 3);
        assert!((profile.exit_accuracy[2] - 0.730).abs() < 1e-9);
        // Incremental continuation matches the architecture's accounting.
        assert_eq!(profile.incremental_flops(0, 1), Some(arch.incremental_flops(0, 1).unwrap()));
        assert_eq!(profile.incremental_flops(1, 1), None);
        assert_eq!(profile.incremental_flops(0, 7), None);
        // Continuing 0 -> 1 is cheaper than running exit 1 from scratch.
        assert!(profile.incremental_flops(0, 1).unwrap() < profile.exit_flops[1]);
    }

    #[test]
    fn pruning_halves_flops_and_quantization_shrinks_size() {
        let ev = evaluator();
        let half = CompressionPolicy::uniform(ev.layers().len(), 0.5, 32, 32).unwrap();
        let full = ev.evaluate(&CompressionPolicy::full_precision(ev.layers().len())).unwrap();
        let pruned = ev.evaluate(&half).unwrap();
        for (p, f) in pruned.exit_flops.iter().zip(&full.exit_flops) {
            let ratio = *p as f64 / *f as f64;
            assert!((ratio - 0.5).abs() < 0.02, "FLOPs ratio {ratio}");
        }
        let eight_bit = CompressionPolicy::uniform(ev.layers().len(), 1.0, 8, 8).unwrap();
        let quantized = ev.evaluate(&eight_bit).unwrap();
        let size_ratio = quantized.model_size_bytes as f64 / full.model_size_bytes as f64;
        assert!(
            (size_ratio - 0.25).abs() < 0.01,
            "8/32 bits gives a 4x size reduction, got {size_ratio}"
        );
        assert_eq!(quantized.exit_flops, full.exit_flops, "quantization alone keeps FLOPs");
    }

    #[test]
    fn paper_scale_policy_fits_the_mcu_constraints() {
        // A policy in the spirit of Fig. 4 (8-bit convs pruned harder, 1–2-bit
        // large FC layers) must land under 1.15 M network FLOPs and 16 KB.
        let ev = evaluator();
        let policy: CompressionPolicy = ev
            .layers()
            .iter()
            .map(|l| {
                if l.is_conv {
                    if l.first_exit == 0 {
                        LayerPolicy::new(0.5, 8, 8).unwrap()
                    } else {
                        LayerPolicy::new(0.25, 4, 8).unwrap()
                    }
                } else if l.weight_params > 20_000 {
                    LayerPolicy::new(0.35, 1, 8).unwrap()
                } else {
                    LayerPolicy::new(0.5, 2, 8).unwrap()
                }
            })
            .collect();
        let profile = ev.evaluate(&policy).unwrap();
        assert!(profile.total_flops <= 1_250_000, "total FLOPs {}", profile.total_flops);
        assert!(profile.model_size_bytes <= 16 * 1024, "size {}", profile.model_size_bytes);
        // Accuracy of the exits remains in a usable band.
        assert!(profile.exit_accuracy.iter().all(|&a| a > 0.55), "{:?}", profile.exit_accuracy);
    }

    #[test]
    fn expected_accuracy_weights_exits() {
        let ev = evaluator();
        let profile = ev.evaluate(&CompressionPolicy::full_precision(ev.layers().len())).unwrap();
        let all_exit1 = profile.expected_accuracy(&[1.0, 0.0, 0.0]);
        let all_exit3 = profile.expected_accuracy(&[0.0, 0.0, 1.0]);
        assert!((all_exit1 - 0.649).abs() < 1e-9);
        assert!((all_exit3 - 0.730).abs() < 1e-9);
        let mixed = profile.expected_accuracy(&[0.5, 0.0, 0.5]);
        assert!(mixed > all_exit1 && mixed < all_exit3);
    }

    #[test]
    fn policy_length_is_checked() {
        let ev = evaluator();
        assert!(ev.evaluate(&CompressionPolicy::full_precision(3)).is_err());
    }

    fn empirical_tiny_evaluator() -> PolicyEvaluator {
        use ie_nn::dataset::SyntheticDataset;
        use ie_nn::spec::tiny_multi_exit;
        use ie_nn::MultiExitNetwork;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let data = SyntheticDataset::generate(3, 8, 100, 0.05, 12);
        let arch = tiny_multi_exit(3);
        let mut rng = StdRng::seed_from_u64(13);
        let net = MultiExitNetwork::from_architecture(&arch, &mut rng).unwrap();
        PolicyEvaluator::new(
            &arch,
            crate::EmpiricalAccuracyEstimator::new(net, data.test().to_vec()),
        )
    }

    #[test]
    fn batched_evaluation_is_identical_for_one_and_four_workers() {
        let ev = empirical_tiny_evaluator();
        let policy = CompressionPolicy::uniform(ev.layers().len(), 0.6, 8, 8).unwrap();
        let plain = ev.evaluate(&policy).unwrap();
        let one = ev.evaluate_batched_with(&policy, 8, 1).unwrap();
        let four = ev.evaluate_batched_with(&policy, 8, 4).unwrap();
        assert_eq!(one, plain, "1 worker must reproduce the single-input evaluation");
        assert_eq!(four, plain, "4 workers must reproduce the single-input evaluation");
        // The env-driven default path (IE_EVAL_THREADS or machine default)
        // lands on the same result as well — the thread count is purely a
        // throughput knob.
        assert_eq!(ev.evaluate_batched(&policy).unwrap(), plain);
    }

    #[test]
    fn analytic_estimators_fall_back_to_the_plain_accuracy_path() {
        let ev = evaluator();
        let policy = CompressionPolicy::uniform(ev.layers().len(), 0.7, 6, 8).unwrap();
        assert_eq!(ev.evaluate_batched(&policy).unwrap(), ev.evaluate(&policy).unwrap());
        // The integer backend likewise falls back for analytical estimators.
        assert_eq!(ev.evaluate_quantized(&policy).unwrap(), ev.evaluate(&policy).unwrap());
    }

    #[test]
    fn quantized_evaluation_runs_the_integer_backend_deterministically() {
        let ev = empirical_tiny_evaluator();
        let policy = CompressionPolicy::uniform(ev.layers().len(), 0.8, 8, 8).unwrap();
        let one = ev.evaluate_quantized_with(&policy, 8, 1).unwrap();
        let four = ev.evaluate_quantized_with(&policy, 4, 4).unwrap();
        assert_eq!(one, four, "batch/thread counts are pure throughput knobs");
        // Cost accounting is shared with the fake-quant path; only the
        // accuracy estimate (now true integer inference) may differ.
        let fake = ev.evaluate(&policy).unwrap();
        assert_eq!(one.exit_flops, fake.exit_flops);
        assert_eq!(one.model_size_bytes, fake.model_size_bytes);
        assert!(one.exit_accuracy.iter().all(|&a| (0.0..=1.0).contains(&a)));
        // 8-bit integer inference stays close to the fake-quant accuracy on
        // the tiny network (activation quantization is the only extra error).
        for (q, f) in one.exit_accuracy.iter().zip(&fake.exit_accuracy) {
            assert!((q - f).abs() < 0.25, "integer {q} vs fake-quant {f}");
        }
    }

    #[test]
    fn evaluate_into_reuses_a_profile_without_stale_state() {
        let ev = evaluator();
        let full = CompressionPolicy::full_precision(ev.layers().len());
        let half = CompressionPolicy::uniform(ev.layers().len(), 0.5, 4, 8).unwrap();
        let mut reused = ev.evaluate(&half).unwrap();
        // Re-evaluating a different policy into the same profile must equal a
        // fresh evaluation (no accumulation from the previous contents).
        ev.evaluate_into(&full, &mut reused).unwrap();
        assert_eq!(reused, ev.evaluate(&full).unwrap());
        ev.evaluate_into(&half, &mut reused).unwrap();
        assert_eq!(reused, ev.evaluate(&half).unwrap());
    }
}
