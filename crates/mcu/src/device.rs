use crate::{McuError, Result};

/// Static description of the target microcontroller.
///
/// The constructor [`McuDevice::msp432`] mirrors the paper's experimental
/// platform: a TI MSP432-class MCU with tens of kilobytes of weight storage
/// and an effective inference throughput in the hundreds of kilo-FLOPs per
/// second, which is why a full-precision LeNet (≈0.6 MB, ≈1.6 MFLOPs per
/// inference) is undeployable without compression.
#[derive(Debug, Clone, PartialEq)]
pub struct McuDevice {
    name: String,
    weight_storage_bytes: u64,
    sram_bytes: u64,
    nonvolatile_bytes: u64,
    clock_hz: u64,
    effective_flops_per_s: f64,
    energy_per_mflop_mj: f64,
    nv_write_energy_per_byte_mj: f64,
    sleep_power_mw: f64,
}

impl McuDevice {
    /// The paper's target platform (TI MSP432-class device).
    ///
    /// * 16 KB of weight storage available to the model (the paper's
    ///   compression target `S_target`),
    /// * 64 KB SRAM, 256 KB FRAM-like non-volatile memory,
    /// * 48 MHz clock with an effective 0.2 MFLOP/s of floating-point
    ///   inference throughput (software multiply–accumulate),
    /// * 1.5 mJ of energy per million FLOPs (Section V-A of the paper),
    /// * a small per-byte cost for non-volatile checkpoint writes.
    pub fn msp432() -> Self {
        McuDevice {
            name: "TI MSP432 (model)".to_string(),
            weight_storage_bytes: 16 * 1024,
            sram_bytes: 64 * 1024,
            nonvolatile_bytes: 256 * 1024,
            clock_hz: 48_000_000,
            effective_flops_per_s: 0.2e6,
            energy_per_mflop_mj: 1.5,
            nv_write_energy_per_byte_mj: 2.0e-5,
            sleep_power_mw: 0.001,
        }
    }

    /// A builder-style override of the weight-storage budget (bytes).
    pub fn with_weight_storage_bytes(mut self, bytes: u64) -> Self {
        self.weight_storage_bytes = bytes;
        self
    }

    /// A builder-style override of the energy cost per million FLOPs.
    pub fn with_energy_per_mflop_mj(mut self, mj: f64) -> Self {
        self.energy_per_mflop_mj = mj;
        self
    }

    /// A builder-style override of the effective FLOP throughput.
    pub fn with_effective_flops_per_s(mut self, flops: f64) -> Self {
        self.effective_flops_per_s = flops;
        self
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Bytes of storage available for model weights.
    pub fn weight_storage_bytes(&self) -> u64 {
        self.weight_storage_bytes
    }

    /// SRAM size in bytes.
    pub fn sram_bytes(&self) -> u64 {
        self.sram_bytes
    }

    /// Non-volatile (FRAM) size in bytes.
    pub fn nonvolatile_bytes(&self) -> u64 {
        self.nonvolatile_bytes
    }

    /// Core clock frequency in hertz.
    pub fn clock_hz(&self) -> u64 {
        self.clock_hz
    }

    /// Effective floating-point throughput in FLOPs per second.
    pub fn effective_flops_per_s(&self) -> f64 {
        self.effective_flops_per_s
    }

    /// Energy cost per million FLOPs, in millijoules.
    pub fn energy_per_mflop_mj(&self) -> f64 {
        self.energy_per_mflop_mj
    }

    /// Energy cost of writing one byte to non-volatile memory, in millijoules.
    pub fn nv_write_energy_per_byte_mj(&self) -> f64 {
        self.nv_write_energy_per_byte_mj
    }

    /// Sleep power in milliwatts.
    pub fn sleep_power_mw(&self) -> f64 {
        self.sleep_power_mw
    }

    /// Checks that a model of `model_bytes` fits into the weight storage.
    ///
    /// # Errors
    ///
    /// Returns [`McuError::ModelTooLarge`] when it does not.
    pub fn check_model_fits(&self, model_bytes: u64) -> Result<()> {
        if model_bytes > self.weight_storage_bytes {
            return Err(McuError::ModelTooLarge {
                model_bytes,
                storage_bytes: self.weight_storage_bytes,
            });
        }
        Ok(())
    }
}

impl Default for McuDevice {
    fn default() -> Self {
        McuDevice::msp432()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msp432_constants_match_the_paper() {
        let d = McuDevice::msp432();
        assert_eq!(d.weight_storage_bytes(), 16 * 1024);
        assert!((d.energy_per_mflop_mj() - 1.5).abs() < 1e-12);
        assert_eq!(d.clock_hz(), 48_000_000);
    }

    #[test]
    fn full_precision_lenet_does_not_fit() {
        // The uncompressed model is ~580 KB; the MCU offers 16 KB.
        let d = McuDevice::msp432();
        assert!(d.check_model_fits(580_000).is_err());
        assert!(d.check_model_fits(16_000).is_ok());
    }

    #[test]
    fn builder_overrides_apply() {
        let d = McuDevice::msp432()
            .with_weight_storage_bytes(32 * 1024)
            .with_energy_per_mflop_mj(2.0)
            .with_effective_flops_per_s(1e6);
        assert_eq!(d.weight_storage_bytes(), 32 * 1024);
        assert_eq!(d.energy_per_mflop_mj(), 2.0);
        assert_eq!(d.effective_flops_per_s(), 1e6);
        assert!(d.check_model_fits(20_000).is_ok());
    }
}
