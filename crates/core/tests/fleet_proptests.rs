//! Property-based tests of the fleet simulator's determinism contract:
//! aggregates are invariant under worker count and device-shard ordering,
//! and single-device extraction replays bit-identically.

use ie_core::fleet::{DeviceSpec, FleetAccumulator, FleetConfig, FleetSimulator};
use ie_core::{DeployedModel, ExperimentConfig};
use proptest::prelude::*;

fn model() -> DeployedModel {
    DeployedModel::uncompressed_reference(&ExperimentConfig::paper_default())
        .expect("reference model builds")
}

/// A fleet small enough to simulate dozens of times under proptest but large
/// enough to exercise every trace kind, policy kind and the fault plans.
fn config(devices: u64, seed: u64, threads: usize) -> FleetConfig {
    let mut c = FleetConfig::new(devices, seed);
    c.events_per_device = 8;
    c.device_duration_s = 600.0;
    c.threads = threads;
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The merged aggregate — including its serialized JSON — is byte-identical
    /// for every worker count.
    #[test]
    fn aggregates_are_invariant_under_worker_count(
        seed in any::<u64>(),
        devices in 1u64..48,
        threads in 2usize..9,
    ) {
        let m = model();
        let single = FleetSimulator::new(&config(devices, seed, 1)).run(&m).unwrap();
        let multi = FleetSimulator::new(&config(devices, seed, threads)).run(&m).unwrap();
        prop_assert_eq!(&single.metrics, &multi.metrics);
        prop_assert_eq!(single.metrics.to_json(), multi.metrics.to_json());
    }

    /// Streaming devices into an accumulator in any permuted order gives the
    /// same aggregate as id order: the accumulator is order-invariant, not
    /// merely thread-count-invariant.
    #[test]
    fn aggregates_are_invariant_under_device_order(
        seed in any::<u64>(),
        devices in 2u64..24,
        shuffle_seed in any::<u64>(),
    ) {
        let m = model();
        let fleet = FleetSimulator::new(&config(devices, seed, 1));

        let mut in_order = FleetAccumulator::default();
        for id in 0..devices {
            fleet.simulate_device_into(&m, id, &mut in_order).unwrap();
        }

        // A cheap seeded Fisher–Yates over the device ids.
        let mut ids: Vec<u64> = (0..devices).collect();
        let mut state = shuffle_seed | 1;
        for i in (1..ids.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ids.swap(i, (state >> 33) as usize % (i + 1));
        }

        let mut permuted = FleetAccumulator::default();
        for id in ids {
            fleet.simulate_device_into(&m, id, &mut permuted).unwrap();
        }
        prop_assert_eq!(in_order, permuted);
    }

    /// Any device extracted from any fleet replays bit-identically in
    /// isolation, and its spec derivation is a pure function of
    /// `(master seed, device id)`.
    #[test]
    fn extraction_replay_is_bit_identical(
        seed in any::<u64>(),
        devices in 1u64..32,
        probe_fraction in 0.0f64..1.0,
    ) {
        let m = model();
        let probe = ((devices - 1) as f64 * probe_fraction) as u64;
        let mut c = config(devices, seed, 4);
        c.probe_device = Some(probe);
        let fleet = FleetSimulator::new(&c);
        let report = fleet.run(&m).unwrap();
        let in_fleet = report.probe.expect("probe captured");
        let replayed = fleet.replay_device(&m, probe).unwrap();
        prop_assert_eq!(in_fleet, replayed);
        prop_assert_eq!(DeviceSpec::derive(&c, probe), DeviceSpec::derive(&c, probe));
    }
}
