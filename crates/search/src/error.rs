use std::fmt;

/// Errors produced by the compression search.
#[derive(Debug, Clone, PartialEq)]
pub enum SearchError {
    /// Propagated core error (deployment / simulation).
    Core(ie_core::CoreError),
    /// Propagated compression error (policy validation / evaluation).
    Compress(ie_compress::CompressError),
    /// Propagated neural-network error (from the DDPG agents).
    Nn(ie_nn::NnError),
    /// The search was configured with no episodes or no candidates.
    EmptySearch,
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::Core(e) => write!(f, "core error: {e}"),
            SearchError::Compress(e) => write!(f, "compression error: {e}"),
            SearchError::Nn(e) => write!(f, "network error: {e}"),
            SearchError::EmptySearch => write!(f, "search was configured with zero candidates"),
        }
    }
}

impl std::error::Error for SearchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SearchError::Core(e) => Some(e),
            SearchError::Compress(e) => Some(e),
            SearchError::Nn(e) => Some(e),
            SearchError::EmptySearch => None,
        }
    }
}

impl From<ie_core::CoreError> for SearchError {
    fn from(e: ie_core::CoreError) -> Self {
        SearchError::Core(e)
    }
}

impl From<ie_compress::CompressError> for SearchError {
    fn from(e: ie_compress::CompressError) -> Self {
        SearchError::Compress(e)
    }
}

impl From<ie_nn::NnError> for SearchError {
    fn from(e: ie_nn::NnError) -> Self {
        SearchError::Nn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty() {
        let errs: Vec<SearchError> = vec![
            ie_core::CoreError::InvalidConfig("x".into()).into(),
            ie_compress::CompressError::InvalidBitwidth { bits: 0 }.into(),
            ie_nn::NnError::InvalidSpec("y".into()).into(),
            SearchError::EmptySearch,
        ];
        for e in &errs {
            assert!(!e.to_string().is_empty());
        }
        assert!(std::error::Error::source(&errs[0]).is_some());
    }
}
