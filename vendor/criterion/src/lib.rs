//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset this workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, `criterion_group!`
//! and `criterion_main!` — with a simple median-of-samples timer instead of
//! criterion's statistical machinery. Benches are declared `harness = false`,
//! so `cargo bench` runs these mains and `cargo test` skips them entirely.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }

    /// Called by `criterion_main!` after all groups ran.
    pub fn final_summary(&self) {}
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name.into()), self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        std_black_box(f());
        self.samples.push(start.elapsed());
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut f: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        std_black_box(f(input));
        self.samples.push(start.elapsed());
    }
}

pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher { samples: Vec::with_capacity(sample_size) };
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    bencher.samples.sort();
    let median = bencher
        .samples
        .get(bencher.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    let lo = bencher.samples.first().copied().unwrap_or_default();
    let hi = bencher.samples.last().copied().unwrap_or_default();
    println!("{name:<48} time: [{lo:>12?} {median:>12?} {hi:>12?}]");
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure_sample_size_times() {
        let mut calls = 0usize;
        Criterion::default().sample_size(5).bench_function("counter", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert_eq!(calls, 5);
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0usize;
        group.bench_function(format!("inner_{}", 1), |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 3);
    }
}
