//! Training-side slice kernels: the backward counterparts of the forward
//! `_into` kernels, routed through the runtime ISA dispatch
//! ([`crate::dispatch`]) like every other hot-path kernel.
//!
//! The contract mirrors the forward side: every kernel is **bit-identical**
//! across tiers and to the allocating [`crate::Tensor`] reference path it
//! replaces. Concretely:
//!
//! * [`transpose_into`] performs the same element movement as
//!   [`crate::Tensor::transpose`] (pure data movement — no arithmetic).
//! * [`relu_backward_into`] multiplies the upstream gradient by the
//!   `if x > 0.0 { 1.0 } else { 0.0 }` mask, exactly like the allocating
//!   `mask.mul(grad)` path (a masked-off negative gradient yields `-0.0`,
//!   which matters for bit-level equivalence).
//! * [`max_pool_backward_into`] routes each output gradient to the window
//!   argmax found by a row-major strict-`>` scan (first maximum wins), the
//!   same order the allocating pool backward uses.
//! * [`outer_accumulate_into`] / [`accumulate_slice_into`] accumulate with a
//!   single product/add per element, matching `outer` +
//!   `add_scaled_inplace(·, 1.0)` bit for bit (`1.0 * x == x`).
//! * [`cross_entropy_grad_into`] fuses the `probs − one_hot(label)` epilogue
//!   with the per-exit loss weight: `out[j] = probs[j] * w` except
//!   `out[label] = (probs[label] − 1.0) * w`.

use crate::dispatch::{self, IsaTier};

// ---------------------------------------------------------------------------
// Transpose
// ---------------------------------------------------------------------------

/// Portable body of [`transpose_into`] (recompiled for AVX2 by the
/// dispatcher).
#[inline(always)]
fn transpose_body(src: &[f32], rows: usize, cols: usize, dst: &mut [f32]) {
    for i in 0..rows {
        let row = &src[i * cols..(i + 1) * cols];
        for (j, &v) in row.iter().enumerate() {
            dst[j * rows + i] = v;
        }
    }
}

/// Writes the transpose of the row-major `[rows, cols]` matrix `src` into
/// `dst` (`[cols, rows]`). Pure data movement, so bit-identical to
/// [`crate::Tensor::transpose`] on every tier by construction.
///
/// # Panics
///
/// Panics when a buffer length does not match `rows * cols`.
pub fn transpose_into(src: &[f32], rows: usize, cols: usize, dst: &mut [f32]) {
    transpose_into_tier(dispatch::active(), src, rows, cols, dst);
}

/// [`transpose_into`] on an explicitly chosen ISA tier (clamped to the
/// hardware).
///
/// # Panics
///
/// Panics under the same conditions as [`transpose_into`].
pub fn transpose_into_tier(tier: IsaTier, src: &[f32], rows: usize, cols: usize, dst: &mut [f32]) {
    assert_eq!(src.len(), rows * cols, "transpose: src length {} != {rows}x{cols}", src.len());
    assert_eq!(dst.len(), rows * cols, "transpose: dst length {} != {cols}x{rows}", dst.len());
    #[cfg(target_arch = "x86_64")]
    if x86::try_transpose(tier, src, rows, cols, dst) {
        return;
    }
    let _ = tier;
    transpose_body(src, rows, cols, dst);
}

// ---------------------------------------------------------------------------
// ReLU backward
// ---------------------------------------------------------------------------

/// Portable body of [`relu_backward_into`]. The mask is *multiplied*, not
/// selected: `0.0 * g` keeps the sign of `g` in the zero (and propagates
/// NaN), exactly like the allocating `mask.mul(grad_output)` reference.
#[inline(always)]
fn relu_backward_body(pre: &[f32], grad_out: &[f32], dst: &mut [f32]) {
    for ((d, &x), &g) in dst.iter_mut().zip(pre).zip(grad_out) {
        let m = if x > 0.0 { 1.0 } else { 0.0 };
        *d = m * g;
    }
}

/// ReLU backward: `dst[i] = mask(pre[i]) * grad_out[i]` with the
/// `if x > 0.0 { 1.0 } else { 0.0 }` mask over the layer's pre-activation
/// input.
///
/// # Panics
///
/// Panics when the three slice lengths differ.
pub fn relu_backward_into(pre: &[f32], grad_out: &[f32], dst: &mut [f32]) {
    relu_backward_into_tier(dispatch::active(), pre, grad_out, dst);
}

/// [`relu_backward_into`] on an explicitly chosen ISA tier (clamped to the
/// hardware).
///
/// # Panics
///
/// Panics under the same conditions as [`relu_backward_into`].
pub fn relu_backward_into_tier(tier: IsaTier, pre: &[f32], grad_out: &[f32], dst: &mut [f32]) {
    assert_eq!(pre.len(), grad_out.len(), "relu backward: pre/grad lengths differ");
    assert_eq!(pre.len(), dst.len(), "relu backward: pre/dst lengths differ");
    #[cfg(target_arch = "x86_64")]
    if x86::try_relu_backward(tier, pre, grad_out, dst) {
        return;
    }
    let _ = tier;
    relu_backward_body(pre, grad_out, dst);
}

// ---------------------------------------------------------------------------
// Max-pool backward
// ---------------------------------------------------------------------------

/// Portable body of [`max_pool_backward_into`] (recompiled for AVX2 by the
/// dispatcher). Window scan order is row-major (ascending `dy`, then `dx`)
/// with a strict `>` select, so the *first* maximum receives the gradient —
/// the same argmax the allocating pool backward resolves.
#[inline(always)]
fn max_pool_backward_body(
    src: &[f32],
    planes: usize,
    h: usize,
    w: usize,
    size: usize,
    grad_out: &[f32],
    dst: &mut [f32],
) {
    dst.fill(0.0);
    let (oh, ow) = (h / size, w / size);
    for p in 0..planes {
        let plane = &src[p * h * w..(p + 1) * h * w];
        let go_plane = &grad_out[p * oh * ow..(p + 1) * oh * ow];
        let dst_plane = &mut dst[p * h * w..(p + 1) * h * w];
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_pos = 0usize;
                for dy in 0..size {
                    for dx in 0..size {
                        let pos = (oy * size + dy) * w + ox * size + dx;
                        let v = plane[pos];
                        if v > best {
                            best = v;
                            best_pos = pos;
                        }
                    }
                }
                dst_plane[best_pos] += go_plane[oy * ow + ox];
            }
        }
    }
}

/// Max-pool backward over `planes` stacked `[h, w]` planes: zeroes `dst` and
/// routes each pooled gradient to the position of its window's first strict
/// maximum in the saved forward input `src`.
///
/// # Panics
///
/// Panics when `size` is zero, does not divide `h`/`w`, or a buffer length
/// does not match.
pub fn max_pool_backward_into(
    src: &[f32],
    planes: usize,
    h: usize,
    w: usize,
    size: usize,
    grad_out: &[f32],
    dst: &mut [f32],
) {
    max_pool_backward_into_tier(dispatch::active(), src, planes, h, w, size, grad_out, dst);
}

/// [`max_pool_backward_into`] on an explicitly chosen ISA tier (clamped to
/// the hardware).
///
/// # Panics
///
/// Panics under the same conditions as [`max_pool_backward_into`].
#[allow(clippy::too_many_arguments)]
pub fn max_pool_backward_into_tier(
    tier: IsaTier,
    src: &[f32],
    planes: usize,
    h: usize,
    w: usize,
    size: usize,
    grad_out: &[f32],
    dst: &mut [f32],
) {
    assert!(size > 0, "pool backward: size must be non-zero");
    assert_eq!(h % size, 0, "pool backward: height {h} not divisible by {size}");
    assert_eq!(w % size, 0, "pool backward: width {w} not divisible by {size}");
    assert_eq!(src.len(), planes * h * w, "pool backward: src length {} mismatch", src.len());
    assert_eq!(dst.len(), planes * h * w, "pool backward: dst length {} mismatch", dst.len());
    assert_eq!(
        grad_out.len(),
        planes * (h / size) * (w / size),
        "pool backward: grad length {} mismatch",
        grad_out.len()
    );
    #[cfg(target_arch = "x86_64")]
    if x86::try_max_pool_backward(tier, src, planes, h, w, size, grad_out, dst) {
        return;
    }
    let _ = tier;
    max_pool_backward_body(src, planes, h, w, size, grad_out, dst);
}

// ---------------------------------------------------------------------------
// Accumulating outer product / slice accumulate
// ---------------------------------------------------------------------------

/// Portable body of [`outer_accumulate_into`].
#[inline(always)]
fn outer_accumulate_body(u: &[f32], v: &[f32], acc: &mut [f32]) {
    let n = v.len();
    for (i, &a) in u.iter().enumerate() {
        let row = &mut acc[i * n..(i + 1) * n];
        for (o, &b) in row.iter_mut().zip(v) {
            *o += a * b;
        }
    }
}

/// Accumulates the outer product `u ⊗ v` into the row-major
/// `[u.len(), v.len()]` buffer `acc`: `acc[i·n + j] += u[i] * v[j]`. One
/// product and one add per element, so bit-identical to the allocating
/// `outer` + `add_scaled_inplace(·, 1.0)` dense-layer gradient path.
///
/// # Panics
///
/// Panics when `acc.len() != u.len() * v.len()`.
pub fn outer_accumulate_into(u: &[f32], v: &[f32], acc: &mut [f32]) {
    outer_accumulate_into_tier(dispatch::active(), u, v, acc);
}

/// [`outer_accumulate_into`] on an explicitly chosen ISA tier (clamped to
/// the hardware).
///
/// # Panics
///
/// Panics under the same conditions as [`outer_accumulate_into`].
pub fn outer_accumulate_into_tier(tier: IsaTier, u: &[f32], v: &[f32], acc: &mut [f32]) {
    assert_eq!(
        acc.len(),
        u.len() * v.len(),
        "outer accumulate: acc length {} != {}x{}",
        acc.len(),
        u.len(),
        v.len()
    );
    #[cfg(target_arch = "x86_64")]
    if x86::try_outer_accumulate(tier, u, v, acc) {
        return;
    }
    let _ = tier;
    outer_accumulate_body(u, v, acc);
}

/// Portable body of [`accumulate_slice_into`].
#[inline(always)]
fn accumulate_body(dst: &mut [f32], src: &[f32]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

/// Element-wise accumulate: `dst[i] += src[i]`. The gradient-reduction
/// primitive of the training plans (branch→trunk merges and the
/// per-sample→network gradient flush).
///
/// # Panics
///
/// Panics when the lengths differ.
pub fn accumulate_slice_into(dst: &mut [f32], src: &[f32]) {
    accumulate_slice_into_tier(dispatch::active(), dst, src);
}

/// [`accumulate_slice_into`] on an explicitly chosen ISA tier (clamped to
/// the hardware).
///
/// # Panics
///
/// Panics under the same conditions as [`accumulate_slice_into`].
pub fn accumulate_slice_into_tier(tier: IsaTier, dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "accumulate: dst/src lengths differ");
    #[cfg(target_arch = "x86_64")]
    if x86::try_accumulate(tier, dst, src) {
        return;
    }
    let _ = tier;
    accumulate_body(dst, src);
}

// ---------------------------------------------------------------------------
// Cross-entropy gradient epilogue
// ---------------------------------------------------------------------------

/// Portable body of [`cross_entropy_grad_into`] (recompiled for AVX2 by the
/// dispatcher).
#[inline(always)]
fn cross_entropy_grad_body(probs: &[f32], label: usize, weight: f32, out: &mut [f32]) {
    for (o, &p) in out.iter_mut().zip(probs) {
        *o = p * weight;
    }
    out[label] = (probs[label] - 1.0) * weight;
}

/// Weighted cross-entropy gradient at the logits:
/// `out = (softmax_probs − one_hot(label)) · weight`, fused into one sweep.
/// Bit-identical to the allocating clone → `grad[label] -= 1.0` →
/// `scale(weight)` reference (each element sees the same single
/// multiply, and the label element the same subtract-then-multiply).
///
/// # Panics
///
/// Panics when the lengths differ or `label` is out of range.
pub fn cross_entropy_grad_into(probs: &[f32], label: usize, weight: f32, out: &mut [f32]) {
    cross_entropy_grad_into_tier(dispatch::active(), probs, label, weight, out);
}

/// [`cross_entropy_grad_into`] on an explicitly chosen ISA tier (clamped to
/// the hardware).
///
/// # Panics
///
/// Panics under the same conditions as [`cross_entropy_grad_into`].
pub fn cross_entropy_grad_into_tier(
    tier: IsaTier,
    probs: &[f32],
    label: usize,
    weight: f32,
    out: &mut [f32],
) {
    assert_eq!(probs.len(), out.len(), "ce grad: probs/out lengths differ");
    assert!(label < probs.len(), "ce grad: label {label} out of range {}", probs.len());
    #[cfg(target_arch = "x86_64")]
    if x86::try_cross_entropy_grad(tier, probs, label, weight, out) {
        return;
    }
    let _ = tier;
    cross_entropy_grad_body(probs, label, weight, out);
}

// ---------------------------------------------------------------------------
// AVX2 tier implementations (explicit `core::arch` intrinsics)
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod x86 {
    use super::*;
    use core::arch::x86_64::*;

    /// Runs the AVX2 transpose when the clamped tier allows; returns `false`
    /// when the caller should take the portable path. Safe: the feature check
    /// sits right next to the `unsafe` calls it justifies.
    pub(super) fn try_transpose(
        tier: IsaTier,
        src: &[f32],
        rows: usize,
        cols: usize,
        dst: &mut [f32],
    ) -> bool {
        if dispatch::clamp(tier) < IsaTier::Avx2 {
            return false;
        }
        // SAFETY: `clamp` only returns Avx2 or above when AVX2 is detected.
        unsafe { transpose_avx2(src, rows, cols, dst) };
        true
    }

    /// # Safety
    ///
    /// Caller must ensure AVX2 is supported.
    #[target_feature(enable = "avx2")]
    unsafe fn transpose_avx2(src: &[f32], rows: usize, cols: usize, dst: &mut [f32]) {
        transpose_body(src, rows, cols, dst);
    }

    /// AVX2 ReLU-backward attempt; see [`try_transpose`].
    pub(super) fn try_relu_backward(
        tier: IsaTier,
        pre: &[f32],
        grad_out: &[f32],
        dst: &mut [f32],
    ) -> bool {
        if dispatch::clamp(tier) < IsaTier::Avx2 {
            return false;
        }
        // SAFETY: `clamp` only returns Avx2 or above when AVX2 is detected;
        // lengths were validated by the dispatching wrapper.
        unsafe { relu_backward_avx2(pre, grad_out, dst) };
        true
    }

    /// Vector mask-multiply: `cmp_gt` builds the same `{1.0, 0.0}` mask as
    /// the scalar select (NaN compares false, exactly like `x > 0.0`), and
    /// the multiply — not a bitwise AND — preserves the `-0.0`/NaN behaviour
    /// of the reference.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is supported; lengths are validated by the
    /// dispatching wrapper.
    #[target_feature(enable = "avx2")]
    unsafe fn relu_backward_avx2(pre: &[f32], grad_out: &[f32], dst: &mut [f32]) {
        let zero = _mm256_setzero_ps();
        let one = _mm256_set1_ps(1.0);
        let chunks = pre.len() / 8;
        // SAFETY: chunk c covers [8c, 8c+8) with 8c+8 <= len for all three
        // equally sized slices.
        unsafe {
            for c in 0..chunks {
                let x = _mm256_loadu_ps(pre.as_ptr().add(c * 8));
                let g = _mm256_loadu_ps(grad_out.as_ptr().add(c * 8));
                let gt = _mm256_cmp_ps::<_CMP_GT_OQ>(x, zero);
                let m = _mm256_blendv_ps(zero, one, gt);
                _mm256_storeu_ps(dst.as_mut_ptr().add(c * 8), _mm256_mul_ps(m, g));
            }
        }
        relu_backward_body(&pre[chunks * 8..], &grad_out[chunks * 8..], &mut dst[chunks * 8..]);
    }

    /// AVX2 max-pool-backward attempt; see [`try_transpose`].
    #[allow(clippy::too_many_arguments)]
    pub(super) fn try_max_pool_backward(
        tier: IsaTier,
        src: &[f32],
        planes: usize,
        h: usize,
        w: usize,
        size: usize,
        grad_out: &[f32],
        dst: &mut [f32],
    ) -> bool {
        if dispatch::clamp(tier) < IsaTier::Avx2 {
            return false;
        }
        // SAFETY: `clamp` only returns Avx2 or above when AVX2 is detected.
        unsafe { max_pool_backward_avx2(src, planes, h, w, size, grad_out, dst) };
        true
    }

    /// The argmax scatter is irregular, so this tier recompiles the portable
    /// body (the `dst.fill` and window scans still vectorize) rather than
    /// hand-scheduling it — reduction order is untouched by construction.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is supported.
    #[target_feature(enable = "avx2")]
    unsafe fn max_pool_backward_avx2(
        src: &[f32],
        planes: usize,
        h: usize,
        w: usize,
        size: usize,
        grad_out: &[f32],
        dst: &mut [f32],
    ) {
        max_pool_backward_body(src, planes, h, w, size, grad_out, dst);
    }

    /// AVX2 accumulating-outer-product attempt; see [`try_transpose`].
    pub(super) fn try_outer_accumulate(
        tier: IsaTier,
        u: &[f32],
        v: &[f32],
        acc: &mut [f32],
    ) -> bool {
        if dispatch::clamp(tier) < IsaTier::Avx2 {
            return false;
        }
        // SAFETY: `clamp` only returns Avx2 or above when AVX2 is detected;
        // lengths were validated by the dispatching wrapper.
        unsafe { outer_accumulate_avx2(u, v, acc) };
        true
    }

    /// Broadcast `u[i]`, multiply against 8 lanes of `v`, add into the
    /// accumulator row — separate `vmulps` + `vaddps` (no FMA), one rounded
    /// product and add per element like the scalar body.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is supported; lengths are validated by the
    /// dispatching wrapper.
    #[target_feature(enable = "avx2")]
    unsafe fn outer_accumulate_avx2(u: &[f32], v: &[f32], acc: &mut [f32]) {
        let n = v.len();
        let chunks = n / 8;
        for (i, &a) in u.iter().enumerate() {
            let row = &mut acc[i * n..(i + 1) * n];
            let va = _mm256_set1_ps(a);
            // SAFETY: chunk c covers [8c, 8c+8) with 8c+8 <= n for both the
            // row and `v`.
            unsafe {
                for c in 0..chunks {
                    let p = row.as_mut_ptr().add(c * 8);
                    let prod = _mm256_mul_ps(va, _mm256_loadu_ps(v.as_ptr().add(c * 8)));
                    _mm256_storeu_ps(p, _mm256_add_ps(_mm256_loadu_ps(p), prod));
                }
            }
            for (o, &b) in row[chunks * 8..].iter_mut().zip(&v[chunks * 8..]) {
                *o += a * b;
            }
        }
    }

    /// AVX2 slice-accumulate attempt; see [`try_transpose`].
    pub(super) fn try_accumulate(tier: IsaTier, dst: &mut [f32], src: &[f32]) -> bool {
        if dispatch::clamp(tier) < IsaTier::Avx2 {
            return false;
        }
        // SAFETY: `clamp` only returns Avx2 or above when AVX2 is detected;
        // lengths were validated by the dispatching wrapper.
        unsafe { accumulate_avx2(dst, src) };
        true
    }

    /// # Safety
    ///
    /// Caller must ensure AVX2 is supported; lengths are validated by the
    /// dispatching wrapper.
    #[target_feature(enable = "avx2")]
    unsafe fn accumulate_avx2(dst: &mut [f32], src: &[f32]) {
        let chunks = dst.len() / 8;
        // SAFETY: chunk c covers [8c, 8c+8) with 8c+8 <= len for both slices.
        unsafe {
            for c in 0..chunks {
                let p = dst.as_mut_ptr().add(c * 8);
                let s = _mm256_loadu_ps(src.as_ptr().add(c * 8));
                _mm256_storeu_ps(p, _mm256_add_ps(_mm256_loadu_ps(p), s));
            }
        }
        accumulate_body(&mut dst[chunks * 8..], &src[chunks * 8..]);
    }

    /// AVX2 cross-entropy-gradient attempt; see [`try_transpose`].
    pub(super) fn try_cross_entropy_grad(
        tier: IsaTier,
        probs: &[f32],
        label: usize,
        weight: f32,
        out: &mut [f32],
    ) -> bool {
        if dispatch::clamp(tier) < IsaTier::Avx2 {
            return false;
        }
        // SAFETY: `clamp` only returns Avx2 or above when AVX2 is detected;
        // lengths were validated by the dispatching wrapper.
        unsafe { cross_entropy_grad_avx2(probs, label, weight, out) };
        true
    }

    /// # Safety
    ///
    /// Caller must ensure AVX2 is supported.
    #[target_feature(enable = "avx2")]
    unsafe fn cross_entropy_grad_avx2(probs: &[f32], label: usize, weight: f32, out: &mut [f32]) {
        cross_entropy_grad_body(probs, label, weight, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    fn seq(len: usize) -> Vec<f32> {
        (0..len).map(|i| ((i * 37 + 11) % 23) as f32 * 0.37 - 3.9).collect()
    }

    #[test]
    fn transpose_matches_tensor_transpose() {
        for (r, c) in [(1, 1), (3, 5), (7, 2), (6, 16)] {
            let src = seq(r * c);
            let t = Tensor::from_vec(src.clone(), &[r, c]).unwrap().transpose().unwrap();
            let mut dst = vec![0.0f32; r * c];
            transpose_into(&src, r, c, &mut dst);
            assert_eq!(dst, t.as_slice());
        }
    }

    #[test]
    fn relu_backward_matches_mask_mul_including_signed_zero() {
        let pre = [1.0, -2.0, 0.0, -0.0, 3.5, f32::NAN];
        let go = [2.0, -3.0, -4.0, 5.0, -1.0, 1.0];
        let mut dst = [0.0f32; 6];
        relu_backward_into(&pre, &go, &mut dst);
        let mask =
            Tensor::from_vec(pre.to_vec(), &[6]).unwrap().map(|x| if x > 0.0 { 1.0 } else { 0.0 });
        let reference = mask.mul(&Tensor::from_vec(go.to_vec(), &[6]).unwrap()).unwrap();
        for (a, b) in dst.iter().zip(reference.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Masked-off negative gradient must produce -0.0, not +0.0.
        assert_eq!(dst[2].to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn max_pool_backward_routes_to_first_strict_max() {
        // Window [[1, 4], [4, 2]]: the first 4 (row 0, col 1) wins the tie.
        let src = [1.0, 4.0, 4.0, 2.0];
        let go = [10.0];
        let mut dst = [9.0f32; 4];
        max_pool_backward_into(&src, 1, 2, 2, 2, &go, &mut dst);
        assert_eq!(dst, [0.0, 10.0, 0.0, 0.0]);
    }

    #[test]
    fn outer_and_slice_accumulate_add_on_top() {
        let u = [2.0, -1.0];
        let v = [3.0, 0.5, 1.0];
        let mut acc = vec![1.0f32; 6];
        outer_accumulate_into(&u, &v, &mut acc);
        assert_eq!(acc, [7.0, 2.0, 3.0, -2.0, 0.5, 0.0]);
        let mut dst = vec![1.0f32, 2.0];
        accumulate_slice_into(&mut dst, &[0.5, -2.0]);
        assert_eq!(dst, [1.5, 0.0]);
    }

    #[test]
    fn cross_entropy_grad_matches_reference_epilogue() {
        let probs = [0.2f32, 0.5, 0.3];
        let mut out = [0.0f32; 3];
        cross_entropy_grad_into(&probs, 1, 0.25, &mut out);
        let mut reference = Tensor::from_vec(probs.to_vec(), &[3]).unwrap();
        reference.as_mut_slice()[1] -= 1.0;
        let reference = reference.scale(0.25);
        for (a, b) in out.iter().zip(reference.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cross_entropy_grad_rejects_bad_label() {
        let mut out = [0.0f32; 2];
        cross_entropy_grad_into(&[0.5, 0.5], 2, 1.0, &mut out);
    }
}
