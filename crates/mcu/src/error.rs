use std::fmt;

/// Errors produced by the MCU substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum McuError {
    /// A model does not fit into the device's weight storage.
    ModelTooLarge {
        /// Model size in bytes.
        model_bytes: u64,
        /// Available weight storage in bytes.
        storage_bytes: u64,
    },
    /// The non-volatile memory is full.
    NonvolatileFull {
        /// Bytes requested for the write.
        requested: usize,
        /// Bytes still free.
        available: usize,
    },
    /// An execution could not finish because the energy environment never
    /// provided enough energy within the allowed waiting time.
    ExecutionStarved {
        /// Name of the task that could not be powered.
        task: String,
        /// Energy the task needed, in millijoules.
        needed_mj: f64,
    },
    /// An empty task graph was submitted for execution.
    EmptyTaskGraph,
    /// A propagated energy-substrate error.
    Energy(ie_energy::EnergyError),
}

impl fmt::Display for McuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McuError::ModelTooLarge { model_bytes, storage_bytes } => write!(
                f,
                "model of {model_bytes} bytes exceeds the {storage_bytes} bytes of weight storage"
            ),
            McuError::NonvolatileFull { requested, available } => {
                write!(
                    f,
                    "non-volatile write of {requested} bytes exceeds the {available} bytes free"
                )
            }
            McuError::ExecutionStarved { task, needed_mj } => {
                write!(f, "task {task} starved waiting for {needed_mj:.3} mJ of harvested energy")
            }
            McuError::EmptyTaskGraph => write!(f, "task graph contains no tasks"),
            McuError::Energy(e) => write!(f, "energy substrate error: {e}"),
        }
    }
}

impl std::error::Error for McuError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            McuError::Energy(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ie_energy::EnergyError> for McuError {
    fn from(e: ie_energy::EnergyError) -> Self {
        McuError::Energy(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty() {
        let errs = [
            McuError::ModelTooLarge { model_bytes: 580_000, storage_bytes: 16_384 },
            McuError::NonvolatileFull { requested: 128, available: 12 },
            McuError::ExecutionStarved { task: "conv1".into(), needed_mj: 0.5 },
            McuError::EmptyTaskGraph,
            McuError::Energy(ie_energy::EnergyError::NegativeAmount { value: -1.0 }),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn energy_errors_convert_and_expose_source() {
        let e: McuError = ie_energy::EnergyError::NegativeAmount { value: -2.0 }.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
