//! `ie-core` — the domain model of the paper: event-triggered intermittent
//! inference with a nonuniformly compressed multi-exit network.
//!
//! The crate ties the substrates together:
//!
//! * [`DeployedModel`] — a compressed multi-exit network as it exists on the
//!   MCU: per-exit FLOPs, energy, latency and accuracy plus incremental
//!   continuation costs,
//! * [`ExitPolicy`] — the decision interface the runtime implements (choose an
//!   exit for an event, decide whether to run an incremental inference, learn
//!   from the outcome); simple built-in policies (greedy, fixed, oracle-energy)
//!   live in [`policies`],
//! * [`EventLoopSimulator`] — replays an event sequence against a power trace
//!   and a policy and produces a [`SimulationReport`],
//! * [`FleetSimulator`] — thousands-to-millions of heterogeneous virtual
//!   devices advanced in parallel under one master seed, with byte-identical
//!   aggregates at any worker count ([`fleet`]),
//! * [`metrics`] — the IEpmJ figure of merit and the per-run statistics every
//!   experiment in the paper reports,
//! * [`ExperimentConfig`] — the Section V-A experimental setup (solar trace,
//!   500 events, MSP432 cost model, 16 KB / 1.15 M-FLOP targets) shared by the
//!   benches, examples and tests.
//!
//! # Example
//!
//! ```
//! use ie_core::{DeployedModel, EventLoopSimulator, ExperimentConfig};
//! use ie_core::policies::GreedyAffordablePolicy;
//!
//! let config = ExperimentConfig::paper_default();
//! let model = DeployedModel::uncompressed_reference(&config)?;
//! let mut policy = GreedyAffordablePolicy::new();
//! let report = EventLoopSimulator::new(&config).run(&model, &mut policy)?;
//! assert_eq!(report.total_events, config.num_events);
//! # Ok::<(), ie_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod deployed;
mod error;
pub mod fleet;
pub mod metrics;
pub mod policies;
mod policy;
mod simulator;

pub use config::{ExperimentConfig, FaultConfig};
pub use deployed::DeployedModel;
pub use error::CoreError;
pub use fleet::{FleetAccumulator, FleetConfig, FleetReport, FleetSimulator};
pub use metrics::{EventOutcome, EventRecord, RecoveryStats, SimulationReport};
pub use policy::{ContinueContext, EventContext, EventFeedback, ExitChoice, ExitPolicy};
pub use simulator::EventLoopSimulator;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
