use ie_tensor::TensorError;
use std::fmt;

/// Errors produced by network construction, inference and training.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// A layer received an input whose shape does not match its expectation.
    InputShapeMismatch {
        /// Name of the layer reporting the problem.
        layer: String,
        /// Shape the layer expected.
        expected: Vec<usize>,
        /// Shape the layer received.
        actual: Vec<usize>,
    },
    /// An exit index outside `0..num_exits` was requested.
    InvalidExit {
        /// The requested exit index.
        requested: usize,
        /// The number of exits the network actually has.
        available: usize,
    },
    /// Incremental inference was asked to continue to an exit that is not
    /// strictly deeper than the one already evaluated.
    NonMonotonicExit {
        /// The exit already reached.
        current: usize,
        /// The exit requested next.
        requested: usize,
    },
    /// A class label outside the number of classes was supplied.
    InvalidLabel {
        /// The offending label.
        label: usize,
        /// The number of classes.
        classes: usize,
    },
    /// The architecture specification is inconsistent (e.g. an exit attached
    /// to a non-existent trunk layer).
    InvalidSpec(String),
    /// A planned continuation was requested before any planned forward pass
    /// populated the execution plan's cached trunk state.
    MissingPlannedState,
    /// A sharded-evaluation worker thread panicked. Instead of aborting the
    /// whole process on join, the panic is surfaced as an error naming the
    /// worker and its sample shard so long-running callers (the serving
    /// loop) can degrade gracefully.
    WorkerPanic {
        /// Index of the panicking worker (= shard index).
        worker: usize,
        /// First sample index of the worker's shard.
        shard_start: usize,
        /// Number of samples in the worker's shard.
        shard_len: usize,
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::InputShapeMismatch { layer, expected, actual } => write!(
                f,
                "layer {layer} expected input shape {expected:?}, received {actual:?}"
            ),
            NnError::InvalidExit { requested, available } => {
                write!(f, "exit {requested} requested but network has {available} exits")
            }
            NnError::NonMonotonicExit { current, requested } => write!(
                f,
                "incremental inference must move to a deeper exit: currently at {current}, requested {requested}"
            ),
            NnError::InvalidLabel { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            NnError::InvalidSpec(msg) => write!(f, "invalid architecture spec: {msg}"),
            NnError::MissingPlannedState => write!(
                f,
                "continue_to_exit_with called on an execution plan with no cached forward state"
            ),
            NnError::WorkerPanic { worker, shard_start, shard_len, message } => write!(
                f,
                "evaluation worker {worker} panicked on samples \
                 {shard_start}..{} ({shard_len} samples): {message}",
                shard_start + shard_len
            ),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty() {
        let errs: Vec<NnError> = vec![
            NnError::Tensor(TensorError::EmptyTensor),
            NnError::InputShapeMismatch {
                layer: "conv1".into(),
                expected: vec![3, 32, 32],
                actual: vec![1, 28, 28],
            },
            NnError::InvalidExit { requested: 5, available: 3 },
            NnError::NonMonotonicExit { current: 2, requested: 1 },
            NnError::InvalidLabel { label: 12, classes: 10 },
            NnError::InvalidSpec("exit after missing layer".into()),
            NnError::WorkerPanic {
                worker: 1,
                shard_start: 30,
                shard_len: 30,
                message: "boom".into(),
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn tensor_errors_convert() {
        let e: NnError = TensorError::EmptyTensor.into();
        assert!(matches!(e, NnError::Tensor(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
