//! Property-based tests of the tensor substrate.

use ie_tensor::{col2im, col2im_into, im2col, im2col_into, Conv2dGeometry, Tensor, Workspace};
use proptest::prelude::*;

fn arb_matrix(max_dim: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Tensor::from_vec(data, &[r, c]).expect("length matches shape"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Matrix multiplication with the identity is a no-op (up to float exactness,
    /// which holds because identity rows have a single 1).
    #[test]
    fn matmul_identity_is_neutral(m in arb_matrix(6)) {
        let n = m.dims()[1];
        let result = m.matmul(&Tensor::eye(n)).expect("shapes are compatible");
        prop_assert_eq!(result, m);
    }

    /// (A·B)ᵀ == Bᵀ·Aᵀ for arbitrary compatible matrices.
    #[test]
    fn matmul_transpose_identity(a in arb_matrix(5), b in arb_matrix(5)) {
        // Make the shapes compatible by construction: b reshaped to [a_cols, x].
        let k = a.dims()[1];
        let total = b.len();
        let cols = (total / k).max(1);
        let b = Tensor::from_vec(
            b.as_slice().iter().copied().chain(std::iter::repeat(0.0)).take(k * cols).collect(),
            &[k, cols],
        ).expect("constructed shape is consistent");
        let left = a.matmul(&b).expect("compatible").transpose().expect("rank 2");
        let right = b.transpose().expect("rank 2").matmul(&a.transpose().expect("rank 2")).expect("compatible");
        for (l, r) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((l - r).abs() < 1e-3, "{l} vs {r}");
        }
    }

    /// Element-wise addition commutes and subtraction is its inverse.
    #[test]
    fn add_commutes_and_sub_inverts(a in arb_matrix(6)) {
        let b = a.map(|x| x * 0.5 - 1.0);
        let ab = a.add(&b).expect("same shape");
        let ba = b.add(&a).expect("same shape");
        prop_assert_eq!(ab.clone(), ba);
        let back = ab.sub(&b).expect("same shape");
        for (x, y) in back.as_slice().iter().zip(a.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Reshape preserves the sum and the element count.
    #[test]
    fn reshape_preserves_contents(a in arb_matrix(6)) {
        let flat = a.reshape(&[a.len()]).expect("same element count");
        prop_assert_eq!(flat.len(), a.len());
        prop_assert!((flat.sum() - a.sum()).abs() < 1e-4);
    }

    /// ReLU output is non-negative and never exceeds the input.
    #[test]
    fn relu_bounds(a in arb_matrix(6)) {
        let r = a.relu();
        for (x, y) in r.as_slice().iter().zip(a.as_slice()) {
            prop_assert!(*x >= 0.0);
            prop_assert!(*x >= *y || *x == 0.0);
        }
    }

    /// `matmul_into` is bit-identical to the allocating `matmul` across random
    /// shapes, and a reused `Workspace` slot carries no stale state between
    /// back-to-back calls.
    #[test]
    fn matmul_into_is_bit_identical_and_workspace_reuse_is_clean(
        a1 in arb_matrix(6),
        a2 in arb_matrix(6),
        n in 1usize..6,
    ) {
        let mut ws = Workspace::new();
        for a in [&a1, &a2] {
            let (m, k) = (a.dims()[0], a.dims()[1]);
            // A rhs whose contents depend on the lhs, so the two rounds differ.
            let b = Tensor::from_vec(
                (0..k * n).map(|i| (i as f32 * 0.25) - a.as_slice()[i % a.len()]).collect(),
                &[k, n],
            ).expect("constructed shape is consistent");
            let reference = a.matmul(&b).expect("compatible shapes");
            // Fresh output tensor.
            let mut out = Tensor::zeros(&[m, n]);
            a.matmul_into(&b, &mut out).expect("compatible shapes");
            prop_assert_eq!(out.as_slice(), reference.as_slice());
            // Reused (possibly dirty, possibly oversized) workspace slot.
            ws.ensure_slot(0, m * n);
            ie_tensor::gemm_into(a.as_slice(), b.as_slice(), &mut ws.slot_mut(0)[..m * n], m, k, n);
            for (w, r) in ws.slot(0)[..m * n].iter().zip(reference.as_slice()) {
                prop_assert_eq!(w.to_bits(), r.to_bits());
            }
            // Sparse-aware kernel agrees with the dense kernel.
            let sparse = a.matmul_sparse_aware(&b).expect("compatible shapes");
            prop_assert_eq!(sparse.as_slice(), reference.as_slice());
        }
    }

    /// `matvec_into` is bit-identical to the allocating `matvec`.
    #[test]
    fn matvec_into_is_bit_identical(a in arb_matrix(6)) {
        let k = a.dims()[1];
        let x = Tensor::from_vec((0..k).map(|i| i as f32 - 2.5).collect(), &[k])
            .expect("length matches shape");
        let reference = a.matvec(&x).expect("compatible shapes");
        let mut out = Tensor::zeros(&[a.dims()[0]]);
        a.matvec_into(&x, &mut out).expect("compatible shapes");
        for (o, r) in out.as_slice().iter().zip(reference.as_slice()) {
            prop_assert_eq!(o.to_bits(), r.to_bits());
        }
    }

    /// `im2col_into` / `col2im_into` are bit-identical to the allocating
    /// versions across random geometries, including when the target buffers
    /// start out dirty (reuse must fully overwrite them).
    #[test]
    fn im2col_and_col2im_into_are_bit_identical(
        c in 1usize..3, hw in 3usize..7, k in 1usize..4, pad in 0usize..2, stride in 1usize..3,
    ) {
        prop_assume!(hw + 2 * pad >= k);
        let geom = Conv2dGeometry {
            in_channels: c, in_h: hw, in_w: hw, kernel: k, stride, padding: pad,
        };
        let image = Tensor::from_vec(
            (0..c * hw * hw).map(|i| (i as f32).sin()).collect(),
            &[c, hw, hw],
        ).expect("length matches shape");
        let cols_ref = im2col(&image, &geom).expect("valid geometry");
        let mut ws = Workspace::new();
        ws.ensure_slot(0, geom.col_len());
        ws.slot_mut(0).fill(f32::NAN); // poison: stale state must not leak
        im2col_into(image.as_slice(), &geom, &mut ws.slot_mut(0)[..geom.col_len()])
            .expect("valid geometry");
        for (w, r) in ws.slot(0)[..geom.col_len()].iter().zip(cols_ref.as_slice()) {
            prop_assert_eq!(w.to_bits(), r.to_bits());
        }
        let back_ref = col2im(&cols_ref, &geom).expect("valid geometry");
        ws.ensure_slot(1, image.len());
        ws.slot_mut(1).fill(f32::NAN);
        col2im_into(cols_ref.as_slice(), &geom, &mut ws.slot_mut(1)[..image.len()])
            .expect("valid geometry");
        for (w, r) in ws.slot(1)[..image.len()].iter().zip(back_ref.as_slice()) {
            prop_assert_eq!(w.to_bits(), r.to_bits());
        }
    }

    /// im2col of a constant image yields columns whose sums never exceed the
    /// kernel area times the constant (padding only removes mass).
    #[test]
    fn im2col_column_mass_is_bounded(c in 1usize..3, hw in 3usize..7, k in 1usize..4, pad in 0usize..2) {
        prop_assume!(hw + 2 * pad >= k);
        // With padding >= kernel a window can lie entirely in the zero padding,
        // so the "every patch overlaps a pixel" part only holds for pad < k.
        prop_assume!(pad < k);
        let geom = Conv2dGeometry { in_channels: c, in_h: hw, in_w: hw, kernel: k, stride: 1, padding: pad };
        let image = Tensor::full(&[c, hw, hw], 1.0);
        let cols = im2col(&image, &geom).expect("valid geometry");
        let rows = cols.dims()[0];
        let ncols = cols.dims()[1];
        prop_assert_eq!(rows, c * k * k);
        for col in 0..ncols {
            let sum: f32 = (0..rows).map(|r| cols.get(&[r, col]).expect("in range")).sum();
            prop_assert!(sum <= (c * k * k) as f32 + 1e-5);
            prop_assert!(sum >= 1.0 - 1e-5, "every patch overlaps at least one pixel");
        }
    }
}
