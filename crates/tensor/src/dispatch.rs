//! Runtime ISA dispatch: one binary, the best kernel the machine can run.
//!
//! The hot kernels of this crate (GEMM, the sparse axpy, max-pool, softmax,
//! the quantize/dequantize epilogues and the integer madd GEMM) each exist in
//! up to three **tiers**:
//!
//! | tier | requires | what it buys |
//! |------|----------|--------------|
//! | [`IsaTier::Portable`] | nothing (baseline x86-64 / any arch) | safe Rust, LLVM autovectorization at the baseline width |
//! | [`IsaTier::Avx2`] | AVX2 (+FMA present, unused — see below) | 8-lane `f32` / 16-lane `i16` kernels via explicit or recompiled-for-AVX2 code |
//! | [`IsaTier::Vnni`] | AVX-512 F/BW/VL/VNNI | `vpdpwssd` for the i16 madd GEMM: fuses `vpmaddwd`'s multiply-add-pairs with the accumulate into one instruction, at 512-bit width (twice AVX2's lanes) |
//!
//! The running machine's best supported tier is detected once with `cpuid`
//! (via `is_x86_feature_detected!`) and cached in a [`std::sync::OnceLock`];
//! after the first call a dispatch decision is a single atomic load. The
//! historical alternative — a static `-C target-feature=+avx2` in
//! `.cargo/config.toml` — produced an illegal-instruction trap on pre-AVX2
//! machines and silently benchmarked baseline code everywhere the flag was
//! not set; runtime dispatch replaces it.
//!
//! # Bit-identity across tiers
//!
//! Every tiered kernel produces **bit-identical** results on every tier (this
//! is property-tested; see `tests/tier_equivalence.rs`):
//!
//! * integer kernels accumulate in wrapping `i32`, which is associative, so
//!   any vector re-blocking is exact;
//! * `f32` kernels fix one reduction order per output element (ascending
//!   depth in the GEMMs, an 8-lane tree in the dot products and softmax
//!   reductions) and every tier implements exactly that order;
//! * elementwise `f32` steps (quantize, dequantize, relu, scale) round each
//!   element through the same sequence of individually rounded operations —
//!   in particular no tier contracts `mul + add` into an FMA, which would
//!   change results;
//! * max-style folds use the `vmaxps`/`vpmaxs*` select `if v > acc { v }`
//!   in every tier, so NaN and `-0.0` ties resolve identically.
//!
//! # Overriding for tests and benchmarks
//!
//! The `IE_ISA` environment variable forces a *lower* tier: `portable`,
//! `avx2` or `vnni` (values are case-insensitive; unknown values are
//! ignored). The override never raises the tier above what the hardware
//! supports — `IE_ISA=vnni` on an AVX2-only machine runs the AVX2 tier — so
//! it is always safe to set. The CI portable-tier job runs the whole test
//! suite under `IE_ISA=portable` to keep the fallback green, and in-process
//! tests iterate [`supported_tiers`] through the explicit-tier kernel entry
//! points instead.

use std::sync::OnceLock;

/// An instruction-set tier a kernel can be dispatched to, ordered from the
/// universal baseline to the most capable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IsaTier {
    /// Safe Rust, no feature requirements beyond the compile target.
    Portable,
    /// AVX2 256-bit integer/float vectors (x86-64).
    Avx2,
    /// AVX-512 VNNI (`vpdpwssd`) on top of AVX-512 F/BW/VL (x86-64).
    Vnni,
}

impl IsaTier {
    /// Stable lower-case name of the tier (`portable` / `avx2` / `vnni`),
    /// used by the `IE_ISA` override and reported in benchmark output.
    pub fn name(self) -> &'static str {
        match self {
            IsaTier::Portable => "portable",
            IsaTier::Avx2 => "avx2",
            IsaTier::Vnni => "vnni",
        }
    }

    /// Parses a tier name as accepted by the `IE_ISA` override.
    pub fn parse(name: &str) -> Option<IsaTier> {
        match name.trim().to_ascii_lowercase().as_str() {
            "portable" | "scalar" => Some(IsaTier::Portable),
            "avx2" => Some(IsaTier::Avx2),
            "vnni" | "avx512vnni" | "avx512-vnni" => Some(IsaTier::Vnni),
            _ => None,
        }
    }
}

/// Best tier the running machine supports, detected once via `cpuid`.
#[cfg(target_arch = "x86_64")]
fn detect() -> IsaTier {
    if std::is_x86_feature_detected!("avx512f")
        && std::is_x86_feature_detected!("avx512bw")
        && std::is_x86_feature_detected!("avx512vl")
        && std::is_x86_feature_detected!("avx512vnni")
    {
        IsaTier::Vnni
    } else if std::is_x86_feature_detected!("avx2") {
        IsaTier::Avx2
    } else {
        IsaTier::Portable
    }
}

/// Non-x86-64 targets have exactly one tier.
#[cfg(not(target_arch = "x86_64"))]
fn detect() -> IsaTier {
    IsaTier::Portable
}

/// Best tier the running machine supports (cached; the `IE_ISA` override
/// does **not** affect this).
pub fn detected() -> IsaTier {
    static DETECTED: OnceLock<IsaTier> = OnceLock::new();
    *DETECTED.get_or_init(detect)
}

/// The tier the auto-dispatched kernels run: the detected tier, lowered by a
/// valid `IE_ISA` override. Cached after the first call (the environment is
/// read once per process), so a dispatch decision costs one atomic load.
pub fn active() -> IsaTier {
    static ACTIVE: OnceLock<IsaTier> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        let hw = detected();
        match std::env::var("IE_ISA").ok().as_deref().and_then(IsaTier::parse) {
            Some(requested) => requested.min(hw),
            None => hw,
        }
    })
}

/// Clamps an explicitly requested tier to what the hardware supports —
/// running (say) an AVX2 kernel on a machine without AVX2 would be undefined
/// behaviour, so every explicit-tier kernel entry point routes through this.
pub(crate) fn clamp(tier: IsaTier) -> IsaTier {
    tier.min(detected())
}

/// The tiers the running machine supports, lowest first — what the
/// tier-equivalence tests iterate. `IE_ISA=vnni` on hardware without VNNI is
/// thereby "skipped gracefully": the tier simply never appears here.
pub fn supported_tiers() -> &'static [IsaTier] {
    const ALL: [IsaTier; 3] = [IsaTier::Portable, IsaTier::Avx2, IsaTier::Vnni];
    match detected() {
        IsaTier::Portable => &ALL[..1],
        IsaTier::Avx2 => &ALL[..2],
        IsaTier::Vnni => &ALL[..3],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_names_round_trip_through_parse() {
        for tier in [IsaTier::Portable, IsaTier::Avx2, IsaTier::Vnni] {
            assert_eq!(IsaTier::parse(tier.name()), Some(tier));
        }
        assert_eq!(IsaTier::parse(" AVX2 "), Some(IsaTier::Avx2));
        assert_eq!(IsaTier::parse("avx512-vnni"), Some(IsaTier::Vnni));
        assert_eq!(IsaTier::parse("sse9"), None);
    }

    #[test]
    fn active_tier_is_supported_and_respects_a_set_override() {
        let active = active();
        assert!(supported_tiers().contains(&active));
        assert!(active <= detected());
        // When the suite runs under an IE_ISA override (the CI portable-tier
        // job), the cached active tier must honour it.
        if let Some(requested) = std::env::var("IE_ISA").ok().as_deref().and_then(IsaTier::parse) {
            assert_eq!(active, requested.min(detected()));
        }
    }

    #[test]
    fn supported_tiers_are_ordered_and_start_portable() {
        let tiers = supported_tiers();
        assert_eq!(tiers.first(), Some(&IsaTier::Portable));
        assert!(tiers.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(tiers.last(), Some(&detected()));
    }

    #[test]
    fn clamp_never_exceeds_the_hardware() {
        assert!(clamp(IsaTier::Vnni) <= detected());
        assert_eq!(clamp(IsaTier::Portable), IsaTier::Portable);
    }
}
