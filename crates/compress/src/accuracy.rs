//! Exit-accuracy estimation under a compression policy.
//!
//! The search needs a deterministic map from a candidate policy to the
//! accuracy of every exit. Two estimators are provided:
//!
//! * [`CalibratedAccuracyModel`] — an analytical model anchored to the
//!   accuracies the paper reports for the CIFAR-10 backbone (64.9 / 72.0 /
//!   73.0 % at full precision and the uniform-vs-nonuniform drops of
//!   Fig. 1(b)). This substitutes for retraining on CIFAR-10, which is not
//!   available in this environment; see `DESIGN.md`.
//! * [`EmpiricalAccuracyEstimator`] — applies the policy to a real
//!   [`ie_nn::MultiExitNetwork`] and measures accuracy on a real dataset, so
//!   the exact same search code also runs end-to-end without the analytical
//!   shortcut (used by the tests and the synthetic examples).

use crate::apply::apply_policy;
use crate::{CompressionPolicy, Result};
use ie_nn::dataset::Sample;
use ie_nn::spec::CompressibleLayer;
use ie_nn::MultiExitNetwork;

/// Maps a compression policy to the accuracy of every exit.
pub trait ExitAccuracyEstimator {
    /// Number of exits the estimator covers.
    fn num_exits(&self) -> usize;

    /// Accuracy (fraction in `[0, 1]`) of each exit under `policy`.
    ///
    /// `layers` are the compressible layers of the architecture in canonical
    /// order; `policy` has one entry per layer.
    ///
    /// # Errors
    ///
    /// Implementations may fail when the policy cannot be applied (length
    /// mismatch, shape problems on a real network, …).
    fn exit_accuracy(
        &self,
        layers: &[CompressibleLayer],
        policy: &CompressionPolicy,
    ) -> Result<Vec<f64>>;

    /// Batched, sharded variant of [`Self::exit_accuracy`]: estimators that
    /// measure accuracy by actually running a network (the empirical
    /// estimator) stream their calibration set through per-worker
    /// [`ie_nn::BatchPlan`]s across `threads` threads. Results are identical
    /// to [`Self::exit_accuracy`] for every `(batch, threads)` combination —
    /// the batched forward path is bit-identical per sample and the shard
    /// reduction is order-fixed — so this is purely a throughput knob.
    /// Analytical estimators fall back to the plain path.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Self::exit_accuracy`].
    fn exit_accuracy_batched(
        &self,
        layers: &[CompressibleLayer],
        policy: &CompressionPolicy,
        batch: usize,
        threads: usize,
    ) -> Result<Vec<f64>> {
        let _ = (batch, threads);
        self.exit_accuracy(layers, policy)
    }

    /// Integer-execution variant: estimators that run a real network apply
    /// the policy with [`crate::apply::apply_policy_quantized`] and measure
    /// accuracy through the quantized plans (i8/i16 GEMM + requantization),
    /// so the estimate reflects true integer inference — including
    /// activation quantization, which the fake-quant `f32` round trip does
    /// not model. Analytical estimators fall back to the plain path.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Self::exit_accuracy`].
    fn exit_accuracy_quantized(
        &self,
        layers: &[CompressibleLayer],
        policy: &CompressionPolicy,
        batch: usize,
        threads: usize,
    ) -> Result<Vec<f64>> {
        let _ = (batch, threads);
        self.exit_accuracy(layers, policy)
    }
}

/// Analytical accuracy model calibrated to the paper's reported numbers.
///
/// Each exit `i` has a full-precision ceiling `A_i`. A policy inflicts a
/// per-layer *damage* `d_l` combining pruning and quantization harm, with
/// convolution layers far more sensitive to low bitwidths than the large,
/// redundant fully-connected layers (which is why the paper's search drives
/// `FC-B21`/`FC-B31` to 1 bit). The exit's accuracy is
/// `A_i · (1 − s_i · Σ_l share_{l,i} · d_l)` where `share_{l,i}` weights each
/// layer by its FLOPs contribution to that exit and `s_i` is the exit's
/// sensitivity — shallow exits have less redundancy and therefore degrade
/// faster, exactly the effect Fig. 1(b) illustrates.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibratedAccuracyModel {
    max_accuracy: Vec<f64>,
    exit_sensitivity: Vec<f64>,
    prune_weight_conv: f64,
    prune_weight_fc: f64,
    quant_weight_conv: f64,
    quant_weight_fc: f64,
    collapse_weight_conv: f64,
    collapse_weight_fc: f64,
    chance_level: f64,
}

impl CalibratedAccuracyModel {
    /// The calibration used for the paper's 3-exit CIFAR-10 backbone.
    pub fn for_paper_backbone() -> Self {
        CalibratedAccuracyModel {
            max_accuracy: vec![0.649, 0.720, 0.730],
            exit_sensitivity: vec![1.25, 1.0, 0.9],
            prune_weight_conv: 0.08,
            prune_weight_fc: 0.04,
            quant_weight_conv: 0.15,
            quant_weight_fc: 0.03,
            collapse_weight_conv: 1.5,
            collapse_weight_fc: 0.75,
            chance_level: 0.10,
        }
    }

    /// A model with custom per-exit ceilings and default sensitivities — used
    /// for architectures other than the paper backbone (e.g. the tiny test
    /// network).
    pub fn with_ceilings(max_accuracy: Vec<f64>) -> Self {
        let n = max_accuracy.len();
        let exit_sensitivity =
            (0..n).map(|i| 1.25 - 0.35 * i as f64 / (n.max(2) - 1) as f64).collect();
        CalibratedAccuracyModel {
            max_accuracy,
            exit_sensitivity,
            chance_level: 0.10,
            ..Self::for_paper_backbone()
        }
    }

    /// Sets the chance-level floor (e.g. `1 / num_classes`).
    pub fn with_chance_level(mut self, chance: f64) -> Self {
        self.chance_level = chance.clamp(0.0, 1.0);
        self
    }

    /// The full-precision ceiling of each exit.
    pub fn ceilings(&self) -> &[f64] {
        &self.max_accuracy
    }

    fn quant_damage(bits: u8) -> f64 {
        if bits >= 8 {
            0.0
        } else {
            let b = f64::from(bits.max(1));
            ((8.0 - b) / 7.0).powi(2)
        }
    }

    fn layer_damage(&self, layer: &CompressibleLayer, policy: &crate::LayerPolicy) -> f64 {
        let (prune_w, quant_w, collapse_w) = if layer.is_conv {
            (self.prune_weight_conv, self.quant_weight_conv, self.collapse_weight_conv)
        } else {
            (self.prune_weight_fc, self.quant_weight_fc, self.collapse_weight_fc)
        };
        let removed = f64::from(1.0 - policy.preserve_ratio.clamp(0.0, 1.0));
        // Moderate pruning is cheap (the quadratic term); pruning away nearly
        // every channel collapses the layer's representational capacity, which
        // the high-order "collapse" term captures. Without it the search would
        // happily prune to the 5 % floor because the cheaper inferences process
        // more events — a behaviour real CIFAR-10 networks do not survive.
        let prune = prune_w * removed.powi(2) + collapse_w * removed.powi(12);
        let quant = quant_w
            * (Self::quant_damage(policy.weight_bits)
                + 0.5 * Self::quant_damage(policy.activation_bits));
        prune + quant
    }
}

impl ExitAccuracyEstimator for CalibratedAccuracyModel {
    fn num_exits(&self) -> usize {
        self.max_accuracy.len()
    }

    fn exit_accuracy(
        &self,
        layers: &[CompressibleLayer],
        policy: &CompressionPolicy,
    ) -> Result<Vec<f64>> {
        policy.check_length(layers.len())?;
        let mut out = Vec::with_capacity(self.num_exits());
        for exit in 0..self.num_exits() {
            let members: Vec<(&CompressibleLayer, &crate::LayerPolicy)> =
                layers.iter().zip(policy.layers()).filter(|(l, _)| l.used_by_exit(exit)).collect();
            let total_macs: f64 = members.iter().map(|(l, _)| l.macs as f64).sum();
            let damage: f64 = if total_macs > 0.0 {
                members
                    .iter()
                    .map(|(l, p)| (l.macs as f64 / total_macs) * self.layer_damage(l, p))
                    .sum()
            } else {
                0.0
            };
            let sens = self.exit_sensitivity.get(exit).copied().unwrap_or(1.0);
            let acc = self.max_accuracy[exit] * (1.0 - sens * damage);
            out.push(acc.max(self.chance_level));
        }
        Ok(out)
    }
}

/// Calibration budget of the quantized path: activation ranges are observed
/// on this many evaluation samples (the estimator's first ones) before the
/// integer plans are built.
const QUANT_CALIBRATION_SAMPLES: usize = 32;

/// Measures exit accuracy by applying the policy to a real network and
/// evaluating it on held-out samples.
///
/// The batched path keeps one [`ie_nn::train::BatchPlanPool`] across calls:
/// compression changes weights but never the architecture, so the per-worker
/// plans warmed by the first candidate policy serve every later one instead
/// of being re-allocated per evaluation. The quantized path keeps a
/// [`ie_nn::train::QuantPlanPool`] the same way — each candidate policy's
/// weight codes are re-packed into the pooled plans' existing buffers.
#[derive(Debug)]
pub struct EmpiricalAccuracyEstimator {
    network: MultiExitNetwork,
    samples: Vec<Sample>,
    plan_pool: std::sync::Mutex<ie_nn::train::BatchPlanPool>,
    quant_plan_pool: std::sync::Mutex<ie_nn::train::QuantPlanPool>,
}

impl Clone for EmpiricalAccuracyEstimator {
    fn clone(&self) -> Self {
        // Plans are per-instance scratch; a clone starts with a cold pool.
        EmpiricalAccuracyEstimator::new(self.network.clone(), self.samples.clone())
    }
}

impl EmpiricalAccuracyEstimator {
    /// Creates an estimator around a trained network and evaluation samples.
    pub fn new(network: MultiExitNetwork, samples: Vec<Sample>) -> Self {
        EmpiricalAccuracyEstimator {
            network,
            samples,
            plan_pool: std::sync::Mutex::new(ie_nn::train::BatchPlanPool::new()),
            quant_plan_pool: std::sync::Mutex::new(ie_nn::train::QuantPlanPool::new()),
        }
    }

    /// The evaluation samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }
}

impl ExitAccuracyEstimator for EmpiricalAccuracyEstimator {
    fn num_exits(&self) -> usize {
        self.network.num_exits()
    }

    fn exit_accuracy(
        &self,
        layers: &[CompressibleLayer],
        policy: &CompressionPolicy,
    ) -> Result<Vec<f64>> {
        policy.check_length(layers.len())?;
        let mut compressed = self.network.clone();
        apply_policy(&mut compressed, policy)?;
        let accs = ie_nn::train::evaluate(&compressed, &self.samples)?;
        Ok(accs.into_iter().map(f64::from).collect())
    }

    fn exit_accuracy_batched(
        &self,
        layers: &[CompressibleLayer],
        policy: &CompressionPolicy,
        batch: usize,
        threads: usize,
    ) -> Result<Vec<f64>> {
        policy.check_length(layers.len())?;
        let mut compressed = self.network.clone();
        apply_policy(&mut compressed, policy)?;
        // A panicked evaluation must not brick the estimator: the pooled
        // plans are plain buffers, safe to reuse after a poisoned lock.
        let mut pool = self.plan_pool.lock().unwrap_or_else(|e| e.into_inner());
        let accs = ie_nn::train::evaluate_batched_with_pool(
            &compressed,
            &self.samples,
            batch,
            threads,
            &mut pool,
        )?;
        Ok(accs.into_iter().map(f64::from).collect())
    }

    fn exit_accuracy_quantized(
        &self,
        layers: &[CompressibleLayer],
        policy: &CompressionPolicy,
        batch: usize,
        threads: usize,
    ) -> Result<Vec<f64>> {
        policy.check_length(layers.len())?;
        let mut compressed = self.network.clone();
        let calibration = &self.samples[..self.samples.len().min(QUANT_CALIBRATION_SAMPLES)];
        let config = crate::apply::apply_policy_quantized(&mut compressed, policy, calibration)?;
        // As for the batched pool: buffers survive a poisoned lock fine.
        let mut pool = self.quant_plan_pool.lock().unwrap_or_else(|e| e.into_inner());
        let accs = ie_nn::train::evaluate_quantized_with_pool(
            &compressed,
            &config,
            &self.samples,
            batch,
            threads,
            &mut pool,
        )?;
        Ok(accs.into_iter().map(f64::from).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CompressionPolicy;
    use ie_nn::spec::lenet_multi_exit;

    fn layers() -> Vec<CompressibleLayer> {
        lenet_multi_exit().compressible_layers()
    }

    #[test]
    fn full_precision_hits_the_paper_ceilings() {
        let model = CalibratedAccuracyModel::for_paper_backbone();
        let ls = layers();
        let acc = model.exit_accuracy(&ls, &CompressionPolicy::full_precision(ls.len())).unwrap();
        assert!((acc[0] - 0.649).abs() < 1e-9);
        assert!((acc[1] - 0.720).abs() < 1e-9);
        assert!((acc[2] - 0.730).abs() < 1e-9);
    }

    #[test]
    fn uniform_compression_degrades_shallow_exits_most() {
        // Fig. 1(b): uniform compression costs exit 1 ≈7.6 points and exit 3 ≈5.5.
        let model = CalibratedAccuracyModel::for_paper_backbone();
        let ls = layers();
        let uniform = CompressionPolicy::uniform(ls.len(), 0.7, 4, 4).unwrap();
        let acc = model.exit_accuracy(&ls, &uniform).unwrap();
        let drop1 = 0.649 - acc[0];
        let drop3 = 0.730 - acc[2];
        assert!(drop1 > drop3, "shallow exit must lose more: {drop1} vs {drop3}");
        assert!((0.04..0.12).contains(&drop1), "exit-1 drop {drop1}");
        assert!((0.03..0.10).contains(&drop3), "exit-3 drop {drop3}");
        // Accuracies stay in the plausible Fig. 1(b) band.
        assert!((0.55..0.62).contains(&acc[0]), "uniform exit-1 accuracy {}", acc[0]);
        assert!((0.63..0.70).contains(&acc[2]), "uniform exit-3 accuracy {}", acc[2]);
    }

    #[test]
    fn nonuniform_compression_beats_uniform_at_every_exit() {
        // Compress the shallow (exit-1) layers less and the deep layers more,
        // as the paper's nonuniform policy does.
        let model = CalibratedAccuracyModel::for_paper_backbone();
        let ls = layers();
        let uniform = CompressionPolicy::uniform(ls.len(), 0.7, 4, 4).unwrap();
        let nonuniform: CompressionPolicy = ls
            .iter()
            .map(|l| {
                if l.first_exit == 0 {
                    crate::LayerPolicy::new(0.9, 8, 8).unwrap()
                } else if l.is_conv {
                    crate::LayerPolicy::new(0.6, 6, 6).unwrap()
                } else {
                    crate::LayerPolicy::new(0.6, 2, 6).unwrap()
                }
            })
            .collect();
        let acc_u = model.exit_accuracy(&ls, &uniform).unwrap();
        let acc_n = model.exit_accuracy(&ls, &nonuniform).unwrap();
        for (i, (u, n)) in acc_u.iter().zip(&acc_n).enumerate() {
            assert!(n > u, "exit {i}: nonuniform {n} must beat uniform {u}");
        }
    }

    #[test]
    fn one_bit_fc_layers_are_cheap_but_one_bit_convs_are_not() {
        let model = CalibratedAccuracyModel::for_paper_backbone();
        let ls = layers();
        let mut fc_one_bit = CompressionPolicy::full_precision(ls.len());
        let mut conv_one_bit = CompressionPolicy::full_precision(ls.len());
        for (i, l) in ls.iter().enumerate() {
            if !l.is_conv {
                fc_one_bit.layers_mut()[i] = crate::LayerPolicy::new(1.0, 1, 8).unwrap();
            } else {
                conv_one_bit.layers_mut()[i] = crate::LayerPolicy::new(1.0, 1, 8).unwrap();
            }
        }
        let acc_fc = model.exit_accuracy(&ls, &fc_one_bit).unwrap();
        let acc_conv = model.exit_accuracy(&ls, &conv_one_bit).unwrap();
        let drop_fc = 0.730 - acc_fc[2];
        let drop_conv = 0.730 - acc_conv[2];
        assert!(drop_fc < 0.03, "1-bit FC layers should be nearly free: {drop_fc}");
        assert!(drop_conv > 2.0 * drop_fc, "1-bit convs must hurt much more: {drop_conv}");
    }

    #[test]
    fn accuracy_never_falls_below_chance() {
        let model = CalibratedAccuracyModel::for_paper_backbone();
        let ls = layers();
        let brutal = CompressionPolicy::uniform(ls.len(), 0.05, 1, 1).unwrap();
        let acc = model.exit_accuracy(&ls, &brutal).unwrap();
        assert!(acc.iter().all(|&a| a >= 0.10));
    }

    #[test]
    fn policy_length_is_validated() {
        let model = CalibratedAccuracyModel::for_paper_backbone();
        let ls = layers();
        assert!(model.exit_accuracy(&ls, &CompressionPolicy::full_precision(2)).is_err());
    }

    #[test]
    fn with_ceilings_builds_matching_sensitivities() {
        let m = CalibratedAccuracyModel::with_ceilings(vec![0.8, 0.9]);
        assert_eq!(m.num_exits(), 2);
        assert_eq!(m.ceilings(), &[0.8, 0.9]);
    }

    #[test]
    fn empirical_estimator_matches_real_network_behaviour() {
        use ie_nn::dataset::SyntheticDataset;
        use ie_nn::spec::tiny_multi_exit;
        use ie_nn::train::{train, TrainConfig};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let data = SyntheticDataset::generate(3, 8, 120, 0.05, 8);
        let arch = tiny_multi_exit(3);
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = MultiExitNetwork::from_architecture(&arch, &mut rng).unwrap();
        let mut cfg = TrainConfig::for_exits(2);
        cfg.epochs = 5;
        cfg.learning_rate = 0.1;
        train(&mut net, data.train(), data.test(), &cfg).unwrap();

        let estimator = EmpiricalAccuracyEstimator::new(net, data.test().to_vec());
        let ls = arch.compressible_layers();
        let full =
            estimator.exit_accuracy(&ls, &CompressionPolicy::full_precision(ls.len())).unwrap();
        let crushed = estimator
            .exit_accuracy(&ls, &CompressionPolicy::uniform(ls.len(), 0.05, 1, 1).unwrap())
            .unwrap();
        assert!(full.iter().all(|&a| a > 0.5), "trained network beats chance: {full:?}");
        let mean_full: f64 = full.iter().sum::<f64>() / full.len() as f64;
        let mean_crushed: f64 = crushed.iter().sum::<f64>() / crushed.len() as f64;
        assert!(
            mean_crushed <= mean_full + 1e-9,
            "extreme compression cannot improve mean accuracy: {mean_crushed} vs {mean_full}"
        );
    }
}
