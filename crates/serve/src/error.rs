use std::fmt;

/// Errors produced by the serving loop.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The server or batching window was misconfigured.
    InvalidConfig(String),
    /// The request stream violated the serving contract (e.g. arrivals out
    /// of order, non-finite timestamps).
    InvalidRequest(String),
    /// Propagated inference error from a worker's batched forward pass.
    Nn(ie_nn::NnError),
    /// A worker thread was lost (panicked or disconnected); the message
    /// names the worker so the operator can correlate logs.
    WorkerLost(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidConfig(msg) => write!(f, "invalid serve configuration: {msg}"),
            ServeError::InvalidRequest(msg) => write!(f, "invalid request stream: {msg}"),
            ServeError::Nn(e) => write!(f, "inference error: {e}"),
            ServeError::WorkerLost(msg) => write!(f, "serve worker lost: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ie_nn::NnError> for ServeError {
    fn from(e: ie_nn::NnError) -> Self {
        // A worker panic surfacing through the shared evaluation plumbing is
        // a lost worker, not a shape problem — keep the distinction.
        match e {
            ie_nn::NnError::WorkerPanic { .. } => ServeError::WorkerLost(e.to_string()),
            other => ServeError::Nn(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty_and_panics_map_to_worker_lost() {
        let errs: Vec<ServeError> = vec![
            ServeError::InvalidConfig("zero window".into()),
            ServeError::InvalidRequest("arrivals not sorted".into()),
            ie_nn::NnError::MissingPlannedState.into(),
            ServeError::WorkerLost("worker 2".into()),
        ];
        for e in &errs {
            assert!(!e.to_string().is_empty());
        }
        let panic: ServeError = ie_nn::NnError::WorkerPanic {
            worker: 1,
            shard_start: 0,
            shard_len: 4,
            message: "boom".into(),
        }
        .into();
        assert!(matches!(panic, ServeError::WorkerLost(ref msg) if msg.contains("worker 1")));
    }
}
