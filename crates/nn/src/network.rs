use crate::loss::{confidence, cross_entropy, softmax};
use crate::spec::{LayerSpecKind, MultiExitArchitecture};
use crate::{Conv2d, Dense, Flatten, Layer, MaxPool2d, NnError, Relu, Result};
use ie_tensor::Tensor;
use rand::Rng;

/// The result of evaluating one exit on one input.
#[derive(Debug, Clone, PartialEq)]
pub struct ExitOutput {
    /// Which exit produced the result.
    pub exit: usize,
    /// Raw logits of the exit classifier.
    pub logits: Tensor,
    /// Softmax probabilities.
    pub probs: Tensor,
    /// Predicted class (argmax of the probabilities).
    pub prediction: usize,
    /// Entropy-based confidence in `[0, 1]` (see [`crate::loss::confidence`]).
    pub confidence: f32,
}

/// Cached trunk state that allows incremental inference: after exiting at
/// exit `i`, the network can continue to a deeper exit without recomputing
/// the trunk segments already executed.
#[derive(Debug, Clone, PartialEq)]
pub struct ForwardState {
    trunk_activation: Tensor,
    segments_done: usize,
    last_exit: usize,
}

impl ForwardState {
    /// The exit most recently evaluated from this state.
    pub fn last_exit(&self) -> usize {
        self.last_exit
    }

    /// Number of trunk segments whose output is cached.
    pub fn segments_done(&self) -> usize {
        self.segments_done
    }
}

/// An executable multi-exit network instantiated from a
/// [`MultiExitArchitecture`].
///
/// # Example
///
/// ```
/// use ie_nn::{spec::tiny_multi_exit, MultiExitNetwork};
/// use ie_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let net = MultiExitNetwork::from_architecture(&tiny_multi_exit(3), &mut rng)?;
/// let x = Tensor::zeros(&[1, 8, 8]);
/// let (out, state) = net.forward_to_exit(&x, 0)?;
/// assert_eq!(out.exit, 0);
/// let (deeper, _) = net.continue_to_exit(&state, 1)?;
/// assert_eq!(deeper.exit, 1);
/// # Ok::<(), ie_nn::NnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MultiExitNetwork {
    arch: MultiExitArchitecture,
    segments: Vec<Vec<Layer>>,
    branches: Vec<Vec<Layer>>,
}

fn build_layer<R: Rng + ?Sized>(rng: &mut R, spec: &crate::spec::LayerSpec) -> Layer {
    match &spec.kind {
        LayerSpecKind::Conv { in_channels, out_channels, kernel, stride, padding } => Conv2d::new(
            rng,
            *in_channels,
            *out_channels,
            *kernel,
            *stride,
            *padding,
            spec.input_dims[1],
            spec.input_dims[2],
        )
        .into(),
        LayerSpecKind::Dense { in_features, out_features } => {
            Dense::new(rng, *in_features, *out_features).into()
        }
        LayerSpecKind::Relu => Relu::new().into(),
        LayerSpecKind::MaxPool { size } => MaxPool2d::new(*size).into(),
        LayerSpecKind::Flatten => Flatten::new().into(),
    }
}

impl MultiExitNetwork {
    /// Instantiates a network with freshly initialised weights.
    ///
    /// # Errors
    ///
    /// Currently infallible for architectures produced by
    /// [`crate::spec::ArchitectureBuilder`]; the `Result` is kept for future
    /// spec validation.
    pub fn from_architecture<R: Rng + ?Sized>(
        arch: &MultiExitArchitecture,
        rng: &mut R,
    ) -> Result<Self> {
        let segments = arch
            .segments()
            .iter()
            .map(|seg| seg.iter().map(|s| build_layer(rng, s)).collect())
            .collect();
        let branches = arch
            .branches()
            .iter()
            .map(|br| br.iter().map(|s| build_layer(rng, s)).collect())
            .collect();
        Ok(MultiExitNetwork { arch: arch.clone(), segments, branches })
    }

    /// The architecture this network was built from.
    pub fn architecture(&self) -> &MultiExitArchitecture {
        &self.arch
    }

    /// Number of exits.
    pub fn num_exits(&self) -> usize {
        self.branches.len()
    }

    /// Total number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.segments
            .iter()
            .flatten()
            .chain(self.branches.iter().flatten())
            .map(Layer::parameter_count)
            .sum()
    }

    /// Mutable access to the trunk-segment layers (used by the compression
    /// crate to prune and quantize weights in place).
    pub fn segments_mut(&mut self) -> &mut Vec<Vec<Layer>> {
        &mut self.segments
    }

    /// Mutable access to the branch layers.
    pub fn branches_mut(&mut self) -> &mut Vec<Vec<Layer>> {
        &mut self.branches
    }

    /// Shared access to the trunk-segment layers.
    pub fn segments(&self) -> &Vec<Vec<Layer>> {
        &self.segments
    }

    /// Shared access to the branch layers.
    pub fn branches(&self) -> &Vec<Vec<Layer>> {
        &self.branches
    }

    /// All layers in gradient-application order: trunk segments flattened,
    /// then branches flattened — the exact iteration order of
    /// [`Self::apply_gradients`] and [`Self::zero_grad`], which the
    /// [`crate::BackwardPlan`] gradient store mirrors.
    pub(crate) fn layers_mut(&mut self) -> impl Iterator<Item = &mut Layer> {
        self.segments.iter_mut().flatten().chain(self.branches.iter_mut().flatten())
    }

    fn check_exit(&self, exit: usize) -> Result<()> {
        if exit >= self.num_exits() {
            return Err(NnError::InvalidExit { requested: exit, available: self.num_exits() });
        }
        Ok(())
    }

    fn run_layers(layers: &[Layer], input: &Tensor) -> Result<Tensor> {
        let mut x = input.clone();
        for layer in layers {
            x = layer.forward(&x)?;
        }
        Ok(x)
    }

    fn exit_output(&self, exit: usize, logits: Tensor) -> Result<ExitOutput> {
        let probs = softmax(&logits)?;
        let prediction = probs.argmax()?;
        let conf = confidence(&probs);
        Ok(ExitOutput { exit, logits, probs, prediction, confidence: conf })
    }

    /// Runs inference from the raw input up to (and including) `exit`.
    ///
    /// Returns the exit output together with a [`ForwardState`] that caches
    /// the trunk activation so a later [`Self::continue_to_exit`] call does
    /// not repeat the shared work.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidExit`] for an unknown exit or a shape error
    /// if the input does not match the architecture.
    pub fn forward_to_exit(
        &self,
        input: &Tensor,
        exit: usize,
    ) -> Result<(ExitOutput, ForwardState)> {
        self.check_exit(exit)?;
        let mut trunk = input.clone();
        for segment in &self.segments[..=exit] {
            trunk = Self::run_layers(segment, &trunk)?;
        }
        let logits = Self::run_layers(&self.branches[exit], &trunk)?;
        let out = self.exit_output(exit, logits)?;
        Ok((
            out,
            ForwardState { trunk_activation: trunk, segments_done: exit + 1, last_exit: exit },
        ))
    }

    /// Continues a previous inference to a strictly deeper exit, re-using the
    /// cached trunk activation (the paper's *incremental inference*).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NonMonotonicExit`] when `exit` is not deeper than
    /// the state's last exit, or [`NnError::InvalidExit`] when it does not
    /// exist.
    pub fn continue_to_exit(
        &self,
        state: &ForwardState,
        exit: usize,
    ) -> Result<(ExitOutput, ForwardState)> {
        self.check_exit(exit)?;
        if exit <= state.last_exit {
            return Err(NnError::NonMonotonicExit { current: state.last_exit, requested: exit });
        }
        let mut trunk = state.trunk_activation.clone();
        for segment in &self.segments[state.segments_done..=exit] {
            trunk = Self::run_layers(segment, &trunk)?;
        }
        let logits = Self::run_layers(&self.branches[exit], &trunk)?;
        let out = self.exit_output(exit, logits)?;
        Ok((
            out,
            ForwardState { trunk_activation: trunk, segments_done: exit + 1, last_exit: exit },
        ))
    }

    /// Evaluates every exit on the same input (used for training and for
    /// measuring per-exit accuracy).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the layers.
    pub fn forward_all(&self, input: &Tensor) -> Result<Vec<ExitOutput>> {
        let mut outputs = Vec::with_capacity(self.num_exits());
        let mut trunk = input.clone();
        for (i, segment) in self.segments.iter().enumerate() {
            trunk = Self::run_layers(segment, &trunk)?;
            let logits = Self::run_layers(&self.branches[i], &trunk)?;
            outputs.push(self.exit_output(i, logits)?);
        }
        Ok(outputs)
    }

    /// Accumulates gradients for one `(input, label)` pair using a weighted
    /// sum of the per-exit cross-entropy losses (the standard multi-exit
    /// training objective). Returns the combined loss.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidLabel`] for a label outside the class range,
    /// [`NnError::InvalidExit`] when `exit_weights` has the wrong length, or a
    /// shape error from the layers.
    pub fn backward(&mut self, input: &Tensor, label: usize, exit_weights: &[f32]) -> Result<f32> {
        if exit_weights.len() != self.num_exits() {
            return Err(NnError::InvalidExit {
                requested: exit_weights.len(),
                available: self.num_exits(),
            });
        }
        // Forward pass caching every layer input. Branches whose exit weight
        // is exactly zero contribute neither loss nor gradient, so their
        // forward pass (and the per-layer input clones it would cache) is
        // skipped entirely.
        let mut trunk_inputs: Vec<Vec<Tensor>> = Vec::with_capacity(self.segments.len());
        let mut branch_inputs: Vec<Vec<Tensor>> = Vec::with_capacity(self.branches.len());
        let mut logits_per_exit: Vec<Option<Tensor>> = Vec::with_capacity(self.branches.len());
        let mut x = input.clone();
        for (i, (segment, branch)) in self.segments.iter().zip(&self.branches).enumerate() {
            let mut seg_cache = Vec::with_capacity(segment.len());
            for layer in segment {
                seg_cache.push(x.clone());
                x = layer.forward(&x)?;
            }
            trunk_inputs.push(seg_cache);
            if exit_weights[i] == 0.0 {
                branch_inputs.push(Vec::new());
                logits_per_exit.push(None);
                continue;
            }
            let mut b = x.clone();
            let mut br_cache = Vec::with_capacity(branch.len());
            for layer in branch {
                br_cache.push(b.clone());
                b = layer.forward(&b)?;
            }
            branch_inputs.push(br_cache);
            logits_per_exit.push(Some(b));
        }

        // Per-exit losses and gradients at the logits.
        let mut total_loss = 0.0;
        // Gradient flowing into the trunk activation at the end of each segment.
        let mut trunk_grads: Vec<Option<Tensor>> = vec![None; self.segments.len()];
        for (i, logits) in logits_per_exit.iter().enumerate() {
            let w = exit_weights[i];
            let Some(logits) = logits.as_ref() else {
                continue;
            };
            let (loss, grad_logits) = cross_entropy(logits, label)?;
            total_loss += w * loss;
            let mut g = grad_logits.scale(w);
            // Backward through branch i.
            for (layer, layer_input) in self.branches[i].iter_mut().zip(&branch_inputs[i]).rev() {
                g = layer.backward(layer_input, &g)?;
            }
            match &mut trunk_grads[i] {
                Some(acc) => acc.add_scaled_inplace(&g, 1.0)?,
                slot => *slot = Some(g),
            }
        }

        // Backward through the trunk from the deepest segment to the first,
        // accumulating the branch gradients at each segment boundary.
        let mut carried: Option<Tensor> = None;
        for s in (0..self.segments.len()).rev() {
            let mut g = match (carried.take(), trunk_grads[s].take()) {
                (Some(mut c), Some(b)) => {
                    c.add_scaled_inplace(&b, 1.0)?;
                    c
                }
                (Some(c), None) => c,
                (None, Some(b)) => b,
                (None, None) => continue,
            };
            for (layer, layer_input) in self.segments[s].iter_mut().zip(&trunk_inputs[s]).rev() {
                g = layer.backward(layer_input, &g)?;
            }
            carried = Some(g);
        }
        Ok(total_loss)
    }

    /// Applies accumulated gradients with learning rate `lr` and clears them.
    pub fn apply_gradients(&mut self, lr: f32) {
        for layer in self.segments.iter_mut().flatten().chain(self.branches.iter_mut().flatten()) {
            layer.apply_gradients(lr);
        }
    }

    /// Clears accumulated gradients without applying them.
    pub fn zero_grad(&mut self) {
        for layer in self.segments.iter_mut().flatten().chain(self.branches.iter_mut().flatten()) {
            layer.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::tiny_multi_exit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_net(seed: u64) -> MultiExitNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        MultiExitNetwork::from_architecture(&tiny_multi_exit(3), &mut rng).unwrap()
    }

    #[test]
    fn forward_to_each_exit_produces_class_probabilities() {
        let net = tiny_net(1);
        let mut rng = StdRng::seed_from_u64(9);
        let x = Tensor::randn(&mut rng, &[1, 8, 8], 0.0, 1.0);
        for exit in 0..net.num_exits() {
            let (out, _) = net.forward_to_exit(&x, exit).unwrap();
            assert_eq!(out.exit, exit);
            assert_eq!(out.probs.len(), 3);
            assert!((out.probs.sum() - 1.0).abs() < 1e-5);
            assert!(out.prediction < 3);
            assert!((0.0..=1.0).contains(&out.confidence));
        }
        assert!(net.forward_to_exit(&x, 5).is_err());
    }

    #[test]
    fn incremental_inference_matches_direct_inference() {
        let net = tiny_net(2);
        let mut rng = StdRng::seed_from_u64(10);
        let x = Tensor::randn(&mut rng, &[1, 8, 8], 0.0, 1.0);
        let (_, state) = net.forward_to_exit(&x, 0).unwrap();
        let (incremental, _) = net.continue_to_exit(&state, 1).unwrap();
        let (direct, _) = net.forward_to_exit(&x, 1).unwrap();
        for (a, b) in incremental.logits.as_slice().iter().zip(direct.logits.as_slice()) {
            assert!((a - b).abs() < 1e-5, "incremental and direct logits must agree");
        }
        assert!(net.continue_to_exit(&state, 0).is_err());
    }

    #[test]
    fn forward_all_agrees_with_forward_to_exit() {
        let net = tiny_net(3);
        let mut rng = StdRng::seed_from_u64(11);
        let x = Tensor::randn(&mut rng, &[1, 8, 8], 0.0, 1.0);
        let all = net.forward_all(&x).unwrap();
        assert_eq!(all.len(), 2);
        for out in &all {
            let (direct, _) = net.forward_to_exit(&x, out.exit).unwrap();
            assert_eq!(direct.prediction, out.prediction);
        }
    }

    #[test]
    fn backward_reduces_loss_after_a_few_steps() {
        let mut net = tiny_net(4);
        let mut rng = StdRng::seed_from_u64(12);
        let x = Tensor::randn(&mut rng, &[1, 8, 8], 0.0, 1.0);
        let label = 1usize;
        let weights = vec![1.0, 1.0];
        let initial = net.backward(&x, label, &weights).unwrap();
        net.apply_gradients(0.05);
        let mut last = initial;
        for _ in 0..20 {
            last = net.backward(&x, label, &weights).unwrap();
            net.apply_gradients(0.05);
        }
        assert!(last < initial, "training on one sample must reduce its loss: {initial} -> {last}");
    }

    #[test]
    fn backward_validates_arguments() {
        let mut net = tiny_net(5);
        let x = Tensor::zeros(&[1, 8, 8]);
        assert!(net.backward(&x, 7, &[1.0, 1.0]).is_err(), "label out of range");
        assert!(net.backward(&x, 0, &[1.0]).is_err(), "weights length mismatch");
    }

    #[test]
    fn zero_weight_exits_receive_no_gradient() {
        let mut net = tiny_net(6);
        let x = Tensor::ones(&[1, 8, 8]);
        // Only exit 0 contributes; exit-1-only layers must keep zero gradients.
        net.backward(&x, 0, &[1.0, 0.0]).unwrap();
        let exit1_branch = &net.branches()[1];
        for layer in exit1_branch {
            if let Layer::Dense(d) = layer {
                assert_eq!(d.grad_weight().norm_sq(), 0.0);
            }
        }
    }

    #[test]
    fn parameter_count_matches_architecture() {
        let net = tiny_net(7);
        let arch = tiny_multi_exit(3);
        let expected = (arch.total_weight_params() + arch.total_bias_params()) as usize;
        assert_eq!(net.parameter_count(), expected);
    }
}
