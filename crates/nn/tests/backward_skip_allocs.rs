//! Counting-allocator regression test for the legacy (allocating) backward
//! pass: exits whose loss weight is `0.0` must not forward their branch, so
//! a zero-weighted exit allocates strictly less than a weighted one.
//!
//! The counting is per-thread (a `const`-initialised thread-local `Cell`), and
//! the whole file contains a single test so no sibling test can interleave
//! allocations on this thread.

use ie_nn::spec::lenet_multi_exit;
use ie_nn::MultiExitNetwork;
use ie_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAllocator;

// SAFETY: delegates every operation to the system allocator unchanged; the
// only addition is a thread-local counter bump, which cannot allocate or
// unwind.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations_of(mut f: impl FnMut() -> f32) -> (u64, f32) {
    let before = THREAD_ALLOCS.with(Cell::get);
    let loss = f();
    (THREAD_ALLOCS.with(Cell::get) - before, loss)
}

#[test]
fn zero_weighted_exits_skip_branch_work_in_legacy_backward() {
    let mut rng = StdRng::seed_from_u64(11);
    let mut net = MultiExitNetwork::from_architecture(&lenet_multi_exit(), &mut rng).unwrap();
    let input = Tensor::randn(&mut rng, &[3, 32, 32], 0.0, 1.0);

    // Warm up both shapes so lazily grown buffers (if any) stabilise.
    net.backward(&input, 1, &[1.0, 1.0, 1.0]).unwrap();
    net.zero_grad();
    net.backward(&input, 1, &[1.0, 0.0, 0.0]).unwrap();
    net.zero_grad();

    let (all_exits, loss_all) = allocations_of(|| {
        let loss = net.backward(&input, 1, &[1.0, 1.0, 1.0]).unwrap();
        net.zero_grad();
        loss
    });
    let (trunk_only, loss_one) = allocations_of(|| {
        let loss = net.backward(&input, 1, &[1.0, 0.0, 0.0]).unwrap();
        net.zero_grad();
        loss
    });

    assert!(loss_all.is_finite() && loss_one.is_finite());
    assert!(
        trunk_only < all_exits,
        "zero-weighted exits must skip branch forwards: \
         {trunk_only} allocations with one active exit vs {all_exits} with three"
    );

    // All-zero weights on the later exits also skip their *label* handling:
    // an out-of-range label only trips where some weight is non-zero.
    let err = net.backward(&input, 999, &[1.0, 0.0, 0.0]).unwrap_err();
    assert!(matches!(err, ie_nn::NnError::InvalidLabel { label: 999, .. }));
    net.zero_grad();
}
