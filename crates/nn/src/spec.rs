//! Architecture descriptions with exact FLOPs and parameter accounting.
//!
//! A [`MultiExitArchitecture`] describes the paper's early-exit network as a
//! *trunk* split into segments plus one *branch* per exit: exit `i` is reached
//! by executing trunk segments `0..=i` followed by branch `i`. This is the
//! structure both the compression search (which needs per-layer FLOPs and
//! weight sizes) and the runtime (which needs per-exit and incremental costs)
//! operate on.
//!
//! FLOPs follow the paper's convention of counting multiply–accumulate
//! operations of convolution and fully-connected layers (activation and
//! pooling costs are negligible and ignored).

use crate::{NnError, Result};

/// The kind of a layer in an architecture description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayerSpecKind {
    /// 2-D convolution with square kernels.
    Conv {
        /// Input channels.
        in_channels: usize,
        /// Output channels.
        out_channels: usize,
        /// Kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        padding: usize,
    },
    /// Fully connected layer.
    Dense {
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
    },
    /// ReLU activation.
    Relu,
    /// Non-overlapping max pooling.
    MaxPool {
        /// Window size (and stride).
        size: usize,
    },
    /// Flatten to a vector.
    Flatten,
}

/// A layer in an architecture, together with its resolved input/output shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerSpec {
    /// Human-readable layer name (e.g. `Conv1`, `FC-B21`). Non-parameterised
    /// layers carry an empty name.
    pub name: String,
    /// The layer kind and hyper-parameters.
    pub kind: LayerSpecKind,
    /// Input dimensions (`[C, H, W]` or `[features]`).
    pub input_dims: Vec<usize>,
    /// Output dimensions.
    pub output_dims: Vec<usize>,
}

impl LayerSpec {
    /// Multiply–accumulate operations performed by the layer per inference.
    pub fn macs(&self) -> u64 {
        match &self.kind {
            LayerSpecKind::Conv { in_channels, out_channels, kernel, .. } => {
                let out_spatial: u64 = self.output_dims[1] as u64 * self.output_dims[2] as u64;
                *out_channels as u64 * *in_channels as u64 * (*kernel as u64).pow(2) * out_spatial
            }
            LayerSpecKind::Dense { in_features, out_features } => {
                *in_features as u64 * *out_features as u64
            }
            _ => 0,
        }
    }

    /// FLOPs of the layer (the paper counts MACs, so this equals [`Self::macs`]).
    pub fn flops(&self) -> u64 {
        self.macs()
    }

    /// Number of weight parameters (excluding biases).
    pub fn weight_params(&self) -> u64 {
        match &self.kind {
            LayerSpecKind::Conv { in_channels, out_channels, kernel, .. } => {
                *out_channels as u64 * *in_channels as u64 * (*kernel as u64).pow(2)
            }
            LayerSpecKind::Dense { in_features, out_features } => {
                *in_features as u64 * *out_features as u64
            }
            _ => 0,
        }
    }

    /// Number of bias parameters.
    pub fn bias_params(&self) -> u64 {
        match &self.kind {
            LayerSpecKind::Conv { out_channels, .. } => *out_channels as u64,
            LayerSpecKind::Dense { out_features, .. } => *out_features as u64,
            _ => 0,
        }
    }

    /// Returns `true` when the layer has trainable weights (conv or dense).
    pub fn is_parameterised(&self) -> bool {
        matches!(self.kind, LayerSpecKind::Conv { .. } | LayerSpecKind::Dense { .. })
    }
}

/// A parameterised (prunable / quantizable) layer, in the canonical execution
/// order used by the compression search. Mirrors the observation features of
/// Eq. (9) in the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressibleLayer {
    /// Index within the canonical ordering.
    pub index: usize,
    /// Layer name (`Conv1`, `FC-B21`, …).
    pub name: String,
    /// `true` for convolution layers, `false` for fully-connected layers
    /// (the `iconv` feature of the observation).
    pub is_conv: bool,
    /// Input channels (conv) or input features (dense) — `cin`.
    pub in_channels: usize,
    /// Output channels (conv) or output features (dense) — `cout`.
    pub out_channels: usize,
    /// Kernel size (1 for dense layers).
    pub kernel: usize,
    /// MACs of the uncompressed layer.
    pub macs: u64,
    /// Weight parameters of the uncompressed layer.
    pub weight_params: u64,
    /// The shallowest exit whose computation includes this layer.
    pub first_exit: usize,
    /// `true` when the layer sits on the shared trunk (and therefore feeds
    /// every exit at or beyond [`Self::first_exit`]); `false` when it belongs
    /// to a single exit's branch.
    pub in_trunk: bool,
}

impl CompressibleLayer {
    /// Returns `true` when this layer is executed on the path to `exit`.
    pub fn used_by_exit(&self, exit: usize) -> bool {
        if self.in_trunk {
            exit >= self.first_exit
        } else {
            exit == self.first_exit
        }
    }
}

/// Location of a layer within the trunk/branch structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerSite {
    /// A layer on the shared trunk.
    Trunk {
        /// Trunk segment index.
        segment: usize,
        /// Layer index within the segment.
        layer: usize,
    },
    /// A layer on an exit's private branch.
    Branch {
        /// Exit index the branch belongs to.
        exit: usize,
        /// Layer index within the branch.
        layer: usize,
    },
}

/// A multi-exit network architecture: trunk segments plus one branch per exit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiExitArchitecture {
    input_dims: [usize; 3],
    num_classes: usize,
    segments: Vec<Vec<LayerSpec>>,
    branches: Vec<Vec<LayerSpec>>,
}

impl MultiExitArchitecture {
    /// Input dimensions `[C, H, W]`.
    pub fn input_dims(&self) -> [usize; 3] {
        self.input_dims
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Number of exits.
    pub fn num_exits(&self) -> usize {
        self.branches.len()
    }

    /// Trunk segments; segment `i` feeds exit `i`'s branch and segment `i+1`.
    pub fn segments(&self) -> &[Vec<LayerSpec>] {
        &self.segments
    }

    /// Exit branches; branch `i` produces the logits of exit `i`.
    pub fn branches(&self) -> &[Vec<LayerSpec>] {
        &self.branches
    }

    /// Cumulative FLOPs to produce the logits of each exit (running trunk
    /// segments `0..=i` and branch `i`).
    pub fn exit_flops(&self) -> Vec<u64> {
        (0..self.num_exits()).map(|i| self.flops_to_exit(i)).collect()
    }

    /// FLOPs to run inference that terminates at `exit`.
    pub fn flops_to_exit(&self, exit: usize) -> u64 {
        let trunk: u64 = self.segments[..=exit.min(self.segments.len() - 1)]
            .iter()
            .flat_map(|s| s.iter().map(LayerSpec::flops))
            .sum();
        let branch: u64 = self.branches[exit].iter().map(LayerSpec::flops).sum();
        trunk + branch
    }

    /// Additional FLOPs needed to continue from `from_exit` to the deeper
    /// `to_exit` (incremental inference re-uses the shared trunk up to
    /// segment `from_exit` but must run the deeper branch from scratch).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NonMonotonicExit`] when `to_exit <= from_exit` and
    /// [`NnError::InvalidExit`] when either exit does not exist.
    pub fn incremental_flops(&self, from_exit: usize, to_exit: usize) -> Result<u64> {
        let n = self.num_exits();
        if from_exit >= n || to_exit >= n {
            return Err(NnError::InvalidExit { requested: from_exit.max(to_exit), available: n });
        }
        if to_exit <= from_exit {
            return Err(NnError::NonMonotonicExit { current: from_exit, requested: to_exit });
        }
        let trunk: u64 = self.segments[from_exit + 1..=to_exit]
            .iter()
            .flat_map(|s| s.iter().map(LayerSpec::flops))
            .sum();
        let branch: u64 = self.branches[to_exit].iter().map(LayerSpec::flops).sum();
        Ok(trunk + branch)
    }

    /// Total weight parameters across trunk and all branches (excluding biases).
    pub fn total_weight_params(&self) -> u64 {
        self.all_layers().map(|l| l.weight_params()).sum()
    }

    /// Total bias parameters.
    pub fn total_bias_params(&self) -> u64 {
        self.all_layers().map(|l| l.bias_params()).sum()
    }

    /// Model size in bytes at the given uniform weight bitwidth.
    pub fn model_size_bytes(&self, bits_per_weight: u32) -> u64 {
        (self.total_weight_params() * bits_per_weight as u64).div_ceil(8)
    }

    /// Iterates over every layer of the architecture (trunk then branches).
    pub fn all_layers(&self) -> impl Iterator<Item = &LayerSpec> {
        self.segments.iter().flatten().chain(self.branches.iter().flatten())
    }

    /// The parameterised layers in canonical execution order: for each exit
    /// `i`, trunk segment `i` followed by branch `i`. This is the layer-by-
    /// layer order in which the compression agents act.
    pub fn compressible_layers(&self) -> Vec<CompressibleLayer> {
        let mut out = Vec::new();
        for (exit, (segment, branch)) in self.segments.iter().zip(&self.branches).enumerate() {
            let trunk_len = segment.len();
            for (pos, spec) in segment.iter().chain(branch.iter()).enumerate() {
                if !spec.is_parameterised() {
                    continue;
                }
                let in_trunk = pos < trunk_len;
                let (is_conv, cin, cout, kernel) = match &spec.kind {
                    LayerSpecKind::Conv { in_channels, out_channels, kernel, .. } => {
                        (true, *in_channels, *out_channels, *kernel)
                    }
                    LayerSpecKind::Dense { in_features, out_features } => {
                        (false, *in_features, *out_features, 1)
                    }
                    _ => unreachable!("non-parameterised layers filtered above"),
                };
                out.push(CompressibleLayer {
                    index: out.len(),
                    name: spec.name.clone(),
                    is_conv,
                    in_channels: cin,
                    out_channels: cout,
                    kernel,
                    macs: spec.macs(),
                    weight_params: spec.weight_params(),
                    first_exit: exit,
                    in_trunk,
                });
            }
        }
        out
    }

    /// Looks up the site of a layer by name (parameterised layers carry the
    /// names assigned in the builder; anonymous layers cannot be found).
    pub fn find_layer(&self, name: &str) -> Option<LayerSite> {
        for (si, segment) in self.segments.iter().enumerate() {
            for (li, l) in segment.iter().enumerate() {
                if l.name == name {
                    return Some(LayerSite::Trunk { segment: si, layer: li });
                }
            }
        }
        for (bi, branch) in self.branches.iter().enumerate() {
            for (li, l) in branch.iter().enumerate() {
                if l.name == name {
                    return Some(LayerSite::Branch { exit: bi, layer: li });
                }
            }
        }
        None
    }
}

/// Builder for [`MultiExitArchitecture`].
///
/// Layers are appended to the current trunk segment; calling
/// [`ArchitectureBuilder::begin_branch`] starts collecting layers for the next
/// exit's branch, and [`ArchitectureBuilder::end_exit`] closes it and starts a
/// new trunk segment that continues from where the trunk left off.
#[derive(Debug, Clone)]
pub struct ArchitectureBuilder {
    input_dims: [usize; 3],
    num_classes: usize,
    segments: Vec<Vec<LayerSpec>>,
    branches: Vec<Vec<LayerSpec>>,
    current: Vec<LayerSpec>,
    current_dims: Vec<usize>,
    branch_layers: Option<Vec<LayerSpec>>,
    branch_dims: Vec<usize>,
    error: Option<NnError>,
}

impl ArchitectureBuilder {
    /// Creates a builder for a network over `[C, H, W]` inputs with the given
    /// number of classes.
    pub fn new(input_dims: [usize; 3], num_classes: usize) -> Self {
        ArchitectureBuilder {
            input_dims,
            num_classes,
            segments: Vec::new(),
            branches: Vec::new(),
            current: Vec::new(),
            current_dims: input_dims.to_vec(),
            branch_layers: None,
            branch_dims: Vec::new(),
            error: None,
        }
    }

    fn dims(&self) -> &Vec<usize> {
        if self.branch_layers.is_some() {
            &self.branch_dims
        } else {
            &self.current_dims
        }
    }

    fn push(&mut self, spec: LayerSpec) {
        let out = spec.output_dims.clone();
        if let Some(branch) = &mut self.branch_layers {
            branch.push(spec);
            self.branch_dims = out;
        } else {
            self.current.push(spec);
            self.current_dims = out;
        }
    }

    fn fail(&mut self, msg: String) {
        if self.error.is_none() {
            self.error = Some(NnError::InvalidSpec(msg));
        }
    }

    /// Appends a convolution layer.
    pub fn conv(
        mut self,
        name: &str,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        let dims = self.dims().clone();
        if dims.len() != 3 {
            self.fail(format!("conv layer {name} requires a [C, H, W] input, found {dims:?}"));
            return self;
        }
        let (c, h, w) = (dims[0], dims[1], dims[2]);
        if h + 2 * padding < kernel || w + 2 * padding < kernel || stride == 0 {
            self.fail(format!("conv layer {name} has invalid geometry"));
            return self;
        }
        let oh = (h + 2 * padding - kernel) / stride + 1;
        let ow = (w + 2 * padding - kernel) / stride + 1;
        self.push(LayerSpec {
            name: name.to_string(),
            kind: LayerSpecKind::Conv { in_channels: c, out_channels, kernel, stride, padding },
            input_dims: dims,
            output_dims: vec![out_channels, oh, ow],
        });
        self
    }

    /// Appends a ReLU activation.
    pub fn relu(mut self) -> Self {
        let dims = self.dims().clone();
        self.push(LayerSpec {
            name: String::new(),
            kind: LayerSpecKind::Relu,
            input_dims: dims.clone(),
            output_dims: dims,
        });
        self
    }

    /// Appends a non-overlapping max-pool layer.
    pub fn maxpool(mut self, size: usize) -> Self {
        let dims = self.dims().clone();
        if dims.len() != 3
            || size == 0
            || !dims[1].is_multiple_of(size)
            || !dims[2].is_multiple_of(size)
        {
            self.fail(format!("maxpool({size}) incompatible with input {dims:?}"));
            return self;
        }
        self.push(LayerSpec {
            name: String::new(),
            kind: LayerSpecKind::MaxPool { size },
            input_dims: dims.clone(),
            output_dims: vec![dims[0], dims[1] / size, dims[2] / size],
        });
        self
    }

    /// Appends a flatten layer.
    pub fn flatten(mut self) -> Self {
        let dims = self.dims().clone();
        let n: usize = dims.iter().product();
        self.push(LayerSpec {
            name: String::new(),
            kind: LayerSpecKind::Flatten,
            input_dims: dims,
            output_dims: vec![n],
        });
        self
    }

    /// Appends a fully connected layer.
    pub fn dense(mut self, name: &str, out_features: usize) -> Self {
        let dims = self.dims().clone();
        if dims.len() != 1 {
            self.fail(format!("dense layer {name} requires a flat input, found {dims:?}"));
            return self;
        }
        self.push(LayerSpec {
            name: name.to_string(),
            kind: LayerSpecKind::Dense { in_features: dims[0], out_features },
            input_dims: dims,
            output_dims: vec![out_features],
        });
        self
    }

    /// Starts collecting layers for the next exit's branch. Subsequent layer
    /// calls apply to the branch until [`Self::end_exit`] is called.
    pub fn begin_branch(mut self) -> Self {
        if self.branch_layers.is_some() {
            self.fail("begin_branch called while already building a branch".into());
            return self;
        }
        self.branch_layers = Some(Vec::new());
        self.branch_dims = self.current_dims.clone();
        self
    }

    /// Ends the current branch, registering it as the next exit, and starts a
    /// new trunk segment.
    pub fn end_exit(mut self) -> Self {
        match self.branch_layers.take() {
            Some(branch) => {
                if branch.last().map(|l| l.output_dims.as_slice()) != Some(&[self.num_classes][..])
                {
                    self.fail(format!(
                        "exit {} branch must end with {} logits",
                        self.branches.len(),
                        self.num_classes
                    ));
                }
                self.segments.push(std::mem::take(&mut self.current));
                self.branches.push(branch);
            }
            None => self.fail("end_exit called without begin_branch".into()),
        }
        self
    }

    /// Finishes the architecture.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidSpec`] when any layer was inconsistent with
    /// its input shape, when no exits were defined, or when a branch was left
    /// open.
    pub fn build(self) -> Result<MultiExitArchitecture> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if self.branch_layers.is_some() {
            return Err(NnError::InvalidSpec("unterminated branch at build time".into()));
        }
        if self.branches.is_empty() {
            return Err(NnError::InvalidSpec("architecture has no exits".into()));
        }
        if !self.current.is_empty() {
            return Err(NnError::InvalidSpec(
                "trailing trunk layers after the final exit are unreachable".into(),
            ));
        }
        Ok(MultiExitArchitecture {
            input_dims: self.input_dims,
            num_classes: self.num_classes,
            segments: self.segments,
            branches: self.branches,
        })
    }
}

/// The paper's multi-exit LeNet backbone for 32×32 RGB inputs (CIFAR-10
/// scale): four trunk convolutions with two early-exit branches, eleven
/// parameterised layers named as in Fig. 4
/// (`Conv1, ConvB1, Conv2, ConvB2, Conv3, Conv4, FC-B1, FC-B21, FC-B22,
/// FC-B31, FC-B32`).
///
/// Channel counts are chosen so that the uncompressed per-exit FLOPs
/// (≈0.46 M / 1.19 M / 1.56 M) and the ≈0.7 MB fp32 weight size closely track
/// the figures reported in Section V-A of the paper (0.4452 M / 1.2602 M /
/// 1.6202 M FLOPs, 580 KB).
pub fn lenet_multi_exit() -> MultiExitArchitecture {
    ArchitectureBuilder::new([3, 32, 32], 10)
        // Trunk segment 0
        .conv("Conv1", 16, 5, 2, 2)
        .relu()
        .maxpool(2)
        // Exit 1 branch
        .begin_branch()
        .conv("ConvB1", 16, 3, 1, 1)
        .relu()
        .flatten()
        .dense("FC-B1", 10)
        .end_exit()
        // Trunk segment 1
        .conv("Conv2", 24, 5, 1, 2)
        .relu()
        .maxpool(2)
        // Exit 2 branch
        .begin_branch()
        .conv("ConvB2", 24, 5, 1, 2)
        .relu()
        .flatten()
        .dense("FC-B21", 96)
        .relu()
        .dense("FC-B22", 10)
        .end_exit()
        // Trunk segment 2
        .conv("Conv3", 40, 5, 1, 2)
        .relu()
        .conv("Conv4", 32, 3, 1, 1)
        .relu()
        // Exit 3 (final) branch
        .begin_branch()
        .flatten()
        .dense("FC-B31", 128)
        .relu()
        .dense("FC-B32", 10)
        .end_exit()
        .build()
        .expect("the built-in backbone is a valid architecture")
}

/// A tiny two-exit architecture over 8×8 single-channel inputs, used by unit
/// tests and the synthetic end-to-end training example.
pub fn tiny_multi_exit(num_classes: usize) -> MultiExitArchitecture {
    ArchitectureBuilder::new([1, 8, 8], num_classes)
        .conv("Conv1", 4, 3, 1, 1)
        .relu()
        .maxpool(2)
        .begin_branch()
        .flatten()
        .dense("FC-B1", num_classes)
        .end_exit()
        .conv("Conv2", 8, 3, 1, 1)
        .relu()
        .maxpool(2)
        .begin_branch()
        .flatten()
        .dense("FC-B21", 16)
        .relu()
        .dense("FC-B22", num_classes)
        .end_exit()
        .build()
        .expect("the built-in tiny architecture is a valid architecture")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lenet_backbone_has_eleven_parameterised_layers() {
        let arch = lenet_multi_exit();
        let names: Vec<String> = arch.compressible_layers().into_iter().map(|l| l.name).collect();
        assert_eq!(
            names,
            vec![
                "Conv1", "ConvB1", "FC-B1", "Conv2", "ConvB2", "FC-B21", "FC-B22", "Conv3",
                "Conv4", "FC-B31", "FC-B32"
            ]
        );
    }

    #[test]
    fn lenet_exit_flops_track_the_paper() {
        let arch = lenet_multi_exit();
        let flops = arch.exit_flops();
        assert_eq!(flops.len(), 3);
        // Paper: 0.4452 M, 1.2602 M, 1.6202 M. Our channel choices land within ~20 %.
        assert!((0.35e6..0.55e6).contains(&(flops[0] as f64)), "exit1 {}", flops[0]);
        assert!((1.0e6..1.45e6).contains(&(flops[1] as f64)), "exit2 {}", flops[1]);
        assert!((1.35e6..1.85e6).contains(&(flops[2] as f64)), "exit3 {}", flops[2]);
        assert!(flops[0] < flops[1] && flops[1] < flops[2]);
    }

    #[test]
    fn lenet_weight_size_is_mcu_hostile_at_fp32() {
        let arch = lenet_multi_exit();
        let bytes = arch.model_size_bytes(32);
        // Paper reports 580 KB for the fp32 model; ours is the same order of magnitude
        // and far beyond a 16 KB MCU budget, which is what motivates compression.
        assert!(bytes > 400_000 && bytes < 1_000_000, "fp32 size {bytes}");
    }

    #[test]
    fn incremental_flops_are_cheaper_than_from_scratch() {
        let arch = lenet_multi_exit();
        let inc = arch.incremental_flops(0, 1).unwrap();
        let full = arch.flops_to_exit(1);
        assert!(inc < full);
        // Incremental work plus the shared trunk equals at least the deeper exit's cost.
        assert!(inc + arch.flops_to_exit(0) >= full);
        assert!(arch.incremental_flops(1, 1).is_err());
        assert!(arch.incremental_flops(2, 1).is_err());
        assert!(arch.incremental_flops(0, 9).is_err());
    }

    #[test]
    fn compressible_layers_report_first_exit() {
        let arch = lenet_multi_exit();
        let layers = arch.compressible_layers();
        let conv1 = layers.iter().find(|l| l.name == "Conv1").unwrap();
        let fcb31 = layers.iter().find(|l| l.name == "FC-B31").unwrap();
        assert_eq!(conv1.first_exit, 0);
        assert_eq!(fcb31.first_exit, 2);
        assert!(conv1.is_conv);
        assert!(!fcb31.is_conv);
        // Conv1 sits on the trunk and therefore feeds every exit; FC-B1 is
        // private to exit 0.
        let fcb1 = layers.iter().find(|l| l.name == "FC-B1").unwrap();
        assert!(conv1.in_trunk && conv1.used_by_exit(2));
        assert!(!fcb1.in_trunk && fcb1.used_by_exit(0) && !fcb1.used_by_exit(1));
    }

    #[test]
    fn fc_b21_and_fc_b31_dominate_weight_size() {
        // The paper notes these two layers carry the most weights, which is why
        // the quantization agent drives them to 1 bit.
        let arch = lenet_multi_exit();
        let layers = arch.compressible_layers();
        let mut sizes: Vec<(&str, u64)> =
            layers.iter().map(|l| (l.name.as_str(), l.weight_params)).collect();
        sizes.sort_by_key(|(_, s)| std::cmp::Reverse(*s));
        let top2: Vec<&str> = sizes.iter().take(2).map(|(n, _)| *n).collect();
        assert!(top2.contains(&"FC-B31"));
        assert!(top2.contains(&"FC-B21"));
    }

    #[test]
    fn builder_rejects_inconsistent_specs() {
        // Dense layer directly on a [C, H, W] input.
        let bad = ArchitectureBuilder::new([1, 8, 8], 2).dense("fc", 2);
        assert!(bad.build().is_err());
        // Branch not ending in the class count.
        let bad = ArchitectureBuilder::new([1, 8, 8], 2)
            .conv("c", 2, 3, 1, 1)
            .begin_branch()
            .flatten()
            .dense("fc", 5)
            .end_exit();
        assert!(bad.build().is_err());
        // No exits at all.
        assert!(ArchitectureBuilder::new([1, 8, 8], 2).conv("c", 2, 3, 1, 1).build().is_err());
        // Unterminated branch.
        assert!(ArchitectureBuilder::new([1, 8, 8], 2)
            .conv("c", 2, 3, 1, 1)
            .begin_branch()
            .build()
            .is_err());
        // Trailing trunk layers.
        assert!(ArchitectureBuilder::new([1, 8, 8], 2)
            .conv("c", 2, 3, 1, 1)
            .begin_branch()
            .flatten()
            .dense("fc", 2)
            .end_exit()
            .conv("tail", 2, 3, 1, 1)
            .build()
            .is_err());
        // Maxpool on a non-divisible input.
        let bad = ArchitectureBuilder::new([1, 7, 7], 2).maxpool(2);
        assert!(bad.build().is_err());
    }

    #[test]
    fn tiny_architecture_is_consistent() {
        let arch = tiny_multi_exit(4);
        assert_eq!(arch.num_exits(), 2);
        assert_eq!(arch.num_classes(), 4);
        assert!(arch.exit_flops()[0] < arch.exit_flops()[1]);
        assert!(arch.find_layer("Conv1").is_some());
        assert!(arch.find_layer("FC-B21").is_some());
        assert!(arch.find_layer("nope").is_none());
    }

    #[test]
    fn layer_spec_accounting_matches_hand_computation() {
        let arch = lenet_multi_exit();
        let conv1 = &arch.segments()[0][0];
        // Conv1: 16 out-channels, 3 in-channels, 5x5 kernel, 16x16 output.
        assert_eq!(conv1.macs(), 16 * 3 * 25 * 16 * 16);
        assert_eq!(conv1.weight_params(), 16 * 3 * 25);
        assert_eq!(conv1.bias_params(), 16);
    }
}
