//! Runtime exit policies as **admission control** for the serving loop.
//!
//! The paper's runtime policies (the static LUT of Fig. 7 and the Q-learning
//! agent) choose the deepest exit whose *energy* cost fits the energy stored
//! in the capacitor. An open-loop inference server faces the structurally
//! identical decision with a different resource: choose the deepest exit
//! whose *latency* cost fits the request's remaining latency budget. This
//! module adapts any [`ExitPolicy`] to that setting by re-reading the policy's
//! observable state: "available energy" becomes the request's latency budget,
//! the per-exit energy costs become the per-exit predicted latencies, and the
//! storage capacity becomes the deepest exit's latency (so the policy's
//! normalised energy fraction turns into a normalised budget fraction).
//!
//! Determinism contract: [`LatencyAdmission::admit`] never feeds outcome
//! feedback to the wrapped policy, so a frozen policy (the LUT, or a
//! Q-learning agent with learning disabled) is a pure function of the budget
//! — the serving loop's responses stay byte-identical for a fixed request
//! order regardless of worker count or batch composition. Wrapping a policy
//! with learning (and therefore exploration) still yields deterministic
//! decisions for a fixed admission order, because the server admits requests
//! strictly in arrival order, but it is the caller's job to freeze the agent
//! when cross-run reproducibility matters.

use crate::{Result, RuntimeError, StateDiscretizer, StaticLutPolicy};
use ie_core::{EventContext, ExitChoice, ExitPolicy};

/// Deepest exit whose predicted cost fits within `budget_s`, or `None` when
/// even the shallowest exit does not. This is the budget half of the serving
/// layer's deadline-aware degradation: given the time a request has left
/// after its modeled queueing wait, it bounds how deep the network may run.
/// Costs are scanned from the deep end, so with a monotone cost table this
/// is the greedy rule of the paper's static LUT evaluated exactly.
pub fn deepest_affordable(exit_cost_s: &[f64], budget_s: f64) -> Option<usize> {
    exit_cost_s.iter().rposition(|&c| c <= budget_s)
}

/// Adapts an [`ExitPolicy`] into per-request admission control under a
/// latency budget (see the module docs for the observable mapping).
pub struct LatencyAdmission {
    policy: Box<dyn ExitPolicy + Send>,
    /// Reused observation buffer; `exit_energy_mj` holds the per-exit
    /// latency costs in seconds, so admission performs no per-request
    /// allocations.
    ctx: EventContext,
}

impl std::fmt::Debug for LatencyAdmission {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyAdmission")
            .field("policy", &self.policy.name())
            .field("exit_cost_s", &self.ctx.exit_energy_mj)
            .finish()
    }
}

impl LatencyAdmission {
    /// Wraps `policy` over the given per-exit latency costs (seconds) and
    /// predicted per-exit accuracies. The budget "capacity" is the deepest
    /// exit's cost: a request whose budget covers the deepest exit looks like
    /// a full capacitor to the policy.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidAdmission`] when the cost table is
    /// empty, the accuracy table has a different length, or any cost is
    /// non-positive or non-finite.
    pub fn new(
        policy: Box<dyn ExitPolicy + Send>,
        exit_cost_s: Vec<f64>,
        exit_accuracy: Vec<f64>,
    ) -> Result<Self> {
        let capacity = exit_cost_s.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        LatencyAdmission::with_capacity(policy, exit_cost_s, exit_accuracy, capacity)
    }

    /// [`LatencyAdmission::new`] with an explicit budget capacity — the
    /// budget that maps to a "full capacitor" in the policy's normalised
    /// state. A policy whose decisions were built against a specific
    /// capacity (the static LUT) must observe that same capacity here.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidAdmission`] on an invalid table or a
    /// non-positive/non-finite capacity.
    pub fn with_capacity(
        policy: Box<dyn ExitPolicy + Send>,
        exit_cost_s: Vec<f64>,
        exit_accuracy: Vec<f64>,
        capacity_s: f64,
    ) -> Result<Self> {
        if exit_cost_s.is_empty() {
            return Err(RuntimeError::InvalidAdmission("empty exit cost table".into()));
        }
        if exit_cost_s.len() != exit_accuracy.len() {
            return Err(RuntimeError::InvalidAdmission(format!(
                "{} exit costs but {} exit accuracies",
                exit_cost_s.len(),
                exit_accuracy.len()
            )));
        }
        if exit_cost_s.iter().any(|c| !c.is_finite() || *c <= 0.0) {
            return Err(RuntimeError::InvalidAdmission(format!(
                "exit costs must be positive and finite, got {exit_cost_s:?}"
            )));
        }
        if !capacity_s.is_finite() || capacity_s <= 0.0 {
            return Err(RuntimeError::InvalidAdmission(format!(
                "budget capacity must be positive and finite, got {capacity_s}"
            )));
        }
        let ctx = EventContext {
            event_id: 0,
            time_s: 0.0,
            available_energy_mj: 0.0,
            capacity_mj: capacity_s,
            charging_efficiency: 0.0,
            exit_energy_mj: exit_cost_s,
            exit_accuracy,
        };
        Ok(LatencyAdmission { policy, ctx })
    }

    /// The paper's static-LUT baseline as admission control: for every
    /// discretised budget level the LUT stores the deepest exit whose latency
    /// fits, built once up front exactly like the compression-phase energy
    /// LUT.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidAdmission`] on an invalid cost table.
    pub fn static_lut(
        exit_cost_s: Vec<f64>,
        exit_accuracy: Vec<f64>,
        discretizer: StateDiscretizer,
    ) -> Result<Self> {
        // Scale the capacity so the top bin's representative (mid-point)
        // budget lands exactly on the deepest exit's cost — otherwise no bin
        // would ever prescribe the deepest exit (its mid-point is strictly
        // below the bin's upper edge).
        let max_cost = exit_cost_s.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let capacity = max_cost / discretizer.energy_bin_midpoint(discretizer.energy_bins() - 1);
        let lut = StaticLutPolicy::from_costs(&exit_cost_s, capacity, discretizer);
        LatencyAdmission::with_capacity(Box::new(lut), exit_cost_s, exit_accuracy, capacity)
    }

    /// Number of exits the admission table covers.
    pub fn num_exits(&self) -> usize {
        self.ctx.exit_energy_mj.len()
    }

    /// Per-exit latency costs (seconds) the decisions are based on.
    pub fn exit_cost_s(&self) -> &[f64] {
        &self.ctx.exit_energy_mj
    }

    /// Name of the wrapped policy (for reports).
    pub fn policy_name(&self) -> String {
        self.policy.name().to_string()
    }

    /// Decides the exit for a request with `budget_s` seconds of latency
    /// budget, or `None` to reject (shed) the request. The observable state
    /// handed to the policy depends only on the budget, so with a frozen
    /// policy this is a pure function.
    ///
    /// An exit index beyond the cost table (possible only with a misbehaving
    /// custom policy) is clamped to the deepest exit instead of panicking —
    /// admission control must not take the serving loop down.
    pub fn admit(&mut self, request_id: u64, budget_s: f64) -> Option<usize> {
        self.ctx.event_id = request_id as usize;
        self.ctx.available_energy_mj = budget_s.max(0.0);
        match self.policy.choose_exit(&self.ctx) {
            ExitChoice::Skip => None,
            ExitChoice::Exit(exit) => Some(exit.min(self.num_exits() - 1)),
        }
    }

    /// [`LatencyAdmission::admit`] under a degraded exit ceiling: the policy
    /// decides as usual, then the decision is clamped to `max_exit`. This is
    /// how an overload layer composes with admission — the policy still sees
    /// the true budget (its state stays consistent across load levels), but
    /// pressure caps how deep the admitted request may actually run.
    pub fn admit_capped(
        &mut self,
        request_id: u64,
        budget_s: f64,
        max_exit: usize,
    ) -> Option<usize> {
        self.admit(request_id, budget_s).map(|exit| exit.min(max_exit))
    }

    /// [`deepest_affordable`] over this admission table.
    pub fn deepest_affordable(&self, budget_s: f64) -> Option<usize> {
        deepest_affordable(self.exit_cost_s(), budget_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{QLearningConfig, QLearningExitPolicy};

    fn costs() -> (Vec<f64>, Vec<f64>) {
        (vec![0.001, 0.004, 0.009], vec![0.62, 0.69, 0.70])
    }

    #[test]
    fn construction_validates_tables() {
        let (c, a) = costs();
        assert!(LatencyAdmission::static_lut(
            c.clone(),
            a.clone(),
            StateDiscretizer::paper_default()
        )
        .is_ok());
        assert!(matches!(
            LatencyAdmission::static_lut(vec![], vec![], StateDiscretizer::paper_default()),
            Err(RuntimeError::InvalidAdmission(_))
        ));
        assert!(LatencyAdmission::static_lut(
            c.clone(),
            a[..2].to_vec(),
            StateDiscretizer::paper_default()
        )
        .is_err());
        assert!(LatencyAdmission::static_lut(
            vec![0.0, 0.1, 0.2],
            a,
            StateDiscretizer::paper_default()
        )
        .is_err());
    }

    #[test]
    fn lut_admission_is_monotone_in_the_budget() {
        let (c, a) = costs();
        let mut adm =
            LatencyAdmission::static_lut(c, a, StateDiscretizer::paper_default()).unwrap();
        assert_eq!(adm.policy_name(), "static-lut");
        assert_eq!(adm.num_exits(), 3);
        // A generous budget buys the deepest exit, a tight one the shallow
        // exit, an impossible one a rejection.
        assert_eq!(adm.admit(0, 0.010), Some(2));
        assert_eq!(adm.admit(1, 0.002), Some(0));
        assert_eq!(adm.admit(2, 0.0), None);
        assert_eq!(adm.admit(3, -1.0), None, "negative budgets are clamped, not UB");
        // The decision sequence only depends on the budgets, so replaying it
        // reproduces the decisions exactly.
        let replay: Vec<Option<usize>> = [0.010, 0.002, 0.0, -1.0]
            .iter()
            .enumerate()
            .map(|(i, b)| adm.admit(i as u64, *b))
            .collect();
        assert_eq!(replay, vec![Some(2), Some(0), None, None]);
    }

    #[test]
    fn admission_never_exceeds_the_exit_table() {
        struct Bogus;
        impl ExitPolicy for Bogus {
            fn choose_exit(&mut self, _ctx: &EventContext) -> ExitChoice {
                ExitChoice::Exit(99)
            }
        }
        let (c, a) = costs();
        let mut adm = LatencyAdmission::new(Box::new(Bogus), c, a).unwrap();
        assert_eq!(adm.admit(0, 1.0), Some(2), "out-of-range exits are clamped to the deepest");
    }

    #[test]
    fn deepest_affordable_walks_the_cost_table() {
        let (c, a) = costs();
        assert_eq!(deepest_affordable(&c, 1.0), Some(2));
        assert_eq!(deepest_affordable(&c, 0.009), Some(2), "exact fit is affordable");
        assert_eq!(deepest_affordable(&c, 0.005), Some(1));
        assert_eq!(deepest_affordable(&c, 0.001), Some(0));
        assert_eq!(deepest_affordable(&c, 0.0005), None);
        assert_eq!(deepest_affordable(&c, f64::NAN), None, "NaN budgets afford nothing");
        let adm = LatencyAdmission::static_lut(c, a, StateDiscretizer::paper_default()).unwrap();
        assert_eq!(adm.deepest_affordable(0.005), Some(1));
    }

    #[test]
    fn capped_admission_clamps_but_never_invents_an_exit() {
        let (c, a) = costs();
        let mut adm =
            LatencyAdmission::static_lut(c, a, StateDiscretizer::paper_default()).unwrap();
        // A generous budget admitted at depth 2 is degraded to the cap…
        assert_eq!(adm.admit_capped(0, 0.010, 0), Some(0));
        assert_eq!(adm.admit_capped(1, 0.010, 1), Some(1));
        // …a cap above the decision changes nothing…
        assert_eq!(adm.admit_capped(2, 0.002, 99), Some(0));
        // …and a rejection stays a rejection no matter the cap.
        assert_eq!(adm.admit_capped(3, 0.0, 2), None);
    }

    #[test]
    fn frozen_q_policy_admission_is_deterministic() {
        let (c, a) = costs();
        let run = || {
            let mut q = QLearningExitPolicy::new(
                3,
                StateDiscretizer::paper_default(),
                QLearningConfig::default(),
            );
            q.set_learning(false);
            let mut adm = LatencyAdmission::new(Box::new(q), c.clone(), a.clone()).unwrap();
            (0..32).map(|i| adm.admit(i, 0.0003 * i as f64)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
