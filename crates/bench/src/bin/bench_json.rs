//! Machine-readable inference micro-benchmark seeding the perf trajectory.
//!
//! ```text
//! cargo run --release -p ie_bench --bin bench_json                 # full run
//! cargo run --release -p ie_bench --bin bench_json -- --fast       # CI smoke
//! cargo run --release -p ie_bench --bin bench_json -- \
//!     --fast --out /tmp/smoke.json --check BENCH_inference.json    # CI gate
//! ```
//!
//! Benchmarks the forward-path implementations on the paper's LeNet backbone
//! **in the same binary**:
//!
//! * `pre_pr_allocating` — a faithful replica of the pre-planning forward
//!   path: per-layer output allocation, fresh `im2col` matrix, weight
//!   reshape/copy, the branchy zero-skip GEMM, separate bias and ReLU passes;
//! * `allocating` — the current `MultiExitNetwork::forward_to_exit` (thin
//!   wrappers over the blocked `_into` kernels, still allocating per layer);
//! * `planned` — `forward_to_exit_with` over a reusable `ExecutionPlan`
//!   (zero allocations after warm-up, fused bias+ReLU epilogues);
//! * `batch_forward/*` — `forward_to_exit_batch_with` over a `BatchPlan`
//!   (N samples through one widened GEMM per layer), reported as ns/sample;
//! * `quant_forward/*` — the i8-dominant compression policy executed through
//!   the integer engine (quantized plans: i8 GEMM + requantization
//!   epilogues) vs the same policy on the fake-quant f32 planned path;
//! * `policy_eval_loop` — whole-policy scoring through `PolicyEvaluator`
//!   (an empirical estimator over a calibration set), single-input vs the
//!   batched sharded evaluator;
//! * `search_loop` — one full `CompressionEnv::evaluate` step (profile +
//!   event-loop simulation + rewards) against the bare profile evaluation;
//! * `simd_kernels/*` — each runtime-dispatched kernel (softmax, max-pool,
//!   sparse axpy, activation quantize, the i16 madd GEMM) timed on the
//!   active ISA tier against its own portable tier, after a bit-identity
//!   assertion (the JSON records the active tier in `isa_tier`);
//! * `sim_loop` — the `EventLoopSimulator` wake-window trace replay,
//!   unbatched and with an 8-event window;
//! * `checkpoint_loop` — the intermittent executor's reboot-and-recover path
//!   (`ie_mcu`): one full task-graph execution under a seeded random fault
//!   plan (power cuts between and inside tasks plus torn checkpoint writes)
//!   against the fault-free execution of the same graph, with recovery
//!   asserted bit-identical (output digest) before anything is timed;
//! * `serve_loop` — the open-loop serving path (`ie_serve`): a fixed request
//!   stream replayed through admission control and the dynamic batching
//!   window at 1 and 4 workers, reported as ns/request plus the p50/p99
//!   latency and throughput of the queueing model;
//! * `overload_loop` — the same serving path at 2× saturation behind a
//!   bounded queue, replayed once under `ShedPolicy::Degrade` and once under
//!   `ShedPolicy::Reject`: the degrade replay is gated against the reject
//!   replay of the same run (both plan the same stream; degradation must not
//!   cost more than flat shedding), and the served/goodput counts of each
//!   policy are recorded so the throughput trade is visible in the JSON;
//! * `fleet_loop` — the fleet-scale intermittent loop (`ie_core::fleet`): a
//!   mixed device population advanced end to end, reported as ns/device-step
//!   for the sequential streaming loop, the 1-worker fleet and the 4-worker
//!   fleet, with byte-identical aggregates asserted across worker counts
//!   before anything is timed.
//!
//! Writes `BENCH_inference.json` (median ns/op per case, with the run `mode`
//! and actual timed sample count recorded) into the current directory and
//! prints a summary table. With `--check <baseline.json>` the freshly
//! measured numbers are compared against the committed baseline and the
//! process exits nonzero when any gated metric regresses by more than 15 % —
//! the CI perf-regression gate — printing the per-case baseline→current
//! numbers for every confirmed regression. All forward paths are checked to produce the
//! same prediction before anything is timed.

use ie_compress::apply::{apply_policy, apply_policy_quantized};
use ie_compress::{
    CalibratedAccuracyModel, CompressionPolicy, EmpiricalAccuracyEstimator, PolicyEvaluator,
};
use ie_core::fleet::FleetAccumulator;
use ie_core::policies::GreedyAffordablePolicy;
use ie_core::{DeployedModel, EventLoopSimulator, ExperimentConfig, FleetConfig, FleetSimulator};
use ie_mcu::{FaultPlan, IntermittentExecutor, McuDevice, NonvolatileMemory, TaskGraph};
use ie_nn::dataset::{Sample, SyntheticDataset};
use ie_nn::loss::{confidence, softmax};
use ie_nn::quant::{fake_quant_logits, QuantizedModel};
use ie_nn::spec::{lenet_multi_exit, tiny_multi_exit};
use ie_nn::train::{BatchBackwardPlan, BatchPlanPool};
use ie_nn::{Conv2d, Dense, Layer, MultiExitNetwork};
use ie_runtime::{LatencyAdmission, StateDiscretizer};
use ie_search::{CompressionEnv, RewardMode};
use ie_serve::{OverloadConfig, Request, ServeConfig, Server, ShedPolicy, WindowConfig};
use ie_tensor::dispatch::IsaTier;
use ie_tensor::{dispatch, tiered, Conv2dGeometry, QuantParams, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

/// Verbatim copy of the pre-planning `im2col` (fresh allocation plus the
/// per-element padding branch), kept here so the baseline measures the real
/// pre-PR code, not today's hoisted-bounds implementation.
fn pre_pr_im2col(input: &Tensor, geom: &Conv2dGeometry) -> Tensor {
    let (out_h, out_w) = (geom.out_h(), geom.out_w());
    let k = geom.kernel;
    let cols = out_h * out_w;
    let rows = geom.in_channels * k * k;
    let mut out = vec![0.0f32; rows * cols];
    let data = input.as_slice();
    for c in 0..geom.in_channels {
        for ky in 0..k {
            for kx in 0..k {
                let row = (c * k + ky) * k + kx;
                for oy in 0..out_h {
                    let iy = (oy * geom.stride + ky) as isize - geom.padding as isize;
                    for ox in 0..out_w {
                        let ix = (ox * geom.stride + kx) as isize - geom.padding as isize;
                        let col = oy * out_w + ox;
                        let value = if iy >= 0
                            && iy < geom.in_h as isize
                            && ix >= 0
                            && ix < geom.in_w as isize
                        {
                            data[(c * geom.in_h + iy as usize) * geom.in_w + ix as usize]
                        } else {
                            0.0
                        };
                        out[row * cols + col] = value;
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[rows, cols]).expect("bench shapes are valid")
}

/// Replica of the pre-planning convolution forward: `im2col` allocation,
/// weight reshape (a full copy), the zero-skip GEMM, an output reshape
/// (another copy) and a separate bias pass.
fn pre_pr_conv_forward(conv: &Conv2d, input: &Tensor) -> Tensor {
    let geom = conv.geometry();
    let k = geom.kernel;
    let cols = pre_pr_im2col(input, geom);
    let wmat = conv
        .weight()
        .reshape(&[conv.out_channels(), geom.in_channels * k * k])
        .expect("bench shapes are valid");
    let out = wmat.matmul_sparse_aware(&cols).expect("bench shapes are valid");
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let mut out = out.reshape(&[conv.out_channels(), oh, ow]).expect("bench shapes are valid");
    let plane = oh * ow;
    let data = out.as_mut_slice();
    for c in 0..conv.out_channels() {
        let b = conv.bias().as_slice()[c];
        for v in &mut data[c * plane..(c + 1) * plane] {
            *v += b;
        }
    }
    out
}

/// Verbatim copy of the pre-planning `matvec` (allocating, strictly
/// sequential per-row sum — the form LLVM cannot vectorise).
fn pre_pr_matvec(weight: &Tensor, x: &Tensor) -> Tensor {
    let (m, k) = (weight.dims()[0], weight.dims()[1]);
    let a = weight.as_slice();
    let xs = x.as_slice();
    let mut out = vec![0.0f32; m];
    for (i, o) in out.iter_mut().enumerate() {
        let row = &a[i * k..(i + 1) * k];
        *o = row.iter().zip(xs).map(|(&w, &v)| w * v).sum();
    }
    Tensor::from_vec(out, &[m]).expect("bench shapes are valid")
}

/// Replica of the pre-planning dense forward: input reshape (copy), allocating
/// sequential matvec, separate bias pass.
fn pre_pr_dense_forward(dense: &Dense, input: &Tensor) -> Tensor {
    let flat = input.reshape(&[dense.in_features()]).expect("bench shapes are valid");
    let mut y = pre_pr_matvec(dense.weight(), &flat);
    y.add_scaled_inplace(dense.bias(), 1.0).expect("bench shapes are valid");
    y
}

fn pre_pr_run_layers(layers: &[Layer], input: &Tensor) -> Tensor {
    let mut x = input.clone();
    for layer in layers {
        x = match layer {
            Layer::Conv2d(conv) => pre_pr_conv_forward(conv, &x),
            Layer::Dense(dense) => pre_pr_dense_forward(dense, &x),
            other => other.forward(&x).expect("bench shapes are valid"),
        };
    }
    x
}

/// Replica of the pre-planning `forward_to_exit`, including the softmax /
/// confidence tensor chain of `ExitOutput`.
fn pre_pr_forward_to_exit(net: &MultiExitNetwork, input: &Tensor, exit: usize) -> (usize, f32) {
    let mut trunk = input.clone();
    for segment in &net.segments()[..=exit] {
        trunk = pre_pr_run_layers(segment, &trunk);
    }
    let logits = pre_pr_run_layers(&net.branches()[exit], &trunk);
    let probs = softmax(&logits).expect("bench shapes are valid");
    let prediction = probs.argmax().expect("non-empty logits");
    (prediction, confidence(&probs))
}

/// Median wall-clock nanoseconds of `f` over `samples` timed invocations
/// (after `warmup` untimed ones).
fn median_ns<F: FnMut()>(warmup: usize, samples: usize, mut f: F) -> u64 {
    for _ in 0..warmup {
        f();
    }
    let mut times: Vec<u64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as u64
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Minimum wall-clock nanoseconds of `f` over `samples` timed invocations —
/// the noise-robust statistic for micro-scale cases, where scheduler
/// interference is strictly one-sided and the minimum is the closest
/// observation to the true cost.
fn min_ns<F: FnMut()>(warmup: usize, samples: usize, mut f: F) -> u64 {
    for _ in 0..warmup {
        f();
    }
    (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as u64
        })
        .min()
        .expect("at least one timed sample")
}

struct CaseResult {
    case: String,
    pre_pr_ns: u64,
    allocating_ns: u64,
    planned_ns: u64,
}

impl CaseResult {
    fn speedup_vs_pre_pr(&self) -> f64 {
        self.pre_pr_ns as f64 / self.planned_ns.max(1) as f64
    }
}

struct BatchCaseResult {
    case: String,
    batch: usize,
    /// Timing statistic of this case ("median", or "min" for micro-scale
    /// cases where one-sided scheduler noise would swamp a median).
    statistic: &'static str,
    planned_single_ns: u64,
    batched_ns_per_sample: u64,
}

impl BatchCaseResult {
    fn speedup_vs_planned(&self) -> f64 {
        self.planned_single_ns as f64 / self.batched_ns_per_sample.max(1) as f64
    }
}

/// The training step: the legacy allocating `MultiExitNetwork::backward`
/// against the planned zero-alloc path — `backward_with` for the single-step
/// case, the single-threaded `BatchBackwardPlan::train_step` for batch-8
/// (ns/sample). `traffic_bytes_per_op` is the plan's analytic working-set
/// traffic per step (`BackwardPlan::traffic_bytes`, a deliberate lower
/// bound), so the ROADMAP's bandwidth story is recorded as numbers in the
/// JSON instead of guessed.
struct TrainStepResult {
    case: String,
    /// ns per step through the legacy allocating backward (the same-run
    /// machine-speed reference of the gate).
    legacy_ns: u64,
    /// ns per step through the planned path (the gated metric).
    planned_ns: u64,
    /// Analytic bytes moved per planned step (lower bound).
    traffic_bytes_per_op: u64,
}

impl TrainStepResult {
    fn speedup(&self) -> f64 {
        self.legacy_ns as f64 / self.planned_ns.max(1) as f64
    }

    /// Effective bandwidth of the planned step (bytes/ns == GB/s).
    fn effective_gbps(&self) -> f64 {
        self.traffic_bytes_per_op as f64 / self.planned_ns.max(1) as f64
    }
}

struct PolicyEvalResult {
    case: String,
    single_eval_ns: u64,
    batched_eval_ns: u64,
}

impl PolicyEvalResult {
    fn speedup(&self) -> f64 {
        self.single_eval_ns as f64 / self.batched_eval_ns.max(1) as f64
    }
}

struct QuantCaseResult {
    case: String,
    /// The same policy executed on the fake-quant f32 planned path (the
    /// same-run machine-speed reference of the gate).
    fake_quant_f32_ns: u64,
    /// The integer engine (i8 GEMM + requantization epilogues).
    quantized_ns: u64,
}

impl QuantCaseResult {
    fn speedup(&self) -> f64 {
        self.fake_quant_f32_ns as f64 / self.quantized_ns.max(1) as f64
    }
}

/// One dispatched kernel benchmarked against its own portable tier in the
/// same process — the per-kernel visibility of the SIMD sweep. The portable
/// measurement doubles as the same-run machine-speed reference of the gate.
struct SimdKernelResult {
    case: String,
    /// The kernel pinned to the Portable tier.
    portable_ns: u64,
    /// The kernel on the active (auto-dispatched) tier.
    dispatched_ns: u64,
}

impl SimdKernelResult {
    fn speedup(&self) -> f64 {
        self.portable_ns as f64 / self.dispatched_ns.max(1) as f64
    }
}

/// The `EventLoopSimulator` wake-window loop: one full event-trace replay,
/// unbatched (window 1) and with an 8-event wake window. The unbatched run is
/// the same-run reference of the gate (both replay identical events).
struct SimLoopResult {
    case: String,
    run_ns: u64,
    run_batched8_ns: u64,
}

/// The intermittent executor's reboot-and-recover loop: one full task-graph
/// execution under a seeded random fault plan (injected power cuts plus torn
/// checkpoint writes) against the fault-free execution of the same graph in
/// the same run — the machine-speed reference of the gate. The cut schedule
/// is deterministic per seed, so the recovery/fault-free ratio measures the
/// checkpoint + recovery machinery, not schedule luck.
struct CheckpointLoopResult {
    case: String,
    /// ns per fault-free execution (the same-run reference).
    fault_free_ns: u64,
    /// ns per execution under the fault plan (the gated metric).
    recovery_ns: u64,
    /// Recovery work of one faulty execution (reported for context).
    recovered_boots: u64,
    torn_writes: u64,
}

impl CheckpointLoopResult {
    fn overhead(&self) -> f64 {
        self.recovery_ns as f64 / self.fault_free_ns.max(1) as f64
    }
}

/// The open-loop serving path: a fixed request stream replayed end to end
/// (admission + window composition + batched inference + response merge).
/// `planned_single_ns` — the admitted requests run one at a time through the
/// single-input planned path — is the same-run machine-speed reference of
/// the gate; the 4-worker numbers and the queueing-model latency/throughput
/// are reported, not gated (CI core counts vary).
struct ServeLoopResult {
    case: String,
    requests: usize,
    served: usize,
    /// ns per request: single-input planned loop over the admitted set.
    planned_single_ns: u64,
    /// ns per request: full replay with 1 worker (the gated metric).
    serve1_ns: u64,
    /// ns per request: full replay with 4 workers (reported only).
    serve4_ns: u64,
    latency_p50_ns: u64,
    latency_p99_ns: u64,
    throughput_rps: u64,
}

/// The overloaded serving path: the 2×-saturation stream replayed behind a
/// bounded queue, once degrading exits under pressure and once flat-shedding.
/// Both replays plan the identical stream in the same run, so the gated
/// degrade/reject ratio measures the pressure-mapping machinery itself —
/// degradation must not cost more than turning requests away. The per-policy
/// served and deadline-met counts are deterministic fixture facts, recorded
/// so the throughput trade (degrade serves more, shallower) stays visible.
struct OverloadLoopResult {
    case: String,
    requests: usize,
    /// ns per request: bounded-queue replay under `ShedPolicy::Degrade`
    /// with 1 worker (the gated metric).
    degrade1_ns: u64,
    /// ns per request: the same replay under `ShedPolicy::Reject` (the
    /// same-run reference).
    reject1_ns: u64,
    degrade_served: usize,
    reject_served: usize,
    degrade_deadline_met: usize,
    reject_deadline_met: usize,
    degraded: usize,
    shed_reject: usize,
}

/// The fleet-scale intermittent loop (`ie_core::fleet`): a mixed population
/// of devices advanced end to end. The same devices streamed sequentially
/// through `simulate_device_into` — no worker scope — are the same-run
/// machine-speed reference of the gate, so the gated ratio is the
/// shard/spawn/merge overhead of the 1-worker fleet (≈1). The multi-worker
/// replay is reported, not gated (runner core counts vary).
struct FleetLoopResult {
    case: String,
    devices: u64,
    device_steps: u64,
    /// ns per device-step: sequential streaming loop (the reference).
    sequential_ns: u64,
    /// ns per device-step: `FleetSimulator::run` with 1 worker (gated).
    fleet1_ns: u64,
    /// ns per device-step: `FleetSimulator::run` with 4 workers (reported).
    fleet4_ns: u64,
}

struct SearchLoopResult {
    case: String,
    /// Bare cost/accuracy profile evaluation through the analytic evaluator
    /// (printed for context; too small to normalize against).
    profile_eval_ns: u64,
    /// The same-run machine-speed reference of the gate: the single-input
    /// empirical policy evaluation (`policy_eval_loop`'s `single_eval_ns`),
    /// a stable millisecond-scale measurement.
    reference_eval_ns: u64,
    /// One full search-loop step: snapped policy → profile → deployed-model
    /// simulation → rewards (`CompressionEnv::evaluate`).
    env_eval_ns: u64,
}

/// Extracts the numeric value of `key` inside the JSON object whose
/// `"case"` equals `case`. A deliberately narrow parser for the flat JSON
/// this binary itself emits — enough for the regression gate without a JSON
/// dependency.
fn case_metric(json: &str, case: &str, key: &str) -> Option<f64> {
    let case_pos = json.find(&format!("\"case\": \"{case}\""))?;
    let object = &json[case_pos..case_pos + json[case_pos..].find('}')?];
    let key_pos = object.find(&format!("\"{key}\":"))?;
    let value = object[key_pos..].split(':').nth(1)?;
    value
        .trim()
        .trim_end_matches(',')
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect::<String>()
        .parse()
        .ok()
}

/// Extracts the `isa_tier` the baseline JSON was measured on, if recorded.
fn baseline_isa_tier(json: &str) -> Option<String> {
    let pos = json.find("\"isa_tier\": \"")?;
    let start = pos + "\"isa_tier\": \"".len();
    let end = start + json[start..].find('"')?;
    Some(json[start..end].to_string())
}

/// One gated metric of the regression check: an absolute ns value plus the
/// same-run reference measurement that normalizes machine speed.
struct GatedMetric {
    case: String,
    /// Field in the baseline JSON holding the gated absolute ns.
    key: &'static str,
    current: u64,
    /// Field in the baseline JSON holding the same-run reference ns (a path
    /// measured by the same binary in the same process, e.g. the pre-PR
    /// replica), so baseline and current runs each carry their own
    /// machine-speed canary.
    ref_key: &'static str,
    current_ref: u64,
    /// Metrics whose gated/reference ratio depends on the **ISA tier** the
    /// binary dispatched to (the `simd_kernels/*` cases compare the active
    /// tier against the portable one; the quantized cases gain a VNNI boost
    /// their f32 reference does not). Such ratios are only comparable when
    /// the baseline was recorded on the same tier; on a different machine
    /// class the gate skips them instead of failing deterministically.
    tier_sensitive: bool,
}

/// Everything the gate knows about one confirmed regression — kept so the
/// failure report can print the old/new numbers per case instead of bare
/// metric names (which used to force a manual diff of the JSON files).
struct Regression {
    /// Stable id `case/key`, intersected across confirmation re-runs.
    id: String,
    /// Baseline absolute ns from the committed JSON.
    baseline_ns: f64,
    /// Freshly measured absolute ns (of the most recent confirmation run).
    current_ns: u64,
    /// `(baseline, current)` reference ratios when both sides carry one.
    ratios: Option<(f64, f64)>,
}

/// Compares the gated metrics of the fresh run against a committed baseline
/// JSON, printing one verdict line per metric. The verdict is the **ratio to
/// the same-run reference**: the baseline may have been recorded on faster
/// or slower hardware, where every absolute number shifts together but the
/// in-binary ratios stay put, so gating the ratio neither fakes a regression
/// on a slow runner nor masks one on a fast runner — a real code regression
/// moves the gated path but not its (unchanged) reference. The absolute ns
/// are printed for context and decide alone only when a reference
/// measurement is missing on either side. The blind spot — a change slowing
/// the gated path and its reference by the same factor — is accepted; for
/// the planned cases the reference is the frozen pre-PR replica, which new
/// code does not touch. Returns the regressed metrics with their old/new
/// numbers, so callers can intersect the sets across confirmation re-runs
/// and print a self-contained failure report.
fn check_against_baseline(
    baseline: &str,
    metrics: &[GatedMetric],
    tolerance: f64,
) -> Vec<Regression> {
    // Tier-sensitive ratios are only meaningful against a baseline measured
    // on the same ISA tier (e.g. a VNNI-recorded madd-GEMM ratio can never be
    // reproduced by an AVX2-only runner, and would fail the gate on every
    // confirmation attempt with zero code change).
    let current_tier = dispatch::active().name();
    let baseline_tier = baseline_isa_tier(baseline);
    let tier_matches = baseline_tier.as_deref() == Some(current_tier);
    let mut regressions = Vec::new();
    for m in metrics {
        let (case, key, current) = (&m.case, m.key, m.current);
        if m.tier_sensitive && !tier_matches {
            // The baseline's ratio was measured on a different tier, so it is
            // not reproducible here — but the *same-run* ratio still carries
            // a hardware-independent invariant: the dispatched path must not
            // be slower than its own reference (the portable tier for the
            // simd_kernels cases, the fake-quant f32 path for the quantized
            // ones) by more than the tolerance. That floor catches
            // catastrophic SIMD regressions on every runner class without
            // ever false-failing on slower machines.
            let current_ratio = current as f64 / m.current_ref.max(1) as f64;
            let regressed = current_ratio > tolerance;
            println!(
                "check: {case}/{key}: baseline tier ({}) differs from this machine's \
                 ({current_tier}); same-run ratio floor decides: {current_ratio:.3} vs {tolerance} \
                 {}",
                baseline_tier.as_deref().unwrap_or("unrecorded"),
                if regressed { "REGRESSED" } else { "ok" }
            );
            if regressed {
                regressions.push(Regression {
                    id: format!("{case}/{key}"),
                    baseline_ns: m.current_ref as f64,
                    current_ns: current,
                    ratios: Some((1.0, current_ratio)),
                });
            }
            continue;
        }
        let Some(base) = case_metric(baseline, case, key) else {
            // Newly added cases are not gated until the baseline records them.
            println!("check: {case}/{key} not in baseline, skipping");
            continue;
        };
        let abs_limit = base * tolerance;
        let abs_regressed = (current as f64) > abs_limit;
        let ratios = match case_metric(baseline, case, m.ref_key) {
            Some(base_ref) if base_ref > 0.0 && m.current_ref > 0 => {
                Some((base / base_ref, current as f64 / m.current_ref as f64))
            }
            _ => None,
        };
        let (regressed, ratio_note) = match ratios {
            Some((base_ratio, current_ratio)) => (
                current_ratio > base_ratio * tolerance,
                format!("ratio {current_ratio:.3} vs baseline {base_ratio:.3}"),
            ),
            None => (abs_regressed, "no reference, absolute decides".to_string()),
        };
        println!(
            "check: {case}/{key}: current {current} vs baseline {base:.0} (abs limit \
             {abs_limit:.0}), {ratio_note} {}",
            if regressed { "REGRESSED" } else { "ok" }
        );
        if regressed {
            regressions.push(Regression {
                id: format!("{case}/{key}"),
                baseline_ns: base,
                current_ns: current,
                ratios,
            });
        }
    }
    regressions
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_inference.json".to_string());
    let check_path =
        args.iter().position(|a| a == "--check").and_then(|i| args.get(i + 1).cloned());
    let mode = if fast { "fast" } else { "full" };
    let (warmup, samples) = if fast { (2, 9) } else { (5, 41) };
    // Whole-policy scoring is orders of magnitude slower per op than one
    // forward pass, so it gets its own (smaller) repetition budget.
    let (eval_warmup, eval_samples) = if fast { (1, 5) } else { (2, 15) };

    let mut rng = StdRng::seed_from_u64(0);
    let arch = lenet_multi_exit();
    let net = MultiExitNetwork::from_architecture(&arch, &mut rng).unwrap();
    let input = Tensor::randn(&mut rng, &[3, 32, 32], 0.0, 1.0);
    let mut plan = net.execution_plan();

    const BATCH: usize = 8;
    let batch_inputs: Vec<Tensor> =
        (0..BATCH).map(|_| Tensor::randn(&mut rng, &[3, 32, 32], 0.0, 1.0)).collect();
    let batch_refs: Vec<&Tensor> = batch_inputs.iter().collect();
    let mut batch_plan = net.batch_plan(BATCH);

    // Every path must agree before any timing is trusted.
    for exit in 0..3 {
        let (pre_pred, _) = pre_pr_forward_to_exit(&net, &input, exit);
        let (alloc_out, _) = net.forward_to_exit(&input, exit).unwrap();
        let planned_out = net.forward_to_exit_with(&mut plan, &input, exit).unwrap();
        assert_eq!(pre_pred, alloc_out.prediction, "pre-PR replica diverged at exit {exit}");
        assert_eq!(planned_out.prediction, alloc_out.prediction, "planned diverged at {exit}");
        let batched = net.forward_to_exit_batch_with(&mut batch_plan, &batch_refs, exit).unwrap();
        for (i, batch_input) in batch_inputs.iter().enumerate() {
            let single = net.forward_to_exit_with(&mut plan, batch_input, exit).unwrap();
            assert_eq!(batched.prediction(i), single.prediction, "batched diverged at {exit}/{i}");
        }
    }

    // Training fixtures: the legacy allocating backward against the planned
    // zero-alloc one on the paper backbone, single-step and batch-8. The
    // batched case runs single-threaded so the ratio measures kernels and
    // allocations, never core counts; lr = 0 keeps the weights frozen so
    // every timed step performs identical work. Loss bit-identity is
    // asserted before anything is timed (the gradient-level equivalence
    // lives in ie_nn's proptests).
    let mut train_net = net.clone();
    let train_weights = [0.2f32, 0.3, 0.5];
    let train_classes = net.forward_to_exit(&input, 0).unwrap().0.logits.len();
    let mut train_plan = train_net.backward_plan();
    let mut train_batch = BatchBackwardPlan::new();
    let train_samples: Vec<Sample> = batch_inputs
        .iter()
        .enumerate()
        .map(|(i, image)| Sample { image: image.clone(), label: i % train_classes })
        .collect();
    {
        let legacy_loss = train_net.backward(&input, 1, &train_weights).unwrap();
        train_net.apply_gradients(0.0);
        let planned_loss =
            train_net.backward_with(&mut train_plan, &input, 1, &train_weights).unwrap();
        train_net.apply_gradients(0.0);
        assert_eq!(
            legacy_loss.to_bits(),
            planned_loss.to_bits(),
            "planned training loss diverged from the legacy backward"
        );
        let mut legacy_total = 0.0f32;
        for s in &train_samples {
            legacy_total += train_net.backward(&s.image, s.label, &train_weights).unwrap();
        }
        train_net.apply_gradients(0.0);
        let planned_total =
            train_batch.train_step(&mut train_net, &train_samples, &train_weights, 0.0, 1).unwrap();
        assert_eq!(
            legacy_total.to_bits(),
            planned_total.to_bits(),
            "batched training loss diverged from the legacy per-sample loop"
        );
    }

    // Remaining fixtures: the small backbone the search's calibration loop
    // actually runs (fixed per-pass costs dominate there, which is where
    // batching pays most) and the whole-policy evaluator over a synthetic
    // calibration set.
    let tiny_arch = tiny_multi_exit(3);
    let tiny_net = MultiExitNetwork::from_architecture(&tiny_arch, &mut rng).unwrap();
    let tiny_inputs: Vec<Tensor> =
        (0..BATCH).map(|_| Tensor::randn(&mut rng, &[1, 8, 8], 0.0, 1.0)).collect();
    let tiny_refs: Vec<&Tensor> = tiny_inputs.iter().collect();
    let mut tiny_plan = tiny_net.execution_plan();
    let mut tiny_batch_plan = tiny_net.batch_plan(BATCH);
    let tiny_exit = tiny_arch.num_exits() - 1;
    let data = SyntheticDataset::generate(3, 8, 400, 0.05, 17);
    let evaluator = PolicyEvaluator::new(
        &tiny_arch,
        EmpiricalAccuracyEstimator::new(tiny_net.clone(), data.train().to_vec()),
    );
    let policy = CompressionPolicy::uniform(evaluator.layers().len(), 0.6, 8, 8).unwrap();
    assert_eq!(
        evaluator.evaluate(&policy).unwrap(),
        evaluator.evaluate_batched(&policy).unwrap(),
        "batched policy evaluation diverged from the single-input one"
    );

    // Quantized backend fixtures: the paper-style i8-dominant policy (8-bit
    // convs pruned to 0.5/0.25, 1–2-bit large FC layers — the Fig. 4 shape
    // that actually fits the MCU targets) executed once through the
    // fake-quant f32 planned path (sparse-aware GEMM on the pruned convs)
    // and once through the integer engine (pruned channels packed away, madd
    // GEMM on the kept ones).
    let compressible = arch.compressible_layers();
    let i8_policy: CompressionPolicy = compressible
        .iter()
        .map(|l| {
            if l.is_conv {
                if l.first_exit == 0 {
                    ie_compress::LayerPolicy::new(0.5, 8, 8).unwrap()
                } else {
                    ie_compress::LayerPolicy::new(0.25, 4, 8).unwrap()
                }
            } else if l.weight_params > 20_000 {
                ie_compress::LayerPolicy::new(0.35, 1, 8).unwrap()
            } else {
                ie_compress::LayerPolicy::new(0.5, 2, 8).unwrap()
            }
        })
        .collect();
    let calib: Vec<Sample> = (0..8)
        .map(|_| Sample { image: Tensor::randn(&mut rng, &[3, 32, 32], 0.0, 1.0), label: 0 })
        .collect();
    let mut fake_net = net.clone();
    apply_policy(&mut fake_net, &i8_policy).unwrap();
    let mut fake_plan = fake_net.execution_plan();
    let mut fake_batch_plan = fake_net.batch_plan(BATCH);
    let mut int_net = net.clone();
    let quant_cfg = apply_policy_quantized(&mut int_net, &i8_policy, &calib).unwrap();
    let quant_model = QuantizedModel::for_network(&int_net, &quant_cfg).unwrap();
    let (i8_layers, i16_layers) = quant_model.kernel_counts();
    assert_eq!(
        i8_layers + i16_layers,
        compressible.len(),
        "the i8-dominant policy quantizes every layer"
    );
    let mut quant_plan = int_net.execution_plan_quantized(&quant_cfg).unwrap();
    let mut quant_batch_plan = int_net.batch_plan_quantized(&quant_cfg, BATCH).unwrap();
    // The integer engine must agree bit-for-bit with its naive fake-quant
    // reference before anything is timed.
    for exit in 0..3 {
        int_net.forward_to_exit_with(&mut quant_plan, &input, exit).unwrap();
        let reference = fake_quant_logits(&int_net, &quant_model, &input, exit).unwrap();
        assert_eq!(quant_plan.logits(exit), reference.as_slice(), "quantized diverged at {exit}");
        let batched =
            int_net.forward_to_exit_batch_with(&mut quant_batch_plan, &batch_refs, exit).unwrap();
        let batched_ref =
            fake_quant_logits(&int_net, &quant_model, &batch_inputs[0], exit).unwrap();
        assert_eq!(batched.logits(0), batched_ref.as_slice(), "batched quantized diverged");
    }

    // Search-loop fixture: one full `CompressionEnv::evaluate` step (profile
    // + event-loop simulation + rewards) on the small test experiment, with
    // the bare profile evaluation as the same-run machine-speed reference.
    let search_env = CompressionEnv::new(&ExperimentConfig::small_test(), RewardMode::ExitGuided)
        .expect("small test config is valid");
    let search_policy = CompressionPolicy::uniform(search_env.num_layers(), 0.5, 4, 8).unwrap();
    let profile_evaluator =
        PolicyEvaluator::new(&arch, CalibratedAccuracyModel::for_paper_backbone());

    // Simulator-loop fixture: the `EventLoopSimulator` wake-window replay on
    // the small test experiment (the intermittent-side hot loop).
    let sim_config = ExperimentConfig::small_test();
    let sim_model =
        DeployedModel::uncompressed_reference(&sim_config).expect("small test config is valid");
    let simulator = EventLoopSimulator::new(&sim_config);

    // Checkpoint-loop fixture: the SONIC-style intermittent executor on a
    // 16-task MSP432 graph. The harvest is ample, so the timing covers
    // compute + two-bank checkpoint commits + reboot recovery, never waiting
    // for energy; the injected cuts replay identically per seed. Recovery
    // must be bit-identical to the fault-free run before it is timed.
    let ckpt_exec = IntermittentExecutor::new(ie_mcu::CostModel::for_device(&McuDevice::msp432()));
    let ckpt_graph = TaskGraph::split_evenly("bench", 2_000_000, 16);
    let ckpt_plan = FaultPlan::random(0xFA017, 0.25, 48);
    let ckpt_run = |plan: &FaultPlan| {
        let mut sim = ie_energy::HarvestSimulator::new(
            Box::new(ie_energy::ConstantTrace::new(2.0, 10_000_000.0)),
            ie_energy::EnergyStorage::new(200.0, 1.0).with_initial_level(100.0),
        );
        let mut nv = NonvolatileMemory::new(1024);
        ckpt_exec
            .execute_with_faults(&ckpt_graph, &mut sim, &mut nv, &mut plan.injector())
            .expect("an ample harvest always completes")
    };
    let ckpt_reference = ckpt_run(&FaultPlan::None);
    let ckpt_recovered = ckpt_run(&ckpt_plan);
    assert!(ckpt_recovered.recovered_boots > 0, "the bench fault plan must cut something");
    assert_eq!(
        ckpt_recovered.output_digest, ckpt_reference.output_digest,
        "recovery diverged from the fault-free run"
    );

    // Serving-loop fixture: a fixed open-loop request stream on the tiny
    // backbone, admitted through the static-LUT table over a fixed per-exit
    // cost table — the decisions (shed / shallow / deep) are part of the
    // fixture, so the bench times machine speed, never policy drift. Bursts
    // of 8 requests fill the window; the budget ladder exercises all three
    // verdicts.
    let serve_count = 128usize;
    let mut serve_admission = LatencyAdmission::static_lut(
        vec![0.002, 0.006],
        vec![0.6, 0.7],
        StateDiscretizer::paper_default(),
    )
    .expect("serve admission table is valid");
    let serve_stream: Vec<Request> = (0..serve_count)
        .map(|i| Request {
            id: i as u64,
            arrival_s: (i / 8) as f64 * 0.001,
            budget_s: [0.0005, 0.003, 0.004, 0.008][i % 4],
            input: data.train()[i % data.train().len()].image.clone(),
        })
        .collect();
    // Admission is deterministic and stateless here; precompute the admitted
    // set once for the single-input reference loop.
    let serve_admitted: Vec<(usize, usize)> = serve_stream
        .iter()
        .enumerate()
        .filter_map(|(i, r)| serve_admission.admit(r.id, r.budget_s).map(|exit| (i, exit)))
        .collect();
    assert!(
        !serve_admitted.is_empty() && serve_admitted.len() < serve_count,
        "the serve fixture must both admit and shed requests"
    );
    let serve_window = WindowConfig { max_batch: 8, deadline_s: 0.001 };
    let mut serve_pool = BatchPlanPool::new();
    let mut serve1 = Server::new(&tiny_net, ServeConfig::new(serve_window, 1), &mut serve_pool)
        .expect("serve config is valid");
    let mut serve4 = Server::new(&tiny_net, ServeConfig::new(serve_window, 4), &mut serve_pool)
        .expect("serve config is valid");

    // Overload fixture: the same backbone at 2× the cheapest exit's service
    // rate (arrival gap = half its cost) behind a bounded queue, replayed
    // under the two shed policies. The plans are deterministic, so the
    // per-policy served/degraded/shed counts are fixture facts — asserted
    // once here, recorded in the JSON.
    let overload_count = 128usize;
    let overload_stream: Vec<Request> = (0..overload_count)
        .map(|i| Request {
            id: i as u64,
            arrival_s: i as f64 * 0.001,
            budget_s: [0.0005, 0.003, 0.004, 0.008][i % 4],
            input: data.train()[i % data.train().len()].image.clone(),
        })
        .collect();
    let overload_server = |policy: ShedPolicy, pool: &mut BatchPlanPool| {
        let overload = OverloadConfig { queue_cap: 4, policy, ..OverloadConfig::default() };
        Server::new(&tiny_net, ServeConfig { window: serve_window, threads: 1, overload }, pool)
            .expect("overload config is valid")
    };
    let mut serve_degrade = overload_server(ShedPolicy::Degrade, &mut serve_pool);
    let mut serve_reject = overload_server(ShedPolicy::Reject, &mut serve_pool);
    {
        let degrade =
            serve_degrade.replay(&mut serve_admission, &overload_stream).expect("degrade replay");
        let reject =
            serve_reject.replay(&mut serve_admission, &overload_stream).expect("reject replay");
        assert!(degrade.report.conservation_holds() && reject.report.conservation_holds());
        assert!(reject.report.shed > 0, "2x saturation must overflow a 4-slot queue");
        assert!(degrade.report.degraded > 0, "queue pressure must degrade some exits");
        // Degrade trades a little raw throughput (it sheds the unmeetable
        // upfront) for goodput: almost everything it serves meets its
        // deadline, where Reject serves a backlog of useless late answers.
        assert!(
            degrade.report.deadline_met > reject.report.deadline_met,
            "degradation exists to convert raw throughput into goodput ({} vs {})",
            degrade.report.deadline_met,
            reject.report.deadline_met
        );
    }

    // Fleet-loop fixture: a mixed population (all three trace kinds, all
    // three policy kinds, a quarter fault-exposed) advanced end to end on
    // the small test model. Worker counts are pinned in the configs so the
    // `IE_FLEET_THREADS` knob cannot skew the bench, and the determinism
    // contract — byte-identical aggregates at any worker count — is asserted
    // before anything is timed.
    let fleet_devices: u64 = if fast { 96 } else { 256 };
    let mut fleet_cfg = FleetConfig::new(fleet_devices, 0xF1EE7);
    fleet_cfg.events_per_device = 8;
    fleet_cfg.device_duration_s = 600.0;
    fleet_cfg.threads = 1;
    let fleet1_sim = FleetSimulator::new(&fleet_cfg);
    fleet_cfg.threads = 4;
    let fleet4_sim = FleetSimulator::new(&fleet_cfg);
    assert_eq!(
        fleet1_sim.run(&sim_model).expect("fleet fixture runs").metrics,
        fleet4_sim.run(&sim_model).expect("fleet fixture runs").metrics,
        "fleet aggregates diverged across worker counts"
    );
    let fleet_steps = fleet_devices * fleet_cfg.events_per_device as u64;

    // SIMD kernel fixtures: each dispatched kernel is timed on the active
    // tier against its own Portable tier in the same process, after a
    // bit-identity assertion — the per-kernel visibility of the ISA sweep.
    let sm_logits: Vec<f32> = (0..4096).map(|i| ((i % 997) as f32 * 0.013).sin() * 4.0).collect();
    let mut sm_out = vec![0.0f32; sm_logits.len()];
    let (pool_planes, pool_h, pool_w) = (64usize, 32usize, 32usize);
    let pool_src: Vec<f32> = (0..pool_planes * pool_h * pool_w)
        .map(|i| ((i % 613) as f32 * 0.021).cos() * 3.0)
        .collect();
    let pool_codes: Vec<i8> = pool_src.iter().map(|&v| (v * 20.0) as i8).collect();
    let mut pool_out = vec![0.0f32; pool_planes * (pool_h / 2) * (pool_w / 2)];
    let mut pool_out_codes = vec![0i8; pool_out.len()];
    // The paper backbone's conv2 GEMM shape (32 filters over 3·5·5 inputs,
    // 16×16 output positions): small enough that the axpy streams from L1/L2
    // — the regime the pruned convolutions actually run in. (At very wide
    // shapes the axpy is memory-bandwidth-bound and vector width stops
    // mattering.)
    let (sp_m, sp_k, sp_n) = (32usize, 75usize, 256usize);
    let mut sp_a: Vec<f32> = (0..sp_m * sp_k).map(|i| ((i % 389) as f32 * 0.017).sin()).collect();
    for (i, v) in sp_a.iter_mut().enumerate() {
        // Zero every other 25-element input-channel block, like 0.5 pruning.
        if (i % sp_k) / 25 % 2 == 0 {
            *v = 0.0;
        }
    }
    let sp_b: Vec<f32> = (0..sp_k * sp_n).map(|i| ((i % 523) as f32 * 0.011).cos()).collect();
    let mut sp_out = vec![0.0f32; sp_m * sp_n];
    let q_params = QuantParams::from_range(0.0, 6.0, 8);
    let q_src: Vec<f32> =
        (0..16_384).map(|i| ((i % 741) as f32 * 0.009).sin() * 5.0 + 2.0).collect();
    let mut q_codes = vec![0i8; q_src.len()];
    let (md_m, md_kp, md_n) = (32usize, 400usize, 1024usize);
    let md_a: Vec<i16> = (0..md_m * md_kp).map(|i| ((i % 251) as i16) - 125).collect();
    let md_bt: Vec<i16> = (0..md_n * md_kp).map(|i| ((i % 239) as i16) - 119).collect();
    let mut md_out = vec![0i32; md_m * md_n];
    {
        // Bit-identity of every benchmarked kernel is asserted before any
        // timing is trusted, mirroring the plan verifications above.
        let mut reference = sm_out.clone();
        tiered::softmax_slice_into(IsaTier::Portable, &sm_logits, &mut reference);
        ie_tensor::softmax_slice_into(&sm_logits, &mut sm_out);
        assert_eq!(reference, sm_out, "softmax tiers diverged");
        let mut pref = pool_out.clone();
        tiered::max_pool_planes_into(
            IsaTier::Portable,
            &pool_src,
            pool_planes,
            pool_h,
            pool_w,
            2,
            &mut pref,
        );
        ie_tensor::max_pool_planes_into(&pool_src, pool_planes, pool_h, pool_w, 2, &mut pool_out);
        assert_eq!(pref, pool_out, "max-pool tiers diverged");
        let mut sref = sp_out.clone();
        tiered::gemm_sparse_into(IsaTier::Portable, &sp_a, &sp_b, &mut sref, sp_m, sp_k, sp_n);
        ie_tensor::gemm_sparse_into(&sp_a, &sp_b, &mut sp_out, sp_m, sp_k, sp_n);
        assert_eq!(sref, sp_out, "sparse GEMM tiers diverged");
        let mut qref = q_codes.clone();
        q_params.quantize_slice_into_tier(IsaTier::Portable, &q_src, &mut qref);
        q_params.quantize_slice_into(&q_src, &mut q_codes);
        assert_eq!(qref, q_codes, "quantize tiers diverged");
        let mut mref = md_out.clone();
        tiered::gemm_i16t_into(IsaTier::Portable, &md_a, &md_bt, &mut mref, md_m, md_kp, md_n);
        ie_tensor::gemm_i16t_into(&md_a, &md_bt, &mut md_out, md_m, md_kp, md_n);
        assert_eq!(mref, md_out, "madd GEMM tiers diverged");
    }

    // The whole measurement pass lives in a closure so the --check gate can
    // re-run it to confirm a suspected regression (see below).
    let mut measure_all = || {
        let mut results = Vec::new();
        for exit in 0..3 {
            let pre_pr_ns = median_ns(warmup, samples, || {
                black_box(pre_pr_forward_to_exit(&net, &input, exit).0);
            });
            let allocating_ns = median_ns(warmup, samples, || {
                black_box(net.forward_to_exit(&input, exit).unwrap().0.prediction);
            });
            let planned_ns = median_ns(warmup, samples, || {
                black_box(net.forward_to_exit_with(&mut plan, &input, exit).unwrap().prediction);
            });
            results.push(CaseResult {
                case: format!("to_exit_{}", exit + 1),
                pre_pr_ns,
                allocating_ns,
                planned_ns,
            });
        }

        // Batched throughput at the deepest exit: ns per *sample*, against
        // the single-input planned pass as the reference. The planned
        // reference is re-measured on a per-sample loop over the same inputs
        // so both sides cover identical work.
        let planned_loop_ns = median_ns(warmup, samples, || {
            for batch_input in &batch_inputs {
                black_box(net.forward_to_exit_with(&mut plan, batch_input, 2).unwrap().prediction);
            }
        }) / BATCH as u64;
        let mut batch_results = Vec::new();
        for batch in [1usize, BATCH] {
            let refs = &batch_refs[..batch];
            let total_ns = median_ns(warmup, samples, || {
                black_box(
                    net.forward_to_exit_batch_with(&mut batch_plan, refs, 2).unwrap().prediction(0),
                );
            });
            batch_results.push(BatchCaseResult {
                case: format!("to_exit_3_batch{batch}"),
                batch,
                statistic: "median",
                planned_single_ns: planned_loop_ns,
                batched_ns_per_sample: total_ns / batch as u64,
            });
        }

        // One tiny pass is only ~10-20 µs, where timer and scheduler noise
        // dominate a single invocation; each timed sample therefore covers
        // TINY_REPS passes, and the case is reported as the minimum (see
        // `min_ns`) so one-sided interference cannot fake a regression.
        const TINY_REPS: usize = 16;
        let tiny_planned_ns = min_ns(warmup, samples * 4, || {
            for _ in 0..TINY_REPS {
                for tiny_input in &tiny_inputs {
                    black_box(
                        tiny_net
                            .forward_to_exit_with(&mut tiny_plan, tiny_input, tiny_exit)
                            .unwrap()
                            .prediction,
                    );
                }
            }
        }) / (BATCH * TINY_REPS) as u64;
        let tiny_batched_ns = min_ns(warmup, samples * 4, || {
            for _ in 0..TINY_REPS {
                black_box(
                    tiny_net
                        .forward_to_exit_batch_with(&mut tiny_batch_plan, &tiny_refs, tiny_exit)
                        .unwrap()
                        .prediction(0),
                );
            }
        }) / (BATCH * TINY_REPS) as u64;
        batch_results.push(BatchCaseResult {
            case: format!("tiny_to_exit_{}_batch{BATCH}", tiny_exit + 1),
            batch: BATCH,
            statistic: "min",
            planned_single_ns: tiny_planned_ns,
            batched_ns_per_sample: tiny_batched_ns,
        });

        // Training steps: legacy allocating backward vs the planned path,
        // single-step (ns/step) and batch-8 (ns/sample, single-threaded).
        let mut train_results = Vec::new();
        let train_legacy_single_ns = median_ns(warmup, samples, || {
            black_box(train_net.backward(&input, 1, &train_weights).unwrap());
            train_net.apply_gradients(0.0);
        });
        let train_planned_single_ns = median_ns(warmup, samples, || {
            black_box(train_net.backward_with(&mut train_plan, &input, 1, &train_weights).unwrap());
            train_net.apply_gradients(0.0);
        });
        train_results.push(TrainStepResult {
            case: "lenet_single".to_string(),
            legacy_ns: train_legacy_single_ns,
            planned_ns: train_planned_single_ns,
            traffic_bytes_per_op: train_plan.traffic_bytes(),
        });
        let train_legacy_batch_ns = median_ns(warmup, samples, || {
            let mut total = 0.0f32;
            for s in &train_samples {
                total += train_net.backward(&s.image, s.label, &train_weights).unwrap();
            }
            train_net.apply_gradients(0.0);
            black_box(total);
        }) / BATCH as u64;
        let train_planned_batch_ns = median_ns(warmup, samples, || {
            black_box(
                train_batch
                    .train_step(&mut train_net, &train_samples, &train_weights, 0.0, 1)
                    .unwrap(),
            );
        }) / BATCH as u64;
        train_results.push(TrainStepResult {
            case: "lenet_batch8".to_string(),
            legacy_ns: train_legacy_batch_ns,
            planned_ns: train_planned_batch_ns,
            traffic_bytes_per_op: train_plan.traffic_bytes(),
        });

        // Quantized vs fake-quant f32: the identical i8-dominant policy, the
        // only difference being which kernels execute it.
        let mut quant_results = Vec::new();
        let fake_single_ns = median_ns(warmup, samples, || {
            black_box(fake_net.forward_to_exit_with(&mut fake_plan, &input, 2).unwrap().prediction);
        });
        let quant_single_ns = median_ns(warmup, samples, || {
            black_box(int_net.forward_to_exit_with(&mut quant_plan, &input, 2).unwrap().prediction);
        });
        quant_results.push(QuantCaseResult {
            case: "to_exit_3_i8".to_string(),
            fake_quant_f32_ns: fake_single_ns,
            quantized_ns: quant_single_ns,
        });
        let fake_batch_ns = median_ns(warmup, samples, || {
            black_box(
                fake_net
                    .forward_to_exit_batch_with(&mut fake_batch_plan, &batch_refs, 2)
                    .unwrap()
                    .prediction(0),
            );
        }) / BATCH as u64;
        let quant_batch_ns = median_ns(warmup, samples, || {
            black_box(
                int_net
                    .forward_to_exit_batch_with(&mut quant_batch_plan, &batch_refs, 2)
                    .unwrap()
                    .prediction(0),
            );
        }) / BATCH as u64;
        quant_results.push(QuantCaseResult {
            case: "to_exit_3_i8_batch8".to_string(),
            fake_quant_f32_ns: fake_batch_ns,
            quantized_ns: quant_batch_ns,
        });

        let single_eval_ns = median_ns(eval_warmup, eval_samples, || {
            black_box(evaluator.evaluate(&policy).unwrap().exit_accuracy.len());
        });
        let batched_eval_ns = median_ns(eval_warmup, eval_samples, || {
            black_box(evaluator.evaluate_batched(&policy).unwrap().exit_accuracy.len());
        });
        let policy_eval = PolicyEvalResult {
            case: "empirical_tiny".to_string(),
            single_eval_ns,
            batched_eval_ns,
        };

        let profile_eval_ns = median_ns(eval_warmup, eval_samples, || {
            black_box(profile_evaluator.evaluate(&search_policy).unwrap().total_flops);
        });
        let env_eval_ns = median_ns(eval_warmup, eval_samples, || {
            black_box(search_env.evaluate(&search_policy).unwrap().feasible);
        });
        let search_loop = SearchLoopResult {
            case: "small_env".to_string(),
            profile_eval_ns,
            reference_eval_ns: single_eval_ns,
            env_eval_ns,
        };

        // SIMD kernels, portable tier vs the active tier; micro-scale, so
        // each timed sample covers several invocations and the minimum is
        // reported (one-sided scheduler noise cannot fake a regression).
        const KERNEL_REPS: usize = 4;
        let mut simd_results = Vec::new();
        macro_rules! kernel_case {
            ($case:expr, $portable:expr, $dispatched:expr) => {{
                let portable_ns = min_ns(warmup, samples * 2, || {
                    for _ in 0..KERNEL_REPS {
                        $portable;
                    }
                }) / KERNEL_REPS as u64;
                let dispatched_ns = min_ns(warmup, samples * 2, || {
                    for _ in 0..KERNEL_REPS {
                        $dispatched;
                    }
                }) / KERNEL_REPS as u64;
                simd_results.push(SimdKernelResult {
                    case: $case.to_string(),
                    portable_ns,
                    dispatched_ns,
                });
            }};
        }
        kernel_case!(
            "softmax_4096",
            {
                tiered::softmax_slice_into(IsaTier::Portable, &sm_logits, &mut sm_out);
                black_box(sm_out[0]);
            },
            {
                ie_tensor::softmax_slice_into(&sm_logits, &mut sm_out);
                black_box(sm_out[0]);
            }
        );
        kernel_case!(
            "maxpool_f32_64x32x32",
            {
                tiered::max_pool_planes_into(
                    IsaTier::Portable,
                    &pool_src,
                    pool_planes,
                    pool_h,
                    pool_w,
                    2,
                    &mut pool_out,
                );
                black_box(pool_out[0]);
            },
            {
                ie_tensor::max_pool_planes_into(
                    &pool_src,
                    pool_planes,
                    pool_h,
                    pool_w,
                    2,
                    &mut pool_out,
                );
                black_box(pool_out[0]);
            }
        );
        kernel_case!(
            "maxpool_i8_64x32x32",
            {
                tiered::max_pool_planes_i8_into(
                    IsaTier::Portable,
                    &pool_codes,
                    pool_planes,
                    pool_h,
                    pool_w,
                    2,
                    &mut pool_out_codes,
                );
                black_box(pool_out_codes[0]);
            },
            {
                ie_tensor::max_pool_planes_i8_into(
                    &pool_codes,
                    pool_planes,
                    pool_h,
                    pool_w,
                    2,
                    &mut pool_out_codes,
                );
                black_box(pool_out_codes[0]);
            }
        );
        kernel_case!(
            "sparse_gemm_32x75x256",
            {
                tiered::gemm_sparse_into(
                    IsaTier::Portable,
                    &sp_a,
                    &sp_b,
                    &mut sp_out,
                    sp_m,
                    sp_k,
                    sp_n,
                );
                black_box(sp_out[0]);
            },
            {
                ie_tensor::gemm_sparse_into(&sp_a, &sp_b, &mut sp_out, sp_m, sp_k, sp_n);
                black_box(sp_out[0]);
            }
        );
        kernel_case!(
            "quantize_16k",
            {
                q_params.quantize_slice_into_tier(IsaTier::Portable, &q_src, &mut q_codes);
                black_box(q_codes[0]);
            },
            {
                q_params.quantize_slice_into(&q_src, &mut q_codes);
                black_box(q_codes[0]);
            }
        );
        kernel_case!(
            "madd_gemm_32x400x1024",
            {
                tiered::gemm_i16t_into(
                    IsaTier::Portable,
                    &md_a,
                    &md_bt,
                    &mut md_out,
                    md_m,
                    md_kp,
                    md_n,
                );
                black_box(md_out[0]);
            },
            {
                ie_tensor::gemm_i16t_into(&md_a, &md_bt, &mut md_out, md_m, md_kp, md_n);
                black_box(md_out[0]);
            }
        );

        // Simulator wake-window loop: full trace replays.
        let run_ns = median_ns(eval_warmup, eval_samples, || {
            black_box(
                simulator
                    .run(&sim_model, &mut GreedyAffordablePolicy::new())
                    .unwrap()
                    .processed_events,
            );
        });
        let run_batched8_ns = median_ns(eval_warmup, eval_samples, || {
            black_box(
                simulator
                    .run_batched(&sim_model, &mut GreedyAffordablePolicy::new(), 8)
                    .unwrap()
                    .processed_events,
            );
        });
        let sim_loop = SimLoopResult { case: "small_env".to_string(), run_ns, run_batched8_ns };

        // Checkpoint/recovery loop: one full task-graph execution per rep,
        // fault-free vs under the deterministic fault plan (a fresh injector
        // per execution replays the identical cut schedule). Micro-scale, so
        // each timed sample covers several executions and the minimum is
        // reported.
        const CKPT_REPS: usize = 4;
        let fault_free_ns = min_ns(warmup, samples * 2, || {
            for _ in 0..CKPT_REPS {
                black_box(ckpt_run(&FaultPlan::None).checkpoints);
            }
        }) / CKPT_REPS as u64;
        let recovery_ns = min_ns(warmup, samples * 2, || {
            for _ in 0..CKPT_REPS {
                black_box(ckpt_run(&ckpt_plan).checkpoints);
            }
        }) / CKPT_REPS as u64;
        let checkpoint_loop = CheckpointLoopResult {
            case: "msp432_16task".to_string(),
            fault_free_ns,
            recovery_ns,
            recovered_boots: ckpt_recovered.recovered_boots,
            torn_writes: ckpt_recovered.torn_writes,
        };

        // Serving loop: the fixed stream replayed end to end, against the
        // same admitted requests run one at a time on the planned path.
        let serve_planned_total = median_ns(eval_warmup, eval_samples, || {
            for &(i, exit) in &serve_admitted {
                black_box(
                    tiny_net
                        .forward_to_exit_with(&mut tiny_plan, &serve_stream[i].input, exit)
                        .unwrap()
                        .prediction,
                );
            }
        });
        let serve1_total = median_ns(eval_warmup, eval_samples, || {
            black_box(serve1.replay(&mut serve_admission, &serve_stream).unwrap().report.served);
        });
        let serve4_total = median_ns(eval_warmup, eval_samples, || {
            black_box(serve4.replay(&mut serve_admission, &serve_stream).unwrap().report.served);
        });
        let serve_outcome = serve4.replay(&mut serve_admission, &serve_stream).unwrap();
        let n_req = serve_stream.len() as u64;
        let serve_loop = ServeLoopResult {
            case: "open_loop_tiny".to_string(),
            requests: serve_stream.len(),
            served: serve_outcome.report.served,
            planned_single_ns: serve_planned_total / n_req,
            serve1_ns: serve1_total / n_req,
            serve4_ns: serve4_total / n_req,
            latency_p50_ns: (serve_outcome.report.latency_p50_s * 1e9) as u64,
            latency_p99_ns: (serve_outcome.report.latency_p99_s * 1e9) as u64,
            throughput_rps: serve_outcome.report.throughput_rps as u64,
        };

        // Overload loop: the 2x-saturation stream behind the bounded queue,
        // degrade vs reject, both with 1 worker so the ratio is pure policy
        // machinery, never core-count luck.
        let degrade_total = median_ns(eval_warmup, eval_samples, || {
            black_box(
                serve_degrade.replay(&mut serve_admission, &overload_stream).unwrap().report.served,
            );
        });
        let reject_total = median_ns(eval_warmup, eval_samples, || {
            black_box(
                serve_reject.replay(&mut serve_admission, &overload_stream).unwrap().report.served,
            );
        });
        let degrade_outcome = serve_degrade.replay(&mut serve_admission, &overload_stream).unwrap();
        let reject_outcome = serve_reject.replay(&mut serve_admission, &overload_stream).unwrap();
        let overload_loop = OverloadLoopResult {
            case: "degrade_vs_reject_2x".to_string(),
            requests: overload_stream.len(),
            degrade1_ns: degrade_total / overload_stream.len() as u64,
            reject1_ns: reject_total / overload_stream.len() as u64,
            degrade_served: degrade_outcome.report.served,
            reject_served: reject_outcome.report.served,
            degrade_deadline_met: degrade_outcome.report.deadline_met,
            reject_deadline_met: reject_outcome.report.deadline_met,
            degraded: degrade_outcome.report.degraded,
            shed_reject: reject_outcome.report.shed,
        };

        // Fleet loop: the same device population advanced three ways — the
        // sequential streaming loop (the same-run reference), the 1-worker
        // fleet (gated) and the 4-worker fleet (reported).
        let fleet_sequential_total = median_ns(eval_warmup, eval_samples, || {
            let mut acc = FleetAccumulator::default();
            for id in 0..fleet_devices {
                fleet1_sim.simulate_device_into(&sim_model, id, &mut acc).unwrap();
            }
            black_box(acc.processed_events);
        });
        let fleet1_total = median_ns(eval_warmup, eval_samples, || {
            black_box(fleet1_sim.run(&sim_model).unwrap().metrics.processed_events);
        });
        let fleet4_total = median_ns(eval_warmup, eval_samples, || {
            black_box(fleet4_sim.run(&sim_model).unwrap().metrics.processed_events);
        });
        // The case name is mode-independent (the device count is recorded in
        // its own field) so the fast-mode CI gate matches the committed
        // full-mode baseline: the gated ratio — fleet1 vs the sequential
        // loop over the same devices — is population-size-invariant.
        let fleet_loop = FleetLoopResult {
            case: "mixed_pop".to_string(),
            devices: fleet_devices,
            device_steps: fleet_steps,
            sequential_ns: fleet_sequential_total / fleet_steps,
            fleet1_ns: fleet1_total / fleet_steps,
            fleet4_ns: fleet4_total / fleet_steps,
        };

        (
            results,
            batch_results,
            train_results,
            quant_results,
            policy_eval,
            search_loop,
            simd_results,
            sim_loop,
            checkpoint_loop,
            serve_loop,
            overload_loop,
            fleet_loop,
        )
    };

    let (
        results,
        batch_results,
        train_results,
        quant_results,
        policy_eval,
        search_loop,
        simd_results,
        sim_loop,
        checkpoint_loop,
        serve_loop,
        overload_loop,
        fleet_loop,
    ) = measure_all();

    println!("# multi_exit_forward — median ns/op over {samples} samples ({mode} mode)\n");
    println!(
        "{:<12} {:>16} {:>14} {:>12} {:>22}",
        "case", "pre_pr_allocating", "allocating", "planned", "planned vs pre-PR"
    );
    for r in &results {
        println!(
            "{:<12} {:>16} {:>14} {:>12} {:>21.2}x",
            r.case,
            r.pre_pr_ns,
            r.allocating_ns,
            r.planned_ns,
            r.speedup_vs_pre_pr()
        );
    }
    println!("\n# batch_forward — median ns/sample\n");
    println!("{:<20} {:>14} {:>18} {:>20}", "case", "planned", "batched", "batched vs planned");
    for r in &batch_results {
        println!(
            "{:<20} {:>14} {:>18} {:>19.2}x",
            r.case,
            r.planned_single_ns,
            r.batched_ns_per_sample,
            r.speedup_vs_planned()
        );
    }
    println!("\n# train_step — median ns/step (batch case: ns/sample)\n");
    println!(
        "{:<16} {:>12} {:>12} {:>20} {:>10}",
        "case", "legacy", "planned", "planned vs legacy", "GB/s"
    );
    for r in &train_results {
        println!(
            "{:<16} {:>12} {:>12} {:>19.2}x {:>10.2}",
            r.case,
            r.legacy_ns,
            r.planned_ns,
            r.speedup(),
            r.effective_gbps()
        );
    }
    println!("\n# quant_forward — median ns/op (batch cases: ns/sample)\n");
    println!(
        "{:<22} {:>18} {:>14} {:>22}",
        "case", "fake_quant_f32", "quantized", "quantized vs f32"
    );
    for r in &quant_results {
        println!(
            "{:<22} {:>18} {:>14} {:>21.2}x",
            r.case,
            r.fake_quant_f32_ns,
            r.quantized_ns,
            r.speedup()
        );
    }
    println!("\n# policy_eval_loop — median ns/policy\n");
    println!(
        "{:<20} {:>14} {:>18} {:>19.2}x",
        policy_eval.case,
        policy_eval.single_eval_ns,
        policy_eval.batched_eval_ns,
        policy_eval.speedup()
    );
    println!("\n# search_loop — median ns/step\n");
    println!(
        "{:<20} {:>14} {:>18}",
        search_loop.case, search_loop.profile_eval_ns, search_loop.env_eval_ns
    );
    println!(
        "\n# simd_kernels — min ns/op, portable tier vs active tier ({})\n",
        dispatch::active().name()
    );
    println!(
        "{:<24} {:>14} {:>14} {:>24}",
        "case", "portable", "dispatched", "dispatched vs portable"
    );
    for r in &simd_results {
        println!(
            "{:<24} {:>14} {:>14} {:>23.2}x",
            r.case,
            r.portable_ns,
            r.dispatched_ns,
            r.speedup()
        );
    }
    println!("\n# sim_loop — median ns/trace replay\n");
    println!("{:<20} {:>14} {:>18}", sim_loop.case, sim_loop.run_ns, sim_loop.run_batched8_ns);
    println!(
        "\n# checkpoint_loop — min ns/execution ({} recovered boots, {} torn writes per faulty \
         run)\n",
        checkpoint_loop.recovered_boots, checkpoint_loop.torn_writes
    );
    println!(
        "{:<20} {:>14} {:>14} {:>24}",
        "case", "fault_free", "recovery", "recovery vs fault-free"
    );
    println!(
        "{:<20} {:>14} {:>14} {:>23.2}x",
        checkpoint_loop.case,
        checkpoint_loop.fault_free_ns,
        checkpoint_loop.recovery_ns,
        checkpoint_loop.overhead()
    );
    println!(
        "\n# serve_loop — median ns/request over {} requests ({} served)\n",
        serve_loop.requests, serve_loop.served
    );
    println!(
        "{:<20} {:>16} {:>12} {:>12} {:>12} {:>12}",
        "case", "planned_single", "serve_t1", "serve_t4", "p99_ns", "req/s"
    );
    println!(
        "{:<20} {:>16} {:>12} {:>12} {:>12} {:>12}",
        serve_loop.case,
        serve_loop.planned_single_ns,
        serve_loop.serve1_ns,
        serve_loop.serve4_ns,
        serve_loop.latency_p99_ns,
        serve_loop.throughput_rps
    );
    println!(
        "\n# overload_loop — median ns/request at 2x saturation over {} requests (cap 4)\n",
        overload_loop.requests
    );
    println!(
        "{:<22} {:>12} {:>12} {:>20} {:>20}",
        "case", "degrade_t1", "reject_t1", "served (deg/rej)", "goodput (deg/rej)"
    );
    println!(
        "{:<22} {:>12} {:>12} {:>17}/{} {:>17}/{}",
        overload_loop.case,
        overload_loop.degrade1_ns,
        overload_loop.reject1_ns,
        overload_loop.degrade_served,
        overload_loop.reject_served,
        overload_loop.degrade_deadline_met,
        overload_loop.reject_deadline_met
    );
    println!(
        "\n# fleet_loop — median ns/device-step over {} devices ({} device-steps)\n",
        fleet_loop.devices, fleet_loop.device_steps
    );
    println!(
        "{:<20} {:>14} {:>12} {:>12} {:>16}",
        "case", "sequential", "fleet_t1", "fleet_t4", "device-steps/s"
    );
    println!(
        "{:<20} {:>14} {:>12} {:>12} {:>16.0}",
        fleet_loop.case,
        fleet_loop.sequential_ns,
        fleet_loop.fleet1_ns,
        fleet_loop.fleet4_ns,
        1e9 / fleet_loop.fleet1_ns.max(1) as f64
    );

    let gate = results.last().expect("three cases benchmarked");
    let batch_gate = batch_results.last().expect("batch cases benchmarked");
    let mut json_cases: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\n      \"case\": \"multi_exit_forward/{}\",\n      \"pre_pr_allocating_ns\": {},\n      \"allocating_ns\": {},\n      \"planned_ns\": {},\n      \"speedup_planned_vs_pre_pr\": {:.3}\n    }}",
                r.case, r.pre_pr_ns, r.allocating_ns, r.planned_ns, r.speedup_vs_pre_pr()
            )
        })
        .collect();
    json_cases.extend(batch_results.iter().map(|r| {
        format!(
            "    {{\n      \"case\": \"batch_forward/{}\",\n      \"batch\": {},\n      \"statistic\": \"{}\",\n      \"planned_single_ns\": {},\n      \"batched_ns_per_sample\": {},\n      \"speedup_batched_vs_planned\": {:.3}\n    }}",
            r.case,
            r.batch,
            r.statistic,
            r.planned_single_ns,
            r.batched_ns_per_sample,
            r.speedup_vs_planned()
        )
    }));
    json_cases.extend(train_results.iter().map(|r| {
        format!(
            "    {{\n      \"case\": \"train_step/{}\",\n      \"legacy_ns\": {},\n      \"planned_ns\": {},\n      \"traffic_bytes_per_op\": {},\n      \"effective_gbps\": {:.3},\n      \"speedup_planned_vs_legacy\": {:.3}\n    }}",
            r.case,
            r.legacy_ns,
            r.planned_ns,
            r.traffic_bytes_per_op,
            r.effective_gbps(),
            r.speedup()
        )
    }));
    json_cases.extend(quant_results.iter().map(|r| {
        format!(
            "    {{\n      \"case\": \"quant_forward/{}\",\n      \"fake_quant_f32_ns\": {},\n      \"quantized_ns\": {},\n      \"speedup_quantized_vs_f32\": {:.3}\n    }}",
            r.case,
            r.fake_quant_f32_ns,
            r.quantized_ns,
            r.speedup()
        )
    }));
    json_cases.push(format!(
        "    {{\n      \"case\": \"policy_eval_loop/{}\",\n      \"single_eval_ns\": {},\n      \"batched_eval_ns\": {},\n      \"speedup_batched_vs_single\": {:.3}\n    }}",
        policy_eval.case, policy_eval.single_eval_ns, policy_eval.batched_eval_ns, policy_eval.speedup()
    ));
    json_cases.push(format!(
        "    {{\n      \"case\": \"search_loop/{}\",\n      \"profile_eval_ns\": {},\n      \"reference_eval_ns\": {},\n      \"env_eval_ns\": {}\n    }}",
        search_loop.case,
        search_loop.profile_eval_ns,
        search_loop.reference_eval_ns,
        search_loop.env_eval_ns
    ));
    json_cases.extend(simd_results.iter().map(|r| {
        format!(
            "    {{\n      \"case\": \"simd_kernels/{}\",\n      \"statistic\": \"min\",\n      \"portable_ns\": {},\n      \"dispatched_ns\": {},\n      \"speedup_dispatched_vs_portable\": {:.3}\n    }}",
            r.case,
            r.portable_ns,
            r.dispatched_ns,
            r.speedup()
        )
    }));
    json_cases.push(format!(
        "    {{\n      \"case\": \"sim_loop/{}\",\n      \"run_ns\": {},\n      \"run_batched8_ns\": {}\n    }}",
        sim_loop.case, sim_loop.run_ns, sim_loop.run_batched8_ns
    ));
    json_cases.push(format!(
        "    {{\n      \"case\": \"checkpoint_loop/{}\",\n      \"statistic\": \"min\",\n      \"fault_free_ns\": {},\n      \"recovery_ns\": {},\n      \"recovered_boots\": {},\n      \"torn_writes\": {}\n    }}",
        checkpoint_loop.case,
        checkpoint_loop.fault_free_ns,
        checkpoint_loop.recovery_ns,
        checkpoint_loop.recovered_boots,
        checkpoint_loop.torn_writes
    ));
    json_cases.push(format!(
        "    {{\n      \"case\": \"serve_loop/{}\",\n      \"requests\": {},\n      \"served\": {},\n      \"planned_single_ns\": {},\n      \"serve1_ns\": {},\n      \"serve4_ns\": {},\n      \"latency_p50_ns\": {},\n      \"latency_p99_ns\": {},\n      \"throughput_rps\": {}\n    }}",
        serve_loop.case,
        serve_loop.requests,
        serve_loop.served,
        serve_loop.planned_single_ns,
        serve_loop.serve1_ns,
        serve_loop.serve4_ns,
        serve_loop.latency_p50_ns,
        serve_loop.latency_p99_ns,
        serve_loop.throughput_rps
    ));
    json_cases.push(format!(
        "    {{\n      \"case\": \"overload_loop/{}\",\n      \"requests\": {},\n      \"degrade1_ns\": {},\n      \"reject1_ns\": {},\n      \"degrade_served\": {},\n      \"reject_served\": {},\n      \"degrade_deadline_met\": {},\n      \"reject_deadline_met\": {},\n      \"degraded\": {},\n      \"shed_reject\": {}\n    }}",
        overload_loop.case,
        overload_loop.requests,
        overload_loop.degrade1_ns,
        overload_loop.reject1_ns,
        overload_loop.degrade_served,
        overload_loop.reject_served,
        overload_loop.degrade_deadline_met,
        overload_loop.reject_deadline_met,
        overload_loop.degraded,
        overload_loop.shed_reject
    ));
    json_cases.push(format!(
        "    {{\n      \"case\": \"fleet_loop/{}\",\n      \"devices\": {},\n      \"device_steps\": {},\n      \"sequential_ns\": {},\n      \"fleet1_ns\": {},\n      \"fleet4_ns\": {}\n    }}",
        fleet_loop.case,
        fleet_loop.devices,
        fleet_loop.device_steps,
        fleet_loop.sequential_ns,
        fleet_loop.fleet1_ns,
        fleet_loop.fleet4_ns
    ));
    // Record the invocation that actually produced this file, so the artifact
    // is reproducible as-is (e.g. CI passes --fast), and the mode + timed
    // sample count so a fast smoke output can never masquerade as the
    // committed full-mode baseline.
    let command = if args.is_empty() {
        "cargo run --release -p ie_bench --bin bench_json".to_string()
    } else {
        format!("cargo run --release -p ie_bench --bin bench_json -- {}", args.join(" "))
    };
    // The batch aspiration is recorded honestly: the ISSUE's 1.5x target is
    // not met by the widened GEMM alone on this hardware (the conv
    // activation matrices are already wide per sample — see DESIGN.md), so
    // `batch_pass` reports the truth next to the measured value instead of
    // folding it into the headline gate.
    const REQUIRED_BATCH_SPEEDUP: f64 = 1.5;
    // The ISSUE's quantized aspiration: the i8-dominant policy must beat the
    // fake-quant f32 planned path, with ≥1.5x as the target.
    const REQUIRED_QUANT_SPEEDUP: f64 = 1.5;
    // The ISSUE's training aspiration: the planned single-sample training
    // step must beat the legacy allocating backward by ≥1.5x median.
    const REQUIRED_TRAIN_SPEEDUP: f64 = 1.5;
    let quant_gate = quant_results.first().expect("quant cases benchmarked");
    let train_gate = train_results.first().expect("train cases benchmarked");
    let json = format!(
        "{{\n  \"benchmark\": \"multi_exit_forward\",\n  \"network\": \"lenet_multi_exit\",\n  \"unit\": \"ns_per_op\",\n  \"statistic\": \"median\",\n  \"mode\": \"{}\",\n  \"isa_tier\": \"{}\",\n  \"samples\": {},\n  \"command\": \"{}\",\n  \"results\": [\n{}\n  ],\n  \"acceptance\": {{\n    \"case\": \"multi_exit_forward/to_exit_3\",\n    \"required_speedup_vs_pre_pr\": 2.0,\n    \"measured_speedup_vs_pre_pr\": {:.3},\n    \"pass\": {},\n    \"batch_case\": \"batch_forward/{}\",\n    \"batch_required_speedup_vs_planned\": {:.1},\n    \"batch_measured_speedup_vs_planned\": {:.3},\n    \"batch_pass\": {},\n    \"quant_case\": \"quant_forward/{}\",\n    \"quant_required_speedup_vs_f32\": {:.1},\n    \"quant_measured_speedup_vs_f32\": {:.3},\n    \"quant_pass\": {},\n    \"train_case\": \"train_step/{}\",\n    \"train_required_speedup_vs_legacy\": {:.1},\n    \"train_measured_speedup_vs_legacy\": {:.3},\n    \"train_pass\": {}\n  }}\n}}\n",
        mode,
        dispatch::active().name(),
        samples,
        command,
        json_cases.join(",\n"),
        gate.speedup_vs_pre_pr(),
        gate.speedup_vs_pre_pr() >= 2.0,
        batch_gate.case,
        REQUIRED_BATCH_SPEEDUP,
        batch_gate.speedup_vs_planned(),
        batch_gate.speedup_vs_planned() >= REQUIRED_BATCH_SPEEDUP,
        quant_gate.case,
        REQUIRED_QUANT_SPEEDUP,
        quant_gate.speedup(),
        quant_gate.speedup() >= REQUIRED_QUANT_SPEEDUP,
        train_gate.case,
        REQUIRED_TRAIN_SPEEDUP,
        train_gate.speedup(),
        train_gate.speedup() >= REQUIRED_TRAIN_SPEEDUP
    );
    // The baseline must be read BEFORE the fresh results are written: with
    // the default out path, `--check BENCH_inference.json` would otherwise
    // compare the fresh run against itself (and silently pass).
    let check_baseline = check_path.as_ref().map(|path| {
        std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("--check: cannot read baseline {path}: {e}"))
    });
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!(
        "\nwrote {out_path} (to_exit_3 planned speedup vs pre-PR: {:.2}x, batch8 vs planned: \
         {:.2}x, quantized i8 vs f32: {:.2}x, planned train step vs legacy: {:.2}x)",
        gate.speedup_vs_pre_pr(),
        batch_gate.speedup_vs_planned(),
        quant_gate.speedup(),
        train_gate.speedup()
    );

    // Perf-regression gate: compare the fresh measurements against the
    // committed baseline and fail the process on a >15 % regression of the
    // machine-normalized reference ratio (see `check_against_baseline`). A
    // suspected regression is confirmed by re-measuring up to two more times
    // — only a metric that regresses in *every* attempt fails the gate, so a
    // transient load burst on the runner cannot fake one.
    if let Some(path) = check_path {
        let baseline = check_baseline.expect("baseline read above when --check is present");
        #[allow(clippy::too_many_arguments)]
        let gated = |results: &[CaseResult],
                     batch_results: &[BatchCaseResult],
                     train_results: &[TrainStepResult],
                     quant_results: &[QuantCaseResult],
                     policy_eval: &PolicyEvalResult,
                     search_loop: &SearchLoopResult,
                     simd_results: &[SimdKernelResult],
                     sim_loop: &SimLoopResult,
                     checkpoint_loop: &CheckpointLoopResult,
                     serve_loop: &ServeLoopResult,
                     overload_loop: &OverloadLoopResult,
                     fleet_loop: &FleetLoopResult| {
            // The pre-PR replica (unchanged historical code) is the
            // machine-speed canary of the planned cases; the batched cases
            // normalize against the planned path measured in the same run,
            // the quantized cases against the fake-quant f32 path, the
            // batched policy eval against the single-input eval, and the
            // search-loop step against the bare profile evaluation.
            let mut metrics: Vec<GatedMetric> = results
                .iter()
                .map(|r| GatedMetric {
                    case: format!("multi_exit_forward/{}", r.case),
                    key: "planned_ns",
                    current: r.planned_ns,
                    ref_key: "pre_pr_allocating_ns",
                    current_ref: r.pre_pr_ns,
                    tier_sensitive: false,
                })
                .collect();
            metrics.extend(batch_results.iter().map(|r| GatedMetric {
                case: format!("batch_forward/{}", r.case),
                key: "batched_ns_per_sample",
                current: r.batched_ns_per_sample,
                ref_key: "planned_single_ns",
                current_ref: r.planned_single_ns,
                tier_sensitive: false,
            }));
            // The planned training step normalizes against the legacy
            // allocating backward of the same network in the same run.
            metrics.extend(train_results.iter().map(|r| GatedMetric {
                case: format!("train_step/{}", r.case),
                key: "planned_ns",
                current: r.planned_ns,
                ref_key: "legacy_ns",
                current_ref: r.legacy_ns,
                tier_sensitive: false,
            }));
            metrics.extend(quant_results.iter().map(|r| GatedMetric {
                case: format!("quant_forward/{}", r.case),
                key: "quantized_ns",
                current: r.quantized_ns,
                ref_key: "fake_quant_f32_ns",
                current_ref: r.fake_quant_f32_ns,
                tier_sensitive: true,
            }));
            metrics.push(GatedMetric {
                case: format!("policy_eval_loop/{}", policy_eval.case),
                key: "batched_eval_ns",
                current: policy_eval.batched_eval_ns,
                ref_key: "single_eval_ns",
                current_ref: policy_eval.single_eval_ns,
                tier_sensitive: false,
            });
            metrics.push(GatedMetric {
                case: format!("search_loop/{}", search_loop.case),
                key: "env_eval_ns",
                current: search_loop.env_eval_ns,
                ref_key: "reference_eval_ns",
                current_ref: search_loop.reference_eval_ns,
                tier_sensitive: false,
            });
            // Each dispatched kernel normalizes against its own portable
            // tier measured in the same run; the batched simulator replay
            // against the unbatched one (identical event trace).
            metrics.extend(simd_results.iter().map(|r| GatedMetric {
                case: format!("simd_kernels/{}", r.case),
                key: "dispatched_ns",
                current: r.dispatched_ns,
                ref_key: "portable_ns",
                current_ref: r.portable_ns,
                tier_sensitive: true,
            }));
            metrics.push(GatedMetric {
                case: format!("sim_loop/{}", sim_loop.case),
                key: "run_batched8_ns",
                current: sim_loop.run_batched8_ns,
                ref_key: "run_ns",
                current_ref: sim_loop.run_ns,
                tier_sensitive: false,
            });
            // The faulty execution normalizes against the fault-free
            // execution of the same graph in the same run: the gated ratio
            // is the checkpoint + recovery overhead itself, and the cut
            // schedule is deterministic per seed.
            metrics.push(GatedMetric {
                case: format!("checkpoint_loop/{}", checkpoint_loop.case),
                key: "recovery_ns",
                current: checkpoint_loop.recovery_ns,
                ref_key: "fault_free_ns",
                current_ref: checkpoint_loop.fault_free_ns,
                tier_sensitive: false,
            });
            // The 1-worker serving replay normalizes against the admitted
            // requests run one at a time on the planned path in the same
            // run; the 4-worker numbers stay ungated (runner core counts
            // vary).
            metrics.push(GatedMetric {
                case: format!("serve_loop/{}", serve_loop.case),
                key: "serve1_ns",
                current: serve_loop.serve1_ns,
                ref_key: "planned_single_ns",
                current_ref: serve_loop.planned_single_ns,
                tier_sensitive: false,
            });
            // The bounded-queue degrade replay normalizes against the
            // reject replay of the identical stream in the same run: the
            // gated ratio is the pressure-mapping overhead itself (both
            // policies plan the same arrivals; degrade additionally walks
            // the pressure/deadline caps per request).
            metrics.push(GatedMetric {
                case: format!("overload_loop/{}", overload_loop.case),
                key: "degrade1_ns",
                current: overload_loop.degrade1_ns,
                ref_key: "reject1_ns",
                current_ref: overload_loop.reject1_ns,
                tier_sensitive: false,
            });
            // The 1-worker fleet normalizes against the same devices
            // streamed sequentially (no worker scope) in the same run — the
            // gated ratio is the shard/spawn/merge overhead itself. The
            // 4-worker replay stays ungated (runner core counts vary).
            metrics.push(GatedMetric {
                case: format!("fleet_loop/{}", fleet_loop.case),
                key: "fleet1_ns",
                current: fleet_loop.fleet1_ns,
                ref_key: "sequential_ns",
                current_ref: fleet_loop.sequential_ns,
                tier_sensitive: false,
            });
            metrics
        };
        let metrics = gated(
            &results,
            &batch_results,
            &train_results,
            &quant_results,
            &policy_eval,
            &search_loop,
            &simd_results,
            &sim_loop,
            &checkpoint_loop,
            &serve_loop,
            &overload_loop,
            &fleet_loop,
        );
        println!("\n# --check against {path} (15 % tolerance)\n");
        let mut regressions = check_against_baseline(&baseline, &metrics, 1.15);
        const CONFIRM_ATTEMPTS: usize = 2;
        for attempt in 0..CONFIRM_ATTEMPTS {
            if regressions.is_empty() {
                break;
            }
            println!(
                "\nconfirming {} suspected regression(s), re-measurement {} of \
                 {CONFIRM_ATTEMPTS}\n",
                regressions.len(),
                attempt + 1
            );
            let (r2, b2, t2, q2, p2, s2, k2, l2, c2, v2, o2, f2) = measure_all();
            let confirmed = check_against_baseline(
                &baseline,
                &gated(&r2, &b2, &t2, &q2, &p2, &s2, &k2, &l2, &c2, &v2, &o2, &f2),
                1.15,
            );
            // Keep only metrics that regressed again, carrying the freshest
            // measurement so the failure report shows confirmed numbers.
            regressions = confirmed
                .into_iter()
                .filter(|c| regressions.iter().any(|r| r.id == c.id))
                .collect();
        }
        if !regressions.is_empty() {
            eprintln!("perf regression gate FAILED (confirmed on every re-measurement):");
            for r in &regressions {
                let ratio_note = match r.ratios {
                    Some((base_ratio, current_ratio)) => format!(
                        "reference ratio {base_ratio:.3} -> {current_ratio:.3} \
                         ({:+.1} %)",
                        (current_ratio / base_ratio - 1.0) * 100.0
                    ),
                    None => "no same-run reference, absolute ns decided".to_string(),
                };
                eprintln!(
                    "  {}: baseline {:.0} ns -> current {} ns ({:+.1} %), {}",
                    r.id,
                    r.baseline_ns,
                    r.current_ns,
                    (r.current_ns as f64 / r.baseline_ns - 1.0) * 100.0,
                    ratio_note
                );
            }
            std::process::exit(1);
        }
        println!("\nperf regression gate passed ({} metrics checked)", metrics.len());
    }
}
