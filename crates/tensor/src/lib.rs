//! `ie-tensor` — dense `f32` tensor substrate used by the neural-network,
//! compression and reinforcement-learning crates of the intermittent
//! multi-exit inference reproduction.
//!
//! The crate intentionally stays small: row-major dense tensors with up to
//! four dimensions (`[N, C, H, W]` for activations, `[O, I, Kh, Kw]` for
//! convolution filters), the handful of element-wise and linear-algebra
//! operations a LeNet-class network needs, and the `im2col` lowering used by
//! the convolution layers.
//!
//! # Example
//!
//! ```
//! use ie_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.as_slice(), a.as_slice());
//! # Ok::<(), ie_tensor::TensorError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod im2col;
mod linalg;
mod ops;
pub mod quant;
mod shape;
mod tensor;
mod workspace;

pub use error::TensorError;
pub use im2col::{
    col2im, col2im_into, im2col, im2col_batch_into, im2col_into, im2col_quant_batch_i16_into,
    im2col_quant_batch_into, im2col_quant_select_batch_into, Conv2dGeometry,
};
pub use linalg::{gemm_into, gemm_sparse_into, matvec_batch_into, matvec_into};
pub use quant::{
    dequant_acc, gemm_i16_into, gemm_i16t_into, gemm_i8_into, matvec_i16_batch_into,
    matvec_i16_into, matvec_i8_batch_into, matvec_i8_into, transpose_widen_into, weight_code,
    QuantParams, MADD_DEPTH_ALIGN,
};
pub use shape::Shape;
pub use tensor::Tensor;
pub use workspace::Workspace;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
