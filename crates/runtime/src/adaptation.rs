//! The repeated learning episodes behind Fig. 7.

use crate::{
    QLearningConfig, QLearningExitPolicy, Result, RuntimeError, StateDiscretizer, StaticLutPolicy,
};
use ie_core::{DeployedModel, EventLoopSimulator, ExperimentConfig, SimulationReport};

/// Configuration of the runtime-adaptation experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptationConfig {
    /// Number of learning episodes (each episode replays the full event
    /// sequence over the power trace; the paper uses ~16).
    pub episodes: usize,
    /// Q-learning hyper-parameters.
    pub qlearning: QLearningConfig,
    /// State discretisation shared by the Q-tables and the static LUT.
    pub discretizer: StateDiscretizer,
}

impl Default for AdaptationConfig {
    fn default() -> Self {
        AdaptationConfig {
            episodes: 16,
            qlearning: QLearningConfig::default(),
            discretizer: StateDiscretizer::paper_default(),
        }
    }
}

/// Everything the runtime-adaptation experiment produces.
#[derive(Debug, Clone)]
pub struct AdaptationOutcome {
    /// Average accuracy over all events after each Q-learning episode
    /// (the Fig. 7(a) learning curve).
    pub learning_curve: Vec<f64>,
    /// Average accuracy of the static LUT (constant across episodes; plotted
    /// as the flat line in Fig. 7(a)).
    pub static_accuracy: f64,
    /// Full report of the final Q-learning episode (Fig. 7(b) left bars).
    pub final_report: SimulationReport,
    /// Full report of the static LUT run (Fig. 7(b) right bars).
    pub static_report: SimulationReport,
    /// The trained policy (tables can be inspected or reused).
    pub policy: QLearningExitPolicy,
}

impl AdaptationOutcome {
    /// Improvement of the final Q-learning episode over the static LUT, in
    /// absolute accuracy (fraction of all events).
    pub fn improvement_over_static(&self) -> f64 {
        self.learning_curve.last().copied().unwrap_or(0.0) - self.static_accuracy
    }
}

/// Runs the paper's runtime adaptation: a persistent Q-learning policy
/// repeatedly replays the event sequence, improving its exit selection, and is
/// compared against the static LUT baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeAdaptation {
    config: AdaptationConfig,
}

impl RuntimeAdaptation {
    /// Creates the experiment driver.
    pub fn new(config: AdaptationConfig) -> Self {
        RuntimeAdaptation { config }
    }

    /// The experiment configuration.
    pub fn config(&self) -> &AdaptationConfig {
        &self.config
    }

    /// Runs the adaptation experiment for a deployed model under the given
    /// environment.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::NoEpisodes`] for a zero-episode configuration
    /// and propagates simulation errors.
    pub fn run(&self, env: &ExperimentConfig, model: &DeployedModel) -> Result<AdaptationOutcome> {
        if self.config.episodes == 0 {
            return Err(RuntimeError::NoEpisodes);
        }
        let simulator = EventLoopSimulator::new(env);

        // Static LUT baseline (no learning, deterministic).
        let mut static_policy =
            StaticLutPolicy::build(model, env.storage_capacity_mj, self.config.discretizer);
        let static_report = simulator.run(model, &mut static_policy)?;
        let static_accuracy = static_report.accuracy_all_events();

        // Q-learning adaptation: the policy persists across episodes.
        let mut policy = QLearningExitPolicy::new(
            model.num_exits(),
            self.config.discretizer,
            self.config.qlearning.clone(),
        );
        let mut learning_curve = Vec::with_capacity(self.config.episodes);
        let mut final_report = None;
        for _ in 0..self.config.episodes {
            let report = simulator.run(model, &mut policy)?;
            policy.end_episode();
            learning_curve.push(report.accuracy_all_events());
            final_report = Some(report);
        }
        let final_report = final_report.expect("at least one episode ran");

        Ok(AdaptationOutcome {
            learning_curve,
            static_accuracy,
            final_report,
            static_report,
            policy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ExperimentConfig, DeployedModel) {
        let config = ExperimentConfig::small_test();
        let model = DeployedModel::uncompressed_reference(&config).unwrap();
        (config, model)
    }

    #[test]
    fn adaptation_produces_a_curve_per_episode() {
        let (config, model) = setup();
        let adaptation =
            RuntimeAdaptation::new(AdaptationConfig { episodes: 4, ..AdaptationConfig::default() });
        let outcome = adaptation.run(&config, &model).unwrap();
        assert_eq!(outcome.learning_curve.len(), 4);
        assert!(outcome.learning_curve.iter().all(|a| (0.0..=1.0).contains(a)));
        assert!((0.0..=1.0).contains(&outcome.static_accuracy));
        assert_eq!(outcome.final_report.total_events, config.num_events);
        assert_eq!(outcome.static_report.total_events, config.num_events);
        assert_eq!(outcome.final_report.exit_counts.len(), model.num_exits());
        // The improvement metric is just the difference of the two numbers.
        let expected = outcome.learning_curve.last().unwrap() - outcome.static_accuracy;
        assert!((outcome.improvement_over_static() - expected).abs() < 1e-12);
    }

    #[test]
    fn zero_episodes_is_rejected() {
        let (config, model) = setup();
        let adaptation =
            RuntimeAdaptation::new(AdaptationConfig { episodes: 0, ..AdaptationConfig::default() });
        assert!(matches!(adaptation.run(&config, &model), Err(RuntimeError::NoEpisodes)));
    }

    #[test]
    fn learning_does_not_collapse_performance() {
        // Over a handful of episodes the Q-learning policy must remain in the
        // same ballpark as the static LUT (it should eventually beat it; the
        // full-scale comparison lives in the benchmark harness).
        let (config, model) = setup();
        let adaptation =
            RuntimeAdaptation::new(AdaptationConfig { episodes: 6, ..AdaptationConfig::default() });
        let outcome = adaptation.run(&config, &model).unwrap();
        let last = *outcome.learning_curve.last().unwrap();
        assert!(
            last >= outcome.static_accuracy - 0.15,
            "q-learning {last} vs static {}",
            outcome.static_accuracy
        );
    }

    #[test]
    fn trained_policy_has_visited_many_states() {
        let (config, model) = setup();
        let adaptation =
            RuntimeAdaptation::new(AdaptationConfig { episodes: 3, ..AdaptationConfig::default() });
        let outcome = adaptation.run(&config, &model).unwrap();
        assert_eq!(outcome.policy.events_seen(), 3 * config.num_events as u64);
        assert!(outcome.policy.exit_table().updates() > 0);
    }
}
