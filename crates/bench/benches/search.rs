//! Criterion benches of the search and runtime-learning components: the cost
//! of one DDPG search episode, one Q-learning event decision and the energy
//! substrate primitives they lean on.

use criterion::{criterion_group, criterion_main, Criterion};
use ie_core::{DeployedModel, EventContext, ExitPolicy, ExperimentConfig};
use ie_energy::{EnergyStorage, HarvestSimulator, PowerTrace, SolarTrace};
use ie_runtime::{QLearningConfig, QLearningExitPolicy, StateDiscretizer};
use ie_search::{CompressionEnv, DdpgCompressionSearch, RewardMode, SearchConfig};
use std::hint::black_box;

fn bench_search_episode(c: &mut Criterion) {
    let config = ExperimentConfig { num_events: 120, ..ExperimentConfig::paper_default() };
    let env = CompressionEnv::new(&config, RewardMode::ExitGuided).unwrap();
    c.bench_function("ddpg_search_4_episodes", |b| {
        b.iter(|| {
            let search = DdpgCompressionSearch::new(SearchConfig {
                episodes: 4,
                warmup_episodes: 2,
                updates_per_episode: 2,
                batch_size: 16,
                ..SearchConfig::default()
            });
            black_box(search.run(&env).unwrap().best_outcome.accuracy_reward)
        })
    });
}

fn bench_qlearning_decision(c: &mut Criterion) {
    let config = ExperimentConfig::paper_default();
    let model = DeployedModel::uncompressed_reference(&config).unwrap();
    let mut policy = QLearningExitPolicy::new(
        model.num_exits(),
        StateDiscretizer::paper_default(),
        QLearningConfig::default(),
    );
    let ctx = EventContext {
        event_id: 0,
        time_s: 0.0,
        available_energy_mj: 2.0,
        capacity_mj: config.storage_capacity_mj,
        charging_efficiency: 0.4,
        exit_energy_mj: model.exit_energies_mj(),
        exit_accuracy: model.exit_accuracies(),
    };
    // This is the per-event overhead the paper argues is negligible on the MCU.
    c.bench_function("qlearning_exit_decision", |b| b.iter(|| black_box(policy.choose_exit(&ctx))));
}

fn bench_energy_substrate(c: &mut Criterion) {
    let trace = SolarTrace::builder().seed(3).build();
    c.bench_function("solar_trace_energy_one_hour", |b| {
        b.iter(|| black_box(trace.energy_mj(6.0 * 3600.0, 7.0 * 3600.0)))
    });
    c.bench_function("harvest_simulator_advance_day", |b| {
        b.iter(|| {
            let mut sim = HarvestSimulator::new(
                Box::new(SolarTrace::builder().seed(3).build()),
                EnergyStorage::new(5.0, 0.8),
            );
            sim.advance_to(24.0 * 3600.0);
            black_box(sim.storage().level_mj())
        })
    });
}

criterion_group!(
    name = search;
    config = Criterion::default().sample_size(10);
    targets = bench_search_episode, bench_qlearning_decision, bench_energy_substrate
);
criterion_main!(search);
