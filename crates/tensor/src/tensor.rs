use crate::{Result, Shape, TensorError};
use rand::Rng;
use std::fmt;

/// A dense, row-major `f32` tensor.
///
/// This is the single numeric container shared by the neural-network,
/// compression and reinforcement-learning crates. It deliberately supports
/// only what a LeNet-class workload needs: contiguous storage, reshaping,
/// element-wise arithmetic, reductions and matrix multiplication.
///
/// # Example
///
/// ```
/// use ie_tensor::Tensor;
///
/// let x = Tensor::zeros(&[2, 3]);
/// assert_eq!(x.len(), 6);
/// assert_eq!(x.shape().dims(), &[2, 3]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a flat buffer and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataShapeMismatch`] when `data.len()` differs
    /// from the element count implied by `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.len() {
            return Err(TensorError::DataShapeMismatch {
                data_len: data.len(),
                shape_len: shape.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let data = vec![0.0; shape.len()];
        Tensor { shape, data }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let data = vec![1.0; shape.len()];
        Tensor { shape, data }
    }

    /// Creates a tensor filled with a constant value.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let data = vec![value; shape.len()];
        Tensor { shape, data }
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor with entries drawn uniformly from `[-limit, limit]`.
    ///
    /// This is the initialiser used for network weights (a scaled uniform /
    /// "Xavier-like" scheme where the caller computes `limit` from fan-in).
    pub fn uniform<R: Rng + ?Sized>(rng: &mut R, dims: &[usize], limit: f32) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.len()).map(|_| rng.gen_range(-limit..=limit)).collect();
        Tensor { shape, data }
    }

    /// Creates a tensor with entries drawn from a normal distribution with
    /// the given mean and standard deviation (Box–Muller transform).
    pub fn randn<R: Rng + ?Sized>(rng: &mut R, dims: &[usize], mean: f32, std: f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.len();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(mean + std * r * theta.cos());
            if data.len() < n {
                data.push(mean + std * r * theta.sin());
            }
        }
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension sizes of the tensor.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the underlying buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the underlying buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reads a single element by multi-dimensional index.
    ///
    /// Returns `None` when the index rank or coordinates are invalid.
    pub fn get(&self, index: &[usize]) -> Option<f32> {
        self.shape.offset(index).map(|o| self.data[o])
    }

    /// Writes a single element by multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] when the index is invalid.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        match self.shape.offset(index) {
            Some(o) => {
                self.data[o] = value;
                Ok(())
            }
            None => Err(TensorError::IndexOutOfBounds { index: 0, len: self.data.len() }),
        }
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeSizeMismatch`] when the element counts
    /// differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor> {
        let new_shape = Shape::new(dims);
        if new_shape.len() != self.len() {
            return Err(TensorError::ReshapeSizeMismatch { from: self.len(), to: new_shape.len() });
        }
        Ok(Tensor { shape: new_shape, data: self.data.clone() })
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] when the tensor is not a matrix.
    pub fn transpose(&self) -> Result<Tensor> {
        if self.shape.rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: self.shape.rank() });
        }
        let (r, c) = (self.dims()[0], self.dims()[1]);
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        Ok(out)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements; `0.0` for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyTensor`] for an empty tensor.
    pub fn max(&self) -> Result<f32> {
        self.data
            .iter()
            .copied()
            .fold(None, |acc: Option<f32>, x| Some(acc.map_or(x, |a| a.max(x))))
            .ok_or(TensorError::EmptyTensor)
    }

    /// Minimum element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyTensor`] for an empty tensor.
    pub fn min(&self) -> Result<f32> {
        self.data
            .iter()
            .copied()
            .fold(None, |acc: Option<f32>, x| Some(acc.map_or(x, |a| a.min(x))))
            .ok_or(TensorError::EmptyTensor)
    }

    /// Index of the maximum element (first one on ties).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyTensor`] for an empty tensor.
    pub fn argmax(&self) -> Result<usize> {
        if self.data.is_empty() {
            return Err(TensorError::EmptyTensor);
        }
        let mut best = 0usize;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        Ok(best)
    }

    /// Squared L2 norm of the tensor.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Applies a function to every element, returning a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Applies a function to every element in place.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} {:?}", self.shape, &self.data[..self.data.len().min(8)])?;
        if self.data.len() > 8 {
            write!(f, " …")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[2, 2]).is_err());
        assert!(Tensor::from_vec(vec![1.0; 4], &[2, 2]).is_ok());
    }

    #[test]
    fn eye_is_identity() {
        let i = Tensor::eye(3);
        assert_eq!(i.get(&[0, 0]), Some(1.0));
        assert_eq!(i.get(&[0, 1]), Some(0.0));
        assert_eq!(i.sum(), 3.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn transpose_swaps_axes() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let tt = t.transpose().unwrap();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.get(&[0, 1]), Some(4.0));
        assert_eq!(tt.get(&[2, 0]), Some(3.0));
    }

    #[test]
    fn reductions_behave() {
        let t = Tensor::from_vec(vec![-1.0, 4.0, 2.5, 0.0], &[4]).unwrap();
        assert_eq!(t.sum(), 5.5);
        assert!((t.mean() - 1.375).abs() < 1e-6);
        assert_eq!(t.max().unwrap(), 4.0);
        assert_eq!(t.min().unwrap(), -1.0);
        assert_eq!(t.argmax().unwrap(), 1);
    }

    #[test]
    fn empty_reductions_error() {
        let t = Tensor::zeros(&[0]);
        assert!(t.max().is_err());
        assert!(t.min().is_err());
        assert!(t.argmax().is_err());
    }

    #[test]
    fn randn_has_roughly_requested_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::randn(&mut rng, &[10_000], 1.0, 2.0);
        let mean = t.mean();
        let var = t.as_slice().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / t.len() as f32;
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn uniform_respects_limit() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tensor::uniform(&mut rng, &[1000], 0.5);
        assert!(t.as_slice().iter().all(|x| x.abs() <= 0.5));
    }

    #[test]
    fn map_applies_elementwise() {
        let t = Tensor::from_vec(vec![1.0, -2.0], &[2]).unwrap();
        let m = t.map(|x| x * x);
        assert_eq!(m.as_slice(), &[1.0, 4.0]);
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut t = Tensor::zeros(&[2, 2]);
        t.set(&[1, 0], 9.0).unwrap();
        assert_eq!(t.get(&[1, 0]), Some(9.0));
        assert!(t.set(&[2, 0], 1.0).is_err());
    }
}
