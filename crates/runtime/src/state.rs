use crate::{Result, RuntimeError};

/// Discretises the continuous runtime observables into the finite state space
/// the Q-tables index.
///
/// The exit Q-table state is `(energy bin, charging-efficiency bin)`; the
/// continuation Q-table state is `(confidence bin, energy bin)`. Both reuse
/// the same binning helper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateDiscretizer {
    energy_bins: usize,
    efficiency_bins: usize,
    confidence_bins: usize,
}

impl StateDiscretizer {
    /// Creates a discretiser with the given bin counts.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidDiscretization`] when any bin count is
    /// zero.
    pub fn new(energy_bins: usize, efficiency_bins: usize, confidence_bins: usize) -> Result<Self> {
        if energy_bins == 0 || efficiency_bins == 0 || confidence_bins == 0 {
            return Err(RuntimeError::InvalidDiscretization(
                "all bin counts must be non-zero".into(),
            ));
        }
        Ok(StateDiscretizer { energy_bins, efficiency_bins, confidence_bins })
    }

    /// The paper-scale default: 8 energy levels × 4 efficiency levels for the
    /// exit table, 4 confidence levels for the continuation table.
    pub fn paper_default() -> Self {
        StateDiscretizer { energy_bins: 8, efficiency_bins: 4, confidence_bins: 4 }
    }

    fn bin(value: f64, bins: usize) -> usize {
        let clamped = value.clamp(0.0, 1.0);
        ((clamped * bins as f64) as usize).min(bins - 1)
    }

    /// Number of states of the exit Q-table.
    pub fn exit_state_count(&self) -> usize {
        self.energy_bins * self.efficiency_bins
    }

    /// Number of states of the continuation Q-table.
    pub fn continue_state_count(&self) -> usize {
        self.confidence_bins * self.energy_bins
    }

    /// Number of energy bins.
    pub fn energy_bins(&self) -> usize {
        self.energy_bins
    }

    /// State index of the exit Q-table for the given normalised energy level
    /// and charging efficiency (both in `[0, 1]`).
    pub fn exit_state(&self, energy_fraction: f64, charging_efficiency: f64) -> usize {
        Self::bin(energy_fraction, self.energy_bins) * self.efficiency_bins
            + Self::bin(charging_efficiency, self.efficiency_bins)
    }

    /// State index of the continuation Q-table for the given confidence and
    /// normalised remaining energy (both in `[0, 1]`).
    pub fn continue_state(&self, confidence: f64, energy_fraction: f64) -> usize {
        Self::bin(confidence, self.confidence_bins) * self.energy_bins
            + Self::bin(energy_fraction, self.energy_bins)
    }

    /// The representative (mid-point) energy fraction of an energy bin,
    /// used when building the static LUT.
    pub fn energy_bin_midpoint(&self, bin: usize) -> f64 {
        (bin.min(self.energy_bins - 1) as f64 + 0.5) / self.energy_bins as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_bins() {
        assert!(StateDiscretizer::new(0, 4, 4).is_err());
        assert!(StateDiscretizer::new(8, 0, 4).is_err());
        assert!(StateDiscretizer::new(8, 4, 0).is_err());
        assert!(StateDiscretizer::new(8, 4, 4).is_ok());
    }

    #[test]
    fn state_indices_are_in_range_and_distinct() {
        let d = StateDiscretizer::paper_default();
        assert_eq!(d.exit_state_count(), 32);
        assert_eq!(d.continue_state_count(), 32);
        let s_low = d.exit_state(0.0, 0.0);
        let s_high = d.exit_state(1.0, 1.0);
        assert!(s_low < d.exit_state_count());
        assert!(s_high < d.exit_state_count());
        assert_ne!(s_low, s_high);
        // Values outside [0, 1] are clamped.
        assert_eq!(d.exit_state(2.0, -1.0), d.exit_state(1.0, 0.0));
    }

    #[test]
    fn energy_dimension_orders_states() {
        let d = StateDiscretizer::paper_default();
        // Higher energy with equal efficiency gives a strictly larger index.
        assert!(d.exit_state(0.9, 0.5) > d.exit_state(0.1, 0.5));
        assert!(d.continue_state(0.9, 0.1) > d.continue_state(0.1, 0.1));
    }

    #[test]
    fn bin_midpoints_are_centred() {
        let d = StateDiscretizer::new(4, 2, 2).unwrap();
        assert!((d.energy_bin_midpoint(0) - 0.125).abs() < 1e-12);
        assert!((d.energy_bin_midpoint(3) - 0.875).abs() < 1e-12);
        // Out-of-range bins are clamped to the last bin.
        assert_eq!(d.energy_bin_midpoint(9), d.energy_bin_midpoint(3));
        assert_eq!(d.energy_bins(), 4);
    }
}
