use crate::{CompressError, Result};

/// Minimum preserve ratio the paper's action space allows.
pub const MIN_PRESERVE_RATIO: f32 = 0.05;
/// Step size of the paper's pruning-rate grid.
pub const PRESERVE_RATIO_STEP: f32 = 0.05;
/// Minimum quantization bitwidth of the search space.
pub const MIN_BITS: u8 = 1;
/// Maximum quantization bitwidth of the search space.
pub const MAX_BITS: u8 = 8;

/// Per-layer compression decision: how many input channels to keep and how
/// many bits to use for weights and activations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerPolicy {
    /// Fraction of input channels preserved (the paper's pruning rate `α_l`),
    /// in `[0.05, 1.0]`.
    pub preserve_ratio: f32,
    /// Weight bitwidth `b^w_l`, in `1..=32` (32 = uncompressed float).
    pub weight_bits: u8,
    /// Activation bitwidth `b^a_l`, in `1..=32`.
    pub activation_bits: u8,
}

impl LayerPolicy {
    /// A policy that leaves the layer untouched.
    pub fn identity() -> Self {
        LayerPolicy { preserve_ratio: 1.0, weight_bits: 32, activation_bits: 32 }
    }

    /// Creates a validated layer policy.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::InvalidPreserveRatio`] or
    /// [`CompressError::InvalidBitwidth`] for out-of-range values.
    pub fn new(preserve_ratio: f32, weight_bits: u8, activation_bits: u8) -> Result<Self> {
        if !(MIN_PRESERVE_RATIO..=1.0).contains(&preserve_ratio) || !preserve_ratio.is_finite() {
            return Err(CompressError::InvalidPreserveRatio { ratio: preserve_ratio });
        }
        for bits in [weight_bits, activation_bits] {
            if bits == 0 || bits > 32 {
                return Err(CompressError::InvalidBitwidth { bits });
            }
        }
        Ok(LayerPolicy { preserve_ratio, weight_bits, activation_bits })
    }

    /// Snaps the preserve ratio to the paper's 0.05 grid and the bitwidths to
    /// the `1..=8` search range (values above 8 are treated as "uncompressed"
    /// and left alone).
    pub fn snapped(&self) -> Self {
        let steps = (self.preserve_ratio / PRESERVE_RATIO_STEP).round().max(1.0);
        let ratio = (steps * PRESERVE_RATIO_STEP).clamp(MIN_PRESERVE_RATIO, 1.0);
        let clamp_bits = |b: u8| if b > MAX_BITS { b } else { b.clamp(MIN_BITS, MAX_BITS) };
        LayerPolicy {
            preserve_ratio: ratio,
            weight_bits: clamp_bits(self.weight_bits),
            activation_bits: clamp_bits(self.activation_bits),
        }
    }

    /// Returns `true` when the layer is neither pruned nor quantized.
    pub fn is_identity(&self) -> bool {
        self.preserve_ratio >= 1.0 && self.weight_bits >= 32 && self.activation_bits >= 32
    }
}

impl Default for LayerPolicy {
    fn default() -> Self {
        LayerPolicy::identity()
    }
}

/// A full compression policy: one [`LayerPolicy`] per compressible layer, in
/// the canonical layer order of
/// [`ie_nn::spec::MultiExitArchitecture::compressible_layers`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompressionPolicy {
    layers: Vec<LayerPolicy>,
}

impl CompressionPolicy {
    /// Creates a policy from per-layer entries.
    pub fn from_layers(layers: Vec<LayerPolicy>) -> Self {
        CompressionPolicy { layers }
    }

    /// The identity policy (no pruning, full precision) for `n` layers.
    pub fn full_precision(n: usize) -> Self {
        CompressionPolicy { layers: vec![LayerPolicy::identity(); n] }
    }

    /// A uniform policy: every layer gets the same preserve ratio and
    /// bitwidths (the paper's "uniform compression" baseline).
    ///
    /// # Errors
    ///
    /// Propagates validation errors from [`LayerPolicy::new`].
    pub fn uniform(
        n: usize,
        preserve_ratio: f32,
        weight_bits: u8,
        activation_bits: u8,
    ) -> Result<Self> {
        let layer = LayerPolicy::new(preserve_ratio, weight_bits, activation_bits)?;
        Ok(CompressionPolicy { layers: vec![layer; n] })
    }

    /// Number of layers covered by the policy.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` when the policy has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Per-layer entries.
    pub fn layers(&self) -> &[LayerPolicy] {
        &self.layers
    }

    /// Mutable per-layer entries (used by the search to write actions).
    pub fn layers_mut(&mut self) -> &mut [LayerPolicy] {
        &mut self.layers
    }

    /// The entry for layer `index`, if it exists.
    pub fn layer(&self, index: usize) -> Option<&LayerPolicy> {
        self.layers.get(index)
    }

    /// Returns a copy with every entry snapped to the paper's action grid.
    pub fn snapped(&self) -> Self {
        CompressionPolicy { layers: self.layers.iter().map(LayerPolicy::snapped).collect() }
    }

    /// Validates that the policy covers exactly `model_layers` layers.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::PolicyLengthMismatch`] otherwise.
    pub fn check_length(&self, model_layers: usize) -> Result<()> {
        if self.layers.len() != model_layers {
            return Err(CompressError::PolicyLengthMismatch {
                policy_layers: self.layers.len(),
                model_layers,
            });
        }
        Ok(())
    }

    /// Mean preserve ratio across layers (a coarse summary used in logs).
    pub fn mean_preserve_ratio(&self) -> f32 {
        if self.layers.is_empty() {
            return 1.0;
        }
        self.layers.iter().map(|l| l.preserve_ratio).sum::<f32>() / self.layers.len() as f32
    }

    /// Mean weight bitwidth across layers.
    pub fn mean_weight_bits(&self) -> f32 {
        if self.layers.is_empty() {
            return 32.0;
        }
        self.layers.iter().map(|l| l.weight_bits as f32).sum::<f32>() / self.layers.len() as f32
    }
}

impl FromIterator<LayerPolicy> for CompressionPolicy {
    fn from_iter<I: IntoIterator<Item = LayerPolicy>>(iter: I) -> Self {
        CompressionPolicy { layers: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_policy_validation() {
        assert!(LayerPolicy::new(0.5, 8, 8).is_ok());
        assert!(LayerPolicy::new(0.01, 8, 8).is_err());
        assert!(LayerPolicy::new(1.2, 8, 8).is_err());
        assert!(LayerPolicy::new(0.5, 0, 8).is_err());
        assert!(LayerPolicy::new(0.5, 8, 64).is_err());
        assert!(LayerPolicy::identity().is_identity());
        assert!(!LayerPolicy::new(0.5, 8, 8).unwrap().is_identity());
    }

    #[test]
    fn snapping_lands_on_the_action_grid() {
        let p = LayerPolicy { preserve_ratio: 0.43, weight_bits: 12, activation_bits: 0 };
        let s = p.snapped();
        assert!((s.preserve_ratio - 0.45).abs() < 1e-6);
        assert_eq!(s.weight_bits, 12, "bitwidths above 8 are treated as uncompressed");
        assert_eq!(s.activation_bits, 1);
        let tiny =
            LayerPolicy { preserve_ratio: 0.001, weight_bits: 4, activation_bits: 4 }.snapped();
        assert!(tiny.preserve_ratio >= MIN_PRESERVE_RATIO);
    }

    #[test]
    fn uniform_and_full_precision_constructors() {
        let u = CompressionPolicy::uniform(11, 0.7, 4, 6).unwrap();
        assert_eq!(u.len(), 11);
        assert!(u.layers().iter().all(|l| l.weight_bits == 4 && l.activation_bits == 6));
        assert!((u.mean_preserve_ratio() - 0.7).abs() < 1e-6);
        let fp = CompressionPolicy::full_precision(3);
        assert!(fp.layers().iter().all(LayerPolicy::is_identity));
        assert_eq!(fp.mean_weight_bits(), 32.0);
        assert!(CompressionPolicy::uniform(4, 2.0, 4, 4).is_err());
    }

    #[test]
    fn length_check() {
        let p = CompressionPolicy::full_precision(5);
        assert!(p.check_length(5).is_ok());
        assert!(p.check_length(11).is_err());
    }
}
