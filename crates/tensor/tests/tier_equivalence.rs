//! Tier-equivalence property tests: every dispatched kernel must be
//! **bit-identical** on every ISA tier the running machine supports.
//!
//! The tests iterate [`ie_tensor::dispatch::supported_tiers`] through the
//! explicit-tier entry points (`ie_tensor::tiered::*`), comparing each
//! higher tier against the portable baseline bit for bit. On hardware
//! without AVX-512 VNNI the VNNI tier simply never appears in the list —
//! the `IE_ISA=vnni` override degrades the same way — so the suite passes
//! (with less coverage) everywhere. The CI portable-tier job additionally
//! runs the *whole* workspace suite under `IE_ISA=portable`, which pins the
//! auto-dispatched kernels to the baseline and must change no test outcome.

use ie_tensor::dispatch::{supported_tiers, IsaTier};
use ie_tensor::{tiered, QuantParams};
use proptest::prelude::*;

fn bits_f32(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Dense GEMM (the MR=6 register tile): all tiers bit-identical, across
    /// tile/panel remainders.
    #[test]
    fn gemm_tiers_are_bit_identical(
        m in 1usize..20,
        k in 1usize..40,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        let data = mulberry(seed, m * k + k * n);
        let (a, b) = data.split_at(m * k);
        let mut base = vec![0.0f32; m * n];
        tiered::gemm_into(IsaTier::Portable, a, b, &mut base, m, k, n);
        for &tier in &supported_tiers()[1..] {
            let mut out = vec![0.0f32; m * n];
            tiered::gemm_into(tier, a, b, &mut out, m, k, n);
            prop_assert_eq!(bits_f32(&base), bits_f32(&out), "tier {:?} {}x{}x{}", tier, m, k, n);
        }
    }

    /// Sparse-aware GEMM (explicit AVX2 axpy) on pruned-looking operands.
    #[test]
    fn sparse_gemm_tiers_are_bit_identical(
        m in 1usize..12,
        k in 1usize..30,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        let mut data = mulberry(seed, m * k + k * n);
        // Zero whole blocks of the left operand, like channel pruning does.
        for (i, v) in data[..m * k].iter_mut().enumerate() {
            if (i / 3) % 2 == 0 {
                *v = 0.0;
            }
        }
        let (a, b) = data.split_at(m * k);
        let mut base = vec![0.0f32; m * n];
        tiered::gemm_sparse_into(IsaTier::Portable, a, b, &mut base, m, k, n);
        for &tier in &supported_tiers()[1..] {
            let mut out = vec![0.0f32; m * n];
            tiered::gemm_sparse_into(tier, a, b, &mut out, m, k, n);
            prop_assert_eq!(bits_f32(&base), bits_f32(&out), "tier {:?}", tier);
        }
    }

    /// Matrix–vector products (single and batched lane-parallel dot).
    #[test]
    fn matvec_tiers_are_bit_identical(
        m in 1usize..24,
        k in 1usize..50,
        batch in 1usize..6,
        seed in 0u64..1000,
    ) {
        let data = mulberry(seed, m * k + batch * k);
        let (a, xs) = data.split_at(m * k);
        let mut base_single = vec![0.0f32; m];
        tiered::matvec_into(IsaTier::Portable, a, &xs[..k], &mut base_single, m, k);
        let mut base_batch = vec![0.0f32; batch * m];
        tiered::matvec_batch_into(IsaTier::Portable, a, xs, &mut base_batch, m, k, batch);
        for &tier in &supported_tiers()[1..] {
            let mut single = vec![0.0f32; m];
            tiered::matvec_into(tier, a, &xs[..k], &mut single, m, k);
            prop_assert_eq!(bits_f32(&base_single), bits_f32(&single), "tier {:?}", tier);
            let mut batched = vec![0.0f32; batch * m];
            tiered::matvec_batch_into(tier, a, xs, &mut batched, m, k, batch);
            prop_assert_eq!(bits_f32(&base_batch), bits_f32(&batched), "tier {:?}", tier);
        }
    }

    /// Max pooling, `f32` and code domain, across window sizes (2 exercises
    /// the explicit AVX2 kernel, 1 and 3 the shared portable path) and plane
    /// widths around the 8/16-output vector blocks.
    #[test]
    fn max_pool_tiers_are_bit_identical(
        planes in 1usize..4,
        oh in 1usize..6,
        ow in 1usize..24,
        size in 1usize..4,
        seed in 0u64..1000,
    ) {
        let (h, w) = (oh * size, ow * size);
        let src = mulberry(seed, planes * h * w);
        let codes: Vec<i8> = src.iter().map(|&v| (v * 6.0) as i8).collect();
        let mut base = vec![0.0f32; planes * oh * ow];
        tiered::max_pool_planes_into(IsaTier::Portable, &src, planes, h, w, size, &mut base);
        let mut base_codes = vec![0i8; planes * oh * ow];
        tiered::max_pool_planes_i8_into(
            IsaTier::Portable, &codes, planes, h, w, size, &mut base_codes,
        );
        for &tier in &supported_tiers()[1..] {
            let mut out = vec![0.0f32; planes * oh * ow];
            tiered::max_pool_planes_into(tier, &src, planes, h, w, size, &mut out);
            prop_assert_eq!(bits_f32(&base), bits_f32(&out), "tier {:?} size {}", tier, size);
            let mut out_codes = vec![0i8; planes * oh * ow];
            tiered::max_pool_planes_i8_into(tier, &codes, planes, h, w, size, &mut out_codes);
            prop_assert_eq!(&base_codes, &out_codes, "codes tier {:?} size {}", tier, size);
        }
    }

    /// ReLU sweeps (`f32` and code floor) and the fused bias epilogues.
    #[test]
    fn relu_and_bias_tiers_are_bit_identical(
        rows in 1usize..6,
        plane in 1usize..40,
        seed in 0u64..1000,
    ) {
        let src = mulberry(seed, rows * plane);
        let bias = mulberry(seed ^ 0x5a5a, rows);
        let codes_src: Vec<i8> = src.iter().map(|&v| (v * 6.0) as i8).collect();
        for &tier in &supported_tiers()[1..] {
            let mut base = src.clone();
            tiered::relu_slice(IsaTier::Portable, &mut base);
            let mut out = src.clone();
            tiered::relu_slice(tier, &mut out);
            prop_assert_eq!(bits_f32(&base), bits_f32(&out), "relu tier {:?}", tier);

            let mut base_codes = codes_src.clone();
            tiered::relu_codes_floor(IsaTier::Portable, &mut base_codes, -5);
            let mut out_codes = codes_src.clone();
            tiered::relu_codes_floor(tier, &mut out_codes, -5);
            prop_assert_eq!(&base_codes, &out_codes, "relu codes tier {:?}", tier);

            for relu in [false, true] {
                let mut base_rows = src.clone();
                tiered::add_bias_rows(IsaTier::Portable, &mut base_rows, plane, &bias, relu);
                let mut out_rows = src.clone();
                tiered::add_bias_rows(tier, &mut out_rows, plane, &bias, relu);
                prop_assert_eq!(bits_f32(&base_rows), bits_f32(&out_rows), "bias tier {:?}", tier);

                // Sample-major: reuse `src` as [plane, rows] with `bias` per row.
                let mut base_s = src.clone();
                tiered::add_bias_samples(IsaTier::Portable, &mut base_s, &bias, relu);
                let mut out_s = src.clone();
                tiered::add_bias_samples(tier, &mut out_s, &bias, relu);
                prop_assert_eq!(bits_f32(&base_s), bits_f32(&out_s), "bias samples {:?}", tier);
            }
        }
    }

    /// Softmax: fixed reduction trees plus the shared polynomial exponential.
    #[test]
    fn softmax_tiers_are_bit_identical(len in 1usize..64, seed in 0u64..1000) {
        let logits = mulberry(seed, len);
        let mut base = vec![0.0f32; len];
        tiered::softmax_slice_into(IsaTier::Portable, &logits, &mut base);
        for &tier in &supported_tiers()[1..] {
            let mut out = vec![0.0f32; len];
            tiered::softmax_slice_into(tier, &logits, &mut out);
            prop_assert_eq!(bits_f32(&base), bits_f32(&out), "tier {:?} len {}", tier, len);
        }
    }

    /// The transposed madd GEMM: `vpmaddwd` (AVX2) and `vpdpwssd` (VNNI)
    /// tiers against the portable dot, including depths that exercise the
    /// 32/16-element chunking and the scalar tail.
    #[test]
    fn madd_gemm_tiers_are_bit_identical(
        m in 1usize..10,
        kp in 1usize..80,
        n in 1usize..12,
        seed in 0u64..1000,
    ) {
        let data = mulberry(seed, m * kp + n * kp);
        let codes: Vec<i16> = data.iter().map(|&v| (v * 2048.0) as i16).collect();
        let (a, bt) = codes.split_at(m * kp);
        let mut base = vec![0i32; m * n];
        tiered::gemm_i16t_into(IsaTier::Portable, a, bt, &mut base, m, kp, n);
        for &tier in &supported_tiers()[1..] {
            let mut out = vec![0i32; m * n];
            tiered::gemm_i16t_into(tier, a, bt, &mut out, m, kp, n);
            prop_assert_eq!(&base, &out, "tier {:?} {}x{}x{}", tier, m, kp, n);
        }
    }

    /// Activation quantization and both requantization epilogue layouts.
    #[test]
    fn quantize_and_requant_tiers_are_bit_identical(
        len in 1usize..80,
        bits in 2u8..=8,
        seed in 0u64..1000,
    ) {
        let p = QuantParams::from_range(0.0, 9.5, bits);
        let signed = QuantParams::from_range(-4.0, 4.0, bits);
        let src = mulberry(seed, len);
        let accs: Vec<i32> = src.iter().map(|&v| (v * 100_000.0) as i32).collect();
        let corrs: Vec<i32> = mulberry(seed ^ 0x77, len).iter().map(|&v| (v * 50.0) as i32).collect();
        let biases = mulberry(seed ^ 0x99, len);
        let (scale, corr, bias) = (3.1e-3f32, 17i32, 0.37f32);
        for &tier in &supported_tiers()[1..] {
            for params in [&p, &signed] {
                let mut base = vec![0i8; len];
                params.quantize_slice_into_tier(IsaTier::Portable, &src, &mut base);
                let mut out = vec![0i8; len];
                params.quantize_slice_into_tier(tier, &src, &mut out);
                prop_assert_eq!(&base, &out, "quantize tier {:?}", tier);

                for relu in [false, true] {
                    let mut base_f = vec![0.0f32; len];
                    tiered::dequant_slice_into(
                        IsaTier::Portable, &accs, corr, scale, bias, relu, &mut base_f,
                    );
                    let mut out_f = vec![0.0f32; len];
                    tiered::dequant_slice_into(tier, &accs, corr, scale, bias, relu, &mut out_f);
                    prop_assert_eq!(bits_f32(&base_f), bits_f32(&out_f), "dequant {:?}", tier);

                    let mut base_r = vec![0.0f32; len];
                    tiered::dequant_rows_slice_into(
                        IsaTier::Portable, &accs, &corrs, &biases, scale, relu, &mut base_r,
                    );
                    let mut out_r = vec![0.0f32; len];
                    tiered::dequant_rows_slice_into(
                        tier, &accs, &corrs, &biases, scale, relu, &mut out_r,
                    );
                    prop_assert_eq!(bits_f32(&base_r), bits_f32(&out_r), "dequant rows {:?}", tier);

                    let floor = if relu { params.zero_point() } else { params.lo() };
                    let mut base_c = vec![0i8; len];
                    tiered::requant_slice_into(
                        IsaTier::Portable, &accs, corr, scale, bias, params, floor, &mut base_c,
                    );
                    let mut out_c = vec![0i8; len];
                    tiered::requant_slice_into(
                        tier, &accs, corr, scale, bias, params, floor, &mut out_c,
                    );
                    prop_assert_eq!(&base_c, &out_c, "requant tier {:?}", tier);

                    let mut base_rc = vec![0i8; len];
                    tiered::requant_rows_slice_into(
                        IsaTier::Portable, &accs, &corrs, &biases, scale, params, floor,
                        &mut base_rc,
                    );
                    let mut out_rc = vec![0i8; len];
                    tiered::requant_rows_slice_into(
                        tier, &accs, &corrs, &biases, scale, params, floor, &mut out_rc,
                    );
                    prop_assert_eq!(&base_rc, &out_rc, "requant rows tier {:?}", tier);
                }
            }
        }
    }

    /// The training-side backward kernels: transpose, ReLU mask-multiply,
    /// argmax-routed pool backward, accumulating outer product, slice
    /// accumulate and the fused cross-entropy gradient epilogue.
    #[test]
    fn backward_kernel_tiers_are_bit_identical(
        rows in 1usize..12,
        cols in 1usize..40,
        seed in 0u64..1000,
    ) {
        let len = rows * cols;
        let data = mulberry(seed, 2 * len);
        let (a, b) = data.split_at(len);
        let label = (seed as usize) % cols;
        let weight = 0.25 + (seed % 7) as f32 * 0.37;
        for &tier in &supported_tiers()[1..] {
            let mut base = vec![0.0f32; len];
            tiered::transpose_into(IsaTier::Portable, a, rows, cols, &mut base);
            let mut out = vec![0.0f32; len];
            tiered::transpose_into(tier, a, rows, cols, &mut out);
            prop_assert_eq!(bits_f32(&base), bits_f32(&out), "transpose {:?}", tier);

            let mut base_r = vec![0.0f32; len];
            tiered::relu_backward_into(IsaTier::Portable, a, b, &mut base_r);
            let mut out_r = vec![0.0f32; len];
            tiered::relu_backward_into(tier, a, b, &mut out_r);
            prop_assert_eq!(bits_f32(&base_r), bits_f32(&out_r), "relu bwd {:?}", tier);

            let mut base_o = b.to_vec();
            tiered::outer_accumulate_into(IsaTier::Portable, &a[..rows], &a[..cols], &mut base_o);
            let mut out_o = b.to_vec();
            tiered::outer_accumulate_into(tier, &a[..rows], &a[..cols], &mut out_o);
            prop_assert_eq!(bits_f32(&base_o), bits_f32(&out_o), "outer {:?}", tier);

            let mut base_acc = a.to_vec();
            tiered::accumulate_slice_into(IsaTier::Portable, &mut base_acc, b);
            let mut out_acc = a.to_vec();
            tiered::accumulate_slice_into(tier, &mut out_acc, b);
            prop_assert_eq!(bits_f32(&base_acc), bits_f32(&out_acc), "accumulate {:?}", tier);

            let mut base_ce = vec![0.0f32; cols];
            tiered::cross_entropy_grad_into(IsaTier::Portable, &a[..cols], label, weight, &mut base_ce);
            let mut out_ce = vec![0.0f32; cols];
            tiered::cross_entropy_grad_into(tier, &a[..cols], label, weight, &mut out_ce);
            prop_assert_eq!(bits_f32(&base_ce), bits_f32(&out_ce), "ce grad {:?}", tier);
        }
    }

    /// The transposed-`A` training kernel (`dx = Wᵀ·g`) is bit-identical
    /// across tiers and to transpose-then-multiply.
    #[test]
    fn transposed_product_tiers_are_bit_identical(
        m in 1usize..80,
        k in 1usize..24,
        seed in 0u64..1000,
    ) {
        let a = mulberry(seed, k * m);
        let x = mulberry(seed ^ 0x77, k);
        let mut base_v = vec![0.0f32; m];
        tiered::matvec_t_into(IsaTier::Portable, &a, &x, &mut base_v, m, k);
        for &tier in &supported_tiers()[1..] {
            let mut out_v = vec![0.0f32; m];
            tiered::matvec_t_into(tier, &a, &x, &mut out_v, m, k);
            prop_assert_eq!(bits_f32(&base_v), bits_f32(&out_v), "matvec_t {:?}", tier);
        }
    }

    /// Max-pool backward across window sizes and ties: the argmax scatter
    /// must pick the same first strict maximum on every tier.
    #[test]
    fn max_pool_backward_tiers_are_bit_identical(
        planes in 1usize..4,
        oh in 1usize..6,
        ow in 1usize..12,
        size in 1usize..4,
        seed in 0u64..1000,
    ) {
        let (h, w) = (oh * size, ow * size);
        let mut src = mulberry(seed, planes * h * w);
        // Inject exact ties so the first-strict-max rule is exercised.
        for v in src.iter_mut().skip(1).step_by(5) {
            *v = 4.0;
        }
        let go = mulberry(seed ^ 0x1234, planes * oh * ow);
        let mut base = vec![0.0f32; planes * h * w];
        tiered::max_pool_backward_into(IsaTier::Portable, &src, planes, h, w, size, &go, &mut base);
        for &tier in &supported_tiers()[1..] {
            let mut out = vec![0.0f32; planes * h * w];
            tiered::max_pool_backward_into(tier, &src, planes, h, w, size, &go, &mut out);
            prop_assert_eq!(bits_f32(&base), bits_f32(&out), "pool bwd {:?} size {}", tier, size);
        }
    }

    /// Edge values — NaN, infinities, signed zeros, exact ties — resolve
    /// identically on every tier (the `vmaxps` select semantics).
    #[test]
    fn edge_values_resolve_identically_across_tiers(seed in 0u64..200) {
        let mut src = mulberry(seed, 64);
        let specials = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY, -0.0, 0.0, 1.0, -1.0];
        for (i, v) in src.iter_mut().enumerate() {
            if i % 3 == 0 {
                *v = specials[i % specials.len()];
            }
        }
        for &tier in &supported_tiers()[1..] {
            let mut base = src.clone();
            tiered::relu_slice(IsaTier::Portable, &mut base);
            let mut out = src.clone();
            tiered::relu_slice(tier, &mut out);
            prop_assert_eq!(bits_f32(&base), bits_f32(&out), "relu specials {:?}", tier);

            let mut base_p = vec![0.0f32; 16];
            tiered::max_pool_planes_into(IsaTier::Portable, &src, 1, 4, 16, 2, &mut base_p);
            let mut out_p = vec![0.0f32; 16];
            tiered::max_pool_planes_into(tier, &src, 1, 4, 16, 2, &mut out_p);
            prop_assert_eq!(bits_f32(&base_p), bits_f32(&out_p), "pool specials {:?}", tier);

            let p = QuantParams::from_range(0.0, 4.0, 8);
            let mut base_q = vec![0i8; 64];
            p.quantize_slice_into_tier(IsaTier::Portable, &src, &mut base_q);
            let mut out_q = vec![0i8; 64];
            p.quantize_slice_into_tier(tier, &src, &mut out_q);
            prop_assert_eq!(&base_q, &out_q, "quantize specials {:?}", tier);

            let mut base_s = vec![0.0f32; 64];
            tiered::softmax_slice_into(IsaTier::Portable, &src, &mut base_s);
            let mut out_s = vec![0.0f32; 64];
            tiered::softmax_slice_into(tier, &src, &mut out_s);
            prop_assert_eq!(bits_f32(&base_s), bits_f32(&out_s), "softmax specials {:?}", tier);
        }
    }
}

/// Deterministic pseudo-random `f32` generator (mulberry32) so every shape
/// gets stable, seed-addressable data without pulling a full RNG strategy
/// through `prop_flat_map`.
fn mulberry(seed: u64, len: usize) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Map to roughly [-8, 8) with plenty of fractional variety.
            ((state >> 11) as f64 / (1u64 << 53) as f64 * 16.0 - 8.0) as f32
        })
        .collect()
}

/// The dispatch override contract: `active()` never exceeds the hardware and
/// honours `IE_ISA` when set (the CI portable job relies on this).
#[test]
fn active_tier_is_always_supported() {
    let active = ie_tensor::dispatch::active();
    assert!(supported_tiers().contains(&active));
}
