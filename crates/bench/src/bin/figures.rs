//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p ie-bench --bin figures -- all
//! cargo run --release -p ie-bench --bin figures -- fig5
//! ```
//!
//! Experiment ids: `fig1b`, `fig4`, `fig5`, `fig6`, `fig7a`, `fig7b`,
//! `table_accuracy`, `table_latency`, `ablation_reward`,
//! `ablation_incremental`, `ablation_search`, `all`.

use ie_bench::experiments::{
    ablations, compression_study, system_comparison, BenchResult, CompressionStudy,
    SystemComparison,
};
use ie_bench::reference;
use ie_bench::report::{header, mflops, pct, ratio, row};
use ie_core::ExperimentConfig;

/// Number of DDPG search episodes used when regenerating the figures.
const SEARCH_EPISODES: usize = 60;
/// Number of runtime-adaptation learning episodes (the paper shows 16).
const ADAPTATION_EPISODES: usize = 16;

fn print_fig1b(study: &CompressionStudy) {
    println!("\n## Fig. 1(b) — per-exit accuracy: full precision vs uniform vs nonuniform\n");
    println!(
        "{}",
        header(&["exit", "full precision", "uniform", "nonuniform", "paper (full/uni/non)"])
    );
    for exit in 0..3 {
        println!(
            "{}",
            row(&[
                format!("exit {}", exit + 1),
                pct(study.full_precision.profile.exit_accuracy[exit]),
                pct(study.uniform.1.profile.exit_accuracy[exit]),
                pct(study.nonuniform.1.profile.exit_accuracy[exit]),
                format!(
                    "{} / {} / {}",
                    pct(reference::PAPER_FULL_PRECISION_ACC[exit]),
                    pct(reference::PAPER_UNIFORM_ACC[exit]),
                    pct(reference::PAPER_NONUNIFORM_ACC[exit])
                ),
            ])
        );
    }
    println!(
        "\nnonuniform policy source: {}",
        if study.nonuniform_from_search {
            "DDPG search"
        } else {
            "reference policy (search fallback)"
        }
    );
}

fn print_fig4(study: &CompressionStudy, config: &ExperimentConfig) {
    println!(
        "\n## Fig. 4 — layer-wise preserve ratio and quantization bits of the nonuniform policy\n"
    );
    println!(
        "constraints: {} network FLOPs, {} KB weights; achieved: {} FLOPs, {:.1} KB\n",
        mflops(config.flops_target as f64),
        config.size_target_bytes / 1024,
        mflops(study.nonuniform.1.profile.total_flops as f64),
        study.nonuniform.1.profile.model_size_bytes as f64 / 1024.0
    );
    println!("{}", header(&["layer", "preserve ratio", "weight bits", "activation bits"]));
    let layers = config.architecture.compressible_layers();
    for (layer, policy) in layers.iter().zip(study.nonuniform.0.layers()) {
        println!(
            "{}",
            row(&[
                layer.name.clone(),
                format!("{:.2}", policy.preserve_ratio),
                policy.weight_bits.to_string(),
                policy.activation_bits.to_string(),
            ])
        );
    }
}

fn print_fig5(comparison: &SystemComparison) {
    println!("\n## Fig. 5 — interesting events per millijoule (IEpmJ)\n");
    println!("{}", header(&["system", "IEpmJ (measured)", "IEpmJ (paper)", "ours / system"]));
    let ours = comparison.systems[0].report.ie_pmj();
    for (i, system) in comparison.systems.iter().enumerate() {
        let measured = system.report.ie_pmj();
        println!(
            "{}",
            row(&[
                system.name.clone(),
                format!("{measured:.3}"),
                format!("{:.2}", reference::PAPER_IEPMJ[i]),
                ratio(ours, measured),
            ])
        );
    }
}

fn print_table_accuracy(comparison: &SystemComparison) {
    println!("\n## Section V-C — average accuracy of all events and of processed events\n");
    println!(
        "{}",
        header(&[
            "system",
            "acc. all events",
            "paper",
            "acc. processed",
            "paper",
            "events processed"
        ])
    );
    for (i, system) in comparison.systems.iter().enumerate() {
        println!(
            "{}",
            row(&[
                system.name.clone(),
                pct(system.report.accuracy_all_events()),
                pct(reference::PAPER_ACC_ALL_EVENTS[i]),
                pct(system.report.accuracy_processed_events()),
                pct(reference::PAPER_ACC_PROCESSED[i]),
                format!("{}/{}", system.report.processed_events, system.report.total_events),
            ])
        );
    }
}

fn print_fig6(study: &CompressionStudy, comparison: &SystemComparison) {
    println!("\n## Fig. 6 — FLOPs before and after compression\n");
    println!(
        "{}",
        header(&["exit / system", "FLOPs before", "FLOPs after", "ratio", "paper ratio"])
    );
    for exit in 0..3 {
        let before = study.full_precision.profile.exit_flops[exit] as f64;
        let after = study.nonuniform.1.profile.exit_flops[exit] as f64;
        println!(
            "{}",
            row(&[
                format!("exit {}", exit + 1),
                mflops(before),
                mflops(after),
                format!("{:.2}x", after / before),
                format!("{:.2}x", reference::PAPER_EXIT_FLOPS_RATIO[exit]),
            ])
        );
    }
    let ours_mean = comparison.systems[0].report.mean_flops_per_inference();
    for system in comparison.systems.iter().skip(1) {
        let flops = system.report.mean_flops_per_inference();
        println!(
            "{}",
            row(&[
                system.name.clone(),
                mflops(flops),
                "-".to_string(),
                format!("ours/theirs {}", ratio(ours_mean, flops)),
                "-".to_string(),
            ])
        );
    }
    println!("\nmean FLOPs per processed inference (ours): {}", mflops(ours_mean));
}

fn print_table_latency(comparison: &SystemComparison) {
    println!("\n## Section V-D — per-event latency (1 s time units)\n");
    println!(
        "{}",
        header(&[
            "system",
            "mean latency (s)",
            "paper (s)",
            "improvement of ours",
            "paper improvement"
        ])
    );
    let ours = comparison.systems[0].report.mean_latency_s();
    let paper_improvements = ["-", "7.8x", "10.2x", "3.15x"];
    for (i, system) in comparison.systems.iter().enumerate() {
        let latency = system.report.mean_latency_s();
        println!(
            "{}",
            row(&[
                system.name.clone(),
                format!("{latency:.1}"),
                format!("{:.1}", reference::PAPER_LATENCY_S[i]),
                if i == 0 { "-".to_string() } else { ratio(latency, ours) },
                paper_improvements[i].to_string(),
            ])
        );
    }
}

fn print_fig7(comparison: &SystemComparison) {
    let adaptation = &comparison.adaptation;
    println!("\n## Fig. 7(a) — runtime learning curve (average accuracy of all events)\n");
    println!("{}", header(&["episode", "Q-learning", "static LUT"]));
    for (i, acc) in adaptation.learning_curve.iter().enumerate() {
        println!("{}", row(&[(i + 1).to_string(), pct(*acc), pct(adaptation.static_accuracy)]));
    }
    println!(
        "\nimprovement over static LUT: {} (paper: {})",
        pct(adaptation.improvement_over_static()),
        pct(reference::PAPER_RUNTIME_IMPROVEMENT)
    );

    println!("\n## Fig. 7(b) — processed events per exit\n");
    println!(
        "{}",
        header(&[
            "exit",
            "Q-learning (count)",
            "Q-learning (%)",
            "static LUT (count)",
            "static LUT (%)",
            "paper (Q / LUT)"
        ])
    );
    let q = &adaptation.final_report;
    let s = &adaptation.static_report;
    for exit in 0..q.exit_counts.len() {
        println!(
            "{}",
            row(&[
                format!("exit {}", exit + 1),
                q.exit_counts[exit].to_string(),
                pct(q.exit_fractions()[exit]),
                s.exit_counts[exit].to_string(),
                pct(s.exit_fractions()[exit]),
                format!(
                    "{} / {}",
                    pct(reference::PAPER_QLEARNING_EXIT_FRACTIONS[exit]),
                    pct(reference::PAPER_STATIC_EXIT_FRACTIONS[exit])
                ),
            ])
        );
    }
    println!(
        "\nevents processed: Q-learning {} vs static LUT {} (paper: +11.2% for Q-learning)",
        q.processed_events, s.processed_events
    );
}

fn print_ablations(config: &ExperimentConfig) -> BenchResult<()> {
    let results = ablations(config, 24)?;
    println!("\n## Ablation — exit-guided vs final-exit-only compression reward\n");
    println!("{}", header(&["reward", "expected all-event accuracy", "feasible"]));
    println!(
        "{}",
        row(&[
            "exit-guided (paper)".into(),
            pct(results.reward_mode.0.accuracy_reward),
            results.reward_mode.0.feasible.to_string(),
        ])
    );
    println!(
        "{}",
        row(&[
            "final-exit only".into(),
            pct(results.reward_mode.1.accuracy_reward),
            results.reward_mode.1.feasible.to_string(),
        ])
    );

    println!("\n## Ablation — incremental inference on/off\n");
    println!("{}", header(&["configuration", "all-event accuracy"]));
    println!("{}", row(&["with incremental inference".into(), pct(results.incremental.0)]));
    println!("{}", row(&["without incremental inference".into(), pct(results.incremental.1)]));

    println!("\n## Ablation — search strategy (exit-guided reward of the best feasible policy)\n");
    println!("{}", header(&["strategy", "expected all-event accuracy"]));
    println!("{}", row(&["DDPG (paper)".into(), pct(results.search_strategy.0)]));
    println!("{}", row(&["random search".into(), pct(results.search_strategy.1)]));
    println!("{}", row(&["best uniform".into(), pct(results.search_strategy.2)]));
    Ok(())
}

fn main() -> BenchResult<()> {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let config = ExperimentConfig::paper_default();
    println!("# Experiment harness — intermittent multi-exit inference (DAC 2020 reproduction)");
    println!(
        "\nenvironment: {} events over {:.0} h of solar harvesting, {} mJ capacitor, {}",
        config.num_events,
        config.trace_duration_s / 3600.0,
        config.storage_capacity_mj,
        config.device.name()
    );

    let needs_compression = matches!(
        which.as_str(),
        "all"
            | "fig1b"
            | "fig4"
            | "fig5"
            | "fig6"
            | "fig7a"
            | "fig7b"
            | "table_accuracy"
            | "table_latency"
    );
    let study =
        if needs_compression { Some(compression_study(&config, SEARCH_EPISODES)?) } else { None };
    let needs_comparison = matches!(
        which.as_str(),
        "all" | "fig5" | "fig6" | "fig7a" | "fig7b" | "table_accuracy" | "table_latency"
    );
    let comparison = match (&study, needs_comparison) {
        (Some(s), true) => Some(system_comparison(&config, &s.nonuniform.1, ADAPTATION_EPISODES)?),
        _ => None,
    };

    match which.as_str() {
        "fig1b" => print_fig1b(study.as_ref().expect("study computed")),
        "fig4" => print_fig4(study.as_ref().expect("study computed"), &config),
        "fig5" => print_fig5(comparison.as_ref().expect("comparison computed")),
        "fig6" => print_fig6(
            study.as_ref().expect("study computed"),
            comparison.as_ref().expect("comparison computed"),
        ),
        "fig7a" | "fig7b" => print_fig7(comparison.as_ref().expect("comparison computed")),
        "table_accuracy" => print_table_accuracy(comparison.as_ref().expect("comparison computed")),
        "table_latency" => print_table_latency(comparison.as_ref().expect("comparison computed")),
        "ablation_reward" | "ablation_incremental" | "ablation_search" | "ablations" => {
            print_ablations(&config)?;
        }
        _ => {
            let study = study.expect("study computed");
            let comparison = comparison.expect("comparison computed");
            print_fig1b(&study);
            print_fig4(&study, &config);
            print_fig5(&comparison);
            print_table_accuracy(&comparison);
            print_fig6(&study, &comparison);
            print_table_latency(&comparison);
            print_fig7(&comparison);
            print_ablations(&config)?;
        }
    }
    Ok(())
}
