//! Statically planned, allocation-free inference.
//!
//! An [`ExecutionPlan`] is built once from a [`MultiExitArchitecture`]: it
//! pre-sizes every buffer the forward pass will ever touch — the `im2col`
//! column scratch, two ping-pong activation buffers for the trunk, two for the
//! branch being evaluated, and per-exit logits/probability buffers. The
//! planned entry points ([`MultiExitNetwork::forward_to_exit_with`],
//! [`MultiExitNetwork::continue_to_exit_with`],
//! [`MultiExitNetwork::forward_all_with`]) then run entirely inside those
//! buffers: after the plan is constructed, a forward pass performs **zero
//! heap allocations** (asserted by a counting-allocator regression test).
//!
//! Conv→ReLU and Dense→ReLU pairs are fused — the bias add and activation run
//! in the GEMM epilogue — and convolution filters are read in their native
//! row-major layout, so the weight reshape/copy of the allocating path
//! disappears. Results are bit-identical to the allocating
//! [`MultiExitNetwork::forward_to_exit`] path, which shares the same kernels.
//!
//! ```
//! use ie_nn::{spec::tiny_multi_exit, MultiExitNetwork};
//! use ie_tensor::Tensor;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let net = MultiExitNetwork::from_architecture(&tiny_multi_exit(3), &mut rng)?;
//! let mut plan = net.execution_plan();
//! let x = Tensor::zeros(&[1, 8, 8]);
//! let out = net.forward_to_exit_with(&mut plan, &x, 0)?;
//! assert_eq!(out.exit, 0);
//! let deeper = net.continue_to_exit_with(&mut plan, 1)?;
//! assert_eq!(deeper.exit, 1);
//! assert_eq!(plan.probs(1).len(), 3);
//! # Ok::<(), ie_nn::NnError>(())
//! ```

use crate::loss::{argmax_slice, confidence_slice, softmax_into};
use crate::quant::{
    quant_conv_forward, quant_dense_forward, quantize_slice, Domain, QuantBuffers, QuantConfig,
    QuantCtx, QuantDst, QuantState, QuantizedLayer, QuantizedModel,
};
use crate::spec::{LayerSpecKind, MultiExitArchitecture};
use crate::{Layer, MultiExitNetwork, NnError, Result};
use ie_tensor::{Tensor, Workspace};

/// Slot indices of the two-slot ping-pong workspaces.
const SLOT_A: usize = 0;
const SLOT_B: usize = 1;

/// Shape of the activation currently held in a ping-pong slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ActDims {
    /// A `[C, H, W]` feature map.
    Spatial([usize; 3]),
    /// A flat feature vector.
    Flat(usize),
}

impl ActDims {
    fn len(&self) -> usize {
        match self {
            ActDims::Spatial([c, h, w]) => c * h * w,
            ActDims::Flat(n) => *n,
        }
    }
}

/// The lightweight, non-allocating result of a planned forward pass.
///
/// The full logits and probabilities live in the plan's per-exit buffers;
/// read them through [`ExecutionPlan::logits`] / [`ExecutionPlan::probs`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannedOutput {
    /// Which exit produced the result.
    pub exit: usize,
    /// Predicted class (argmax of the probabilities).
    pub prediction: usize,
    /// Entropy-based confidence in `[0, 1]` (see [`crate::loss::confidence`]).
    pub confidence: f32,
}

/// Pre-sized buffers plus cached trunk state for allocation-free inference.
///
/// Build once per (architecture, thread) with
/// [`ExecutionPlan::for_architecture`] or
/// [`MultiExitNetwork::execution_plan`], then reuse across any number of
/// forward passes. The plan also caches the deepest trunk activation it has
/// computed, which is what makes zero-allocation *incremental* inference
/// ([`MultiExitNetwork::continue_to_exit_with`]) possible.
#[derive(Debug, Clone)]
pub struct ExecutionPlan {
    num_exits: usize,
    /// Trunk activation ping-pong buffers (slots A/B).
    trunk: Workspace,
    /// Branch activation ping-pong buffers (slots A/B).
    branch: Workspace,
    /// Shared `im2col` column scratch, sized for the largest convolution.
    col: Vec<f32>,
    /// Raw logits of each exit, written by the most recent pass over it.
    logits: Vec<Vec<f32>>,
    /// Softmax probabilities of each exit.
    probs: Vec<Vec<f32>>,
    /// Slot of `trunk` holding the current trunk activation.
    trunk_slot: usize,
    /// Shape of the cached trunk activation.
    trunk_dims: ActDims,
    /// Trunk segments already executed (`0` when no state is cached).
    segments_done: usize,
    /// Exit most recently evaluated from the cached state.
    last_exit: Option<usize>,
    /// Quantized model + integer buffers when the plan executes ≤8/≤16-bit
    /// layers through the integer kernels (`None` → pure `f32` engine).
    quant: Option<QuantState>,
}

impl ExecutionPlan {
    /// Builds a plan for `arch`, pre-sizing every buffer so that planned
    /// forward passes never allocate.
    pub fn for_architecture(arch: &MultiExitArchitecture) -> Self {
        let (max_act, max_col) = buffer_requirements(arch);
        let mut trunk = Workspace::new();
        trunk.ensure_slot(SLOT_A, max_act);
        trunk.ensure_slot(SLOT_B, max_act);
        let mut branch = Workspace::new();
        branch.ensure_slot(SLOT_A, max_act);
        branch.ensure_slot(SLOT_B, max_act);
        let classes = arch.num_classes();
        ExecutionPlan {
            num_exits: arch.num_exits(),
            trunk,
            branch,
            col: vec![0.0; max_col],
            logits: vec![vec![0.0; classes]; arch.num_exits()],
            probs: vec![vec![0.0; classes]; arch.num_exits()],
            trunk_slot: SLOT_A,
            trunk_dims: ActDims::Flat(0),
            segments_done: 0,
            last_exit: None,
            quant: None,
        }
    }

    /// Builds a **quantized** plan for `net`: layers covered by `config` run
    /// the i8/i16 integer kernels with weights quantized and packed here,
    /// once; everything else stays on the `f32` engine. The plan additionally
    /// pre-sizes the integer scratch (code ping-pong slots, i8/i16 column
    /// buffers, the `i32` accumulator), so warmed quantized passes perform
    /// zero heap allocations, exactly like the float plan.
    ///
    /// The quantized parameters are baked from `net`'s **current** weights;
    /// use the plan only with that network (the compatibility check catches
    /// architecture mismatches, not weight changes).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidSpec`] when `config` does not match the
    /// network's compressible layers (see
    /// [`QuantizedModel::for_network`]).
    pub fn for_network_quantized(
        net: &MultiExitNetwork,
        config: &QuantConfig,
    ) -> Result<ExecutionPlan> {
        let model = QuantizedModel::for_network(net, config)?;
        let mut plan = ExecutionPlan::for_architecture(net.architecture());
        plan.quant =
            Some(QuantState { model, bufs: QuantBuffers::for_architecture(net.architecture(), 1) });
        Ok(plan)
    }

    /// The quantized model baked into this plan, if any.
    pub fn quantized_model(&self) -> Option<&QuantizedModel> {
        self.quant.as_ref().map(|q| &q.model)
    }

    /// Number of exits the plan covers.
    pub fn num_exits(&self) -> usize {
        self.num_exits
    }

    /// Raw logits of `exit` from the most recent planned pass over it.
    ///
    /// # Panics
    ///
    /// Panics when `exit` is out of range.
    pub fn logits(&self, exit: usize) -> &[f32] {
        &self.logits[exit]
    }

    /// Softmax probabilities of `exit` from the most recent planned pass.
    ///
    /// # Panics
    ///
    /// Panics when `exit` is out of range.
    pub fn probs(&self, exit: usize) -> &[f32] {
        &self.probs[exit]
    }

    /// The exit most recently evaluated from the cached trunk state, if any.
    pub fn last_exit(&self) -> Option<usize> {
        self.last_exit
    }

    /// Number of trunk segments whose output is currently cached.
    pub fn segments_done(&self) -> usize {
        self.segments_done
    }

    /// Drops the cached trunk state (buffers stay warm).
    pub fn reset(&mut self) {
        self.segments_done = 0;
        self.last_exit = None;
        self.trunk_dims = ActDims::Flat(0);
        self.trunk_slot = SLOT_A;
    }

    /// Runs `layers` over the activation held in `ws` (ping-pong between its
    /// two slots), fusing Conv→ReLU / Dense→ReLU pairs into the kernel
    /// epilogue.
    ///
    /// With a quantized context, layers whose aligned entry is `Some` run the
    /// i8/i16 integer kernels instead: the activation is quantized at the
    /// float→int boundary (or arrives as codes from the previous chained
    /// quantized layer), the GEMM accumulates in `i32`, and the
    /// requantization epilogue emits either codes for the next quantized
    /// layer or `f32` at the mixed-precision boundary. ReLU and max-pool
    /// operate directly in the code domain between chained layers
    /// (quantization is monotone, so both commute with it exactly). Every
    /// list starts and ends in the f32 domain.
    fn run_layers(
        layers: &[Layer],
        ws: &mut Workspace,
        col: &mut [f32],
        slot: &mut usize,
        dims: &mut ActDims,
        quant: QuantCtx<'_>,
    ) -> Result<()> {
        let (qlist, mut qbufs): (&[Option<QuantizedLayer>], Option<&mut QuantBuffers>) = match quant
        {
            Some((list, bufs)) => (list, Some(bufs)),
            None => (&[], None),
        };
        let mut domain = Domain::F32;
        let mut i = 0;
        while i < layers.len() {
            let fuse = matches!(layers.get(i + 1), Some(Layer::Relu(_)));
            let qentry = qlist.get(i).and_then(|e| e.as_ref());
            match &layers[i] {
                Layer::Conv2d(conv) => {
                    let geom = conv.geometry();
                    let expected = [geom.in_channels, geom.in_h, geom.in_w];
                    if *dims != ActDims::Spatial(expected) {
                        return Err(shape_error("conv2d", &expected, dims));
                    }
                    let in_len = conv.input_len();
                    let out_len = conv.output_len();
                    if let Some(ql) = qentry {
                        let bufs = qbufs.as_deref_mut().expect("quantized entry implies buffers");
                        let QuantBuffers { codes, col8, rows16, acc, .. } = bufs;
                        let (src_c, dst_c) = crate::quant::code_pair(codes, *slot);
                        if domain == Domain::F32 {
                            quantize_slice(
                                &ws.slot(*slot)[..in_len],
                                &ql.input,
                                &mut src_c[..in_len],
                            );
                        }
                        match ql.out {
                            None => {
                                quant_conv_forward(
                                    conv,
                                    ql,
                                    &src_c[..in_len],
                                    1,
                                    fuse,
                                    col8,
                                    rows16,
                                    acc,
                                    QuantDst::F32(&mut ws.slot_mut(1 - *slot)[..out_len]),
                                )?;
                                domain = Domain::F32;
                            }
                            Some(p) => {
                                quant_conv_forward(
                                    conv,
                                    ql,
                                    &src_c[..in_len],
                                    1,
                                    fuse,
                                    col8,
                                    rows16,
                                    acc,
                                    QuantDst::Codes(&mut dst_c[..out_len]),
                                )?;
                                domain = Domain::Codes(p);
                            }
                        }
                    } else {
                        debug_assert_eq!(domain, Domain::F32, "float conv fed from code domain");
                        let (src, dst) = ws.pair_mut(*slot, 1 - *slot);
                        conv.forward_into(
                            &src[..in_len],
                            &mut dst[..out_len],
                            &mut col[..conv.col_len()],
                            fuse,
                        )?;
                    }
                    *slot = 1 - *slot;
                    *dims = ActDims::Spatial(conv.output_dims());
                    i += if fuse { 2 } else { 1 };
                }
                Layer::Dense(dense) => {
                    if dims.len() != dense.in_features() {
                        return Err(shape_error("dense", &[dense.in_features()], dims));
                    }
                    let (in_f, out_f) = (dense.in_features(), dense.out_features());
                    if let Some(ql) = qentry {
                        let bufs = qbufs.as_deref_mut().expect("quantized entry implies buffers");
                        let QuantBuffers { codes, xs16, acc, .. } = bufs;
                        let (src_c, dst_c) = crate::quant::code_pair(codes, *slot);
                        if domain == Domain::F32 {
                            quantize_slice(&ws.slot(*slot)[..in_f], &ql.input, &mut src_c[..in_f]);
                        }
                        match ql.out {
                            None => {
                                quant_dense_forward(
                                    ql,
                                    &src_c[..in_f],
                                    in_f,
                                    1,
                                    fuse,
                                    xs16,
                                    acc,
                                    QuantDst::F32(&mut ws.slot_mut(1 - *slot)[..out_f]),
                                );
                                domain = Domain::F32;
                            }
                            Some(p) => {
                                quant_dense_forward(
                                    ql,
                                    &src_c[..in_f],
                                    in_f,
                                    1,
                                    fuse,
                                    xs16,
                                    acc,
                                    QuantDst::Codes(&mut dst_c[..out_f]),
                                );
                                domain = Domain::Codes(p);
                            }
                        }
                    } else {
                        debug_assert_eq!(domain, Domain::F32, "float dense fed from code domain");
                        let (src, dst) = ws.pair_mut(*slot, 1 - *slot);
                        dense.forward_into(&src[..in_f], &mut dst[..out_f], fuse)?;
                    }
                    *slot = 1 - *slot;
                    *dims = ActDims::Flat(out_f);
                    i += if fuse { 2 } else { 1 };
                }
                Layer::Relu(_) => {
                    let len = dims.len();
                    match domain {
                        Domain::F32 => {
                            ie_tensor::relu_slice(&mut ws.slot_mut(*slot)[..len]);
                        }
                        Domain::Codes(p) => {
                            let bufs = qbufs.as_deref_mut().expect("code domain implies buffers");
                            let zp = p.zero_point() as i8;
                            ie_tensor::relu_codes_floor(&mut bufs.codes[*slot][..len], zp);
                        }
                    }
                    i += 1;
                }
                Layer::MaxPool2d(pool) => {
                    let ActDims::Spatial(d) = *dims else {
                        return Err(shape_error("maxpool2d", &[0, 0, 0], dims));
                    };
                    let out_dims = pool.output_dims(&d);
                    let in_len = d.iter().product();
                    let out_len = out_dims.iter().product();
                    match domain {
                        Domain::F32 => {
                            let (src, dst) = ws.pair_mut(*slot, 1 - *slot);
                            pool.forward_slice_into(&src[..in_len], d, &mut dst[..out_len])?;
                        }
                        Domain::Codes(_) => {
                            let bufs = qbufs.as_deref_mut().expect("code domain implies buffers");
                            let (src_c, dst_c) = crate::quant::code_pair(&mut bufs.codes, *slot);
                            pool.forward_codes_into(&src_c[..in_len], d, &mut dst_c[..out_len])?;
                        }
                    }
                    *slot = 1 - *slot;
                    *dims = ActDims::Spatial(out_dims);
                    i += 1;
                }
                Layer::Flatten(_) => {
                    *dims = ActDims::Flat(dims.len());
                    i += 1;
                }
            }
        }
        if domain != Domain::F32 {
            return Err(NnError::InvalidSpec(
                "layer list ended in the code domain (quantized chaining bug)".into(),
            ));
        }
        Ok(())
    }

    /// Evaluates branch `exit` on the cached trunk activation, filling the
    /// per-exit logits/probability buffers.
    fn eval_branch(&mut self, net: &MultiExitNetwork, exit: usize) -> Result<PlannedOutput> {
        // Copy the trunk activation into the branch ping-pong so the trunk
        // stays intact for later incremental continuations.
        let len = self.trunk_dims.len();
        let src = &self.trunk.slot(self.trunk_slot)[..len];
        self.branch.slot_mut(SLOT_A)[..len].copy_from_slice(src);
        let mut slot = SLOT_A;
        let mut dims = self.trunk_dims;
        let quant = self.quant.as_mut().map(|q| (q.model.branch(exit), &mut q.bufs));
        ExecutionPlan::run_layers(
            &net.branches()[exit],
            &mut self.branch,
            &mut self.col,
            &mut slot,
            &mut dims,
            quant,
        )?;
        let classes = self.logits[exit].len();
        if dims.len() != classes {
            return Err(shape_error("branch(logits)", &[classes], &dims));
        }
        let logits_src = &self.branch.slot(slot)[..classes];
        self.logits[exit].copy_from_slice(logits_src);
        softmax_into(&self.logits[exit], &mut self.probs[exit])?;
        let probs = &self.probs[exit];
        let prediction = argmax_slice(probs).expect("exit produces at least one class");
        Ok(PlannedOutput { exit, prediction, confidence: confidence_slice(probs) })
    }

    /// Errors when `net` does not fit this plan's buffers: different exit or
    /// class count, or activation / column scratch requirements exceeding the
    /// plan's capacities. Allocation-free on the success path; the
    /// requirements walk is integer math over the layer specs (≤ ~20 of
    /// them), well under 0.1 % of one planned forward pass.
    fn check_compatible(&self, net: &MultiExitNetwork) -> Result<()> {
        let arch = net.architecture();
        let (max_act, max_col) = buffer_requirements(arch);
        let compatible = self.num_exits == arch.num_exits()
            && self.logits.first().map(Vec::len) == Some(arch.num_classes())
            && max_act <= self.trunk.slot_len(SLOT_A)
            && max_col <= self.col.len()
            && self.quant.as_ref().is_none_or(|q| q.model.matches(net));
        if !compatible {
            return Err(NnError::InvalidSpec(format!(
                "execution plan ({} exits, {} classes, act {}, col {}) does not fit the \
                 network ({} exits, {} classes, act {max_act}, col {max_col})",
                self.num_exits,
                self.logits.first().map(Vec::len).unwrap_or(0),
                self.trunk.slot_len(SLOT_A),
                self.col.len(),
                arch.num_exits(),
                arch.num_classes()
            )));
        }
        Ok(())
    }

    fn forward_to_exit(
        &mut self,
        net: &MultiExitNetwork,
        input: &Tensor,
        exit: usize,
    ) -> Result<PlannedOutput> {
        self.check_compatible(net)?;
        check_exit(net, exit)?;
        let dims = input.dims();
        let mut act_dims = match dims.len() {
            3 => ActDims::Spatial([dims[0], dims[1], dims[2]]),
            _ => ActDims::Flat(input.len()),
        };
        if input.len() > self.trunk.slot_len(SLOT_A) {
            return Err(NnError::InputShapeMismatch {
                layer: "plan(input)".into(),
                expected: vec![self.trunk.slot_len(SLOT_A)],
                actual: vec![input.len()],
            });
        }
        // The trunk buffers are about to be clobbered: invalidate the cached
        // state now and mark it valid again only when the whole pass succeeds,
        // so a failed pass can never leave stale metadata pointing at a
        // half-overwritten activation.
        self.last_exit = None;
        self.segments_done = 0;
        self.trunk.slot_mut(SLOT_A)[..input.len()].copy_from_slice(input.as_slice());
        let mut slot = SLOT_A;
        for (seg, segment) in net.segments()[..=exit].iter().enumerate() {
            let quant = self.quant.as_mut().map(|q| (q.model.segment(seg), &mut q.bufs));
            ExecutionPlan::run_layers(
                segment,
                &mut self.trunk,
                &mut self.col,
                &mut slot,
                &mut act_dims,
                quant,
            )?;
        }
        self.trunk_slot = slot;
        self.trunk_dims = act_dims;
        let out = self.eval_branch(net, exit)?;
        self.segments_done = exit + 1;
        self.last_exit = Some(exit);
        Ok(out)
    }

    fn continue_to_exit(&mut self, net: &MultiExitNetwork, exit: usize) -> Result<PlannedOutput> {
        self.check_compatible(net)?;
        check_exit(net, exit)?;
        let Some(last) = self.last_exit else {
            return Err(NnError::MissingPlannedState);
        };
        if exit <= last {
            return Err(NnError::NonMonotonicExit { current: last, requested: exit });
        }
        let segments_done = self.segments_done;
        // As above: the trunk mutates below, so the cached state is invalid
        // until the continuation completes.
        self.last_exit = None;
        self.segments_done = 0;
        let mut slot = self.trunk_slot;
        let mut dims = self.trunk_dims;
        for (seg, segment) in net.segments()[segments_done..=exit].iter().enumerate() {
            let quant =
                self.quant.as_mut().map(|q| (q.model.segment(segments_done + seg), &mut q.bufs));
            ExecutionPlan::run_layers(
                segment,
                &mut self.trunk,
                &mut self.col,
                &mut slot,
                &mut dims,
                quant,
            )?;
        }
        self.trunk_slot = slot;
        self.trunk_dims = dims;
        let out = self.eval_branch(net, exit)?;
        self.segments_done = exit + 1;
        self.last_exit = Some(exit);
        Ok(out)
    }
}

/// Largest activation and `im2col` column buffer (element counts) any layer
/// of `arch` needs. Shared by plan construction and the per-call
/// compatibility check (for both the single-input and the batched plan);
/// iterates the specs without allocating.
pub(crate) fn buffer_requirements(arch: &MultiExitArchitecture) -> (usize, usize) {
    let mut max_act: usize = arch.input_dims().iter().product();
    let mut max_col = 0usize;
    for spec in arch.all_layers() {
        max_act = max_act.max(spec.output_dims.iter().product());
        if let LayerSpecKind::Conv { in_channels, kernel, .. } = &spec.kind {
            let cols: usize = spec.output_dims[1] * spec.output_dims[2];
            max_col = max_col.max(in_channels * kernel * kernel * cols);
        }
    }
    (max_act, max_col)
}

/// Validates an exit index against `net` (shared with the batched plan).
pub(crate) fn check_exit(net: &MultiExitNetwork, exit: usize) -> Result<()> {
    if exit >= net.num_exits() {
        return Err(NnError::InvalidExit { requested: exit, available: net.num_exits() });
    }
    Ok(())
}

fn shape_error(layer: &str, expected: &[usize], dims: &ActDims) -> NnError {
    let actual = match dims {
        ActDims::Spatial(d) => d.to_vec(),
        ActDims::Flat(n) => vec![*n],
    };
    NnError::InputShapeMismatch { layer: layer.into(), expected: expected.to_vec(), actual }
}

impl MultiExitNetwork {
    /// Builds an [`ExecutionPlan`] sized for this network's architecture.
    pub fn execution_plan(&self) -> ExecutionPlan {
        ExecutionPlan::for_architecture(self.architecture())
    }

    /// Builds a **quantized** [`ExecutionPlan`]: layers covered by `config`
    /// run the i8/i16 integer kernels with this network's weights quantized
    /// and packed at construction (see
    /// [`ExecutionPlan::for_network_quantized`]).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidSpec`] when `config` does not match this
    /// network's compressible layers.
    pub fn execution_plan_quantized(&self, config: &QuantConfig) -> Result<ExecutionPlan> {
        ExecutionPlan::for_network_quantized(self, config)
    }

    /// Planned counterpart of [`MultiExitNetwork::forward_to_exit`]: runs
    /// inference up to (and including) `exit` entirely inside `plan`'s
    /// pre-sized buffers. After the plan's first (warm-up) use this performs
    /// zero heap allocations. Results are bit-identical to the allocating
    /// path; the full logits/probabilities are available from
    /// [`ExecutionPlan::logits`] / [`ExecutionPlan::probs`].
    ///
    /// The plan caches the trunk activation, replacing any previously cached
    /// state, so a later [`MultiExitNetwork::continue_to_exit_with`] resumes
    /// from here.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidExit`] for an unknown exit or a shape error
    /// when the input does not match the architecture.
    pub fn forward_to_exit_with(
        &self,
        plan: &mut ExecutionPlan,
        input: &Tensor,
        exit: usize,
    ) -> Result<PlannedOutput> {
        plan.forward_to_exit(self, input, exit)
    }

    /// Planned counterpart of [`MultiExitNetwork::continue_to_exit`]:
    /// continues the inference cached in `plan` to a strictly deeper exit
    /// without recomputing the shared trunk and without allocating.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MissingPlannedState`] when no planned forward pass
    /// has populated the plan, [`NnError::NonMonotonicExit`] when `exit` is
    /// not deeper than the cached one, or [`NnError::InvalidExit`] when it
    /// does not exist.
    pub fn continue_to_exit_with(
        &self,
        plan: &mut ExecutionPlan,
        exit: usize,
    ) -> Result<PlannedOutput> {
        plan.continue_to_exit(self, exit)
    }

    /// Planned counterpart of [`MultiExitNetwork::forward_all`]: evaluates
    /// every exit on `input`, invoking `visit` with each exit's
    /// [`PlannedOutput`] in order. Allocation-free like the other planned
    /// entry points; per-exit logits/probabilities remain readable from the
    /// plan after the call.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the layers.
    pub fn forward_all_with<F: FnMut(PlannedOutput)>(
        &self,
        plan: &mut ExecutionPlan,
        input: &Tensor,
        mut visit: F,
    ) -> Result<()> {
        let first = plan.forward_to_exit(self, input, 0)?;
        visit(first);
        for exit in 1..self.num_exits() {
            visit(plan.continue_to_exit(self, exit)?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{lenet_multi_exit, tiny_multi_exit};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_net(seed: u64) -> MultiExitNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        MultiExitNetwork::from_architecture(&tiny_multi_exit(3), &mut rng).unwrap()
    }

    #[test]
    fn planned_forward_is_bit_identical_to_allocating_forward() {
        let net = tiny_net(1);
        let mut plan = net.execution_plan();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..4 {
            let x = Tensor::randn(&mut rng, &[1, 8, 8], 0.0, 1.0);
            for exit in 0..net.num_exits() {
                let (reference, _) = net.forward_to_exit(&x, exit).unwrap();
                let planned = net.forward_to_exit_with(&mut plan, &x, exit).unwrap();
                assert_eq!(planned.exit, reference.exit);
                assert_eq!(planned.prediction, reference.prediction);
                assert_eq!(planned.confidence.to_bits(), reference.confidence.to_bits());
                assert_eq!(plan.logits(exit), reference.logits.as_slice());
                assert_eq!(plan.probs(exit), reference.probs.as_slice());
            }
        }
    }

    #[test]
    fn planned_forward_matches_on_the_paper_backbone() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = MultiExitNetwork::from_architecture(&lenet_multi_exit(), &mut rng).unwrap();
        let mut plan = net.execution_plan();
        let x = Tensor::randn(&mut rng, &[3, 32, 32], 0.0, 1.0);
        for exit in 0..3 {
            let (reference, _) = net.forward_to_exit(&x, exit).unwrap();
            let planned = net.forward_to_exit_with(&mut plan, &x, exit).unwrap();
            assert_eq!(planned.prediction, reference.prediction);
            assert_eq!(plan.logits(exit), reference.logits.as_slice());
        }
    }

    #[test]
    fn planned_incremental_matches_allocating_incremental() {
        let net = tiny_net(4);
        let mut plan = net.execution_plan();
        let mut rng = StdRng::seed_from_u64(5);
        let x = Tensor::randn(&mut rng, &[1, 8, 8], 0.0, 1.0);
        let (_, state) = net.forward_to_exit(&x, 0).unwrap();
        let (reference, _) = net.continue_to_exit(&state, 1).unwrap();
        net.forward_to_exit_with(&mut plan, &x, 0).unwrap();
        let planned = net.continue_to_exit_with(&mut plan, 1).unwrap();
        assert_eq!(planned.prediction, reference.prediction);
        assert_eq!(plan.logits(1), reference.logits.as_slice());
        assert_eq!(plan.probs(1), reference.probs.as_slice());
    }

    #[test]
    fn planned_forward_all_visits_every_exit_in_order() {
        let net = tiny_net(6);
        let mut plan = net.execution_plan();
        let mut rng = StdRng::seed_from_u64(7);
        let x = Tensor::randn(&mut rng, &[1, 8, 8], 0.0, 1.0);
        let reference = net.forward_all(&x).unwrap();
        let mut seen = Vec::new();
        net.forward_all_with(&mut plan, &x, |out| seen.push(out)).unwrap();
        assert_eq!(seen.len(), reference.len());
        for (planned, reference) in seen.iter().zip(&reference) {
            assert_eq!(planned.exit, reference.exit);
            assert_eq!(planned.prediction, reference.prediction);
            assert_eq!(plan.probs(planned.exit), reference.probs.as_slice());
        }
    }

    #[test]
    fn planned_errors_mirror_the_allocating_path() {
        let net = tiny_net(8);
        let mut plan = net.execution_plan();
        let x = Tensor::zeros(&[1, 8, 8]);
        assert!(matches!(
            net.forward_to_exit_with(&mut plan, &x, 9),
            Err(NnError::InvalidExit { .. })
        ));
        assert!(matches!(
            net.continue_to_exit_with(&mut plan, 1),
            Err(NnError::MissingPlannedState)
        ));
        net.forward_to_exit_with(&mut plan, &x, 1).unwrap();
        assert!(matches!(
            net.continue_to_exit_with(&mut plan, 0),
            Err(NnError::NonMonotonicExit { .. })
        ));
        // Wrong input shape is rejected by the first conv layer.
        assert!(net.forward_to_exit_with(&mut plan, &Tensor::zeros(&[1, 9, 8]), 0).is_err());
        // The plan remains usable after errors.
        plan.reset();
        assert!(net.forward_to_exit_with(&mut plan, &x, 0).is_ok());
        assert_eq!(plan.last_exit(), Some(0));
        assert_eq!(plan.segments_done(), 1);
    }

    #[test]
    fn failed_forward_invalidates_the_cached_trunk_state() {
        // A failed pass clobbers the trunk buffers before the error surfaces;
        // the cached state must be invalidated so a continuation cannot
        // silently compute from the half-overwritten activation.
        let net = tiny_net(9);
        let mut plan = net.execution_plan();
        let good = Tensor::ones(&[1, 8, 8]);
        net.forward_to_exit_with(&mut plan, &good, 0).unwrap();
        assert_eq!(plan.last_exit(), Some(0));
        let bad = Tensor::zeros(&[1, 9, 8]); // fits the buffer, fails the conv check
        assert!(net.forward_to_exit_with(&mut plan, &bad, 0).is_err());
        assert_eq!(plan.last_exit(), None);
        assert!(matches!(
            net.continue_to_exit_with(&mut plan, 1),
            Err(NnError::MissingPlannedState)
        ));
    }

    #[test]
    fn quantized_plan_is_bit_identical_to_the_fake_quant_reference() {
        use crate::quant::{config_from_bits, fake_quant_logits};
        use ie_tensor::QuantParams;

        let net = tiny_net(20);
        let n = net.architecture().compressible_layers().len();
        // Mixed per-layer kernels: i8, f32, i16, i8, f32 across the canonical
        // order, so float→int and int→float boundaries are all exercised.
        let first = QuantParams::from_range(-3.0, 3.0, 8);
        let act = QuantParams::from_range(0.0, 8.0, 8);
        let entries: Vec<Option<(u8, QuantParams)>> = (0..n)
            .map(|i| match i % 5 {
                0 => Some((8, if i == 0 { first } else { act })),
                1 => None,
                2 => Some((12, act)),
                3 => Some((4, act)),
                _ => None,
            })
            .collect();
        let cfg = config_from_bits(&net, &entries).unwrap();
        let model = crate::quant::QuantizedModel::for_network(&net, &cfg).unwrap();
        let mut plan = net.execution_plan_quantized(&cfg).unwrap();
        assert!(plan.quantized_model().is_some());
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..3 {
            let x = Tensor::randn(&mut rng, &[1, 8, 8], 0.0, 1.0);
            for exit in 0..net.num_exits() {
                let out = net.forward_to_exit_with(&mut plan, &x, exit).unwrap();
                let reference = fake_quant_logits(&net, &model, &x, exit).unwrap();
                let plan_bits: Vec<u32> = plan.logits(exit).iter().map(|v| v.to_bits()).collect();
                let ref_bits: Vec<u32> = reference.iter().map(|v| v.to_bits()).collect();
                assert_eq!(plan_bits, ref_bits, "exit {exit}");
                assert_eq!(out.exit, exit);
            }
            // Incremental continuation reuses the cached f32 trunk.
            net.forward_to_exit_with(&mut plan, &x, 0).unwrap();
            net.continue_to_exit_with(&mut plan, 1).unwrap();
            let reference = fake_quant_logits(&net, &model, &x, 1).unwrap();
            assert_eq!(plan.logits(1), reference.as_slice());
        }
    }

    #[test]
    fn fully_quantized_plan_chains_codes_and_still_matches_the_reference() {
        use crate::quant::{config_from_bits, fake_quant_logits};
        use ie_tensor::QuantParams;

        let net = tiny_net(22);
        let n = net.architecture().compressible_layers().len();
        let first = QuantParams::from_range(-3.0, 3.0, 8);
        let act = QuantParams::from_range(0.0, 8.0, 6);
        let entries: Vec<Option<(u8, QuantParams)>> =
            (0..n).map(|i| Some((8, if i == 0 { first } else { act }))).collect();
        let cfg = config_from_bits(&net, &entries).unwrap();
        let model = crate::quant::QuantizedModel::for_network(&net, &cfg).unwrap();
        let mut plan = net.execution_plan_quantized(&cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let x = Tensor::randn(&mut rng, &[1, 8, 8], 0.0, 1.0);
        for exit in 0..net.num_exits() {
            net.forward_to_exit_with(&mut plan, &x, exit).unwrap();
            let reference = fake_quant_logits(&net, &model, &x, exit).unwrap();
            assert_eq!(plan.logits(exit), reference.as_slice(), "exit {exit}");
        }
    }

    #[test]
    fn quantized_plan_rejects_a_mismatched_network() {
        use crate::quant::config_from_bits;
        use ie_tensor::QuantParams;

        let tiny = tiny_net(24);
        let n = tiny.architecture().compressible_layers().len();
        let entries: Vec<Option<(u8, QuantParams)>> =
            (0..n).map(|_| Some((8, QuantParams::from_range(0.0, 4.0, 8)))).collect();
        let cfg = config_from_bits(&tiny, &entries).unwrap();
        let mut plan = tiny.execution_plan_quantized(&cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(25);
        let lenet = MultiExitNetwork::from_architecture(&lenet_multi_exit(), &mut rng).unwrap();
        let err =
            lenet.forward_to_exit_with(&mut plan, &Tensor::zeros(&[3, 32, 32]), 0).unwrap_err();
        assert!(matches!(err, NnError::InvalidSpec(_)), "got {err:?}");
    }

    #[test]
    fn plan_for_a_smaller_architecture_is_rejected_not_a_panic() {
        // tiny(3 classes, 2 exits) vs lenet (10 classes, 3 exits): exit count
        // differs. Also check the same-exit-count case via class/buffer sizes:
        // a 3-exit plan from lenet against a tiny 2-exit net and vice versa.
        let mut rng = StdRng::seed_from_u64(10);
        let lenet = MultiExitNetwork::from_architecture(&lenet_multi_exit(), &mut rng).unwrap();
        let tiny = tiny_net(10);
        let mut tiny_plan = tiny.execution_plan();
        let err = lenet
            .forward_to_exit_with(&mut tiny_plan, &Tensor::zeros(&[3, 32, 32]), 0)
            .unwrap_err();
        assert!(matches!(err, NnError::InvalidSpec(_)), "got {err:?}");
        // A plan from a bigger architecture with matching exit/class counts
        // would be accepted (capacity check, not equality); the lenet plan
        // still rejects the tiny net because the class counts differ.
        let mut lenet_plan = lenet.execution_plan();
        let err =
            tiny.forward_to_exit_with(&mut lenet_plan, &Tensor::zeros(&[1, 8, 8]), 0).unwrap_err();
        assert!(matches!(err, NnError::InvalidSpec(_)), "got {err:?}");
    }
}
