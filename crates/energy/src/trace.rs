//! Harvested-power traces.

use crate::{EnergyError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Harvested power as a function of time.
///
/// Implementors must return non-negative power (milliwatts) for any time in
/// `[0, duration_s]`; queries beyond the duration wrap around, which lets the
/// runtime loop over a day-long trace for arbitrarily long experiments.
pub trait PowerTrace: std::fmt::Debug + Send + Sync {
    /// Instantaneous harvested power at time `t` seconds, in milliwatts.
    fn power_mw(&self, t_s: f64) -> f64;

    /// Length of the trace in seconds.
    fn duration_s(&self) -> f64;

    /// Harvested energy between `t0` and `t1` (both seconds), in millijoules,
    /// obtained by trapezoidal integration at a 1-second resolution.
    fn energy_mj(&self, t0_s: f64, t1_s: f64) -> f64 {
        if t1_s <= t0_s {
            return 0.0;
        }
        let mut total = 0.0;
        let mut t = t0_s;
        while t < t1_s {
            let step = (t1_s - t).min(1.0);
            let p0 = self.power_mw(t);
            let p1 = self.power_mw(t + step);
            total += 0.5 * (p0 + p1) * step;
            t += step;
        }
        total
    }

    /// Mean harvested power over the whole trace, in milliwatts.
    fn mean_power_mw(&self) -> f64 {
        let d = self.duration_s();
        if d <= 0.0 {
            0.0
        } else {
            self.energy_mj(0.0, d) / d
        }
    }
}

/// A constant-power trace (useful for tests and as a best-case baseline).
#[derive(Debug, Clone, PartialEq)]
pub struct ConstantTrace {
    power_mw: f64,
    duration_s: f64,
}

impl ConstantTrace {
    /// Creates a trace that delivers `power_mw` for `duration_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics if either argument is negative.
    pub fn new(power_mw: f64, duration_s: f64) -> Self {
        assert!(power_mw >= 0.0 && duration_s >= 0.0, "power and duration must be non-negative");
        ConstantTrace { power_mw, duration_s }
    }
}

impl PowerTrace for ConstantTrace {
    fn power_mw(&self, _t_s: f64) -> f64 {
        self.power_mw
    }

    fn duration_s(&self) -> f64 {
        self.duration_s
    }
}

/// Builder for [`SolarTrace`].
#[derive(Debug, Clone)]
pub struct SolarTraceBuilder {
    peak_power_mw: f64,
    duration_s: f64,
    cloud_probability: f64,
    cloud_attenuation: f64,
    noise_fraction: f64,
    seed: u64,
}

impl Default for SolarTraceBuilder {
    fn default() -> Self {
        SolarTraceBuilder {
            peak_power_mw: 2.0,
            duration_s: 24.0 * 3600.0,
            cloud_probability: 0.25,
            cloud_attenuation: 0.15,
            noise_fraction: 0.1,
            seed: 0,
        }
    }
}

impl SolarTraceBuilder {
    /// Peak midday harvested power in milliwatts.
    pub fn peak_power_mw(mut self, p: f64) -> Self {
        self.peak_power_mw = p;
        self
    }

    /// Total trace duration in seconds (default: 24 h).
    pub fn duration_s(mut self, d: f64) -> Self {
        self.duration_s = d;
        self
    }

    /// Probability that any given minute is clouded over.
    pub fn cloud_probability(mut self, p: f64) -> Self {
        self.cloud_probability = p.clamp(0.0, 1.0);
        self
    }

    /// Fraction of the clear-sky power that remains under cloud.
    pub fn cloud_attenuation(mut self, a: f64) -> Self {
        self.cloud_attenuation = a.clamp(0.0, 1.0);
        self
    }

    /// Relative standard deviation of the fast multiplicative noise.
    pub fn noise_fraction(mut self, n: f64) -> Self {
        self.noise_fraction = n.max(0.0);
        self
    }

    /// RNG seed; the same seed always produces the same trace.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Builds the trace by sampling the cloud/noise processes once per minute.
    pub fn build(self) -> SolarTrace {
        let minutes = (self.duration_s / 60.0).ceil() as usize + 1;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut samples = Vec::with_capacity(minutes);
        let mut clouded = false;
        for m in 0..minutes {
            // Cloud state persists with some stickiness so overcast periods last
            // several minutes rather than flickering every sample.
            if rng.gen::<f64>() < 0.2 {
                clouded = rng.gen::<f64>() < self.cloud_probability;
            }
            let t = m as f64 * 60.0;
            // Diurnal clear-sky irradiance: half-sine over the middle of the day,
            // zero at night (first and last quarter of the 24 h cycle).
            let day_fraction = (t / (24.0 * 3600.0)).fract();
            let clear = if (0.25..0.75).contains(&day_fraction) {
                let x = (day_fraction - 0.25) / 0.5;
                (std::f64::consts::PI * x).sin()
            } else {
                0.0
            };
            let cloud_factor = if clouded { self.cloud_attenuation } else { 1.0 };
            let noise = 1.0 + self.noise_fraction * (rng.gen::<f64>() * 2.0 - 1.0);
            samples.push((self.peak_power_mw * clear * cloud_factor * noise).max(0.0));
        }
        SolarTrace { samples, duration_s: self.duration_s }
    }
}

/// A synthetic solar harvesting trace: diurnal half-sine irradiance with
/// sticky cloud attenuation and fast multiplicative noise, sampled per minute.
///
/// This substitutes for the NREL Oak Ridge rotating-shadowband-radiometer
/// profile the paper uses; see `DESIGN.md` for the substitution argument.
#[derive(Debug, Clone, PartialEq)]
pub struct SolarTrace {
    samples: Vec<f64>,
    duration_s: f64,
}

impl SolarTrace {
    /// Starts building a solar trace.
    pub fn builder() -> SolarTraceBuilder {
        SolarTraceBuilder::default()
    }

    /// The per-minute power samples backing the trace.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

impl PowerTrace for SolarTrace {
    fn power_mw(&self, t_s: f64) -> f64 {
        if self.samples.is_empty() || self.duration_s <= 0.0 {
            return 0.0;
        }
        let t = t_s.rem_euclid(self.duration_s);
        let idx = ((t / 60.0) as usize).min(self.samples.len() - 1);
        self.samples[idx]
    }

    fn duration_s(&self) -> f64 {
        self.duration_s
    }
}

/// A kinetic-harvesting style trace: near-zero baseline with short random
/// bursts of power (e.g. footsteps for a wearable).
#[derive(Debug, Clone, PartialEq)]
pub struct KineticBurstTrace {
    samples: Vec<f64>,
    duration_s: f64,
}

impl KineticBurstTrace {
    /// Creates a burst trace of the given duration where each second has the
    /// given probability of carrying a burst of `burst_power_mw`.
    ///
    /// # Panics
    ///
    /// Panics if `duration_s` or `burst_power_mw` is negative.
    pub fn new(duration_s: f64, burst_probability: f64, burst_power_mw: f64, seed: u64) -> Self {
        assert!(duration_s >= 0.0 && burst_power_mw >= 0.0, "negative duration or power");
        let mut rng = StdRng::seed_from_u64(seed);
        let n = duration_s.ceil() as usize + 1;
        let p = burst_probability.clamp(0.0, 1.0);
        let samples = (0..n)
            .map(|_| if rng.gen::<f64>() < p { burst_power_mw } else { 0.02 * burst_power_mw })
            .collect();
        KineticBurstTrace { samples, duration_s }
    }
}

impl PowerTrace for KineticBurstTrace {
    fn power_mw(&self, t_s: f64) -> f64 {
        if self.samples.is_empty() || self.duration_s <= 0.0 {
            return 0.0;
        }
        let t = t_s.rem_euclid(self.duration_s);
        self.samples[(t as usize).min(self.samples.len() - 1)]
    }

    fn duration_s(&self) -> f64 {
        self.duration_s
    }
}

/// A stochastic energy-arrival trace: discrete energy packets arrive as a
/// Poisson process (exponential inter-arrival gaps) and each delivers a fixed
/// power for a short hold time — the ambient-RF / wireless-power-transfer
/// regime of "Energy-Aware Dynamic Neural Inference" (arXiv 2411.02471),
/// where harvested energy shows up in bursts with memoryless timing rather
/// than on a diurnal schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct StochasticArrivalTrace {
    samples: Vec<f64>,
    duration_s: f64,
}

impl StochasticArrivalTrace {
    /// Creates a trace of the given duration where packets arrive with
    /// exponential gaps of mean `mean_gap_s`, each delivering
    /// `packet_power_mw` for `packet_hold_s` seconds (overlapping packets
    /// stack). The trace is sampled per second like the other synthetic
    /// generators, so the same seed always reproduces the same packets.
    ///
    /// # Panics
    ///
    /// Panics if `duration_s` or `packet_power_mw` is negative, or if
    /// `mean_gap_s` is not positive.
    pub fn new(
        duration_s: f64,
        mean_gap_s: f64,
        packet_power_mw: f64,
        packet_hold_s: f64,
        seed: u64,
    ) -> Self {
        assert!(duration_s >= 0.0 && packet_power_mw >= 0.0, "negative duration or power");
        assert!(mean_gap_s > 0.0, "mean inter-arrival gap must be positive");
        let n = duration_s.ceil() as usize + 1;
        let mut samples = vec![0.0; n];
        let hold = packet_hold_s.max(1.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = 0.0;
        loop {
            // Inverse-CDF exponential draw; 1 - u keeps the log argument in
            // (0, 1] so the gap is always finite and positive.
            let u: f64 = rng.gen();
            t += -mean_gap_s * (1.0 - u).ln();
            if t >= duration_s {
                break;
            }
            let start = t as usize;
            let end = ((t + hold).ceil() as usize).min(n);
            for sample in &mut samples[start..end] {
                *sample += packet_power_mw;
            }
        }
        StochasticArrivalTrace { samples, duration_s }
    }
}

impl PowerTrace for StochasticArrivalTrace {
    fn power_mw(&self, t_s: f64) -> f64 {
        if self.samples.is_empty() || self.duration_s <= 0.0 {
            return 0.0;
        }
        let t = t_s.rem_euclid(self.duration_s);
        self.samples[(t as usize).min(self.samples.len() - 1)]
    }

    fn duration_s(&self) -> f64 {
        self.duration_s
    }
}

/// A trace defined by explicit `(time_s, power_mw)` samples with
/// piecewise-linear interpolation. Can be parsed from two-column CSV text, so
/// real measured profiles (e.g. the NREL data) can be dropped in.
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseTrace {
    points: Vec<(f64, f64)>,
}

impl PiecewiseTrace {
    /// Creates a trace from `(time_s, power_mw)` samples.
    ///
    /// # Errors
    ///
    /// Returns [`EnergyError::InvalidTrace`] when fewer than two points are
    /// given, times are not strictly increasing, or any power is negative.
    pub fn from_points(points: Vec<(f64, f64)>) -> Result<Self> {
        if points.len() < 2 {
            return Err(EnergyError::InvalidTrace("need at least two samples".into()));
        }
        for w in points.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(EnergyError::InvalidTrace("times must be strictly increasing".into()));
            }
        }
        if points.iter().any(|&(_, p)| p < 0.0) {
            return Err(EnergyError::InvalidTrace("power must be non-negative".into()));
        }
        Ok(PiecewiseTrace { points })
    }

    /// Parses two-column CSV text (`time_s,power_mw`), ignoring empty lines
    /// and lines starting with `#`.
    ///
    /// # Errors
    ///
    /// Returns [`EnergyError::InvalidTrace`] for malformed rows or traces that
    /// violate [`Self::from_points`]'s requirements.
    pub fn from_csv(text: &str) -> Result<Self> {
        let mut points = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut cols = line.split(',');
            let t = cols.next().and_then(|c| c.trim().parse::<f64>().ok()).ok_or_else(|| {
                EnergyError::InvalidTrace(format!("bad time on line {}", lineno + 1))
            })?;
            let p = cols.next().and_then(|c| c.trim().parse::<f64>().ok()).ok_or_else(|| {
                EnergyError::InvalidTrace(format!("bad power on line {}", lineno + 1))
            })?;
            points.push((t, p));
        }
        Self::from_points(points)
    }
}

impl PowerTrace for PiecewiseTrace {
    fn power_mw(&self, t_s: f64) -> f64 {
        let duration = self.duration_s();
        let t = if duration > 0.0 { t_s.rem_euclid(duration) + self.points[0].0 } else { t_s };
        if t <= self.points[0].0 {
            return self.points[0].1;
        }
        for w in self.points.windows(2) {
            let (t0, p0) = w[0];
            let (t1, p1) = w[1];
            if t <= t1 {
                let alpha = (t - t0) / (t1 - t0);
                return p0 + alpha * (p1 - p0);
            }
        }
        self.points.last().map(|&(_, p)| p).unwrap_or(0.0)
    }

    fn duration_s(&self) -> f64 {
        self.points.last().map(|&(t, _)| t).unwrap_or(0.0)
            - self.points.first().map(|&(t, _)| t).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_trace_integrates_exactly() {
        let t = ConstantTrace::new(2.0, 100.0);
        assert_eq!(t.power_mw(50.0), 2.0);
        assert!((t.energy_mj(0.0, 10.0) - 20.0).abs() < 1e-9);
        assert!((t.mean_power_mw() - 2.0).abs() < 1e-9);
        assert_eq!(t.energy_mj(10.0, 10.0), 0.0);
        assert_eq!(t.energy_mj(10.0, 5.0), 0.0);
    }

    #[test]
    fn solar_trace_is_dark_at_night_and_bright_at_noon() {
        let t = SolarTrace::builder().seed(1).cloud_probability(0.0).build();
        let midnight = t.power_mw(0.0);
        let noon = t.power_mw(12.0 * 3600.0);
        assert!(midnight < 1e-9, "midnight power {midnight}");
        assert!(noon > 1.0, "noon power {noon}");
    }

    #[test]
    fn solar_trace_is_reproducible_and_seed_sensitive() {
        let a = SolarTrace::builder().seed(5).build();
        let b = SolarTrace::builder().seed(5).build();
        let c = SolarTrace::builder().seed(6).build();
        assert_eq!(a.samples(), b.samples());
        assert_ne!(a.samples(), c.samples());
    }

    #[test]
    fn solar_trace_wraps_beyond_duration() {
        let t = SolarTrace::builder().seed(2).duration_s(3600.0).build();
        let p_wrapped = t.power_mw(3600.0 + 30.0);
        let p_direct = t.power_mw(30.0);
        assert!((p_wrapped - p_direct).abs() < 1e-12);
    }

    #[test]
    fn clouds_reduce_harvested_energy() {
        let clear =
            SolarTrace::builder().seed(3).cloud_probability(0.0).noise_fraction(0.0).build();
        let cloudy = SolarTrace::builder()
            .seed(3)
            .cloud_probability(0.9)
            .cloud_attenuation(0.1)
            .noise_fraction(0.0)
            .build();
        let e_clear = clear.energy_mj(0.0, clear.duration_s());
        let e_cloudy = cloudy.energy_mj(0.0, cloudy.duration_s());
        assert!(e_cloudy < e_clear * 0.8, "cloudy {e_cloudy} vs clear {e_clear}");
    }

    #[test]
    fn kinetic_trace_has_bursts() {
        let seed = crate::test_support::seeded_rng(None).gen();
        let t = KineticBurstTrace::new(1000.0, 0.3, 5.0, seed);
        let energies: Vec<f64> = (0..1000).map(|s| t.power_mw(s as f64)).collect();
        let bursts = energies.iter().filter(|&&p| p > 4.0).count();
        assert!(bursts > 100 && bursts < 600, "burst count {bursts}");
    }

    #[test]
    fn randomised_traces_are_reproducible_across_runs() {
        // Trace seeds are drawn through the shared seeded helper, so this test
        // exercises the same construction path twice and must see identical
        // stochastic traces — the reproducibility contract of the whole suite.
        let mut rng = crate::test_support::seeded_rng(None);
        for _ in 0..5 {
            let seed = rng.gen();
            let a = SolarTrace::builder().seed(seed).build();
            let b = SolarTrace::builder().seed(seed).build();
            assert_eq!(a.samples(), b.samples());
            let k1 = KineticBurstTrace::new(500.0, 0.2, 4.0, seed);
            let k2 = KineticBurstTrace::new(500.0, 0.2, 4.0, seed);
            assert_eq!(k1, k2);
        }
    }

    #[test]
    fn stochastic_arrival_trace_is_reproducible_and_seed_sensitive() {
        let a = StochasticArrivalTrace::new(600.0, 20.0, 3.0, 2.0, 9);
        let b = StochasticArrivalTrace::new(600.0, 20.0, 3.0, 2.0, 9);
        let c = StochasticArrivalTrace::new(600.0, 20.0, 3.0, 2.0, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn stochastic_arrival_rate_matches_mean_gap() {
        // ~duration / mean_gap packets, each hold_s × power_mw millijoules.
        let t = StochasticArrivalTrace::new(20_000.0, 25.0, 4.0, 2.0, 3);
        let expected = 20_000.0 / 25.0 * 4.0 * 2.0;
        let total = t.energy_mj(0.0, t.duration_s());
        assert!(
            total > 0.5 * expected && total < 2.0 * expected,
            "harvested {total} mJ vs expected ≈ {expected} mJ"
        );
        // Most seconds are dark: arrivals are sparse bursts, not a baseline.
        let dark = (0..20_000).filter(|&s| t.power_mw(s as f64) == 0.0).count();
        assert!(dark > 10_000, "only {dark} dark seconds");
    }

    #[test]
    fn stochastic_arrival_trace_wraps_beyond_duration() {
        let t = StochasticArrivalTrace::new(500.0, 10.0, 2.0, 1.0, 7);
        assert_eq!(t.power_mw(500.0 + 42.0).to_bits(), t.power_mw(42.0).to_bits());
    }

    #[test]
    fn piecewise_trace_interpolates_linearly() {
        let t = PiecewiseTrace::from_points(vec![(0.0, 0.0), (10.0, 10.0), (20.0, 0.0)]).unwrap();
        assert!((t.power_mw(5.0) - 5.0).abs() < 1e-9);
        assert!((t.power_mw(15.0) - 5.0).abs() < 1e-9);
        assert_eq!(t.duration_s(), 20.0);
    }

    #[test]
    fn piecewise_trace_validates_input() {
        assert!(PiecewiseTrace::from_points(vec![(0.0, 1.0)]).is_err());
        assert!(PiecewiseTrace::from_points(vec![(0.0, 1.0), (0.0, 2.0)]).is_err());
        assert!(PiecewiseTrace::from_points(vec![(0.0, 1.0), (1.0, -2.0)]).is_err());
    }

    #[test]
    fn csv_parsing_skips_comments_and_rejects_garbage() {
        let t = PiecewiseTrace::from_csv("# header\n0,1.0\n\n10,2.0\n20,0.5\n").unwrap();
        assert_eq!(t.duration_s(), 20.0);
        assert!(PiecewiseTrace::from_csv("0,abc\n1,2\n").is_err());
        assert!(PiecewiseTrace::from_csv("justonecolumn\n").is_err());
    }
}
