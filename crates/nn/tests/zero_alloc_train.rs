//! Counting-allocator regression test: a warmed-up planned **training step**
//! (planned backward + gradient application) performs **zero** heap
//! allocations, in both the plain and the fake-quant-in-the-loop modes.
//!
//! The counting is per-thread (a `const`-initialised thread-local `Cell`, so
//! the bookkeeping itself never allocates and never races with the other test
//! threads of the harness), and the whole file contains a single test so no
//! sibling test can interleave allocations on this thread.

use ie_nn::quant::config_from_bits;
use ie_nn::spec::{lenet_multi_exit, tiny_multi_exit};
use ie_nn::MultiExitNetwork;
use ie_tensor::{QuantParams, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAllocator;

// SAFETY: delegates every operation to the system allocator unchanged; the
// only addition is a thread-local counter bump, which cannot allocate or
// unwind.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations_on_this_thread() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

#[test]
fn warmed_planned_training_step_performs_zero_heap_allocations() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut tiny = MultiExitNetwork::from_architecture(&tiny_multi_exit(3), &mut rng).unwrap();
    let mut lenet = MultiExitNetwork::from_architecture(&lenet_multi_exit(), &mut rng).unwrap();
    let tiny_input = Tensor::randn(&mut rng, &[1, 8, 8], 0.0, 1.0);
    let lenet_input = Tensor::randn(&mut rng, &[3, 32, 32], 0.0, 1.0);
    let mut tiny_plan = tiny.backward_plan();
    let mut lenet_plan = lenet.backward_plan();

    // A fake-quant plan on the tiny net: the quantize→dequantize round trip
    // of weights and activations runs inside the measured loop.
    let n = tiny.architecture().compressible_layers().len();
    let act = QuantParams::from_range(-6.0, 6.0, 8);
    let entries: Vec<Option<(u8, QuantParams)>> = (0..n).map(|_| Some((8, act))).collect();
    let cfg = config_from_bits(&tiny, &entries).unwrap();
    let mut fq_plan = tiny.backward_plan_fake_quant(&cfg).unwrap();

    let tiny_weights = [0.3f32, 0.7];
    let skip_first = [0.0f32, 1.0];
    let lenet_weights = [0.2f32, 0.3, 0.5];

    // Warm-up: touch every code path the measured section will run.
    for _ in 0..2 {
        tiny.backward_with(&mut tiny_plan, &tiny_input, 1, &tiny_weights).unwrap();
        tiny.apply_gradients(0.0);
        tiny.backward_with(&mut tiny_plan, &tiny_input, 1, &skip_first).unwrap();
        tiny.apply_gradients(0.0);
        tiny.backward_with(&mut fq_plan, &tiny_input, 1, &tiny_weights).unwrap();
        tiny.apply_gradients(0.0);
        lenet.backward_with(&mut lenet_plan, &lenet_input, 2, &lenet_weights).unwrap();
        lenet.apply_gradients(0.0);
    }

    let before = allocations_on_this_thread();
    let mut checksum = 0.0f64;
    for _ in 0..10 {
        checksum +=
            tiny.backward_with(&mut tiny_plan, &tiny_input, 1, &tiny_weights).unwrap() as f64;
        tiny.apply_gradients(0.0);
        // A zero-weighted exit (skipped branch) stays allocation-free too.
        checksum += tiny.backward_with(&mut tiny_plan, &tiny_input, 1, &skip_first).unwrap() as f64;
        tiny.apply_gradients(0.0);
        // Fake-quant-in-the-loop.
        checksum += tiny.backward_with(&mut fq_plan, &tiny_input, 1, &tiny_weights).unwrap() as f64;
        tiny.apply_gradients(0.0);
        // The full paper backbone.
        checksum +=
            lenet.backward_with(&mut lenet_plan, &lenet_input, 2, &lenet_weights).unwrap() as f64;
        lenet.apply_gradients(0.0);
    }
    let after = allocations_on_this_thread();

    assert_eq!(
        after - before,
        0,
        "warmed planned training steps must not allocate (checksum {checksum})"
    );
}
