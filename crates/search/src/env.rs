use crate::Result;
use ie_compress::{CalibratedAccuracyModel, CompressionPolicy, PolicyEvaluator};
use ie_core::policies::GreedyAffordablePolicy;
use ie_core::{DeployedModel, EventLoopSimulator, ExperimentConfig};
use ie_nn::spec::CompressibleLayer;

/// Which execution backend scores a candidate policy's accuracy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionBackend {
    /// Fake-quant `f32`: weights take the quantize→dequantize round trip and
    /// inference runs the float kernels (the historical behaviour).
    #[default]
    FakeQuantF32,
    /// True integer execution: ≤8/≤16-bit layers run the i8/i16 GEMM with
    /// requantization epilogues, so the search's accuracy/latency signal
    /// reflects MCU-class integer arithmetic (estimators without a real
    /// network fall back to their analytical model).
    QuantizedInteger,
}

/// How the accuracy part of the reward is computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RewardMode {
    /// The paper's exit-guided, power-trace-aware reward:
    /// `R_acc = Σ p_i · Acc_i` with the exit-selection percentages `p_i`
    /// measured by simulating the event sequence under the candidate policy
    /// (missed events contribute zero).
    ExitGuided,
    /// Conventional compression reward that only looks at the final exit's
    /// accuracy (the ablation the paper argues against).
    FinalExitOnly,
}

/// Everything the search learns about one candidate policy.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyOutcome {
    /// The evaluated (snapped) policy.
    pub policy: CompressionPolicy,
    /// Per-exit FLOPs, accuracy and the size/FLOPs totals.
    pub profile: ie_compress::CompressedProfile,
    /// Fraction of events whose final result came from each exit.
    pub exit_fractions: Vec<f64>,
    /// Fraction of events missed.
    pub missed_fraction: f64,
    /// The accuracy part of the reward (`R_acc`).
    pub accuracy_reward: f64,
    /// Reward seen by the pruning agent (Eq. 11).
    pub prune_reward: f64,
    /// Reward seen by the quantization agent (Eq. 12).
    pub quant_reward: f64,
    /// Whether both the FLOPs and the size constraint are met.
    pub feasible: bool,
    /// IEpmJ of the candidate under the greedy static exit selection.
    pub ie_pmj: f64,
}

/// The compression-search environment: evaluates candidate policies under the
/// EH power trace and event distribution and produces the exit-guided rewards.
#[derive(Debug)]
pub struct CompressionEnv {
    config: ExperimentConfig,
    evaluator: PolicyEvaluator,
    layers: Vec<CompressibleLayer>,
    reward_mode: RewardMode,
    backend: ExecutionBackend,
    lambda_prune: f64,
    lambda_quant: f64,
}

impl CompressionEnv {
    /// Creates an environment for the configured experiment using the
    /// calibrated accuracy model.
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration is invalid.
    pub fn new(config: &ExperimentConfig, reward_mode: RewardMode) -> Result<Self> {
        config.validate()?;
        let evaluator = PolicyEvaluator::new(
            &config.architecture,
            CalibratedAccuracyModel::for_paper_backbone(),
        );
        let layers = config.architecture.compressible_layers();
        Ok(CompressionEnv {
            config: config.clone(),
            evaluator,
            layers,
            reward_mode,
            backend: ExecutionBackend::default(),
            lambda_prune: 1.0,
            lambda_quant: 1.0,
        })
    }

    /// Overrides the reward scaling factors λ1 (pruning) and λ2 (quantization).
    pub fn with_reward_scales(mut self, lambda_prune: f64, lambda_quant: f64) -> Self {
        self.lambda_prune = lambda_prune;
        self.lambda_quant = lambda_quant;
        self
    }

    /// Selects the execution backend that scores candidate policies (see
    /// [`ExecutionBackend`]). The default is the fake-quant `f32` path.
    pub fn with_backend(mut self, backend: ExecutionBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The execution backend in use.
    pub fn backend(&self) -> ExecutionBackend {
        self.backend
    }

    /// The experiment configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// The compressible layers in canonical order.
    pub fn layers(&self) -> &[CompressibleLayer] {
        &self.layers
    }

    /// Number of compressible layers (episode length).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Number of exits.
    pub fn num_exits(&self) -> usize {
        self.config.architecture.num_exits()
    }

    /// The reward mode in use.
    pub fn reward_mode(&self) -> RewardMode {
        self.reward_mode
    }

    /// Evaluates a candidate policy: cost/accuracy profile, power-trace exit
    /// selection statistics and the two agents' rewards.
    ///
    /// # Errors
    ///
    /// Propagates evaluation and simulation errors.
    pub fn evaluate(&self, policy: &CompressionPolicy) -> Result<PolicyOutcome> {
        let snapped = policy.snapped();
        // Whole-policy scoring goes through the batched evaluator: estimators
        // that run a real calibration set shard it across worker threads (one
        // `BatchPlan` per worker, pooled across candidates), and analytic
        // estimators fall back to the plain path. Results are identical
        // either way. The integer backend instead runs the quantized plans,
        // so the reward reflects true i8/i16 arithmetic.
        let profile = match self.backend {
            ExecutionBackend::FakeQuantF32 => self.evaluator.evaluate_batched(&snapped)?,
            ExecutionBackend::QuantizedInteger => self.evaluator.evaluate_quantized(&snapped)?,
        };
        let model = DeployedModel::new(profile.clone(), self.config.cost_model());
        let mut selection_policy = GreedyAffordablePolicy::new();
        let report = EventLoopSimulator::new(&self.config).run(&model, &mut selection_policy)?;
        let exit_fractions = report.exit_fractions();
        let missed_fraction = report.missed_fraction();

        let accuracy_reward = match self.reward_mode {
            RewardMode::ExitGuided => profile.expected_accuracy(&exit_fractions),
            RewardMode::FinalExitOnly => {
                *profile.exit_accuracy.last().expect("profiles always have at least one exit")
            }
        };

        let flops_ok = profile.total_flops <= self.config.flops_target;
        let size_ok = profile.model_size_bytes <= self.config.size_target_bytes;
        let prune_reward =
            if flops_ok { self.lambda_prune * accuracy_reward } else { -self.lambda_prune };
        let quant_reward =
            if size_ok { self.lambda_quant * accuracy_reward } else { -self.lambda_quant };

        Ok(PolicyOutcome {
            policy: snapped,
            profile,
            exit_fractions,
            missed_fraction,
            accuracy_reward,
            prune_reward,
            quant_reward,
            feasible: flops_ok && size_ok,
            ie_pmj: report.ie_pmj(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ie_compress::LayerPolicy;

    fn env() -> CompressionEnv {
        CompressionEnv::new(&ExperimentConfig::small_test(), RewardMode::ExitGuided).unwrap()
    }

    fn aggressive_policy(env: &CompressionEnv) -> CompressionPolicy {
        env.layers()
            .iter()
            .map(|l| {
                if l.is_conv {
                    if l.first_exit == 0 {
                        LayerPolicy::new(0.5, 8, 8).unwrap()
                    } else {
                        LayerPolicy::new(0.25, 4, 8).unwrap()
                    }
                } else if l.weight_params > 20_000 {
                    LayerPolicy::new(0.35, 1, 8).unwrap()
                } else {
                    LayerPolicy::new(0.5, 2, 8).unwrap()
                }
            })
            .collect()
    }

    #[test]
    fn full_precision_violates_both_constraints() {
        let env = env();
        let outcome = env.evaluate(&CompressionPolicy::full_precision(env.num_layers())).unwrap();
        assert!(!outcome.feasible);
        assert_eq!(outcome.prune_reward, -1.0);
        assert_eq!(outcome.quant_reward, -1.0);
        assert!(outcome.accuracy_reward > 0.0, "accuracy reward itself is still positive");
    }

    #[test]
    fn a_compressed_policy_is_feasible_and_rewarded() {
        let env = env();
        let outcome = env.evaluate(&aggressive_policy(&env)).unwrap();
        assert!(outcome.feasible, "profile: {:?}", outcome.profile.model_size_bytes);
        assert!(outcome.prune_reward > 0.0 && outcome.quant_reward > 0.0);
        assert!(outcome.accuracy_reward > 0.3);
        assert!(outcome.ie_pmj > 0.0);
        let total: f64 = outcome.exit_fractions.iter().sum::<f64>() + outcome.missed_fraction;
        assert!((total - 1.0).abs() < 1e-9, "fractions sum to one: {total}");
    }

    #[test]
    fn exit_guided_reward_differs_from_final_exit_reward() {
        let config = ExperimentConfig::small_test();
        let exit_guided = CompressionEnv::new(&config, RewardMode::ExitGuided).unwrap();
        let final_only = CompressionEnv::new(&config, RewardMode::FinalExitOnly).unwrap();
        let policy = aggressive_policy(&exit_guided);
        let a = exit_guided.evaluate(&policy).unwrap();
        let b = final_only.evaluate(&policy).unwrap();
        // The final-exit reward ignores missed events and early exits, so it is
        // at least as large as the exit-guided reward.
        assert!(b.accuracy_reward >= a.accuracy_reward);
        assert_eq!(exit_guided.reward_mode(), RewardMode::ExitGuided);
    }

    #[test]
    fn integer_backend_matches_fake_quant_for_the_analytic_estimator() {
        // The default env uses the calibrated analytical accuracy model,
        // which has no real network to run: the integer backend must fall
        // back to identical rewards (the flag only changes empirical setups).
        let config = ExperimentConfig::small_test();
        let fake = CompressionEnv::new(&config, RewardMode::ExitGuided).unwrap();
        let integer = CompressionEnv::new(&config, RewardMode::ExitGuided)
            .unwrap()
            .with_backend(ExecutionBackend::QuantizedInteger);
        assert_eq!(integer.backend(), ExecutionBackend::QuantizedInteger);
        assert_eq!(fake.backend(), ExecutionBackend::FakeQuantF32);
        let policy = aggressive_policy(&fake);
        let a = fake.evaluate(&policy).unwrap();
        let b = integer.evaluate(&policy).unwrap();
        assert_eq!(a.profile, b.profile);
        assert_eq!(a.accuracy_reward, b.accuracy_reward);
    }

    #[test]
    fn reward_scales_are_applied() {
        let env = CompressionEnv::new(&ExperimentConfig::small_test(), RewardMode::ExitGuided)
            .unwrap()
            .with_reward_scales(2.0, 0.5);
        let outcome = env.evaluate(&CompressionPolicy::full_precision(env.num_layers())).unwrap();
        assert_eq!(outcome.prune_reward, -2.0);
        assert_eq!(outcome.quant_reward, -0.5);
    }
}
