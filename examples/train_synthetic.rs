//! End-to-end run on a *real* trainable network: train the tiny multi-exit CNN
//! on the built-in synthetic texture dataset, measure per-exit accuracy
//! empirically, compress it with a nonuniform policy, and compare the measured
//! accuracy of the compressed exits.
//!
//! This exercises the same pipeline as the paper-scale experiments but with
//! the [`ie_compress::EmpiricalAccuracyEstimator`] instead of the calibrated
//! analytical model, proving that nothing in the flow depends on the shortcut.
//!
//! ```text
//! cargo run --release --example train_synthetic
//! ```

use intermittent_multiexit::compress::{
    CompressionPolicy, EmpiricalAccuracyEstimator, ExitAccuracyEstimator, LayerPolicy,
    PolicyEvaluator,
};
use intermittent_multiexit::nn::dataset::SyntheticDataset;
use intermittent_multiexit::nn::spec::tiny_multi_exit;
use intermittent_multiexit::nn::train::{train, TrainConfig};
use intermittent_multiexit::nn::MultiExitNetwork;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Data and architecture.
    let data = SyntheticDataset::generate(4, 8, 400, 0.1, 42);
    let arch = tiny_multi_exit(4);
    let mut rng = StdRng::seed_from_u64(7);
    let mut network = MultiExitNetwork::from_architecture(&arch, &mut rng)?;
    println!(
        "tiny multi-exit network: {} parameters, exits at {:?} FLOPs",
        network.parameter_count(),
        arch.exit_flops()
    );

    // 2. Train with the joint multi-exit objective.
    let mut config = TrainConfig::for_exits(arch.num_exits());
    config.epochs = 12;
    config.learning_rate = 0.1;
    let history = train(&mut network, data.train(), data.test(), &config)?;
    for stats in history.iter().step_by(3) {
        println!(
            "epoch {:>2}: loss {:.3}, exit accuracy {:?}",
            stats.epoch,
            stats.mean_loss,
            stats.exit_accuracy.iter().map(|a| format!("{:.1}%", a * 100.0)).collect::<Vec<_>>()
        );
    }

    // 3. Measure the effect of compression on the real weights.
    let estimator = EmpiricalAccuracyEstimator::new(network, data.test().to_vec());
    let layers = arch.compressible_layers();
    let full =
        estimator.exit_accuracy(&layers, &CompressionPolicy::full_precision(layers.len()))?;
    let gentle: CompressionPolicy =
        layers.iter().map(|_| LayerPolicy::new(0.8, 8, 8).expect("valid")).collect();
    let harsh: CompressionPolicy =
        layers.iter().map(|_| LayerPolicy::new(0.25, 2, 8).expect("valid")).collect();
    let gentle_acc = estimator.exit_accuracy(&layers, &gentle)?;
    let harsh_acc = estimator.exit_accuracy(&layers, &harsh)?;
    println!("\nmeasured exit accuracy on held-out data:");
    println!("  full precision      : {full:?}");
    println!("  gentle (0.8, 8-bit) : {gentle_acc:?}");
    println!("  harsh  (0.25, 2-bit): {harsh_acc:?}");

    // 4. The same estimator plugs into the cost/accuracy evaluator used by the
    //    compression search.
    let evaluator = PolicyEvaluator::new(&arch, estimator);
    let profile = evaluator.evaluate(&gentle)?;
    println!(
        "\ngentle policy deployed: {:.0} KFLOPs to the final exit, {} bytes of weights",
        *profile.exit_flops.last().expect("has exits") as f64 / 1e3,
        profile.model_size_bytes
    );
    Ok(())
}
