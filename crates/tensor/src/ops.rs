//! Element-wise arithmetic between tensors and scalars.

use crate::{Result, Tensor, TensorError};

impl Tensor {
    fn check_same_shape(&self, other: &Tensor) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        Ok(())
    }

    /// Element-wise sum of two tensors of identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.check_same_shape(other)?;
        Ok(self.zip_with(other, |a, b| a + b))
    }

    /// Element-wise difference of two tensors of identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.check_same_shape(other)?;
        Ok(self.zip_with(other, |a, b| a - b))
    }

    /// Element-wise (Hadamard) product of two tensors of identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.check_same_shape(other)?;
        Ok(self.zip_with(other, |a, b| a * b))
    }

    /// Adds `other * scale` to `self` in place (axpy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add_scaled_inplace(&mut self, other: &Tensor, scale: f32) -> Result<()> {
        self.check_same_shape(other)?;
        for (a, b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += scale * b;
        }
        Ok(())
    }

    /// Multiplies every element by a scalar, returning a new tensor.
    pub fn scale(&self, factor: f32) -> Tensor {
        self.map(|x| x * factor)
    }

    /// Adds a scalar to every element, returning a new tensor.
    pub fn add_scalar(&self, value: f32) -> Tensor {
        self.map(|x| x + value)
    }

    /// Applies the rectified linear unit (`max(0, x)`).
    pub fn relu(&self) -> Tensor {
        self.map(|x| x.max(0.0))
    }

    /// Applies the hyperbolic tangent element-wise.
    pub fn tanh(&self) -> Tensor {
        self.map(f32::tanh)
    }

    /// Applies the logistic sigmoid element-wise.
    pub fn sigmoid(&self) -> Tensor {
        self.map(|x| 1.0 / (1.0 + (-x).exp()))
    }

    /// Clamps every element into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|x| x.clamp(lo, hi))
    }

    /// Combines two same-shaped tensors element-wise with `f`.
    ///
    /// # Panics
    ///
    /// Debug-asserts that shapes match; public callers go through the checked
    /// arithmetic methods above.
    pub(crate) fn zip_with<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, f: F) -> Tensor {
        debug_assert_eq!(self.shape(), other.shape());
        let data = self.as_slice().iter().zip(other.as_slice()).map(|(&a, &b)| f(a, b)).collect();
        Tensor::from_vec(data, self.dims()).expect("zip_with preserves shape")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_vec(v.to_vec(), &[v.len()]).unwrap()
    }

    #[test]
    fn add_sub_mul_elementwise() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn mismatched_shapes_error() {
        let a = t(&[1.0, 2.0]);
        let b = Tensor::zeros(&[3]);
        assert!(a.add(&b).is_err());
        assert!(a.sub(&b).is_err());
        assert!(a.mul(&b).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t(&[1.0, 1.0]);
        let g = t(&[2.0, -4.0]);
        a.add_scaled_inplace(&g, 0.5).unwrap();
        assert_eq!(a.as_slice(), &[2.0, -1.0]);
    }

    #[test]
    fn activations_behave() {
        let x = t(&[-1.0, 0.0, 2.0]);
        assert_eq!(x.relu().as_slice(), &[0.0, 0.0, 2.0]);
        let s = x.sigmoid();
        assert!((s.as_slice()[1] - 0.5).abs() < 1e-6);
        assert!(s.as_slice().iter().all(|v| (0.0..=1.0).contains(v)));
        let c = x.clamp(-0.5, 1.0);
        assert_eq!(c.as_slice(), &[-0.5, 0.0, 1.0]);
        let th = x.tanh();
        assert!(th.as_slice()[2] > 0.9 && th.as_slice()[2] < 1.0);
    }

    #[test]
    fn scalar_ops() {
        let x = t(&[1.0, 2.0]);
        assert_eq!(x.scale(3.0).as_slice(), &[3.0, 6.0]);
        assert_eq!(x.add_scalar(-1.0).as_slice(), &[0.0, 1.0]);
    }
}
