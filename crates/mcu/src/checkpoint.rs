//! Atomic two-bank (A/B) checkpoint records over [`NonvolatileMemory`].
//!
//! A single checkpoint cell is not crash-safe: a power cut partway through the
//! NV write leaves a torn record and the device wakes up with no valid
//! progress at all. The classic fix — used by FRAM intermittent runtimes such
//! as SONIC/Alpaca — is to alternate writes between two banks and stamp each
//! record with a CRC and a monotonically increasing generation counter. A tear
//! can only ever corrupt the bank being written; the other bank still holds
//! the previous generation, so recovery falls back exactly one committed
//! checkpoint and never observes a generation regression.
//!
//! Record layout (32 bytes, little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic "IECP"
//! 4       8     generation (u64, strictly increasing per durable commit)
//! 12      4     next_task  (u32, index of the first task NOT yet executed)
//! 16      1     flags      (bit 0: inference complete)
//! 17      8     output digest (u64, running FNV-style digest of task outputs)
//! 25      3     padding (zero)
//! 28      4     CRC-32 (IEEE) over bytes 0..28
//! ```

use crate::{NonvolatileMemory, Result};

/// Size of one encoded checkpoint record in bytes.
pub const RECORD_BYTES: usize = 32;

const MAGIC: [u8; 4] = *b"IECP";
const FLAG_DONE: u8 = 0b0000_0001;
const CRC_OFFSET: usize = RECORD_BYTES - 4;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
///
/// Bitwise and table-free on purpose: records are 28 bytes, so throughput is
/// irrelevant and the implementation stays small enough to audit at a glance.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// One decoded checkpoint record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointRecord {
    /// Strictly increasing per durable commit; recovery picks the newest.
    pub generation: u64,
    /// Index of the first task that has **not** yet executed.
    pub next_task: u32,
    /// Whether the inference this record belongs to ran to completion.
    pub done: bool,
    /// Running output digest at the point this record was committed.
    pub digest: u64,
}

impl CheckpointRecord {
    /// Encodes the record into its 32-byte on-NV representation.
    pub fn encode(&self) -> [u8; RECORD_BYTES] {
        let mut buf = [0u8; RECORD_BYTES];
        buf[0..4].copy_from_slice(&MAGIC);
        buf[4..12].copy_from_slice(&self.generation.to_le_bytes());
        buf[12..16].copy_from_slice(&self.next_task.to_le_bytes());
        buf[16] = if self.done { FLAG_DONE } else { 0 };
        buf[17..25].copy_from_slice(&self.digest.to_le_bytes());
        let crc = crc32(&buf[..CRC_OFFSET]);
        buf[CRC_OFFSET..].copy_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Decodes and validates a record; `None` for anything torn, truncated,
    /// mis-tagged, or failing the CRC.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != RECORD_BYTES || bytes[0..4] != MAGIC {
            return None;
        }
        let stored = u32::from_le_bytes(bytes[CRC_OFFSET..].try_into().ok()?);
        if crc32(&bytes[..CRC_OFFSET]) != stored {
            return None;
        }
        Some(CheckpointRecord {
            generation: u64::from_le_bytes(bytes[4..12].try_into().ok()?),
            next_task: u32::from_le_bytes(bytes[12..16].try_into().ok()?),
            done: bytes[16] & FLAG_DONE != 0,
            digest: u64::from_le_bytes(bytes[17..25].try_into().ok()?),
        })
    }
}

/// Two-bank atomic checkpoint cell.
///
/// `commit` always targets the bank that does **not** hold the newest valid
/// record, so the newest durable generation is never overwritten in place. A
/// torn commit therefore only ever destroys the *stale* bank (two generations
/// old); `recover` still finds the previous generation in the other bank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwoBankCheckpoint {
    bank_a: String,
    bank_b: String,
}

impl Default for TwoBankCheckpoint {
    fn default() -> Self {
        Self::new("ckpt")
    }
}

impl TwoBankCheckpoint {
    /// Creates a checkpoint cell whose banks are keyed `{prefix}-a` /
    /// `{prefix}-b` in the NV store.
    pub fn new(prefix: &str) -> Self {
        TwoBankCheckpoint { bank_a: format!("{prefix}-a"), bank_b: format!("{prefix}-b") }
    }

    /// Total NV bytes the two banks occupy once both have been written.
    pub fn footprint_bytes(&self) -> usize {
        2 * RECORD_BYTES
    }

    /// Decodes both banks and returns each bank's valid record, if any.
    fn banks(&self, nv: &NonvolatileMemory) -> [Option<CheckpointRecord>; 2] {
        [
            nv.read(&self.bank_a).and_then(CheckpointRecord::decode),
            nv.read(&self.bank_b).and_then(CheckpointRecord::decode),
        ]
    }

    /// The key of the bank the next commit must target: the one *not* holding
    /// the newest valid record.
    fn target_bank(&self, nv: &NonvolatileMemory) -> &str {
        match self.banks(nv) {
            [Some(a), Some(b)] => {
                if a.generation >= b.generation {
                    &self.bank_b
                } else {
                    &self.bank_a
                }
            }
            [Some(_), None] => &self.bank_b,
            _ => &self.bank_a,
        }
    }

    /// Durably commits `record` into the stale bank.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::McuError::NonvolatileFull`] if the store cannot
    /// hold both banks.
    pub fn commit(&self, nv: &mut NonvolatileMemory, record: &CheckpointRecord) -> Result<()> {
        let key = self.target_bank(nv).to_string();
        nv.write(&key, &record.encode())
    }

    /// Commits `record` but tears the NV write after `committed` bytes,
    /// simulating a power cut mid-write (see
    /// [`NonvolatileMemory::write_torn`]). `committed >= RECORD_BYTES` is a
    /// complete write.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::McuError::NonvolatileFull`] exactly as [`Self::commit`].
    pub fn commit_torn(
        &self,
        nv: &mut NonvolatileMemory,
        record: &CheckpointRecord,
        committed: usize,
    ) -> Result<()> {
        let key = self.target_bank(nv).to_string();
        nv.write_torn(&key, &record.encode(), committed)
    }

    /// Recovers the newest valid record across both banks, or `None` when
    /// neither bank decodes (fresh device, or both torn).
    pub fn recover(&self, nv: &NonvolatileMemory) -> Option<CheckpointRecord> {
        let [a, b] = self.banks(nv);
        match (a, b) {
            (Some(a), Some(b)) => Some(if a.generation >= b.generation { a } else { b }),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(generation: u64, next_task: u32) -> CheckpointRecord {
        CheckpointRecord { generation, next_task, done: false, digest: 0xDEAD_BEEF_CAFE_F00D }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let r = CheckpointRecord {
            generation: u64::MAX - 3,
            next_task: 17,
            done: true,
            digest: 0x0123_4567_89AB_CDEF,
        };
        assert_eq!(CheckpointRecord::decode(&r.encode()), Some(r));
    }

    #[test]
    fn any_single_byte_corruption_is_detected() {
        let bytes = record(9, 4).encode();
        for i in 0..RECORD_BYTES {
            let mut torn = bytes;
            torn[i] ^= 0xA5;
            assert_eq!(CheckpointRecord::decode(&torn), None, "flip at byte {i} undetected");
        }
        assert!(CheckpointRecord::decode(&bytes[..RECORD_BYTES - 1]).is_none());
    }

    #[test]
    fn commit_alternates_banks_and_recover_picks_newest() {
        let ckpt = TwoBankCheckpoint::default();
        let mut nv = NonvolatileMemory::new(256);
        assert_eq!(ckpt.recover(&nv), None);

        ckpt.commit(&mut nv, &record(1, 1)).unwrap();
        assert_eq!(ckpt.recover(&nv).unwrap().generation, 1);
        ckpt.commit(&mut nv, &record(2, 2)).unwrap();
        assert_eq!(ckpt.recover(&nv).unwrap().generation, 2);
        ckpt.commit(&mut nv, &record(3, 3)).unwrap();
        assert_eq!(ckpt.recover(&nv).unwrap().generation, 3);
        // Three commits across two banks: both banks hold valid records and
        // the stale one is exactly one generation behind.
        let mut gens: Vec<u64> = [nv.read("ckpt-a"), nv.read("ckpt-b")]
            .into_iter()
            .map(|b| CheckpointRecord::decode(b.unwrap()).unwrap().generation)
            .collect();
        gens.sort_unstable();
        assert_eq!(gens, vec![2, 3]);
    }

    #[test]
    fn torn_commit_falls_back_one_generation() {
        let ckpt = TwoBankCheckpoint::default();
        let mut nv = NonvolatileMemory::new(256);
        ckpt.commit(&mut nv, &record(1, 1)).unwrap();
        ckpt.commit(&mut nv, &record(2, 2)).unwrap();
        for committed in 0..RECORD_BYTES {
            let mut nv = nv.clone();
            ckpt.commit_torn(&mut nv, &record(3, 3), committed).unwrap();
            let rec = ckpt.recover(&nv).expect("surviving bank");
            assert_eq!(rec.generation, 2, "tear after {committed} bytes");
            assert_eq!(rec.next_task, 2);
        }
        // A "tear" at or past the record length is a complete write.
        ckpt.commit_torn(&mut nv, &record(3, 3), RECORD_BYTES).unwrap();
        assert_eq!(ckpt.recover(&nv).unwrap().generation, 3);
    }

    #[test]
    fn recover_never_regresses_under_repeated_torn_commits() {
        let ckpt = TwoBankCheckpoint::default();
        let mut nv = NonvolatileMemory::new(256);
        ckpt.commit(&mut nv, &record(1, 1)).unwrap();
        let mut newest = 1u64;
        for attempt in 0..40u64 {
            let next = record(newest + 1, (newest + 1) as u32);
            if attempt % 3 == 0 {
                // Torn attempt: durable state must stay at `newest`.
                ckpt.commit_torn(&mut nv, &next, (attempt as usize * 7) % RECORD_BYTES).unwrap();
            } else {
                ckpt.commit(&mut nv, &next).unwrap();
                newest += 1;
            }
            let rec = ckpt.recover(&nv).expect("at least one valid bank");
            assert_eq!(rec.generation, newest);
        }
    }
}
