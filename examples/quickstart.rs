//! Quickstart: compress the paper's multi-exit backbone, deploy it onto the
//! MCU model and simulate one day of event-triggered intermittent inference.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use intermittent_multiexit::baselines::{BaselineNetwork, BaselineRunner};
use intermittent_multiexit::core::policies::GreedyAffordablePolicy;
use intermittent_multiexit::core::{DeployedModel, EventLoopSimulator, ExperimentConfig};
use intermittent_multiexit::runtime::{AdaptationConfig, RuntimeAdaptation};
use intermittent_multiexit::search::{
    CompressionEnv, DdpgCompressionSearch, RewardMode, SearchConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The environment of Section V-A: 500 events over a day-long solar
    //    trace, an MSP432-class MCU and the 1.15 M-FLOP / 16 KB targets.
    let config = ExperimentConfig::paper_default();
    println!(
        "backbone: {} exits, {:.0} KB at fp32 (MCU offers {} KB)",
        config.architecture.num_exits(),
        config.architecture.model_size_bytes(32) as f64 / 1024.0,
        config.device.weight_storage_bytes() / 1024
    );

    // 2. Phase 1 — power-trace-aware, exit-guided nonuniform compression.
    let env = CompressionEnv::new(&config, RewardMode::ExitGuided)?;
    let search = DdpgCompressionSearch::new(SearchConfig {
        episodes: 40,
        warmup_episodes: 10,
        ..SearchConfig::default()
    });
    let result = search.run(&env)?;
    let outcome = &result.best_outcome;
    println!(
        "\nsearch: best policy feasible={} | {:.3} M network FLOPs | {:.1} KB | exit accuracies {:?}",
        outcome.feasible,
        outcome.profile.total_flops as f64 / 1e6,
        outcome.profile.model_size_bytes as f64 / 1024.0,
        outcome
            .profile
            .exit_accuracy
            .iter()
            .map(|a| format!("{:.1}%", a * 100.0))
            .collect::<Vec<_>>()
    );

    // 3. Deploy and run with the simple greedy exit selection.
    let deployed = DeployedModel::new(outcome.profile.clone(), config.cost_model());
    let greedy_report =
        EventLoopSimulator::new(&config).run(&deployed, &mut GreedyAffordablePolicy::new())?;
    println!(
        "\ngreedy runtime: IEpmJ {:.3}, accuracy over all events {:.1}%, {} of {} events processed",
        greedy_report.ie_pmj(),
        greedy_report.accuracy_all_events() * 100.0,
        greedy_report.processed_events,
        greedy_report.total_events
    );

    // 4. Phase 2 — runtime Q-learning exit selection with incremental inference.
    let adaptation = RuntimeAdaptation::new(AdaptationConfig { episodes: 8, ..Default::default() })
        .run(&config, &deployed)?;
    println!(
        "q-learning runtime: IEpmJ {:.3}, accuracy over all events {:.1}% (static LUT {:.1}%)",
        adaptation.final_report.ie_pmj(),
        adaptation.final_report.accuracy_all_events() * 100.0,
        adaptation.static_accuracy * 100.0
    );

    // 5. Compare against the SONIC-style single-exit baseline.
    let sonic = BaselineRunner::new(&config).run(&BaselineNetwork::sonic_net())?;
    println!(
        "\nSonicNet baseline: IEpmJ {:.3}, mean per-event latency {:.1} s (ours {:.1} s)",
        sonic.ie_pmj(),
        sonic.mean_latency_s(),
        adaptation.final_report.mean_latency_s()
    );
    Ok(())
}
