//! Property-based tests of pruning, quantization and policy evaluation.

use ie_compress::{
    pruning, quantize, CalibratedAccuracyModel, CompressionPolicy, ExitAccuracyEstimator,
    LayerPolicy, PolicyEvaluator,
};
use ie_nn::spec::lenet_multi_exit;
use ie_tensor::Tensor;
use proptest::prelude::*;

fn arb_weight_matrix() -> impl Strategy<Value = Tensor> {
    (2usize..10, 2usize..10).prop_flat_map(|(o, c)| {
        proptest::collection::vec(-2.0f32..2.0, o * c)
            .prop_map(move |data| Tensor::from_vec(data, &[o, c]).expect("length matches"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pruning keeps exactly the requested number of channels and always
    /// removes the least-important ones first.
    #[test]
    fn pruning_respects_ratio_and_importance(w in arb_weight_matrix(), ratio in 0.05f32..1.0) {
        let channels = w.dims()[1];
        let importance = pruning::channel_importance(&w);
        let pruned = pruning::select_pruned_channels(&importance, ratio);
        let kept = channels - pruned.len();
        let expected_kept = ((channels as f32 * ratio).round() as usize).clamp(1, channels);
        prop_assert_eq!(kept, expected_kept);
        // Every pruned channel is no more important than every kept channel.
        let max_pruned = pruned.iter().map(|&i| importance[i]).fold(f32::NEG_INFINITY, f32::max);
        let min_kept = (0..channels)
            .filter(|i| !pruned.contains(i))
            .map(|i| importance[i])
            .fold(f32::INFINITY, f32::min);
        if !pruned.is_empty() {
            prop_assert!(max_pruned <= min_kept + 1e-6);
        }
    }

    /// The quantize→dequantize round trip never increases the dynamic range
    /// and its error shrinks (weakly) as bitwidth grows.
    #[test]
    fn quantization_error_shrinks_with_bits(w in arb_weight_matrix()) {
        let max_abs = w.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let mut previous = f32::INFINITY;
        for bits in [1u8, 2, 4, 6, 8] {
            let q = quantize::quantize_weights(&w, bits);
            // The scale search is a finite grid, so monotonicity holds up to a
            // small approximation slack.
            prop_assert!(
                q.mse <= previous * 1.05 + 1e-6,
                "mse must not grow materially with more bits: {} -> {}",
                previous,
                q.mse
            );
            previous = q.mse;
            // The MSE-optimal scale may slightly exceed the max-abs scale for
            // sparse tensors, so the bound carries the search range's slack.
            let q_max = q.values.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()));
            prop_assert!(q_max <= max_abs * 1.7 + 1e-4, "quantized range stays bounded: {q_max} vs {max_abs}");
        }
        // 32 bits is lossless.
        prop_assert_eq!(quantize::quantize_weights(&w, 32).mse, 0.0);
    }

    /// The quantize→dequantize round trip of every bitwidth 1..=16 lands
    /// within the quantizer's step size of the original value: half a step
    /// for the rounding quantizers (bits ≥ 2), one step for the two-level
    /// binary quantizer, plus the unavoidable saturation excess for values
    /// beyond the chosen scale's representable range.
    #[test]
    fn quantize_roundtrip_error_is_bounded_by_the_step_size(
        w in arb_weight_matrix(),
        bits in 1u8..=16,
    ) {
        let q = quantize::quantize_weights(&w, bits);
        prop_assert!(q.scale > 0.0 && q.scale.is_finite());
        let hi = if bits == 1 { 1.0f32 } else { ((1i64 << (bits - 1)) - 1) as f32 };
        let step_bound = if bits == 1 { q.scale } else { q.scale * 0.5 };
        for (&orig, &val) in w.as_slice().iter().zip(q.values.as_slice()) {
            let saturation = (orig.abs() - q.scale * hi).max(0.0);
            let err = (val - orig).abs();
            prop_assert!(
                err <= saturation + step_bound + 1e-4,
                "bits {}: |{} -> {}| = {} exceeds saturation {} + step bound {}",
                bits, orig, val, err, saturation, step_bound
            );
        }
        // Activations obey the same bound with their unsigned range.
        let act: Tensor = Tensor::from_vec(
            w.as_slice().iter().map(|v| v.abs()).collect(),
            w.dims(),
        ).expect("shape preserved");
        let qa = quantize::quantize_activations(&act, bits);
        let a_hi = 2f32.powi(i32::from(bits)) - 1.0;
        for (&orig, &val) in act.as_slice().iter().zip(qa.values.as_slice()) {
            let saturation = (orig - qa.scale * a_hi).max(0.0);
            prop_assert!(
                (val - orig).abs() <= saturation + qa.scale * 0.5 + 1e-4,
                "activation bits {}: {} -> {}", bits, orig, val
            );
        }
    }

    /// Storage accounting: fewer bits or fewer parameters never increases the
    /// byte count.
    #[test]
    fn storage_bytes_is_monotone(params in 1u64..1_000_000, bits in 1u8..32) {
        let base = quantize::storage_bytes(params, bits);
        prop_assert!(quantize::storage_bytes(params, bits + 1) >= base);
        prop_assert!(quantize::storage_bytes(params + 1, bits) >= base);
        prop_assert!(base >= params / 8);
    }

    /// The calibrated accuracy model is monotone: uniformly loosening a policy
    /// (keeping more channels, more bits) never reduces any exit's accuracy.
    #[test]
    fn accuracy_model_is_monotone_in_policy(ratio in 0.05f32..0.95, bits in 1u8..8) {
        let arch = lenet_multi_exit();
        let layers = arch.compressible_layers();
        let model = CalibratedAccuracyModel::for_paper_backbone();
        let tight = CompressionPolicy::uniform(layers.len(), ratio, bits, bits).expect("valid");
        let loose = CompressionPolicy::uniform(
            layers.len(),
            (ratio + 0.05).min(1.0),
            (bits + 1).min(8),
            (bits + 1).min(8),
        ).expect("valid");
        let acc_tight = model.exit_accuracy(&layers, &tight).expect("evaluates");
        let acc_loose = model.exit_accuracy(&layers, &loose).expect("evaluates");
        for (t, l) in acc_tight.iter().zip(&acc_loose) {
            prop_assert!(l + 1e-9 >= *t, "loosening the policy cannot hurt accuracy: {t} -> {l}");
        }
    }

    /// Policy evaluation scales FLOPs linearly with a uniform preserve ratio
    /// and size linearly with the bitwidth.
    #[test]
    fn evaluator_cost_scaling(ratio in 0.1f32..1.0, bits in 1u8..8) {
        let arch = lenet_multi_exit();
        let evaluator = PolicyEvaluator::new(&arch, CalibratedAccuracyModel::for_paper_backbone());
        let n = evaluator.layers().len();
        let policy = CompressionPolicy::uniform(n, ratio, bits, 8).expect("valid");
        let profile = evaluator.evaluate(&policy).expect("evaluates");
        let full = evaluator.evaluate(&CompressionPolicy::full_precision(n)).expect("evaluates");
        let flops_ratio = profile.total_flops as f64 / full.total_flops as f64;
        prop_assert!((flops_ratio - f64::from(ratio)).abs() < 0.02, "flops ratio {flops_ratio} vs {ratio}");
        let size_ratio = profile.model_size_bytes as f64 / full.model_size_bytes as f64;
        let expected = f64::from(ratio) * f64::from(bits) / 32.0;
        prop_assert!((size_ratio - expected).abs() < 0.02, "size ratio {size_ratio} vs {expected}");
    }

    /// Snapping a policy always lands on the legal action grid.
    #[test]
    fn snapped_policies_are_on_the_grid(ratio in 0.0f32..1.5, wbits in 0u8..40, abits in 0u8..40) {
        let snapped = LayerPolicy { preserve_ratio: ratio, weight_bits: wbits, activation_bits: abits }.snapped();
        prop_assert!(snapped.preserve_ratio >= 0.05 - 1e-6 && snapped.preserve_ratio <= 1.0 + 1e-6);
        let steps = snapped.preserve_ratio / 0.05;
        prop_assert!((steps - steps.round()).abs() < 1e-3, "ratio {} is on the 0.05 grid", snapped.preserve_ratio);
        if wbits <= 8 {
            prop_assert!(snapped.weight_bits >= 1 && snapped.weight_bits <= 8);
        }
    }
}
